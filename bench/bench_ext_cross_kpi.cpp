// Extension (§6 "Detection across the same types of KPIs"): train on one
// labeled KPI, detect on another of the same type but different scale.
//
// "In order to reuse the classifier for the data of different scales, the
// anomaly features extracted by basic detectors should be normalized."
// We generate two PV-like KPIs (different seed, 20x different volume),
// train on KPI A only, and detect on KPI B with and without severity
// normalization.
#include <cstdio>

#include "bench_common.hpp"
#include "core/transfer.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Extension", "cross-KPI detection with severity "
                                   "normalization (train on A, detect on B)");

  auto preset_a = datagen::pv_preset(datagen::scale_from_env(), 11);
  auto preset_b = datagen::pv_preset(datagen::scale_from_env(), 77);
  preset_a.model.weeks = 12;
  preset_b.model.weeks = 12;
  preset_b.model.base_level *= 20.0;  // same type, very different volume
  preset_b.injection.seed = 777;

  const auto a = bench::prepare_kpi(preset_a);
  const auto b = bench::prepare_kpi(preset_b);

  const ml::Dataset train_a =
      a.dataset.slice(a.warmup, a.dataset.num_rows());
  const ml::Dataset test_b =
      b.dataset.slice(b.warmup, b.dataset.num_rows());

  // Raw severities: the forest sees feature scales it never trained on.
  {
    ml::RandomForest forest(bench::standard_forest());
    forest.train(train_a);
    const double aucpr =
        eval::PrCurve(forest.score_all(test_b), test_b.labels()).aucpr();
    std::printf("\nwithout normalization: AUCPR on B = %s\n",
                bench::fmt(aucpr).c_str());
  }

  // Normalized severities: each KPI's features divided by that KPI's own
  // severity scale (fitted without using B's labels).
  {
    core::SeverityNormalizer norm_a, norm_b;
    norm_a.fit(train_a);
    norm_b.fit(test_b);
    ml::RandomForest forest(bench::standard_forest());
    forest.train(norm_a.transform(train_a));
    const double aucpr = eval::PrCurve(
        forest.score_all(norm_b.transform(test_b)), test_b.labels())
                             .aucpr();
    std::printf("with normalization:    AUCPR on B = %s\n",
                bench::fmt(aucpr).c_str());
  }

  // Reference: a forest trained on B's own labels (what transfer saves).
  {
    const std::size_t split = 8 * b.points_per_week;
    ml::RandomForest forest(bench::standard_forest());
    forest.train(b.dataset.slice(b.warmup, split));
    const ml::Dataset tail = b.dataset.slice(split, b.dataset.num_rows());
    const double aucpr =
        eval::PrCurve(forest.score_all(tail), tail.labels()).aucpr();
    std::printf("B trained on itself:   AUCPR on B tail = %s\n",
                bench::fmt(aucpr).c_str());
  }

  std::printf(
      "\nExpected (§6): normalized transfer recovers most of the accuracy\n"
      "of training on B directly, so operators only label one KPI of each\n"
      "type; unnormalized transfer degrades because severities are scale-\n"
      "dependent.\n");
  return 0;
}
