// Fig 5: "Decision tree example" — a compacted decision tree learned from
// the SRT data set, with if-then rules over detector severities.
//
// The paper's example tree splits on time series decomposition, singular
// value decomposition, and diff. We train a depth-limited CART tree on the
// SRT features and print its rules; the top splits should land on the
// detector families that matter for SRT.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/decision_tree.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 5", "compacted decision tree learned from SRT");

  const auto data =
      bench::prepare_kpi(datagen::srt_preset(datagen::scale_from_env()));
  const std::size_t train_end = 8 * data.points_per_week;
  const ml::Dataset train = data.dataset.slice(data.warmup, train_end);

  ml::TreeOptions opts;
  opts.max_depth = 3;  // compacted, like the paper's figure
  ml::DecisionTree tree(opts);
  tree.train(train);

  std::printf("\n%s\n",
              tree.print_rules(train.feature_names(), 3).c_str());

  // Which feature is at the root (the paper: "a feature is more important
  // for classification if it is closer to the root")?
  const auto& root = tree.nodes().front();
  if (root.feature >= 0) {
    std::printf("root split: %s (threshold %.3f)\n",
                train.feature_names()[static_cast<std::size_t>(root.feature)]
                    .c_str(),
                root.threshold);
  }
  std::printf(
      "\nPaper (Fig 5): rules over TSD, SVD, and diff severities, with TSD\n"
      "at the root. Expect the root here on a seasonal/SVD-family severity.\n");
  return 0;
}
