// Fig 6: "PR curve of a random forest trained and tested on the PV data.
// Different methods select different cThlds and result in different
// precision and recall."
//
// We reproduce the curve from the weekly-incremental run on PV and mark
// the operating points chosen by the default cThld (0.5), F-Score,
// SD(1,1), and PC-Score under the two assumed preferences of the figure:
// (1) recall >= 0.75 & precision >= 0.6, (2) recall >= 0.5 & precision >= 0.9.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "eval/threshold_pickers.hpp"
#include "util/ascii_chart.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 6", "PR curve of a random forest on PV");

  const auto data =
      bench::prepare_kpi(datagen::pv_preset(datagen::scale_from_env()));
  const auto run = bench::cached_weekly_incremental(
      data, bench::standard_driver(), "PV");

  const eval::PrCurve curve(bench::test_scores(run),
                            bench::test_labels(data, run));

  // Render the PR curve: precision as a function of recall.
  std::printf("\nPR curve (x: recall buckets 0..1, y: precision)\n");
  std::vector<double> precision_by_recall(40, std::numeric_limits<double>::quiet_NaN());
  for (const auto& p : curve.points()) {
    const std::size_t bucket = std::min<std::size_t>(
        static_cast<std::size_t>(p.recall * 39.0), 39);
    // Keep the best precision seen per recall bucket.
    if (std::isnan(precision_by_recall[bucket]) ||
        p.precision > precision_by_recall[bucket]) {
      precision_by_recall[bucket] = p.precision;
    }
  }
  util::ChartOptions opt;
  opt.width = 60;
  opt.height = 12;
  std::printf("%s", util::render_line_chart(precision_by_recall, opt).c_str());
  std::printf("AUCPR = %s\n", bench::fmt(curve.aucpr()).c_str());

  const eval::AccuracyPreference pref1{0.75, 0.6};
  const eval::AccuracyPreference pref2{0.5, 0.9};

  auto report = [&](const char* name, const eval::ThresholdChoice& c) {
    std::printf("  %-24s cThld=%s  recall=%s precision=%s  in box1=%s box2=%s\n",
                name, bench::fmt(c.cthld).c_str(), bench::fmt(c.recall).c_str(),
                bench::fmt(c.precision).c_str(),
                pref1.satisfied_by(c.recall, c.precision) ? "yes" : "no",
                pref2.satisfied_by(c.recall, c.precision) ? "yes" : "no");
  };

  std::printf("\nthreshold selection methods (box1: r>=0.75,p>=0.6; box2: r>=0.5,p>=0.9):\n");
  report("default cThld (0.5)",
         eval::pick_threshold(curve, eval::ThresholdMethod::kDefault));
  report("F-Score",
         eval::pick_threshold(curve, eval::ThresholdMethod::kFScore));
  report("SD(1,1)",
         eval::pick_threshold(curve, eval::ThresholdMethod::kSd11));
  report("PC-Score (pref 1)",
         eval::pick_threshold(curve, eval::ThresholdMethod::kPcScore, pref1));
  report("PC-Score (pref 2)",
         eval::pick_threshold(curve, eval::ThresholdMethod::kPcScore, pref2));

  std::printf(
      "\nPaper (Fig 6): the PC-Score picks land inside both preference\n"
      "boxes, while the default cThld / F-Score / SD(1,1) picks satisfy at\n"
      "most one of them — they ignore the operators' preference.\n");
  return 0;
}
