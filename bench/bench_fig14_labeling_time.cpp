// Fig 14: "Operators' labeling time vs. the number of anomalous windows
// for every month of data" + §5.7's totals (16 / 17 / 6 minutes for
// PV / #SR / SRT) and the anecdotal detector-tuning comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "labeling/labeling_session.hpp"
#include "labeling/operator_model.hpp"
#include "util/ascii_chart.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 14 / §5.7",
                      "labeling time vs anomalous windows per month");

  std::printf("\n%-5s %-7s %-18s %-10s\n", "KPI", "month", "#anomalous windows",
              "minutes");
  double totals[3] = {0, 0, 0};
  std::size_t k = 0;
  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
    const auto labels = labeling::simulate_labeling(
        kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});
    const auto months =
        labeling::estimate_monthly_costs(kpi.series, labels, {});
    for (const auto& m : months) {
      std::printf("%-5s %-7zu %-18zu %.1f\n", kpi.series.name().c_str(),
                  m.month_index + 1, m.anomalous_windows, m.minutes);
    }
    totals[k] = labeling::total_minutes(months);
    ++k;
  }
  std::printf("\ntotal labeling time:  PV %.0f min, #SR %.0f min, SRT %.0f min\n",
              totals[0], totals[1], totals[2]);
  std::printf("paper (§5.7):         PV 16 min,  #SR 17 min,  SRT 6 min\n");
  std::printf(
      "\nFor contrast, the paper's interviewed operators spent ~8 days\n"
      "tuning SVD, ~12 days tuning Holt-Winters + historical average, and\n"
      "~10 days tuning TSD — and two of the three detectors were abandoned.\n"
      "Labeling minutes vs tuning days is the point of this figure.\n");
  return 0;
}
