// Extension (§4.4.1 future work): mRMR feature selection ahead of the
// forest. The paper skips feature selection because "it could introduce
// extra computation overhead, and the random forest works well by itself".
// This bench quantifies that: AUCPR and training time for the full
// 133-feature forest vs forests on the top-k mRMR features.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "ml/feature_selection.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

int main() {
  bench::print_header("Extension",
                      "mRMR feature selection vs the full 133 features");

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const std::size_t split = 8 * data.points_per_week;
    const ml::Dataset train = data.dataset.slice(data.warmup, split);
    const ml::Dataset test =
        data.dataset.slice(split, data.dataset.num_rows());

    const auto t0 = std::chrono::steady_clock::now();
    const auto mrmr_order = ml::mrmr_select(train, 32);
    const auto t1 = std::chrono::steady_clock::now();
    const double selection_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::printf("\n--- KPI: %s (mRMR selection of 32/133 took %.0f ms) ---\n",
                preset.model.name.c_str(), selection_ms);
    std::printf("  %-18s %-8s %-12s\n", "feature set", "AUCPR",
                "train time");

    auto measure = [&](const char* label, const ml::Dataset& tr,
                       const ml::Dataset& te) {
      const auto start = std::chrono::steady_clock::now();
      ml::RandomForest forest(bench::standard_forest());
      forest.train(tr);
      const auto end = std::chrono::steady_clock::now();
      const double aucpr =
          eval::PrCurve(forest.score_all(te), te.labels()).aucpr();
      std::printf("  %-18s %-8s %.0f ms\n", label,
                  bench::fmt(aucpr).c_str(),
                  std::chrono::duration<double, std::milli>(end - start)
                      .count());
      std::fflush(stdout);
    };

    measure("all 133", train, test);
    for (std::size_t k : {8u, 16u, 32u}) {
      const std::vector<std::size_t> subset(
          mrmr_order.begin(),
          mrmr_order.begin() + static_cast<std::ptrdiff_t>(
                                   std::min<std::size_t>(k, mrmr_order.size())));
      const std::string label = "mRMR top-" + std::to_string(k);
      measure(label.c_str(), train.select_features(subset),
              test.select_features(subset));
    }
    std::printf("  top-8 mRMR picks:");
    for (std::size_t i = 0; i < 8 && i < mrmr_order.size(); ++i) {
      std::printf(" %s", train.feature_names()[mrmr_order[i]].c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected (§4.4.1): the forest on all 133 features is competitive\n"
      "with any selected subset — feature selection buys training time,\n"
      "not accuracy, which is why the paper leaves it as future work.\n");
  return 0;
}
