// Extension (§4.4.1 future work): mRMR feature selection ahead of the
// forest. The paper skips feature selection because "it could introduce
// extra computation overhead, and the random forest works well by itself".
// This bench quantifies that: AUCPR and training time for the full
// 133-feature forest vs forests on the top-k mRMR features.
//
// All timing goes through the obs layer (spans + histograms), so a run
// with --trace/--json exposes the same numbers machine-readably.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/feature_selection.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Extension",
                      "mRMR feature selection vs the full 133 features");

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const std::size_t split = 8 * data.points_per_week;
    const ml::Dataset train = data.dataset.slice(data.warmup, split);
    const ml::Dataset test =
        data.dataset.slice(split, data.dataset.num_rows());

    double selection_ms = 0.0;
    std::vector<std::size_t> mrmr_order;
    {
      obs::ScopedSpan span("ext.mrmr_select", "bench");
      span.arg("features", train.num_features());
      const obs::Stopwatch watch;
      mrmr_order = ml::mrmr_select(train, 32);
      selection_ms = watch.elapsed_ms();
      obs::histogram("opprentice.ext.mrmr_select.ms").record(selection_ms);
    }

    std::printf("\n--- KPI: %s (mRMR selection of 32/133 took %.0f ms) ---\n",
                preset.model.name.c_str(), selection_ms);
    std::printf("  %-18s %-8s %-12s\n", "feature set", "AUCPR",
                "train time");

    auto measure = [&](const char* label, const ml::Dataset& tr,
                       const ml::Dataset& te) {
      obs::ScopedSpan span("ext.measure", "bench");
      span.arg("features", tr.num_features());
      const obs::Stopwatch watch;
      ml::RandomForest forest(bench::standard_forest());
      forest.train(tr);
      const double train_ms = watch.elapsed_ms();
      obs::histogram("opprentice.ext.subset_train.ms").record(train_ms);
      const double aucpr =
          eval::PrCurve(forest.score_all(te), te.labels()).aucpr();
      std::printf("  %-18s %-8s %.0f ms\n", label,
                  bench::fmt(aucpr).c_str(), train_ms);
      std::fflush(stdout);
    };

    measure("all 133", train, test);
    for (std::size_t k : {8u, 16u, 32u}) {
      const std::vector<std::size_t> subset(
          mrmr_order.begin(),
          mrmr_order.begin() + static_cast<std::ptrdiff_t>(
                                   std::min<std::size_t>(k, mrmr_order.size())));
      const std::string label = "mRMR top-" + std::to_string(k);
      measure(label.c_str(), train.select_features(subset),
              test.select_features(subset));
    }
    std::printf("  top-8 mRMR picks:");
    for (std::size_t i = 0; i < 8 && i < mrmr_order.size(); ++i) {
      std::printf(" %s", train.feature_names()[mrmr_order[i]].c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected (§4.4.1): the forest on all 133 features is competitive\n"
      "with any selected subset — feature selection buys training time,\n"
      "not accuracy, which is why the paper leaves it as future work.\n");
  return 0;
}
