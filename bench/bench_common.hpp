// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every bench reproduces one table or figure of the paper's §5 on the
// three synthetic KPI presets (PV, #SR, SRT). The expensive intermediate —
// the weekly-incrementally-retrained random-forest scores — is cached on
// disk (build/bench-cache) so consecutive bench binaries don't retrain
// identical forests; results are deterministic either way.
#pragma once

#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/pr_curve.hpp"

namespace opprentice::bench {

// The operators' actual preference in the paper (§2.2).
inline constexpr eval::AccuracyPreference kPaperPreference{0.66, 0.66};

// Forest configuration used by every experiment.
ml::ForestOptions standard_forest();
core::DriverOptions standard_driver();

// Prepares one KPI's experiment data (generation + operator labeling +
// 133-configuration feature extraction).
core::ExperimentData prepare_kpi(const datagen::KpiPreset& preset);

// All three KPIs at the environment's scale.
std::vector<core::ExperimentData> prepare_all_kpis();

// Weekly incremental run (I1) with disk caching keyed by KPI name, scale,
// and forest options. Cache lives in $OPPRENTICE_CACHE_DIR (default
// "bench-cache/"); set OPPRENTICE_NO_CACHE=1 to disable.
core::IncrementalRunResult cached_weekly_incremental(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name);

// Per-week 5-fold cThlds, cached like cached_weekly_incremental.
std::vector<double> cached_five_fold_cthlds(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name);

// Test-region views of an incremental run.
std::vector<double> test_scores(const core::IncrementalRunResult& run);
std::vector<std::uint8_t> test_labels(const core::ExperimentData& data,
                                      const core::IncrementalRunResult& run);

// Banner helpers so bench output reads like the paper.
void print_header(const std::string& id, const std::string& title);
std::string fmt(double v, int precision = 3);

}  // namespace opprentice::bench
