// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every bench reproduces one table or figure of the paper's §5 on the
// three synthetic KPI presets (PV, #SR, SRT). The expensive intermediate —
// the weekly-incrementally-retrained random-forest scores — is cached on
// disk (build/bench-cache) so consecutive bench binaries don't retrain
// identical forests; results are deterministic either way.
#pragma once

#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/pr_curve.hpp"
#include "obs/obs.hpp"

namespace opprentice::bench {

// The bench --json envelope (schema "opprentice.bench.metrics/1"),
// factored out of the one-pipeline-per-process writer so multi-scale
// benches (bench_fleet) can compose any number of pre-rendered members —
// per-scale sub-reports included — without duplicating the run_report
// plumbing. Renders as
//   {schema, binary, scale, <members in insertion order>, metrics}
// with the process metrics snapshot always last.
class JsonEnvelope {
 public:
  // Adds a pre-rendered top-level member; re-setting a key overwrites
  // its value in place, keeping first-insertion order.
  void set_member(std::string_view key, std::string json);
  bool has_member(std::string_view key) const;

  // Legacy escape hatch: a pre-joined "\"k\": v, \"k2\": v2" chunk
  // spliced verbatim between the header and the keyed members
  // (Session::set_extra_json feeds this).
  void set_raw_chunk(std::string chunk) { raw_chunk_ = std::move(chunk); }

  std::string render(const std::string& binary) const;
  bool write(const std::string& path, const std::string& binary) const;

 private:
  std::vector<std::pair<std::string, std::string>> members_;
  std::string raw_chunk_;
};

// Shared flag harness for the bench binaries: parses and strips
//   --json <path>    write an obs metrics snapshot (JSON) on exit
//   --trace <path>   collect trace spans and write Chrome trace JSON
//   --threads <n>    thread-pool size (0 = hardware, 1 = serial)
// from argv (leaving unknown flags alone, so google-benchmark flags pass
// through) and performs the writes in the destructor. Passing --json also
// enables detailed timing so latency histograms populate.
class Session {
 public:
  Session(int& argc, char** argv);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& json_path() const { return json_path_; }
  const std::string& trace_path() const { return trace_path_; }

  // Run-report manifest (run_report.hpp) embedded into the --json
  // envelope as "run_report". Bench code decorates it (stages, seeds,
  // extra fields) before the destructor renders it.
  obs::RunReport& report() { return report_; }

  // Extra top-level JSON members (pre-rendered, comma-joined, no trailing
  // comma) merged into the --json envelope, e.g. a bench-specific summary.
  void set_extra_json(std::string extra) {
    envelope_.set_raw_chunk(std::move(extra));
  }

  // Structured access to the --json envelope: benches add keyed members
  // (JsonEnvelope::set_member); the destructor appends "run_report" and
  // writes the file.
  JsonEnvelope& envelope() { return envelope_; }

 private:
  std::string binary_;
  std::string json_path_;
  std::string trace_path_;
  JsonEnvelope envelope_;
  obs::RunReport report_;
};

// Writes the process-wide obs metrics snapshot wrapped in the bench JSON
// envelope (schema "opprentice.bench.metrics/1"; see DESIGN.md
// "Observability"). `run_report_json` is the pre-rendered run-report
// manifest embedded as the "run_report" member (omitted when empty).
// Returns false when the file cannot be written.
bool write_bench_json(const std::string& path, const std::string& binary,
                      const std::string& extra_json = {},
                      const std::string& run_report_json = {});

// The operators' actual preference in the paper (§2.2).
inline constexpr eval::AccuracyPreference kPaperPreference{0.66, 0.66};

// Forest configuration used by every experiment.
ml::ForestOptions standard_forest();
core::DriverOptions standard_driver();

// Prepares one KPI's experiment data (generation + operator labeling +
// 133-configuration feature extraction).
core::ExperimentData prepare_kpi(const datagen::KpiPreset& preset);

// All three KPIs at the environment's scale.
std::vector<core::ExperimentData> prepare_all_kpis();

// Weekly incremental run (I1) with disk caching keyed by KPI name, scale,
// and forest options. Cache lives in $OPPRENTICE_CACHE_DIR (default
// "bench-cache/"); set OPPRENTICE_NO_CACHE=1 to disable.
core::IncrementalRunResult cached_weekly_incremental(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name);

// Per-week 5-fold cThlds, cached like cached_weekly_incremental.
std::vector<double> cached_five_fold_cthlds(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name);

// Test-region views of an incremental run.
std::vector<double> test_scores(const core::IncrementalRunResult& run);
std::vector<std::uint8_t> test_labels(const core::ExperimentData& data,
                                      const core::IncrementalRunResult& run);

// Banner helpers so bench output reads like the paper.
void print_header(const std::string& id, const std::string& title);
std::string fmt(double v, int precision = 3);

}  // namespace opprentice::bench
