// Fig 10: "AUCPR of different machine learning algorithms as more features
// are used." Features are added in mutual-information order; the paper
// shows decision trees / linear SVM / logistic regression / naive Bayes
// degrading or oscillating while random forests stay high through all 133
// features.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ml/decision_tree.hpp"
#include "ml/linear_models.hpp"
#include "ml/mutual_information.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

namespace {

std::unique_ptr<ml::BinaryClassifier> make_classifier(const std::string& name) {
  if (name == "decision_tree") return std::make_unique<ml::DecisionTree>();
  if (name == "logistic_regression") {
    ml::LinearModelOptions o;
    o.epochs = 12;
    return std::make_unique<ml::LogisticRegression>(o);
  }
  if (name == "linear_svm") {
    ml::LinearModelOptions o;
    o.epochs = 12;
    return std::make_unique<ml::LinearSvm>(o);
  }
  if (name == "naive_bayes") return std::make_unique<ml::GaussianNaiveBayes>();
  return std::make_unique<ml::RandomForest>(bench::standard_forest());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 10",
                      "AUCPR vs number of features (MI order) per learner");

  const std::vector<std::size_t> feature_counts{1,  2,  3,  5,  8,  12, 20,
                                                30, 50, 80, 110, 133};
  const std::vector<std::string> algos{"decision_tree", "linear_svm",
                                       "logistic_regression", "naive_bayes",
                                       "random_forest"};

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    // Single split: train on the first 8 weeks (past warm-up), test on the
    // rest — Fig 10's point is the feature-count trend, not the weekly
    // protocol.
    const std::size_t split = 8 * data.points_per_week;
    const ml::Dataset train = data.dataset.slice(data.warmup, split);
    const ml::Dataset test =
        data.dataset.slice(split, data.dataset.num_rows());

    const auto mi_order = ml::rank_features_by_mutual_information(train);

    std::printf("\n--- KPI: %s ---\n", preset.model.name.c_str());
    std::printf("%-20s", "#features:");
    for (std::size_t n : feature_counts) std::printf(" %5zu", n);
    std::printf("\n");

    for (const auto& algo : algos) {
      std::printf("%-20s", algo.c_str());
      double last = 0.0;
      for (std::size_t n : feature_counts) {
        const std::vector<std::size_t> subset(mi_order.begin(),
                                              mi_order.begin() +
                                                  static_cast<std::ptrdiff_t>(n));
        const ml::Dataset train_sub = train.select_features(subset);
        const ml::Dataset test_sub = test.select_features(subset);
        auto clf = make_classifier(algo);
        clf->train(train_sub);
        last = eval::PrCurve(clf->score_all(test_sub), test_sub.labels())
                   .aucpr();
        std::printf(" %5.2f", last);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nPaper (Fig 10): the AUCPR of decision trees, linear SVMs, logistic\n"
      "regression, and naive Bayes is unstable and decreases as more\n"
      "(irrelevant/redundant) features are added, while random forests stay\n"
      "high even with all 133 features.\n");
  return 0;
}
