// Fig 7: "Best cThld of each week from the 9th week."
//
// The figure motivates EWMA-based cThld prediction: the best cThld varies
// a lot across weeks but neighbouring weeks are more alike.
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"
#include "util/stats.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 7", "best cThld of each 1-week moving test set");

  const auto presets = datagen::all_presets(datagen::scale_from_env());
  for (const auto& preset : presets) {
    const auto data = bench::prepare_kpi(preset);
    const auto run = bench::cached_weekly_incremental(
        data, bench::standard_driver(), preset.model.name);

    std::vector<double> bests;
    for (const auto& w : run.weeks) bests.push_back(w.best.cthld);

    std::printf("\n%-4s best cThld per test week: %s\n",
                preset.model.name.c_str(),
                util::render_sparkline(bests).c_str());
    std::printf("     values:");
    for (double b : bests) std::printf(" %.2f", b);
    std::printf("\n");

    // Quantify "neighbouring weeks are more similar": mean |diff| between
    // adjacent weeks vs between random (all) pairs.
    double adjacent = 0.0;
    for (std::size_t i = 0; i + 1 < bests.size(); ++i) {
      adjacent += std::abs(bests[i + 1] - bests[i]);
    }
    adjacent /= static_cast<double>(bests.size() - 1);
    double all_pairs = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < bests.size(); ++i) {
      for (std::size_t j = i + 1; j < bests.size(); ++j) {
        all_pairs += std::abs(bests[i] - bests[j]);
        ++pairs;
      }
    }
    all_pairs /= static_cast<double>(pairs);
    std::printf(
        "     mean |Δ| adjacent weeks = %s, all week pairs = %s "
        "(adjacent <= all => EWMA prediction is sensible)\n",
        bench::fmt(adjacent).c_str(), bench::fmt(all_pairs).c_str());
  }
  std::printf(
      "\nPaper (Fig 7): best cThlds differ greatly over weeks, but are more\n"
      "similar to those of neighbouring weeks — motivating EWMA prediction.\n");
  return 0;
}
