// Fig 13: "Online detection accuracy of Opprentice as a whole" — per-week
// cThlds assigned by (a) the offline best case (oracle PC-Score), (b) the
// paper's EWMA prediction over historical best cThlds, and (c) the 5-fold
// cross-validation baseline. Accuracy is aggregated over 4-week moving
// windows that advance one day per step; the shaded region of the figure
// is the operators' preference (recall >= 0.66, precision >= 0.66).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/cthld.hpp"

using namespace opprentice;

namespace {

struct ModeResult {
  const char* name;
  std::vector<core::WindowedMetrics> windows;
  std::size_t in_box = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 13",
                      "online detection: best case vs EWMA vs 5-fold");

  const auto pref = bench::kPaperPreference;
  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const auto driver = bench::standard_driver();
    const auto run = bench::cached_weekly_incremental(data, driver,
                                                      preset.model.name);
    const auto five_fold =
        bench::cached_five_fold_cthlds(data, driver, preset.model.name);

    // Best case: the oracle per-week cThld.
    std::vector<double> best_cthlds;
    for (const auto& w : run.weeks) best_cthlds.push_back(w.best.cthld);
    // EWMA prediction, initialized from the first week's 5-fold result.
    const double init = five_fold.empty() ? 0.5 : five_fold.front();
    const auto ewma_cthlds = core::ewma_predicted_cthlds(run, init, 0.8);

    const std::size_t day = data.points_per_week / 7;
    const std::size_t window = 4 * data.points_per_week;

    ModeResult modes[3] = {{"best case", {}, 0}, {"EWMA", {}, 0},
                           {"5-fold", {}, 0}};
    const std::vector<double>* cthlds[3] = {&best_cthlds, &ewma_cthlds,
                                            &five_fold};
    for (int m = 0; m < 3; ++m) {
      const auto decisions = core::decisions_from_weekly_cthlds(run, *cthlds[m]);
      modes[m].windows = core::windowed_metrics(
          decisions, data.dataset.labels(), run.test_start, window, day);
      for (const auto& wm : modes[m].windows) {
        modes[m].in_box += pref.satisfied_by(wm.recall, wm.precision);
      }
    }

    std::printf("\n--- KPI: %s (%zu 4-week windows, 1-day step) ---\n",
                preset.model.name.c_str(), modes[0].windows.size());
    for (const auto& mode : modes) {
      double r_sum = 0.0, p_sum = 0.0;
      for (const auto& wm : mode.windows) {
        r_sum += std::isnan(wm.recall) ? 0.0 : wm.recall;
        p_sum += std::isnan(wm.precision) ? 0.0 : wm.precision;
      }
      const auto n = static_cast<double>(mode.windows.size());
      std::printf(
          "  %-10s mean recall=%s mean precision=%s  windows in box: %zu "
          "(%.0f%%)\n",
          mode.name, bench::fmt(r_sum / n).c_str(),
          bench::fmt(p_sum / n).c_str(), mode.in_box,
          100.0 * static_cast<double>(mode.in_box) / n);
    }
    if (modes[2].in_box > 0) {
      std::printf("  EWMA vs 5-fold: %+.0f%% more windows inside the box\n",
                  100.0 * (static_cast<double>(modes[1].in_box) /
                               static_cast<double>(modes[2].in_box) -
                           1.0));
    }

    // Total anomalous points flagged by the EWMA mode (§5.6 reports them).
    const auto ewma_decisions =
        core::decisions_from_weekly_cthlds(run, ewma_cthlds);
    std::size_t flagged = 0;
    for (std::size_t i = run.test_start; i < ewma_decisions.size(); ++i) {
      flagged += ewma_decisions[i];
    }
    std::printf("  points flagged by Opprentice (EWMA): %zu of %zu (%.1f%%)\n",
                flagged, ewma_decisions.size() - run.test_start,
                100.0 * static_cast<double>(flagged) /
                    static_cast<double>(ewma_decisions.size() -
                                        run.test_start));
  }

  std::printf(
      "\nPaper (Fig 13 / §5.6): EWMA achieves 40%% / 23%% / 110%% more\n"
      "points inside the preference region than 5-fold cross-validation on\n"
      "PV / #SR / SRT, and approaches the offline best case.\n");
  return 0;
}
