// Ablation: how much does each of the 14 detector families contribute?
//
// Two views per KPI:
//  - the forest's gini importance aggregated per family (which severities
//    the learned classifier actually uses), and
//  - leave-one-family-out AUCPR (what accuracy costs when a family's
//    configurations are removed). §4.3.2's claim is that Opprentice does
//    not need carefully selected detectors: removing any single family
//    should cost little because others cover for it.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "detectors/registry.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

namespace {

// Family of a configuration name ("tsd_mad(win=3w)" -> "tsd_mad").
std::string family_of(const std::string& config_name) {
  const auto paren = config_name.find('(');
  return paren == std::string::npos ? config_name
                                    : config_name.substr(0, paren);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Ablation",
                      "detector-family importances and leave-one-out AUCPR");

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const std::size_t split = 8 * data.points_per_week;
    const ml::Dataset train = data.dataset.slice(data.warmup, split);
    const ml::Dataset test =
        data.dataset.slice(split, data.dataset.num_rows());

    ml::RandomForest forest(bench::standard_forest());
    forest.train(train);
    const double full_aucpr =
        eval::PrCurve(forest.score_all(test), test.labels()).aucpr();

    // Importance per family.
    const auto importances = forest.feature_importances();
    std::map<std::string, double> family_importance;
    std::map<std::string, std::vector<std::size_t>> family_features;
    for (std::size_t f = 0; f < train.num_features(); ++f) {
      const std::string fam = family_of(train.feature_names()[f]);
      family_importance[fam] += importances[f];
      family_features[fam].push_back(f);
    }

    std::printf("\n--- KPI: %s (full-feature AUCPR %s) ---\n",
                preset.model.name.c_str(), bench::fmt(full_aucpr).c_str());
    std::printf("  %-20s %-12s %-12s\n", "family", "importance",
                "AUCPR w/o it");

    // Sort families by importance, descending.
    std::vector<std::pair<std::string, double>> ordered(
        family_importance.begin(), family_importance.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    for (const auto& [family, importance] : ordered) {
      // Leave this family's configurations out.
      std::vector<std::size_t> kept;
      for (std::size_t f = 0; f < train.num_features(); ++f) {
        if (family_of(train.feature_names()[f]) != family) kept.push_back(f);
      }
      ml::RandomForest ablated(bench::standard_forest());
      ablated.train(train.select_features(kept));
      const double aucpr =
          eval::PrCurve(ablated.score_all(test.select_features(kept)),
                        test.labels())
              .aucpr();
      std::printf("  %-20s %5.1f%%       %s\n", family.c_str(),
                  100.0 * importance, bench::fmt(aucpr).c_str());
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nExpected: the dominant family differs per KPI (seasonal families\n"
      "for PV, value/threshold-like for #SR), and removing any single\n"
      "family changes AUCPR only modestly — redundant configurations cover\n"
      "for it, which is why Opprentice needs no detector selection.\n");
  return 0;
}
