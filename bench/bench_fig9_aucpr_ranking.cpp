// Fig 9: "AUCPR rankings of different detection approaches" for each KPI —
// the 133 basic-detector configurations, the two static combination
// methods (normalization scheme, majority vote), and the random forest.
//
// Expected shape: the random forest ranks first (or within 0.01 of the
// top); the static combiners rank low; the best basic detector differs per
// KPI (TSD-family for PV, simple threshold for #SR, SVD/TSD-MAD for SRT).
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "combiners/static_combiners.hpp"

using namespace opprentice;

namespace {

struct Entry {
  std::string name;
  double aucpr;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 9", "AUCPR ranking: 133 configurations vs static "
                               "combiners vs random forest");

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const auto run = bench::cached_weekly_incremental(
        data, bench::standard_driver(), preset.model.name);
    const auto labels = bench::test_labels(data, run);

    std::vector<Entry> entries;

    // 133 basic configurations: severity is the anomaly score directly.
    for (std::size_t f = 0; f < data.dataset.num_features(); ++f) {
      const auto col = data.dataset.column(f);
      const std::vector<double> sev(
          col.begin() + static_cast<std::ptrdiff_t>(run.test_start),
          col.end());
      entries.push_back({data.dataset.feature_names()[f],
                         eval::PrCurve(sev, labels).aucpr()});
    }

    // Static combiners, fitted on the initial training region.
    const ml::Dataset train = data.dataset.slice(data.warmup, run.test_start);
    const ml::Dataset test =
        data.dataset.slice(run.test_start, data.dataset.num_rows());
    combiners::NormalizationScheme norm;
    norm.fit(train);
    combiners::MajorityVote vote;
    vote.fit(train);
    entries.push_back({"[normalization scheme]",
                       eval::PrCurve(norm.score_all(test), labels).aucpr()});
    entries.push_back({"[majority-vote]",
                       eval::PrCurve(vote.score_all(test), labels).aucpr()});

    // Random forest (weekly incremental retraining).
    entries.push_back({"[random forest]",
                       eval::PrCurve(bench::test_scores(run), labels).aucpr()});

    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.aucpr > b.aucpr; });

    std::printf("\n--- KPI: %s (%zu approaches ranked by AUCPR) ---\n",
                preset.model.name.c_str(), entries.size());
    auto rank_of = [&](const std::string& name) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].name == name) return i + 1;
      }
      return std::size_t{0};
    };
    std::printf("top of the ranking:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(8, entries.size());
         ++i) {
      std::printf("  %2zu. %-34s AUCPR=%s\n", i + 1,
                  entries[i].name.c_str(),
                  bench::fmt(entries[i].aucpr).c_str());
    }
    std::printf("random forest rank:        %zu / %zu (AUCPR %s)\n",
                rank_of("[random forest]"), entries.size(),
                bench::fmt(entries[rank_of("[random forest]") - 1].aucpr)
                    .c_str());
    std::printf("normalization scheme rank: %zu / %zu\n",
                rank_of("[normalization scheme]"), entries.size());
    std::printf("majority-vote rank:        %zu / %zu\n",
                rank_of("[majority-vote]"), entries.size());

    // Median configuration AUCPR, to show how inaccurate most are.
    std::vector<double> config_only;
    for (const auto& e : entries) {
      if (e.name[0] != '[') config_only.push_back(e.aucpr);
    }
    std::nth_element(config_only.begin(),
                     config_only.begin() +
                         static_cast<std::ptrdiff_t>(config_only.size() / 2),
                     config_only.end());
    std::printf("median basic-configuration AUCPR: %s\n",
                bench::fmt(config_only[config_only.size() / 2]).c_str());
  }

  std::printf(
      "\nPaper (Fig 9): random forest ranks 1st on PV and #SR and 2nd\n"
      "(within 0.01) on SRT; the two static combination methods always rank\n"
      "low because they weight the many inaccurate configurations equally.\n"
      "Best basic detector per KPI: TSD-MAD/historical (PV), simple\n"
      "threshold (#SR), SVD/TSD-MAD (SRT).\n");
  return 0;
}
