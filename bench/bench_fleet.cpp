// Fleet engine throughput and footprint (DESIGN.md §5i).
//
// Drives a synthetic fleet of N concurrent KPI streams through
// core::FleetEngine at N = 1k / 10k / 50k (--scales) and reports, per
// scale, points/sec through feed_tick, µs/point, and resident-set growth
// per series. Every series runs the fleet-lite detector set on a
// deliberately small SeriesContext (64-point "days") so warm-up,
// classification, and a staggered retrain all happen inside a short run —
// the bench exercises the whole per-series pipeline, not just extraction.
//
// `--json <file>` writes the standard bench envelope with one sub-report
// per scale ("fleet_scales", each embedding its own run_report stage
// table) plus a "fleet" summary object taken from the largest scale;
// `fleet.us_per_point` and `fleet.rss_per_series_bytes` are the keys the
// perf gate tracks (dotted keys — see tools/perf_gate.hpp).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet_engine.hpp"
#include "obs/json_util.hpp"
#include "obs/run_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

using namespace opprentice;

namespace {

// A small synthetic day: the fleet-lite set's longest warm-up is one day,
// so 3 "days" of points get every series warmed, labeled, and retrained.
constexpr std::size_t kPointsPerDay = 64;
constexpr std::size_t kLabelChunk = 32;

// Resident set in bytes (/proc/self/statm), or 0 when unavailable — the
// report then encodes RSS metrics as -1 (unmeasured) rather than lying.
std::size_t resident_bytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long total = 0, resident = 0;
  const int got = std::fscanf(statm, "%lu %lu", &total, &resident);
  std::fclose(statm);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

struct ScaleResult {
  std::size_t series = 0;
  std::size_t points_per_series = 0;
  double feed_ms = 0.0;
  double points_per_sec = 0.0;
  double us_per_point = 0.0;
  // -1 when RSS is unmeasurable on this platform.
  double rss_bytes = -1.0;
  double rss_per_series_bytes = -1.0;
  std::size_t retrains = 0;
  std::size_t trained = 0;
  std::size_t classified_points = 0;
  std::string report_json;
};

core::FleetOptions fleet_options() {
  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{kPointsPerDay, 7 * kPointsPerDay};
  options.detector_factory = core::fleet_lite_configurations;
  // Retrain once per "day": phases land in [0, 64), so with >= 2 days of
  // points every series trains on a labeled window mid-run.
  options.retrain_interval = kPointsPerDay;
  options.history_capacity = 4 * kPointsPerDay;
  // A fleet-scale forest: per-series budgets at 10k+ series don't fit 48
  // trees, and the bench measures the pipeline, not forest quality.
  options.forest.num_trees = 16;
  options.forest.seed = 42;
  return options;
}

// Drives one fleet scale: build N series, feed `points` synchronized
// ticks (labels arrive in 32-point chunks so staggered retrains see
// labeled history), then snapshot stats.
ScaleResult run_scale(std::size_t n, std::size_t points,
                      std::size_t process_baseline_rss) {
  obs::RunReport report("bench_fleet", "scale=" + std::to_string(n));
  report.set_threads(util::global_thread_count());
  report.set_seed("forest", 42);

  ScaleResult result;
  result.series = n;
  result.points_per_series = points;

  core::FleetEngine engine(fleet_options());
  std::vector<core::SeriesHandle> handles;
  std::vector<std::uint64_t> salts;
  {
    obs::StageTimer stage(report, "setup");
    handles.reserve(n);
    salts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string id = "kpi-" + std::to_string(i);
      handles.push_back(engine.add_series(id));
      salts.push_back(util::stable_id_hash(id));
    }
  }

  std::vector<double> values(n);
  std::vector<core::FleetDetection> verdicts(n);
  std::vector<std::uint8_t> label_chunk(kLabelChunk);

  const obs::Stopwatch feed_watch;
  {
    obs::StageTimer stage(report, "feed");
    for (std::size_t t = 0; t < points; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        values[i] = core::synthetic_fleet_value(salts[i], t, kPointsPerDay);
      }
      engine.feed_tick(handles, values, verdicts);
      for (const auto& v : verdicts) {
        if (v.classified) ++result.classified_points;
      }
      // Operator labels trail the stream by up to one chunk: every 37th
      // point is marked anomalous, the same for every series.
      if ((t + 1) % kLabelChunk == 0) {
        const std::size_t begin = t + 1 - kLabelChunk;
        for (std::size_t j = 0; j < kLabelChunk; ++j) {
          label_chunk[j] = (begin + j) % 37 == 0 ? 1 : 0;
        }
        for (const auto& handle : handles) {
          engine.ingest_labels(handle, label_chunk, begin);
        }
      }
    }
  }
  result.feed_ms = feed_watch.elapsed_ms();

  const std::size_t rss_after = resident_bytes();
  if (rss_after > 0 && process_baseline_rss > 0) {
    result.rss_bytes = static_cast<double>(rss_after);
    const std::size_t grown =
        rss_after > process_baseline_rss ? rss_after - process_baseline_rss
                                         : 0;
    result.rss_per_series_bytes =
        static_cast<double>(grown) / static_cast<double>(n);
  }

  const double total_points = static_cast<double>(n * points);
  if (result.feed_ms > 0.0) {
    result.points_per_sec = total_points / (result.feed_ms / 1000.0);
    result.us_per_point = 1000.0 * result.feed_ms / total_points;
  }

  {
    obs::StageTimer stage(report, "stats");
    for (const auto& handle : handles) {
      const core::FleetSeriesStats stats = engine.stats(handle);
      result.retrains += stats.retrains;
      if (stats.trained) ++result.trained;
    }
  }

  report.set_field("series", static_cast<std::uint64_t>(n));
  report.set_field("points_per_series", static_cast<std::uint64_t>(points));
  report.set_field("points_per_sec", result.points_per_sec);
  report.set_field("us_per_point", result.us_per_point);
  report.set_field("rss_bytes", result.rss_bytes);
  report.set_field("rss_per_series_bytes", result.rss_per_series_bytes);
  report.set_field("retrains", static_cast<std::uint64_t>(result.retrains));
  report.set_field("trained_series",
                   static_cast<std::uint64_t>(result.trained));
  result.report_json = report.to_json();
  return result;
}

std::string render_scale_json(const ScaleResult& r) {
  std::string out = "{\"series\": " + std::to_string(r.series);
  out += ", \"points_per_series\": " + std::to_string(r.points_per_series);
  out += ", \"points_per_sec\": ";
  obs::append_json_double(out, r.points_per_sec);
  out += ", \"us_per_point\": ";
  obs::append_json_double(out, r.us_per_point);
  out += ", \"rss_bytes\": ";
  obs::append_json_double(out, r.rss_bytes);
  out += ", \"rss_per_series_bytes\": ";
  obs::append_json_double(out, r.rss_per_series_bytes);
  out += ", \"retrains\": " + std::to_string(r.retrains);
  out += ", \"trained_series\": " + std::to_string(r.trained);
  out += ", \"classified_points\": " + std::to_string(r.classified_points);
  out += ", \"run_report\": " + r.report_json;
  out += "}";
  return out;
}

bool parse_scales(const std::string& text, std::vector<std::size_t>* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string part =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (part.empty()) return false;
    char* end = nullptr;
    const unsigned long v = std::strtoul(part.c_str(), &end, 10);
    if (end != part.c_str() + part.size() || v == 0) return false;
    out->push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);

  std::vector<std::size_t> scales = {1000, 10000, 50000};
  std::size_t points = 3 * kPointsPerDay;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scales") {
      if (!parse_scales(argv[i + 1], &scales)) {
        std::fprintf(stderr, "bench_fleet: bad --scales '%s'\n", argv[i + 1]);
        return 2;
      }
      ++i;
    } else if (flag == "--points") {
      points = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
      if (points == 0) {
        std::fprintf(stderr, "bench_fleet: bad --points '%s'\n", argv[i + 1]);
        return 2;
      }
      ++i;
    }
  }

  bench::print_header("fleet", "engine throughput at 1k/10k/50k series");
  std::printf("lite detector set, %zu-point days, %zu points/series, %zu threads\n",
              kPointsPerDay, points, util::global_thread_count());

  const std::size_t baseline_rss = resident_bytes();
  std::vector<ScaleResult> results;
  for (const std::size_t n : scales) {
    results.push_back(run_scale(n, points, baseline_rss));
    const ScaleResult& r = results.back();
    std::printf("  %6zu series: %s pts/s  %s us/pt  rss/series %s B  "
                "retrains %zu  trained %zu\n",
                r.series, bench::fmt(r.points_per_sec, 0).c_str(),
                bench::fmt(r.us_per_point, 2).c_str(),
                r.rss_per_series_bytes >= 0.0
                    ? bench::fmt(r.rss_per_series_bytes, 0).c_str()
                    : "-",
                r.retrains, r.trained);
  }

  std::vector<std::vector<std::string>> rows;
  for (const ScaleResult& r : results) {
    rows.push_back({std::to_string(r.series),
                    bench::fmt(r.points_per_sec, 0),
                    bench::fmt(r.us_per_point, 2),
                    r.rss_per_series_bytes >= 0.0
                        ? bench::fmt(r.rss_per_series_bytes, 0)
                        : "-",
                    std::to_string(r.retrains), std::to_string(r.trained),
                    std::to_string(r.classified_points)});
  }
  std::printf("%s", util::render_table({"series", "pts/s", "us/pt",
                                        "rss/series B", "retrains", "trained",
                                        "classified"},
                                       rows)
                        .c_str());

  if (!session.json_path().empty() && !results.empty()) {
    std::string scales_json = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) scales_json += ",\n  ";
      scales_json += render_scale_json(results[i]);
    }
    scales_json += "]";
    session.envelope().set_member("fleet_scales", scales_json);

    // The gate summary comes from the largest scale — the one whose
    // per-series costs matter in production.
    const ScaleResult& top = results.back();
    std::string summary = "{\"series\": " + std::to_string(top.series);
    summary += ", \"points_per_sec\": ";
    obs::append_json_double(summary, top.points_per_sec);
    summary += ", \"us_per_point\": ";
    obs::append_json_double(summary, top.us_per_point);
    summary += ", \"rss_per_series_bytes\": ";
    obs::append_json_double(summary, top.rss_per_series_bytes);
    summary += "}";
    session.envelope().set_member("fleet", summary);

    session.report().set_field("scales",
                               static_cast<std::uint64_t>(results.size()));
  }
  return 0;
}
