// §5.8: "Detection lag and training time."
//
// Paper numbers (Xeon E5-2420): feature extraction ~0.15 s/point over 133
// configurations, classification < 0.0001 s/point, offline training < 5
// minutes per round. Absolute numbers differ on this host; the claims to
// preserve are classification << extraction << data interval, and training
// far below the weekly retraining budget.
//
// `--json <file>` writes a machine-readable report (schema
// "opprentice.bench.metrics/1" with a "sec58" summary object; see
// DESIGN.md "Observability") whose `sec58.ordering_ok` asserts exactly
// that ordering, so CI can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "detectors/feature_extractor.hpp"
#include "ml/random_forest.hpp"
#include "obs/json_util.hpp"
#include "util/ascii_chart.hpp"
#include "util/thread_pool.hpp"

using namespace opprentice;

namespace {

const core::ExperimentData& experiment() {
  static const core::ExperimentData data =
      bench::prepare_kpi(datagen::pv_preset(datagen::scale_from_env()));
  return data;
}

void BM_FeatureExtractionPerPoint(benchmark::State& state) {
  const auto& data = experiment();
  const detectors::SeriesContext ctx{data.series.points_per_day(),
                                     data.series.points_per_week()};
  detectors::StreamingExtractor extractor(
      detectors::standard_configurations(ctx));
  // Warm the detectors on two weeks of history first.
  std::size_t i = 0;
  const std::size_t warm = 2 * data.points_per_week;
  for (; i < warm && i < data.series.size(); ++i) {
    extractor.feed(data.series[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.feed(data.series[i % data.series.size()]));
    ++i;
  }
  state.SetLabel("all 133 configurations");
}
BENCHMARK(BM_FeatureExtractionPerPoint)->Unit(benchmark::kMicrosecond);

void BM_ClassificationPerPoint(benchmark::State& state) {
  const auto& data = experiment();
  ml::RandomForest forest(bench::standard_forest());
  forest.train(
      data.dataset.slice(data.warmup, 8 * data.points_per_week));
  const auto row = data.dataset.row(9 * data.points_per_week);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.score(row));
  }
  state.SetLabel("random forest, 48 trees");
}
BENCHMARK(BM_ClassificationPerPoint)->Unit(benchmark::kMicrosecond);

// Thread-count sweep (arg = pool size). All parallel paths are
// bit-identical across the sweep (tests/parallel_equivalence_test.cpp);
// these benchmarks measure only how much wall clock the pool buys.
void BM_TrainingPerRound(benchmark::State& state) {
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  const auto& data = experiment();
  const ml::Dataset train =
      data.dataset.slice(data.warmup, 8 * data.points_per_week);
  for (auto _ : state) {
    ml::RandomForest forest(bench::standard_forest());
    forest.train(train);
    benchmark::DoNotOptimize(forest.tree_count());
  }
  state.SetLabel(std::to_string(train.num_rows()) + " rows x 133 features");
  util::set_global_threads(0);
}
BENCHMARK(BM_TrainingPerRound)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Batch extraction of all 133 configurations over the full series — the
// §5.8 "all the detectors can run in parallel" claim, realized by the
// pool (one task per configuration).
void BM_BatchExtraction(benchmark::State& state) {
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  const auto& data = experiment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detectors::extract_standard_features(data.series));
  }
  state.SetLabel(std::to_string(data.series.size()) +
                 " points x 133 configurations");
  util::set_global_threads(0);
}
BENCHMARK(BM_BatchExtraction)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_FiveFoldCthld(benchmark::State& state) {
  const auto& data = experiment();
  const ml::Dataset train =
      data.dataset.slice(data.warmup, 8 * data.points_per_week);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::five_fold_cthld(
        train, bench::kPaperPreference, bench::standard_forest()));
  }
  state.SetLabel("5 forests + 1000-candidate sweep");
}
BENCHMARK(BM_FiveFoldCthld)->Unit(benchmark::kMillisecond)->Iterations(1);

// Per-family extraction cost: where the 0.15 s/point budget goes. The
// paper notes "all the detectors can run in parallel", so the per-family
// figures are also the per-worker costs of a parallel deployment.
void BM_FamilyPerPoint(benchmark::State& state, const std::string& family) {
  const auto& data = experiment();
  const detectors::SeriesContext ctx{data.series.points_per_day(),
                                     data.series.points_per_week()};
  auto configs = detectors::DetectorRegistry::with_standard_families()
                     .instantiate_family(family, ctx);
  std::size_t i = 0;
  const std::size_t warm =
      std::min<std::size_t>(2 * data.points_per_week, data.series.size());
  for (; i < warm; ++i) {
    for (auto& d : configs) d->feed(data.series[i]);
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (auto& d : configs) {
      sum += d->feed(data.series[i % data.series.size()]);
    }
    benchmark::DoNotOptimize(sum);
    ++i;
  }
  state.SetLabel(std::to_string(configs.size()) + " configurations");
}

const int kFamilyBenchmarks = [] {
  for (const char* family :
       {"simple_threshold", "diff", "simple_ma", "weighted_ma", "ma_of_diff",
        "ewma", "tsd", "tsd_mad", "historical_average", "historical_mad",
        "holt_winters", "svd", "wavelet", "arima"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Family/") + family).c_str(),
        [family](benchmark::State& state) {
          BM_FamilyPerPoint(state, family);
        })
        ->Unit(benchmark::kMicrosecond);
  }
  return 0;
}();

// Keeps console output and captures per-iteration runs for the --json
// report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    // Keep per-iteration runs only (aggregates reappear under
    // --benchmark_repetitions); erroneous runs report zero time and are
    // filtered by the `> 0` guards below. The field reporting errors is
    // not used because its name changed across benchmark versions.
    for (const auto& run : report) {
      if (run.run_type == Run::RT_Iteration) runs_.push_back(run);
    }
    ConsoleReporter::ReportRuns(report);
  }

  // Seconds per iteration of the last run whose name matches `name`,
  // ignoring trailing decorations benchmark appends after a '/' (e.g.
  // Iterations(1) turns ".../threads:1" into ".../threads:1/iterations:1");
  // negative when absent.
  double seconds_per_iter(const std::string& name) const {
    double result = -1.0;
    for (const auto& run : runs_) {
      const std::string run_name = run.run_name.str();
      const bool matches =
          run_name == name ||
          (run_name.size() > name.size() &&
           run_name.compare(0, name.size(), name) == 0 &&
           run_name[name.size()] == '/');
      if (matches && run.iterations > 0) {
        result = run.real_accumulated_time /
                 static_cast<double>(run.iterations);
      }
    }
    return result;
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

// Renders the "benchmarks" array and the "sec58" summary object with the
// §5.8 ordering claims evaluated on this host's numbers.
std::string render_report(const CaptureReporter& reporter) {
  std::string out = "\"benchmarks\": [";
  bool first = true;
  for (const auto& run : reporter.runs()) {
    if (!first) out += ',';
    first = false;
    out += "\n  {\"name\": ";
    obs::append_json_string(out, run.run_name.str());
    out += ", \"iterations\": " + std::to_string(run.iterations);
    out += ", \"real_us_per_iter\": ";
    obs::append_json_double(
        out, 1e6 * run.real_accumulated_time /
                 static_cast<double>(run.iterations));
    out += ", \"cpu_us_per_iter\": ";
    obs::append_json_double(
        out, 1e6 * run.cpu_accumulated_time /
                 static_cast<double>(run.iterations));
    if (!run.report_label.empty()) {
      out += ", \"label\": ";
      obs::append_json_string(out, run.report_label);
    }
    out += '}';
  }
  out += "\n],\n";

  const double extraction_s =
      reporter.seconds_per_iter("BM_FeatureExtractionPerPoint");
  const double classification_s =
      reporter.seconds_per_iter("BM_ClassificationPerPoint");
  // Serial baseline (threads:1) carries the canonical §5.8 numbers; the
  // other sweep points feed speedup_vs_serial below.
  const double training_s =
      reporter.seconds_per_iter("BM_TrainingPerRound/threads:1");
  const double five_fold_s = reporter.seconds_per_iter("BM_FiveFoldCthld");
  const double interval_s =
      static_cast<double>(experiment().series.interval_seconds());

  // §5.8 claims, evaluated when both sides were measured (a filtered run
  // leaves some fields at null and ordering_ok at false).
  const bool measured = extraction_s > 0.0 && classification_s > 0.0;
  const bool classification_lt_extraction =
      measured && classification_s < extraction_s;
  const bool extraction_lt_interval =
      extraction_s > 0.0 && extraction_s < interval_s;
  const bool training_lt_5min = training_s > 0.0 && training_s < 300.0;
  // cThld selection (5-fold cross-validation, §4.3.3) runs once per week
  // alongside training; both must fit the same offline budget.
  const bool five_fold_lt_5min = five_fold_s > 0.0 && five_fold_s < 300.0;

  auto us_or_null = [](std::string& doc, double seconds) {
    obs::append_json_double(doc, seconds > 0.0 ? seconds * 1e6 : -1.0);
  };
  out += "\"sec58\": {\n";
  out += "  \"data_interval_s\": ";
  obs::append_json_double(out, interval_s);
  out += ",\n  \"extraction_us_per_point\": ";
  us_or_null(out, extraction_s);
  out += ",\n  \"classification_us_per_point\": ";
  us_or_null(out, classification_s);
  out += ",\n  \"training_ms_per_round\": ";
  obs::append_json_double(out, training_s > 0.0 ? training_s * 1e3 : -1.0);
  out += ",\n  \"five_fold_cthld_ms\": ";
  obs::append_json_double(out, five_fold_s > 0.0 ? five_fold_s * 1e3 : -1.0);
  out += ",\n  \"classification_lt_extraction\": ";
  out += classification_lt_extraction ? "true" : "false";
  out += ",\n  \"extraction_lt_interval\": ";
  out += extraction_lt_interval ? "true" : "false";
  out += ",\n  \"training_lt_5min\": ";
  out += training_lt_5min ? "true" : "false";
  out += ",\n  \"five_fold_lt_5min\": ";
  out += five_fold_lt_5min ? "true" : "false";
  out += ",\n  \"ordering_ok\": ";
  out += (classification_lt_extraction && extraction_lt_interval) ? "true"
                                                                  : "false";
  // The weekly offline budget (§5.8: "less than 5 minutes"): one training
  // round plus one 5-fold cThld selection.
  out += ",\n  \"weekly_budget_ok\": ";
  out += (training_lt_5min && five_fold_lt_5min) ? "true" : "false";

  // Thread-count sweep: wall-clock speedup of the pooled paths over their
  // own threads:1 run. `cpu_starved` is true when the host has fewer
  // cores than the widest sweep point — there the t2/t4 rows contend for
  // the same cores and speedup_vs_serial < 1 is expected, not a
  // regression. The determinism contract guarantees the outputs are
  // identical either way.
  const unsigned hw = std::thread::hardware_concurrency();
  out += ",\n  \"threads\": {\"hardware_concurrency\": " +
         std::to_string(hw) +
         ", \"effective_threads\": " +
         std::to_string(util::global_thread_count()) +
         ", \"sweep\": [1, 2, 4], \"cpu_starved\": ";
  out += hw < 4 ? "true" : "false";
  out += "}";
  out += ",\n  \"speedup_vs_serial\": {";
  bool first_path = true;
  for (const auto& [key, base_name] :
       {std::pair<const char*, const char*>{"extraction",
                                            "BM_BatchExtraction"},
        std::pair<const char*, const char*>{"training",
                                            "BM_TrainingPerRound"}}) {
    const double serial_s = reporter.seconds_per_iter(
        std::string(base_name) + "/threads:1");
    if (!first_path) out += ", ";
    first_path = false;
    out += '"';
    out += key;
    out += "\": {";
    bool first_count = true;
    for (int t : {2, 4}) {
      const double t_s = reporter.seconds_per_iter(
          std::string(base_name) + "/threads:" + std::to_string(t));
      if (!first_count) out += ", ";
      first_count = false;
      out += "\"t" + std::to_string(t) + "\": ";
      obs::append_json_double(
          out, serial_s > 0.0 && t_s > 0.0 ? serial_s / t_s : -1.0);
    }
    out += '}';
  }
  out += "}";
  out += "\n}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Where the extraction budget actually goes, per configuration — only
  // populated when --json enabled detailed timing.
  const auto cost_rows = obs::CostAttribution::instance().snapshot();
  if (!cost_rows.empty()) {
    std::vector<std::vector<std::string>> cells;
    for (std::size_t i = 0; i < cost_rows.size() && i < 10; ++i) {
      const auto& r = cost_rows[i];
      cells.push_back({r.configuration, std::to_string(r.count),
                       util::format_double(r.mean_us, 2),
                       util::format_double(100.0 * r.share, 1) + "%"});
    }
    std::printf("\ntop %zu most expensive configurations (of %zu):\n%s",
                cells.size(), cost_rows.size(),
                util::render_table(
                    {"configuration", "points", "mean_us", "share"}, cells)
                    .c_str());
  }

  if (!session.json_path().empty()) {
    session.set_extra_json(render_report(reporter));
    if (!reporter.runs().empty() &&
        reporter.seconds_per_iter("BM_FeatureExtractionPerPoint") > 0.0 &&
        reporter.seconds_per_iter("BM_ClassificationPerPoint") > 0.0) {
      std::printf("sec58 --json: ordering summary written\n");
    }
  }
  return 0;
}
