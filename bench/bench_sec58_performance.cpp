// §5.8: "Detection lag and training time."
//
// Paper numbers (Xeon E5-2420): feature extraction ~0.15 s/point over 133
// configurations, classification < 0.0001 s/point, offline training < 5
// minutes per round. Absolute numbers differ on this host; the claims to
// preserve are classification << extraction << data interval, and training
// far below the weekly retraining budget.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "detectors/feature_extractor.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

namespace {

const core::ExperimentData& experiment() {
  static const core::ExperimentData data =
      bench::prepare_kpi(datagen::pv_preset(datagen::scale_from_env()));
  return data;
}

void BM_FeatureExtractionPerPoint(benchmark::State& state) {
  const auto& data = experiment();
  const detectors::SeriesContext ctx{data.series.points_per_day(),
                                     data.series.points_per_week()};
  detectors::StreamingExtractor extractor(
      detectors::standard_configurations(ctx));
  // Warm the detectors on two weeks of history first.
  std::size_t i = 0;
  const std::size_t warm = 2 * data.points_per_week;
  for (; i < warm && i < data.series.size(); ++i) {
    extractor.feed(data.series[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.feed(data.series[i % data.series.size()]));
    ++i;
  }
  state.SetLabel("all 133 configurations");
}
BENCHMARK(BM_FeatureExtractionPerPoint)->Unit(benchmark::kMicrosecond);

void BM_ClassificationPerPoint(benchmark::State& state) {
  const auto& data = experiment();
  ml::RandomForest forest(bench::standard_forest());
  forest.train(
      data.dataset.slice(data.warmup, 8 * data.points_per_week));
  const auto row = data.dataset.row(9 * data.points_per_week);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.score(row));
  }
  state.SetLabel("random forest, 48 trees");
}
BENCHMARK(BM_ClassificationPerPoint)->Unit(benchmark::kMicrosecond);

void BM_TrainingPerRound(benchmark::State& state) {
  const auto& data = experiment();
  const ml::Dataset train =
      data.dataset.slice(data.warmup, 8 * data.points_per_week);
  for (auto _ : state) {
    ml::RandomForest forest(bench::standard_forest());
    forest.train(train);
    benchmark::DoNotOptimize(forest.tree_count());
  }
  state.SetLabel(std::to_string(train.num_rows()) + " rows x 133 features");
}
BENCHMARK(BM_TrainingPerRound)->Unit(benchmark::kMillisecond);

void BM_FiveFoldCthld(benchmark::State& state) {
  const auto& data = experiment();
  const ml::Dataset train =
      data.dataset.slice(data.warmup, 8 * data.points_per_week);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::five_fold_cthld(
        train, bench::kPaperPreference, bench::standard_forest()));
  }
  state.SetLabel("5 forests + 1000-candidate sweep");
}
BENCHMARK(BM_FiveFoldCthld)->Unit(benchmark::kMillisecond)->Iterations(1);

// Per-family extraction cost: where the 0.15 s/point budget goes. The
// paper notes "all the detectors can run in parallel", so the per-family
// figures are also the per-worker costs of a parallel deployment.
void BM_FamilyPerPoint(benchmark::State& state, const std::string& family) {
  const auto& data = experiment();
  const detectors::SeriesContext ctx{data.series.points_per_day(),
                                     data.series.points_per_week()};
  auto configs = detectors::DetectorRegistry::with_standard_families()
                     .instantiate_family(family, ctx);
  std::size_t i = 0;
  const std::size_t warm =
      std::min<std::size_t>(2 * data.points_per_week, data.series.size());
  for (; i < warm; ++i) {
    for (auto& d : configs) d->feed(data.series[i]);
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (auto& d : configs) {
      sum += d->feed(data.series[i % data.series.size()]);
    }
    benchmark::DoNotOptimize(sum);
    ++i;
  }
  state.SetLabel(std::to_string(configs.size()) + " configurations");
}

const int kFamilyBenchmarks = [] {
  for (const char* family :
       {"simple_threshold", "diff", "simple_ma", "weighted_ma", "ma_of_diff",
        "ewma", "tsd", "tsd_mad", "historical_average", "historical_mad",
        "holt_winters", "svd", "wavelet", "arima"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Family/") + family).c_str(),
        [family](benchmark::State& state) {
          BM_FamilyPerPoint(state, family);
        })
        ->Unit(benchmark::kMicrosecond);
  }
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
