// Table 1: "Three kinds of KPI data from the search engine."
//
// Paper values:   PV: 1-min, 25 weeks, Strong seasonality, Cv 0.48
//                #SR: 1-min, 19 weeks, Weak seasonality,   Cv 2.1
//                SRT: 60-min, 16 weeks, Moderate,          Cv 0.07
// plus the §5.1 anomaly ratios: 7.8% / 2.8% / 7.4%.
#include <cstdio>

#include "bench_common.hpp"
#include "timeseries/series_stats.hpp"
#include "util/ascii_chart.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Table 1", "KPI data characteristics");

  std::vector<std::vector<std::string>> rows;
  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
    const auto prof = ts::profile(kpi.series);
    const double anomaly_ratio =
        static_cast<double>(kpi.ground_truth.anomalous_points()) /
        static_cast<double>(kpi.series.size());
    rows.push_back({kpi.series.name(),
                    std::to_string(prof.interval_seconds / 60) + " min",
                    bench::fmt(prof.length_weeks, 0) + " weeks",
                    ts::seasonality_class(prof.daily_seasonality) + " (" +
                        bench::fmt(prof.daily_seasonality, 2) + ")",
                    bench::fmt(prof.coefficient_of_variation, 2),
                    bench::fmt(100.0 * anomaly_ratio, 1) + "%"});
  }
  std::printf("%s", util::render_table({"KPI", "Interval", "Length",
                                        "Seasonality", "Cv", "Anomalies"},
                                       rows)
                        .c_str());
  std::printf(
      "\nPaper (Table 1):      PV: 1 min, 25 weeks, Strong, Cv 0.48, 7.8%%\n"
      "                     #SR: 1 min, 19 weeks, Weak,   Cv 2.1,  2.8%%\n"
      "                     SRT: 60 min, 16 weeks, Moderate, Cv 0.07, 7.4%%\n"
      "(default scale uses 10-min bins for the minute-level KPIs; set\n"
      " OPPRENTICE_SCALE=paper for 1-min bins)\n");
  return 0;
}
