#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/thread_pool.hpp"

namespace opprentice::bench {
namespace {

std::string cache_dir() {
  if (const char* env = std::getenv("OPPRENTICE_NO_CACHE");
      env != nullptr && std::string(env) == "1") {
    return {};
  }
  if (const char* env = std::getenv("OPPRENTICE_CACHE_DIR")) return env;
  return "bench-cache";
}

std::string scale_tag() {
  return datagen::scale_from_env() == datagen::Scale::kPaper ? "paper"
                                                             : "small";
}

// Cheap fingerprint of the experiment data so cache entries become stale
// the moment the generator or labeling changes.
std::uint64_t fingerprint(const core::ExperimentData& data) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(data.dataset.num_rows());
  mix(data.warmup);
  const auto col = data.dataset.column(0);
  for (std::size_t i = 0; i < col.size(); i += 97) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &col[i], sizeof(bits));
    mix(bits);
  }
  const auto& labels = data.dataset.labels();
  for (std::size_t i = 0; i < labels.size(); i += 13) mix(labels[i]);
  return h;
}

std::string run_cache_path(const std::string& kpi_name,
                           const core::ExperimentData& data,
                           const core::DriverOptions& options,
                           const std::string& kind) {
  const std::string dir = cache_dir();
  if (dir.empty()) return {};
  std::ostringstream name;
  name << dir << '/' << kind << '-' << kpi_name << '-' << scale_tag() << "-t"
       << options.forest.num_trees << "-s" << options.forest.seed << "-w"
       << options.initial_weeks << "-h" << std::hex << fingerprint(data)
       << ".txt";
  std::string path = name.str();
  // '#SR' is not filesystem-friendly.
  for (char& c : path) {
    if (c == '#') c = 'n';
  }
  return path;
}

bool load_run(const std::string& path, core::IncrementalRunResult* run) {
  std::ifstream in(path);
  if (!in) return false;
  std::size_t n = 0, weeks = 0;
  if (!(in >> n >> run->test_start >> weeks)) return false;
  run->scores.resize(n);
  for (auto& s : run->scores) {
    if (!(in >> s)) return false;
  }
  run->weeks.resize(weeks);
  for (auto& w : run->weeks) {
    if (!(in >> w.test_begin >> w.test_end >> w.best.cthld >> w.best.recall >>
          w.best.precision)) {
      return false;
    }
  }
  return true;
}

void save_run(const std::string& path,
              const core::IncrementalRunResult& run) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out.precision(17);
  out << run.scores.size() << ' ' << run.test_start << ' '
      << run.weeks.size() << '\n';
  for (double s : run.scores) out << s << ' ';
  out << '\n';
  for (const auto& w : run.weeks) {
    out << w.test_begin << ' ' << w.test_end << ' ' << w.best.cthld << ' '
        << w.best.recall << ' ' << w.best.precision << '\n';
  }
}

// Removes argv[i] and argv[i+1], updating argc.
void strip_two(int& argc, char** argv, int i) {
  for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
  argc -= 2;
}

}  // namespace

Session::Session(int& argc, char** argv) : report_("bench", "") {
  binary_ = argc > 0 ? argv[0] : "bench";
  // Keep only the basename for the report.
  if (const auto slash = binary_.find_last_of('/');
      slash != std::string::npos) {
    binary_ = binary_.substr(slash + 1);
  }
  for (int i = 1; i + 1 < argc;) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json_path_ = argv[i + 1];
      strip_two(argc, argv, i);
    } else if (flag == "--trace") {
      trace_path_ = argv[i + 1];
      strip_two(argc, argv, i);
    } else if (flag == "--threads") {
      util::set_global_threads(
          util::resolve_thread_count(argv[i + 1]));
      strip_two(argc, argv, i);
    } else {
      ++i;
    }
  }
  if (!json_path_.empty()) obs::set_detailed_timing(true);
  if (!trace_path_.empty()) obs::enable_tracing();
  // Rebuild the report now that --threads (if any) was applied; record
  // the effective pool degree, not just the configured one.
  report_ = obs::RunReport("bench", binary_);
  report_.set_threads(util::global_thread_count());
  report_.set_seed("forest", standard_forest().seed);
}

Session::~Session() {
  if (!json_path_.empty()) {
    envelope_.set_member("run_report", report_.to_json());
    if (!envelope_.write(json_path_, binary_)) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n",
                   json_path_.c_str());
    }
  }
  if (!trace_path_.empty() && !obs::write_trace(trace_path_)) {
    std::fprintf(stderr, "bench: cannot write --trace file %s\n",
                 trace_path_.c_str());
  }
}

void JsonEnvelope::set_member(std::string_view key, std::string json) {
  for (auto& [existing, value] : members_) {
    if (existing == key) {
      value = std::move(json);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(json));
}

bool JsonEnvelope::has_member(std::string_view key) const {
  for (const auto& [existing, value] : members_) {
    if (existing == key) return true;
  }
  return false;
}

std::string JsonEnvelope::render(const std::string& binary) const {
  std::string out = "{\n\"schema\": \"opprentice.bench.metrics/1\",\n";
  out += "\"binary\": \"" + binary + "\",\n";
  out += "\"scale\": \"" + scale_tag() + "\",\n";
  if (!raw_chunk_.empty()) out += raw_chunk_ + ",\n";
  for (const auto& [key, value] : members_) {
    if (value.empty()) continue;
    out += "\"" + key + "\": " + value + ",\n";
  }
  out += "\"metrics\": " + obs::Registry::instance().json() + "}\n";
  return out;
}

bool JsonEnvelope::write(const std::string& path,
                         const std::string& binary) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render(binary);
  return static_cast<bool>(out);
}

bool write_bench_json(const std::string& path, const std::string& binary,
                      const std::string& extra_json,
                      const std::string& run_report_json) {
  JsonEnvelope envelope;
  envelope.set_raw_chunk(extra_json);
  if (!run_report_json.empty()) {
    envelope.set_member("run_report", run_report_json);
  }
  return envelope.write(path, binary);
}

ml::ForestOptions standard_forest() {
  ml::ForestOptions f;
  f.num_trees = 48;
  f.seed = 42;
  return f;
}

core::DriverOptions standard_driver() {
  core::DriverOptions d;
  d.initial_weeks = 8;
  d.forest = standard_forest();
  d.preference = kPaperPreference;
  return d;
}

core::ExperimentData prepare_kpi(const datagen::KpiPreset& preset) {
  const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
  return core::prepare_experiment(kpi);
}

std::vector<core::ExperimentData> prepare_all_kpis() {
  std::vector<core::ExperimentData> out;
  for (const auto& preset : datagen::all_presets(datagen::scale_from_env())) {
    out.push_back(prepare_kpi(preset));
  }
  return out;
}

core::IncrementalRunResult cached_weekly_incremental(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name) {
  const std::string path = run_cache_path(kpi_name, data, options, "incremental");
  core::IncrementalRunResult run;
  if (!path.empty() && load_run(path, &run) &&
      run.scores.size() == data.dataset.num_rows()) {
    obs::counter("opprentice.bench.cache.hits").add();
    return run;
  }
  obs::counter("opprentice.bench.cache.misses").add();
  obs::ScopedSpan span("bench.cache_fill", "bench");
  span.arg("rows", data.dataset.num_rows());
  run = core::run_weekly_incremental(data.dataset, data.points_per_week,
                                     data.warmup, options);
  if (!path.empty()) save_run(path, run);
  return run;
}

std::vector<double> cached_five_fold_cthlds(
    const core::ExperimentData& data, const core::DriverOptions& options,
    const std::string& kpi_name) {
  const std::string path = run_cache_path(kpi_name, data, options, "fivefold");
  if (!path.empty()) {
    std::ifstream in(path);
    if (in) {
      std::size_t n = 0;
      if (in >> n) {
        std::vector<double> cthlds(n);
        bool ok = true;
        for (auto& c : cthlds) ok = ok && static_cast<bool>(in >> c);
        if (ok) {
          obs::counter("opprentice.bench.cache.hits").add();
          return cthlds;
        }
      }
    }
  }
  obs::counter("opprentice.bench.cache.misses").add();
  obs::ScopedSpan span("bench.cache_fill", "bench");
  const auto cthlds = core::five_fold_weekly_cthlds(
      data.dataset, data.points_per_week, data.warmup, options);
  if (!path.empty()) {
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    std::ofstream out(path);
    out.precision(17);
    out << cthlds.size() << '\n';
    for (double c : cthlds) out << c << ' ';
    out << '\n';
  }
  return cthlds;
}

std::vector<double> test_scores(const core::IncrementalRunResult& run) {
  return std::vector<double>(
      run.scores.begin() + static_cast<std::ptrdiff_t>(run.test_start),
      run.scores.end());
}

std::vector<std::uint8_t> test_labels(const core::ExperimentData& data,
                                      const core::IncrementalRunResult& run) {
  const auto& labels = data.dataset.labels();
  return std::vector<std::uint8_t>(
      labels.begin() + static_cast<std::ptrdiff_t>(run.test_start),
      labels.end());
}

void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("Opprentice reproduction (synthetic KPIs; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

std::string fmt(double v, int precision) {
  return util::format_double(v, precision);
}

}  // namespace opprentice::bench
