// Fig 12: offline evaluation of the four cThld-selection metrics (default
// cThld, F-Score, SD(1,1), PC-Score) under three operator preferences:
// moderate (r>=0.66, p>=0.66), sensitive-to-precision (r>=0.6, p>=0.8),
// and sensitive-to-recall (r>=0.8, p>=0.6).
//
// For each test week we pick a cThld with each metric on the week's own PR
// curve (the oracle setting of §5.5) and report the percentage of weeks
// whose (recall, precision) lands inside the preference box, at the
// original preference and with the box scaled up (preference lowered).
#include <cstdio>

#include "bench_common.hpp"
#include "eval/threshold_pickers.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header(
      "Fig 12", "cThld metrics x operator preferences (offline/oracle)");

  struct Pref {
    const char* name;
    eval::AccuracyPreference box;
  };
  const Pref prefs[] = {
      {"moderate (r>=.66,p>=.66)", {0.66, 0.66}},
      {"sensitive-to-precision (r>=.6,p>=.8)", {0.6, 0.8}},
      {"sensitive-to-recall (r>=.8,p>=.6)", {0.8, 0.6}},
  };
  const eval::ThresholdMethod methods[] = {
      eval::ThresholdMethod::kPcScore, eval::ThresholdMethod::kDefault,
      eval::ThresholdMethod::kFScore, eval::ThresholdMethod::kSd11};
  const double scale_ratios[] = {1.0, 1.2, 1.4, 1.6, 1.8, 2.0};

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const auto run = bench::cached_weekly_incremental(
        data, bench::standard_driver(), preset.model.name);

    // Per-week PR curves.
    std::vector<eval::PrCurve> curves;
    for (const auto& week : run.weeks) {
      const std::vector<double> scores(
          run.scores.begin() + static_cast<std::ptrdiff_t>(week.test_begin),
          run.scores.begin() + static_cast<std::ptrdiff_t>(week.test_end));
      const std::vector<std::uint8_t> labels(
          data.dataset.labels().begin() +
              static_cast<std::ptrdiff_t>(week.test_begin),
          data.dataset.labels().begin() +
              static_cast<std::ptrdiff_t>(week.test_end));
      curves.emplace_back(scores, labels);
    }

    std::printf("\n--- KPI: %s (%zu test weeks; %% of weeks inside the box) ---\n",
                preset.model.name.c_str(), curves.size());
    for (const auto& pref : prefs) {
      std::printf("\npreference: %s\n", pref.name);
      std::printf("  %-16s", "scale ratio:");
      for (double r : scale_ratios) std::printf(" %5.1f", r);
      std::printf("\n");
      for (const auto method : methods) {
        std::printf("  %-16s", eval::to_string(method));
        for (double ratio : scale_ratios) {
          const auto scaled = pref.box.scaled(ratio);
          std::size_t in_box = 0;
          for (const auto& curve : curves) {
            // The metric picks at the ORIGINAL preference; the scaled box
            // only relaxes the success test (as in the figure).
            const auto choice =
                eval::pick_threshold(curve, method, pref.box);
            in_box += scaled.satisfied_by(choice.recall, choice.precision);
          }
          std::printf(" %4.0f%%", 100.0 * static_cast<double>(in_box) /
                                      static_cast<double>(curves.size()));
        }
        std::printf("\n");
      }
    }
  }

  std::printf(
      "\nPaper (Fig 12): only the PC-Score adapts its operating point to\n"
      "the preference, so it always achieves the most points inside the box\n"
      "at the original preference and as the box scales up.\n");
  return 0;
}
