// Fig 11: "AUCPR of different training sets" — I4 (incremental: all
// historical data), R4 (recent 8 weeks), F4 (first 8 weeks), each tested
// on 4-week moving windows.
//
// Expected shape: I4 >= R4, F4 in most windows (it accumulates anomaly
// kinds); on a KPI with simple, stable anomalies the three converge
// (the paper's #SR).
#include <cstdio>

#include "bench_common.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 11", "AUCPR of training-set strategies I4/R4/F4");

  const core::TrainingStrategy strategies[] = {core::TrainingStrategy::kF4,
                                               core::TrainingStrategy::kR4,
                                               core::TrainingStrategy::kI4};

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);

    std::printf("\n--- KPI: %s (AUCPR per 4-week moving test set) ---\n",
                preset.model.name.c_str());
    std::printf("window:  ");
    for (std::size_t w = 0;; ++w) {
      if (!core::strategy_windows(core::TrainingStrategy::kI4, w,
                                  data.dataset.num_rows(),
                                  data.points_per_week, 8)) {
        break;
      }
      std::printf(" %4zu", w + 1);
    }
    std::printf("\n");

    double totals[3] = {0, 0, 0};
    std::size_t windows = 0;
    for (std::size_t s = 0; s < 3; ++s) {
      std::printf("%-8s:", core::to_string(strategies[s]));
      for (std::size_t w = 0;; ++w) {
        const auto win = core::strategy_windows(
            strategies[s], w, data.dataset.num_rows(), data.points_per_week,
            8);
        if (!win) break;
        const auto scores = core::run_strategy_window(
            data.dataset, data.warmup, *win, bench::standard_forest());
        const ml::Dataset test =
            data.dataset.slice(win->test_begin, win->test_end);
        const double aucpr =
            eval::PrCurve(scores, test.labels()).aucpr();
        totals[s] += aucpr;
        if (s == 0) ++windows;
        std::printf(" %4.2f", aucpr);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    const double window_count = static_cast<double>(windows);
    std::printf("mean AUCPR:  F4=%s  R4=%s  I4=%s\n",
                bench::fmt(totals[0] / window_count).c_str(),
                bench::fmt(totals[1] / window_count).c_str(),
                bench::fmt(totals[2] / window_count).c_str());
  }

  std::printf(
      "\nPaper (Fig 11): I4 (incremental retraining) outperforms R4 and F4\n"
      "in most cases; on #SR the three are similar because its anomaly\n"
      "types are simple and stable.\n");
  return 0;
}
