// Fig 1: "1-week examples of three major KPIs of the search engine. The
// circles mark some obvious (not all) anomalies."
//
// We render one test-region week of each synthetic KPI as an ASCII line
// chart and list the injected anomaly windows inside that week.
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Fig 1", "1-week examples of the three KPIs");

  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
    const std::size_t week = kpi.series.points_per_week();
    // Week 9 (the first detection week of the evaluation).
    const std::size_t begin = 8 * week;
    const auto slice = kpi.series.slice(begin, begin + week);

    util::ChartOptions opt;
    opt.width = 76;
    opt.height = 12;
    opt.title = "KPI: " + kpi.series.name() + " (week 9)";
    std::printf("\n%s", util::render_line_chart(slice.values(), opt).c_str());

    std::printf("anomaly windows in this week (ground truth):\n");
    std::size_t count = 0;
    for (const auto& a : kpi.anomalies) {
      if (a.window.begin >= begin && a.window.begin < begin + week) {
        std::printf("  points [%5zu, %5zu)  %-11s magnitude %.2f\n",
                    a.window.begin - begin, a.window.end - begin,
                    datagen::to_string(a.kind), a.magnitude);
        ++count;
      }
    }
    if (count == 0) std::printf("  (none this week)\n");
  }
  return 0;
}
