// Ablation (§4.4.1): "random forests have only two parameters and are not
// very sensitive to them". Sweeps the forest's parameters on the PV KPI
// (single 8-week-train split) and reports AUCPR — it should plateau
// quickly in the number of trees and stay flat across mtry and bootstrap
// fraction.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/random_forest.hpp"

using namespace opprentice;

namespace {

double aucpr_with(const core::ExperimentData& data,
                  const ml::ForestOptions& options) {
  const std::size_t split = 8 * data.points_per_week;
  const ml::Dataset train = data.dataset.slice(data.warmup, split);
  const ml::Dataset test =
      data.dataset.slice(split, data.dataset.num_rows());
  ml::RandomForest forest(options);
  forest.train(train);
  return eval::PrCurve(forest.score_all(test), test.labels()).aucpr();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Ablation",
                      "random-forest parameter sensitivity (PV, AUCPR)");

  const auto data =
      bench::prepare_kpi(datagen::pv_preset(datagen::scale_from_env()));

  std::printf("\nnumber of trees (mtry=sqrt, bootstrap=1.0):\n");
  for (std::size_t trees : {4u, 8u, 16u, 32u, 48u, 96u}) {
    ml::ForestOptions o = bench::standard_forest();
    o.num_trees = trees;
    std::printf("  trees=%-3zu AUCPR=%s\n", static_cast<std::size_t>(trees),
                bench::fmt(aucpr_with(data, o)).c_str());
    std::fflush(stdout);
  }

  std::printf("\nmtry — features tried per node (48 trees):\n");
  for (std::size_t mtry : {2u, 6u, 11u, 24u, 64u, 133u}) {
    ml::ForestOptions o = bench::standard_forest();
    o.mtry = mtry;
    std::printf("  mtry=%-4zu AUCPR=%s%s\n", static_cast<std::size_t>(mtry),
                bench::fmt(aucpr_with(data, o)).c_str(),
                mtry == 11 ? "   (sqrt(133), the default)" : "");
    std::fflush(stdout);
  }

  std::printf("\nbootstrap sample fraction (48 trees, mtry=sqrt):\n");
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    ml::ForestOptions o = bench::standard_forest();
    o.sample_fraction = frac;
    std::printf("  fraction=%.2f AUCPR=%s\n", frac,
                bench::fmt(aucpr_with(data, o)).c_str());
    std::fflush(stdout);
  }

  std::printf("\nmax tree depth (48 trees; paper grows trees fully):\n");
  for (std::size_t depth : {4u, 8u, 16u, 64u}) {
    ml::ForestOptions o = bench::standard_forest();
    o.max_depth = depth;
    std::printf("  depth<=%-3zu AUCPR=%s\n",
                static_cast<std::size_t>(depth),
                bench::fmt(aucpr_with(data, o)).c_str());
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected: AUCPR plateaus by ~16-32 trees and is nearly flat in\n"
      "mtry / bootstrap fraction / depth — the §4.4.1 rationale for\n"
      "choosing random forests as the 'less-parametric' learner.\n");
  return 0;
}
