// Table 4: "Maximum precision when recall >= 0.66."
//
// For each KPI: the random forest, the two static combination methods, and
// the top-3 basic-detector configurations (by AUCPR), reporting the best
// precision achievable on the PR curve subject to the operators' recall
// floor. Paper: the forest exceeds 0.8 on all three KPIs; the combiners
// stay around 0.1-0.3.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "combiners/static_combiners.hpp"
#include "util/ascii_chart.hpp"

using namespace opprentice;

int main(int argc, char** argv) {
  bench::Session session(argc, argv);
  bench::print_header("Table 4", "maximum precision when recall >= 0.66");

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"Detection approach", "PV", "#SR", "SRT"};
  std::vector<std::vector<std::string>> cells(
      6, std::vector<std::string>(4, ""));
  cells[0][0] = "Random forest";
  cells[1][0] = "Normalization scheme";
  cells[2][0] = "Majority-vote";
  cells[3][0] = "1st basic detector";
  cells[4][0] = "2nd basic detector";
  cells[5][0] = "3rd basic detector";

  std::size_t col = 1;
  std::vector<std::string> top_names;
  for (const auto& preset :
       datagen::all_presets(datagen::scale_from_env())) {
    const auto data = bench::prepare_kpi(preset);
    const auto run = bench::cached_weekly_incremental(
        data, bench::standard_driver(), preset.model.name);
    const auto labels = bench::test_labels(data, run);

    const eval::PrCurve rf_curve(bench::test_scores(run), labels);
    cells[0][col] = bench::fmt(rf_curve.max_precision_at_recall(0.66), 2);

    const ml::Dataset train = data.dataset.slice(data.warmup, run.test_start);
    const ml::Dataset test =
        data.dataset.slice(run.test_start, data.dataset.num_rows());
    combiners::NormalizationScheme norm;
    norm.fit(train);
    combiners::MajorityVote vote;
    vote.fit(train);
    cells[1][col] = bench::fmt(
        eval::PrCurve(norm.score_all(test), labels).max_precision_at_recall(
            0.66),
        2);
    cells[2][col] = bench::fmt(
        eval::PrCurve(vote.score_all(test), labels).max_precision_at_recall(
            0.66),
        2);

    // Top-3 basic configurations by AUCPR.
    struct Cfg {
      std::string name;
      double aucpr;
      double precision;
    };
    std::vector<Cfg> cfgs;
    for (std::size_t f = 0; f < data.dataset.num_features(); ++f) {
      const auto c = data.dataset.column(f);
      const std::vector<double> sev(
          c.begin() + static_cast<std::ptrdiff_t>(run.test_start), c.end());
      const eval::PrCurve curve(sev, labels);
      cfgs.push_back({data.dataset.feature_names()[f], curve.aucpr(),
                      curve.max_precision_at_recall(0.66)});
    }
    std::sort(cfgs.begin(), cfgs.end(),
              [](const Cfg& a, const Cfg& b) { return a.aucpr > b.aucpr; });
    for (std::size_t k = 0; k < 3; ++k) {
      cells[3 + k][col] = bench::fmt(cfgs[k].precision, 2);
      top_names.push_back(preset.model.name + " #" + std::to_string(k + 1) +
                          ": " + cfgs[k].name);
    }
    ++col;
  }

  std::printf("%s", util::render_table(header, cells).c_str());
  std::printf("\ntop-3 basic configurations per KPI (by AUCPR):\n");
  for (const auto& n : top_names) std::printf("  %s\n", n.c_str());
  std::printf(
      "\nPaper (Table 4): random forest 0.83 / 0.87 / 0.89; normalization\n"
      "scheme 0.11 / 0.30 / 0.21; majority-vote 0.12 / 0.19 / 0.32; the\n"
      "best basic detector reaches 0.67 / 0.71 / 0.92 and differs per KPI.\n");
  return 0;
}
