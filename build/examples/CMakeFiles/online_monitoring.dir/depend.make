# Empty dependencies file for online_monitoring.
# This may be replaced when dependencies are built.
