file(REMOVE_RECURSE
  "CMakeFiles/online_monitoring.dir/online_monitoring.cpp.o"
  "CMakeFiles/online_monitoring.dir/online_monitoring.cpp.o.d"
  "online_monitoring"
  "online_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
