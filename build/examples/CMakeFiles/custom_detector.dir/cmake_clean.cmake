file(REMOVE_RECURSE
  "CMakeFiles/custom_detector.dir/custom_detector.cpp.o"
  "CMakeFiles/custom_detector.dir/custom_detector.cpp.o.d"
  "custom_detector"
  "custom_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
