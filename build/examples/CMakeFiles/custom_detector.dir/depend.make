# Empty dependencies file for custom_detector.
# This may be replaced when dependencies are built.
