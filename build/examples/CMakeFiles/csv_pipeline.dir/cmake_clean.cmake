file(REMOVE_RECURSE
  "CMakeFiles/csv_pipeline.dir/csv_pipeline.cpp.o"
  "CMakeFiles/csv_pipeline.dir/csv_pipeline.cpp.o.d"
  "csv_pipeline"
  "csv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
