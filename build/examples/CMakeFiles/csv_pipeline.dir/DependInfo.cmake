
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/csv_pipeline.cpp" "examples/CMakeFiles/csv_pipeline.dir/csv_pipeline.cpp.o" "gcc" "examples/CMakeFiles/csv_pipeline.dir/csv_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/opprentice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/opprentice_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/opprentice_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/opprentice_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/combiners/CMakeFiles/opprentice_combiners.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/opprentice_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/opprentice_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/opprentice_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
