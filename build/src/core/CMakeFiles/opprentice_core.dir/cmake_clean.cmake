file(REMOVE_RECURSE
  "CMakeFiles/opprentice_core.dir/cthld.cpp.o"
  "CMakeFiles/opprentice_core.dir/cthld.cpp.o.d"
  "CMakeFiles/opprentice_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/opprentice_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/opprentice_core.dir/duration_filter.cpp.o"
  "CMakeFiles/opprentice_core.dir/duration_filter.cpp.o.d"
  "CMakeFiles/opprentice_core.dir/opprentice.cpp.o"
  "CMakeFiles/opprentice_core.dir/opprentice.cpp.o.d"
  "CMakeFiles/opprentice_core.dir/transfer.cpp.o"
  "CMakeFiles/opprentice_core.dir/transfer.cpp.o.d"
  "CMakeFiles/opprentice_core.dir/weekly_driver.cpp.o"
  "CMakeFiles/opprentice_core.dir/weekly_driver.cpp.o.d"
  "libopprentice_core.a"
  "libopprentice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
