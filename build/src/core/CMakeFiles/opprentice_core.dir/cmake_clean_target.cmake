file(REMOVE_RECURSE
  "libopprentice_core.a"
)
