# Empty dependencies file for opprentice_core.
# This may be replaced when dependencies are built.
