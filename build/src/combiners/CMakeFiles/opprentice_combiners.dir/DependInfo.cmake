
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combiners/static_combiners.cpp" "src/combiners/CMakeFiles/opprentice_combiners.dir/static_combiners.cpp.o" "gcc" "src/combiners/CMakeFiles/opprentice_combiners.dir/static_combiners.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/opprentice_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
