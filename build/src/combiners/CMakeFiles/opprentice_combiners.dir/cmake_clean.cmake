file(REMOVE_RECURSE
  "CMakeFiles/opprentice_combiners.dir/static_combiners.cpp.o"
  "CMakeFiles/opprentice_combiners.dir/static_combiners.cpp.o.d"
  "libopprentice_combiners.a"
  "libopprentice_combiners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_combiners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
