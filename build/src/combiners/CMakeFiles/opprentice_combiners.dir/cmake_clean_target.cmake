file(REMOVE_RECURSE
  "libopprentice_combiners.a"
)
