# Empty compiler generated dependencies file for opprentice_combiners.
# This may be replaced when dependencies are built.
