# Empty dependencies file for opprentice_datagen.
# This may be replaced when dependencies are built.
