file(REMOVE_RECURSE
  "CMakeFiles/opprentice_datagen.dir/anomaly_injector.cpp.o"
  "CMakeFiles/opprentice_datagen.dir/anomaly_injector.cpp.o.d"
  "CMakeFiles/opprentice_datagen.dir/kpi_model.cpp.o"
  "CMakeFiles/opprentice_datagen.dir/kpi_model.cpp.o.d"
  "CMakeFiles/opprentice_datagen.dir/kpi_presets.cpp.o"
  "CMakeFiles/opprentice_datagen.dir/kpi_presets.cpp.o.d"
  "libopprentice_datagen.a"
  "libopprentice_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
