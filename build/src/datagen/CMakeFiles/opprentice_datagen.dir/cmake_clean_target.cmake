file(REMOVE_RECURSE
  "libopprentice_datagen.a"
)
