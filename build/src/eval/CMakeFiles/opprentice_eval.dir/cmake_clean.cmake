file(REMOVE_RECURSE
  "CMakeFiles/opprentice_eval.dir/metrics.cpp.o"
  "CMakeFiles/opprentice_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/opprentice_eval.dir/pr_curve.cpp.o"
  "CMakeFiles/opprentice_eval.dir/pr_curve.cpp.o.d"
  "CMakeFiles/opprentice_eval.dir/roc_curve.cpp.o"
  "CMakeFiles/opprentice_eval.dir/roc_curve.cpp.o.d"
  "CMakeFiles/opprentice_eval.dir/threshold_pickers.cpp.o"
  "CMakeFiles/opprentice_eval.dir/threshold_pickers.cpp.o.d"
  "libopprentice_eval.a"
  "libopprentice_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
