# Empty compiler generated dependencies file for opprentice_eval.
# This may be replaced when dependencies are built.
