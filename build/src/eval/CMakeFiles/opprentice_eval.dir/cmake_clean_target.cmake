file(REMOVE_RECURSE
  "libopprentice_eval.a"
)
