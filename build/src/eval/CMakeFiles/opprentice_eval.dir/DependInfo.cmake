
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/opprentice_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/opprentice_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/pr_curve.cpp" "src/eval/CMakeFiles/opprentice_eval.dir/pr_curve.cpp.o" "gcc" "src/eval/CMakeFiles/opprentice_eval.dir/pr_curve.cpp.o.d"
  "/root/repo/src/eval/roc_curve.cpp" "src/eval/CMakeFiles/opprentice_eval.dir/roc_curve.cpp.o" "gcc" "src/eval/CMakeFiles/opprentice_eval.dir/roc_curve.cpp.o.d"
  "/root/repo/src/eval/threshold_pickers.cpp" "src/eval/CMakeFiles/opprentice_eval.dir/threshold_pickers.cpp.o" "gcc" "src/eval/CMakeFiles/opprentice_eval.dir/threshold_pickers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
