# Empty dependencies file for opprentice_timeseries.
# This may be replaced when dependencies are built.
