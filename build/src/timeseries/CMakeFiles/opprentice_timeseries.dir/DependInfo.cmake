
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/labels.cpp" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/labels.cpp.o" "gcc" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/labels.cpp.o.d"
  "/root/repo/src/timeseries/series_stats.cpp" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/series_stats.cpp.o" "gcc" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/series_stats.cpp.o.d"
  "/root/repo/src/timeseries/time_series.cpp" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/time_series.cpp.o" "gcc" "src/timeseries/CMakeFiles/opprentice_timeseries.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
