file(REMOVE_RECURSE
  "libopprentice_timeseries.a"
)
