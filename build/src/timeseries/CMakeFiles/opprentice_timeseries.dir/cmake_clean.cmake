file(REMOVE_RECURSE
  "CMakeFiles/opprentice_timeseries.dir/labels.cpp.o"
  "CMakeFiles/opprentice_timeseries.dir/labels.cpp.o.d"
  "CMakeFiles/opprentice_timeseries.dir/series_stats.cpp.o"
  "CMakeFiles/opprentice_timeseries.dir/series_stats.cpp.o.d"
  "CMakeFiles/opprentice_timeseries.dir/time_series.cpp.o"
  "CMakeFiles/opprentice_timeseries.dir/time_series.cpp.o.d"
  "libopprentice_timeseries.a"
  "libopprentice_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
