file(REMOVE_RECURSE
  "CMakeFiles/opprentice_labeling.dir/labeling_session.cpp.o"
  "CMakeFiles/opprentice_labeling.dir/labeling_session.cpp.o.d"
  "CMakeFiles/opprentice_labeling.dir/operator_model.cpp.o"
  "CMakeFiles/opprentice_labeling.dir/operator_model.cpp.o.d"
  "libopprentice_labeling.a"
  "libopprentice_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
