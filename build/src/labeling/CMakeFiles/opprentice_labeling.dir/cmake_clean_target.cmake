file(REMOVE_RECURSE
  "libopprentice_labeling.a"
)
