# Empty compiler generated dependencies file for opprentice_labeling.
# This may be replaced when dependencies are built.
