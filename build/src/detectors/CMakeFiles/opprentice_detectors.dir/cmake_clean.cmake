file(REMOVE_RECURSE
  "CMakeFiles/opprentice_detectors.dir/arima_detector.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/arima_detector.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/basic_detectors.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/basic_detectors.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/detector.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/detector.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/extra_detectors.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/extra_detectors.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/feature_extractor.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/feature_extractor.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/holt_winters_detector.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/holt_winters_detector.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/registry.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/registry.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/seasonal_detectors.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/seasonal_detectors.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/svd_detector.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/svd_detector.cpp.o.d"
  "CMakeFiles/opprentice_detectors.dir/wavelet_detector.cpp.o"
  "CMakeFiles/opprentice_detectors.dir/wavelet_detector.cpp.o.d"
  "libopprentice_detectors.a"
  "libopprentice_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
