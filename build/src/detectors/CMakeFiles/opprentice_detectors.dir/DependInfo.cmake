
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/arima_detector.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/arima_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/arima_detector.cpp.o.d"
  "/root/repo/src/detectors/basic_detectors.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/basic_detectors.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/basic_detectors.cpp.o.d"
  "/root/repo/src/detectors/detector.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/detector.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/detector.cpp.o.d"
  "/root/repo/src/detectors/extra_detectors.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/extra_detectors.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/extra_detectors.cpp.o.d"
  "/root/repo/src/detectors/feature_extractor.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/feature_extractor.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/feature_extractor.cpp.o.d"
  "/root/repo/src/detectors/holt_winters_detector.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/holt_winters_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/holt_winters_detector.cpp.o.d"
  "/root/repo/src/detectors/registry.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/registry.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/registry.cpp.o.d"
  "/root/repo/src/detectors/seasonal_detectors.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/seasonal_detectors.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/seasonal_detectors.cpp.o.d"
  "/root/repo/src/detectors/svd_detector.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/svd_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/svd_detector.cpp.o.d"
  "/root/repo/src/detectors/wavelet_detector.cpp" "src/detectors/CMakeFiles/opprentice_detectors.dir/wavelet_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/opprentice_detectors.dir/wavelet_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/opprentice_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
