file(REMOVE_RECURSE
  "libopprentice_detectors.a"
)
