# Empty compiler generated dependencies file for opprentice_detectors.
# This may be replaced when dependencies are built.
