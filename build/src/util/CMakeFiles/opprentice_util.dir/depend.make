# Empty dependencies file for opprentice_util.
# This may be replaced when dependencies are built.
