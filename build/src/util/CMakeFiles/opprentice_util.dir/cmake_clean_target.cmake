file(REMOVE_RECURSE
  "libopprentice_util.a"
)
