
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_chart.cpp" "src/util/CMakeFiles/opprentice_util.dir/ascii_chart.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/opprentice_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/matrix.cpp" "src/util/CMakeFiles/opprentice_util.dir/matrix.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/matrix.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/opprentice_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/opprentice_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/svd.cpp" "src/util/CMakeFiles/opprentice_util.dir/svd.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/svd.cpp.o.d"
  "/root/repo/src/util/wavelet.cpp" "src/util/CMakeFiles/opprentice_util.dir/wavelet.cpp.o" "gcc" "src/util/CMakeFiles/opprentice_util.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
