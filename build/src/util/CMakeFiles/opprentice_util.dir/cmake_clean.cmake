file(REMOVE_RECURSE
  "CMakeFiles/opprentice_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/opprentice_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/csv.cpp.o"
  "CMakeFiles/opprentice_util.dir/csv.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/matrix.cpp.o"
  "CMakeFiles/opprentice_util.dir/matrix.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/rng.cpp.o"
  "CMakeFiles/opprentice_util.dir/rng.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/stats.cpp.o"
  "CMakeFiles/opprentice_util.dir/stats.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/svd.cpp.o"
  "CMakeFiles/opprentice_util.dir/svd.cpp.o.d"
  "CMakeFiles/opprentice_util.dir/wavelet.cpp.o"
  "CMakeFiles/opprentice_util.dir/wavelet.cpp.o.d"
  "libopprentice_util.a"
  "libopprentice_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
