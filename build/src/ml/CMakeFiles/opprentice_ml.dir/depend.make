# Empty dependencies file for opprentice_ml.
# This may be replaced when dependencies are built.
