file(REMOVE_RECURSE
  "CMakeFiles/opprentice_ml.dir/binning.cpp.o"
  "CMakeFiles/opprentice_ml.dir/binning.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/dataset.cpp.o"
  "CMakeFiles/opprentice_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/opprentice_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/opprentice_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/kfold.cpp.o"
  "CMakeFiles/opprentice_ml.dir/kfold.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/linear_models.cpp.o"
  "CMakeFiles/opprentice_ml.dir/linear_models.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/mutual_information.cpp.o"
  "CMakeFiles/opprentice_ml.dir/mutual_information.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/opprentice_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/random_forest.cpp.o"
  "CMakeFiles/opprentice_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/opprentice_ml.dir/serialize.cpp.o"
  "CMakeFiles/opprentice_ml.dir/serialize.cpp.o.d"
  "libopprentice_ml.a"
  "libopprentice_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
