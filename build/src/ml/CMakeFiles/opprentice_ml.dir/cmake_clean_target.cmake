file(REMOVE_RECURSE
  "libopprentice_ml.a"
)
