
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/binning.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/binning.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/binning.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/kfold.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/kfold.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/kfold.cpp.o.d"
  "/root/repo/src/ml/linear_models.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/linear_models.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/linear_models.cpp.o.d"
  "/root/repo/src/ml/mutual_information.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/mutual_information.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/mutual_information.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/opprentice_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/opprentice_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opprentice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
