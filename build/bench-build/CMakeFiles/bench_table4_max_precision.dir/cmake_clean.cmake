file(REMOVE_RECURSE
  "../bench/bench_table4_max_precision"
  "../bench/bench_table4_max_precision.pdb"
  "CMakeFiles/bench_table4_max_precision.dir/bench_table4_max_precision.cpp.o"
  "CMakeFiles/bench_table4_max_precision.dir/bench_table4_max_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_max_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
