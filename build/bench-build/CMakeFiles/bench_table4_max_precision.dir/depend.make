# Empty dependencies file for bench_table4_max_precision.
# This may be replaced when dependencies are built.
