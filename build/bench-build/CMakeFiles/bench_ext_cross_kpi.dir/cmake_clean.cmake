file(REMOVE_RECURSE
  "../bench/bench_ext_cross_kpi"
  "../bench/bench_ext_cross_kpi.pdb"
  "CMakeFiles/bench_ext_cross_kpi.dir/bench_ext_cross_kpi.cpp.o"
  "CMakeFiles/bench_ext_cross_kpi.dir/bench_ext_cross_kpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cross_kpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
