# Empty compiler generated dependencies file for bench_ext_cross_kpi.
# This may be replaced when dependencies are built.
