file(REMOVE_RECURSE
  "../bench/bench_fig10_learning_algos"
  "../bench/bench_fig10_learning_algos.pdb"
  "CMakeFiles/bench_fig10_learning_algos.dir/bench_fig10_learning_algos.cpp.o"
  "CMakeFiles/bench_fig10_learning_algos.dir/bench_fig10_learning_algos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_learning_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
