# Empty compiler generated dependencies file for bench_fig10_learning_algos.
# This may be replaced when dependencies are built.
