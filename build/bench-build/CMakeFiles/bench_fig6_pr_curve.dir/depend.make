# Empty dependencies file for bench_fig6_pr_curve.
# This may be replaced when dependencies are built.
