file(REMOVE_RECURSE
  "../bench/bench_fig6_pr_curve"
  "../bench/bench_fig6_pr_curve.pdb"
  "CMakeFiles/bench_fig6_pr_curve.dir/bench_fig6_pr_curve.cpp.o"
  "CMakeFiles/bench_fig6_pr_curve.dir/bench_fig6_pr_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pr_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
