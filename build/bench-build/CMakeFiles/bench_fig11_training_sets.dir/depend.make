# Empty dependencies file for bench_fig11_training_sets.
# This may be replaced when dependencies are built.
