file(REMOVE_RECURSE
  "../bench/bench_fig11_training_sets"
  "../bench/bench_fig11_training_sets.pdb"
  "CMakeFiles/bench_fig11_training_sets.dir/bench_fig11_training_sets.cpp.o"
  "CMakeFiles/bench_fig11_training_sets.dir/bench_fig11_training_sets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_training_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
