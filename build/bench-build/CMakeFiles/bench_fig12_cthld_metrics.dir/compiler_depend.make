# Empty compiler generated dependencies file for bench_fig12_cthld_metrics.
# This may be replaced when dependencies are built.
