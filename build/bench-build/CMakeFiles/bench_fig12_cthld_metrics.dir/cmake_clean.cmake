file(REMOVE_RECURSE
  "../bench/bench_fig12_cthld_metrics"
  "../bench/bench_fig12_cthld_metrics.pdb"
  "CMakeFiles/bench_fig12_cthld_metrics.dir/bench_fig12_cthld_metrics.cpp.o"
  "CMakeFiles/bench_fig12_cthld_metrics.dir/bench_fig12_cthld_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cthld_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
