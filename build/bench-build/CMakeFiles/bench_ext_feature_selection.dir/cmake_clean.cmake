file(REMOVE_RECURSE
  "../bench/bench_ext_feature_selection"
  "../bench/bench_ext_feature_selection.pdb"
  "CMakeFiles/bench_ext_feature_selection.dir/bench_ext_feature_selection.cpp.o"
  "CMakeFiles/bench_ext_feature_selection.dir/bench_ext_feature_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
