# Empty compiler generated dependencies file for bench_fig14_labeling_time.
# This may be replaced when dependencies are built.
