file(REMOVE_RECURSE
  "../bench/bench_fig14_labeling_time"
  "../bench/bench_fig14_labeling_time.pdb"
  "CMakeFiles/bench_fig14_labeling_time.dir/bench_fig14_labeling_time.cpp.o"
  "CMakeFiles/bench_fig14_labeling_time.dir/bench_fig14_labeling_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_labeling_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
