file(REMOVE_RECURSE
  "../bench/bench_ablation_forest"
  "../bench/bench_ablation_forest.pdb"
  "CMakeFiles/bench_ablation_forest.dir/bench_ablation_forest.cpp.o"
  "CMakeFiles/bench_ablation_forest.dir/bench_ablation_forest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
