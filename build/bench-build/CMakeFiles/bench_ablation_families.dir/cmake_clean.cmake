file(REMOVE_RECURSE
  "../bench/bench_ablation_families"
  "../bench/bench_ablation_families.pdb"
  "CMakeFiles/bench_ablation_families.dir/bench_ablation_families.cpp.o"
  "CMakeFiles/bench_ablation_families.dir/bench_ablation_families.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
