# Empty compiler generated dependencies file for bench_ablation_families.
# This may be replaced when dependencies are built.
