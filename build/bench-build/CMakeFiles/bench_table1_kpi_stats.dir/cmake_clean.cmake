file(REMOVE_RECURSE
  "../bench/bench_table1_kpi_stats"
  "../bench/bench_table1_kpi_stats.pdb"
  "CMakeFiles/bench_table1_kpi_stats.dir/bench_table1_kpi_stats.cpp.o"
  "CMakeFiles/bench_table1_kpi_stats.dir/bench_table1_kpi_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kpi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
