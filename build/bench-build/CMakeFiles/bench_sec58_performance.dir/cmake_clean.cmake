file(REMOVE_RECURSE
  "../bench/bench_sec58_performance"
  "../bench/bench_sec58_performance.pdb"
  "CMakeFiles/bench_sec58_performance.dir/bench_sec58_performance.cpp.o"
  "CMakeFiles/bench_sec58_performance.dir/bench_sec58_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec58_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
