# Empty dependencies file for bench_sec58_performance.
# This may be replaced when dependencies are built.
