file(REMOVE_RECURSE
  "../bench/bench_fig9_aucpr_ranking"
  "../bench/bench_fig9_aucpr_ranking.pdb"
  "CMakeFiles/bench_fig9_aucpr_ranking.dir/bench_fig9_aucpr_ranking.cpp.o"
  "CMakeFiles/bench_fig9_aucpr_ranking.dir/bench_fig9_aucpr_ranking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_aucpr_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
