# Empty compiler generated dependencies file for bench_fig9_aucpr_ranking.
# This may be replaced when dependencies are built.
