# Empty compiler generated dependencies file for bench_fig5_decision_tree.
# This may be replaced when dependencies are built.
