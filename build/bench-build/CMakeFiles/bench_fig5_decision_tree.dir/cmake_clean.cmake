file(REMOVE_RECURSE
  "../bench/bench_fig5_decision_tree"
  "../bench/bench_fig5_decision_tree.pdb"
  "CMakeFiles/bench_fig5_decision_tree.dir/bench_fig5_decision_tree.cpp.o"
  "CMakeFiles/bench_fig5_decision_tree.dir/bench_fig5_decision_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_decision_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
