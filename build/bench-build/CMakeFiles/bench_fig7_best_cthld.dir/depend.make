# Empty dependencies file for bench_fig7_best_cthld.
# This may be replaced when dependencies are built.
