file(REMOVE_RECURSE
  "../bench/bench_fig7_best_cthld"
  "../bench/bench_fig7_best_cthld.pdb"
  "CMakeFiles/bench_fig7_best_cthld.dir/bench_fig7_best_cthld.cpp.o"
  "CMakeFiles/bench_fig7_best_cthld.dir/bench_fig7_best_cthld.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_best_cthld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
