# Empty dependencies file for bench_fig1_kpi_examples.
# This may be replaced when dependencies are built.
