file(REMOVE_RECURSE
  "../bench/bench_fig1_kpi_examples"
  "../bench/bench_fig1_kpi_examples.pdb"
  "CMakeFiles/bench_fig1_kpi_examples.dir/bench_fig1_kpi_examples.cpp.o"
  "CMakeFiles/bench_fig1_kpi_examples.dir/bench_fig1_kpi_examples.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_kpi_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
