file(REMOVE_RECURSE
  "../bench/bench_fig13_online_detection"
  "../bench/bench_fig13_online_detection.pdb"
  "CMakeFiles/bench_fig13_online_detection.dir/bench_fig13_online_detection.cpp.o"
  "CMakeFiles/bench_fig13_online_detection.dir/bench_fig13_online_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_online_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
