# Empty compiler generated dependencies file for bench_fig13_online_detection.
# This may be replaced when dependencies are built.
