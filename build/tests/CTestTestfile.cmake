# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/timeseries_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/detectors_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/combiners_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/detector_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
