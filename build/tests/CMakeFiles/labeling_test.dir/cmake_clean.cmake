file(REMOVE_RECURSE
  "CMakeFiles/labeling_test.dir/labeling_test.cpp.o"
  "CMakeFiles/labeling_test.dir/labeling_test.cpp.o.d"
  "labeling_test"
  "labeling_test.pdb"
  "labeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
