file(REMOVE_RECURSE
  "CMakeFiles/detector_semantics_test.dir/detector_semantics_test.cpp.o"
  "CMakeFiles/detector_semantics_test.dir/detector_semantics_test.cpp.o.d"
  "detector_semantics_test"
  "detector_semantics_test.pdb"
  "detector_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
