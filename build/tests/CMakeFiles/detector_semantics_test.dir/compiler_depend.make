# Empty compiler generated dependencies file for detector_semantics_test.
# This may be replaced when dependencies are built.
