# Empty compiler generated dependencies file for combiners_test.
# This may be replaced when dependencies are built.
