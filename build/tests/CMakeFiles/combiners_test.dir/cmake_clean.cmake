file(REMOVE_RECURSE
  "CMakeFiles/combiners_test.dir/combiners_test.cpp.o"
  "CMakeFiles/combiners_test.dir/combiners_test.cpp.o.d"
  "combiners_test"
  "combiners_test.pdb"
  "combiners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
