# Empty compiler generated dependencies file for detectors_test.
# This may be replaced when dependencies are built.
