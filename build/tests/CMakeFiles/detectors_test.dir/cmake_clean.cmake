file(REMOVE_RECURSE
  "CMakeFiles/detectors_test.dir/detectors_test.cpp.o"
  "CMakeFiles/detectors_test.dir/detectors_test.cpp.o.d"
  "detectors_test"
  "detectors_test.pdb"
  "detectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
