file(REMOVE_RECURSE
  "CMakeFiles/opprentice_cli.dir/cli_commands.cpp.o"
  "CMakeFiles/opprentice_cli.dir/cli_commands.cpp.o.d"
  "CMakeFiles/opprentice_cli.dir/opprentice_cli.cpp.o"
  "CMakeFiles/opprentice_cli.dir/opprentice_cli.cpp.o.d"
  "opprentice_cli"
  "opprentice_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opprentice_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
