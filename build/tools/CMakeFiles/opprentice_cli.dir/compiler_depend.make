# Empty compiler generated dependencies file for opprentice_cli.
# This may be replaced when dependencies are built.
