// Perf-regression gate over bench JSON (DESIGN.md §5h).
//
// `opprentice_perf` compares a fresh `bench_sec58_performance --json`
// output against the committed baseline (BENCH_sec58.json) metric by
// metric with relative tolerances, optionally appends the fresh numbers
// to a history file (BENCH_history.jsonl, one JSON object per line) and
// renders the history as sparklines. CI runs it after every Release
// build; a tolerance breach fails the job.
//
// Semantics per metric (all live under the envelope's "sec58" object,
// lower is better, unmeasured encoded as -1):
//   - both measured:       regression when fresh > baseline * (1 + tol)
//   - baseline unmeasured: pass ("newly measured" — becomes the baseline
//                          on the next refresh)
//   - fresh unmeasured:    regression (a metric silently disappearing is
//                          exactly what a gate must catch)
// On top of the numeric gates, the fresh run's `ordering_ok` (§5.8:
// classification << extraction << data interval) and, when present,
// `weekly_budget_ok` must hold — those are correctness claims, not
// tolerances, so they stay strict even across hardware.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace opprentice::perf {

// One gated metric and the allowed relative increase (0.25 = fresh may
// be up to 25% slower than baseline). A bare key ("training_ms_per_round")
// is looked up under the "sec58" summary object; a dotted key
// ("fleet.us_per_point") is an absolute path into the envelope, which is
// how bench_fleet's summary joins the same gate.
struct MetricSpec {
  std::string key;
  double tolerance = 0.25;
};

// The default gate set: the four §5.8 cost metrics.
std::vector<MetricSpec> default_metrics(double tolerance);

struct MetricResult {
  std::string key;
  double baseline = -1.0;
  double fresh = -1.0;
  // fresh / baseline when both were measured, else -1.
  double ratio = -1.0;
  double tolerance = 0.25;
  bool regressed = false;
  std::string note;
};

struct GateOptions {
  // Empty -> default_metrics(default_tolerance).
  std::vector<MetricSpec> metrics;
  double default_tolerance = 0.25;
  // Require the fresh run's sec58.ordering_ok (and weekly_budget_ok when
  // the key exists) to be true.
  bool require_ordering = true;
};

struct GateResult {
  std::vector<MetricResult> metrics;
  bool ordering_checked = false;
  bool ordering_ok = true;
  bool weekly_budget_ok = true;
  bool pass = true;
  // Human-readable verdict table (render_table based).
  std::string summary;
};

GateResult run_gate(const util::json::Value& baseline,
                    const util::json::Value& fresh,
                    const GateOptions& options);

// One history line for `fresh`: {"label": ..., "<metric>": ..., ...,
// "ordering_ok": ...}. Labels come from --label (a commit id, a CI run
// number) — never a wall clock, so reruns are byte-identical.
std::string history_row(std::string_view label,
                        const util::json::Value& fresh,
                        const std::vector<MetricSpec>& metrics);

// Appends one line to the history file (created if missing). False when
// the file cannot be written.
bool append_history(const std::string& path, const std::string& row);

// Renders one sparkline per metric over the history file's rows (rows
// missing a metric or with -1 contribute a gap). Empty string when the
// file is missing or holds no rows.
std::string render_history(const std::string& path,
                           const std::vector<MetricSpec>& metrics);

// Built-in self test: plants passing and regressing baseline/fresh pairs
// (plus a history round-trip) and checks the gate's verdicts. Returns 0
// on success, 1 with a diagnostic on stderr otherwise.
int self_test();

}  // namespace opprentice::perf
