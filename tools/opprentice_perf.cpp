// opprentice_perf — the perf-regression gate (perf_gate.hpp).
//
//   opprentice_perf [options] baseline.json fresh.json
//
// Compares a fresh `bench_sec58_performance --json` output against the
// committed baseline; exits 0 when every gated metric is inside its
// tolerance and the §5.8 ordering holds, 1 on a regression, 2 on a
// usage or parse error. CI runs this after every Release build
// (BENCH_sec58.json is the committed baseline, BENCH_history.jsonl the
// trend file).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "perf_gate.hpp"
#include "util/json.hpp"

namespace {

int usage() {
  std::printf(
      "opprentice_perf — bench-JSON perf-regression gate\n"
      "\n"
      "usage: opprentice_perf [options] baseline.json fresh.json\n"
      "       opprentice_perf --self-test\n"
      "\n"
      "options:\n"
      "  --tolerance X        default allowed relative increase\n"
      "                       (0.25 = fresh may be 25%% slower; default)\n"
      "  --metric key=X       per-metric tolerance override, repeatable\n"
      "                       (default keys: extraction_us_per_point,\n"
      "                       classification_us_per_point,\n"
      "                       training_ms_per_round, five_fold_cthld_ms;\n"
      "                       a dotted key such as fleet.us_per_point is\n"
      "                       an absolute path into the bench envelope)\n"
      "  --only               gate only the --metric keys, dropping the\n"
      "                       sec58 default set (for non-sec58 benches)\n"
      "  --history file.jsonl append the fresh numbers (one JSON object\n"
      "                       per line) and print trend sparklines\n"
      "  --label NAME         history row label (a commit id or CI run\n"
      "                       number; default \"run\")\n"
      "  --no-ordering        skip the sec58.ordering_ok requirement\n"
      "  --self-test          verify the gate on planted passing and\n"
      "                       regressing bench pairs\n"
      "\n"
      "exit: 0 pass, 1 regression, 2 usage/parse error\n");
  return 2;
}

// Strict non-negative double parse (std::strtod; no partial parses).
bool parse_tolerance(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opprentice;
  perf::GateOptions options;
  std::vector<perf::MetricSpec> overrides;
  bool only_overrides = false;
  std::string history_path;
  std::string label = "run";
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--self-test") return perf::self_test();
    if (arg == "--no-ordering") {
      options.require_ordering = false;
    } else if (arg == "--only") {
      only_overrides = true;
    } else if (arg == "--tolerance") {
      const char* v = value();
      if (v == nullptr || !parse_tolerance(v, &options.default_tolerance)) {
        std::fprintf(stderr, "--tolerance: expected a non-negative number\n");
        return 2;
      }
    } else if (arg == "--metric") {
      const char* v = value();
      const std::string spec = v == nullptr ? "" : v;
      const std::size_t eq = spec.find('=');
      perf::MetricSpec metric;
      if (eq == std::string::npos ||
          !parse_tolerance(spec.substr(eq + 1), &metric.tolerance)) {
        std::fprintf(stderr, "--metric: expected key=tolerance, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      metric.key = spec.substr(0, eq);
      overrides.push_back(metric);
    } else if (arg == "--history") {
      const char* v = value();
      if (v == nullptr) return usage();
      history_path = v;
    } else if (arg == "--label") {
      const char* v = value();
      if (v == nullptr) return usage();
      label = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage();

  if (only_overrides && overrides.empty()) {
    std::fprintf(stderr, "--only requires at least one --metric\n");
    return 2;
  }
  // Overrides replace the default spec for their key (unknown keys are
  // added, so future sec58 metrics can be gated without a rebuild).
  options.metrics =
      only_overrides ? std::vector<perf::MetricSpec>{}
                     : perf::default_metrics(options.default_tolerance);
  for (const auto& o : overrides) {
    bool found = false;
    for (auto& m : options.metrics) {
      if (m.key == o.key) {
        m.tolerance = o.tolerance;
        found = true;
      }
    }
    if (!found) options.metrics.push_back(o);
  }

  try {
    const auto baseline = util::json::parse_file(files[0]);
    const auto fresh = util::json::parse_file(files[1]);
    const auto result = perf::run_gate(baseline, fresh, options);
    std::printf("baseline: %s\nfresh:    %s\n%s", files[0].c_str(),
                files[1].c_str(), result.summary.c_str());
    if (!history_path.empty()) {
      if (!perf::append_history(
              history_path,
              perf::history_row(label, fresh, options.metrics))) {
        std::fprintf(stderr, "warning: cannot append to %s\n",
                     history_path.c_str());
      }
      const std::string trend =
          perf::render_history(history_path, options.metrics);
      if (!trend.empty()) std::printf("%s", trend.c_str());
    }
    return result.pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
