// Whole-program lock-order & lock-discipline analyzer (DESIGN.md §5j).
//
// Builds a lock-acquisition graph over the shared call-graph library
// (tools/callgraph_common.*): every `MutexLock` scope is an acquisition
// region, every call reachable from inside a region carries that lock,
// and declared lock levels (`// opprentice-locks: level(<name>)=<int>`)
// order the graph. Rules:
//
//   lock-order-cycle     any cycle in the acquired-while-held graph, or a
//                        tagged edge violating the declared level order
//                        (including same-level double-acquisition, the
//                        SeriesRegistry shard hazard)
//   blocking-under-lock  transitively reaching I/O, task submission
//                        (parallel_for/submit), or a wait on another lock
//                        while a MutexLock scope is open; allocation too
//                        for locks tagged no-alloc
//   cv-wait-discipline   every CondVar::wait must sit inside a loop that
//                        re-checks its predicate
//   annotation-coverage  every util::Mutex declaration carries a level
//                        tag; mutable namespace-scope state is
//                        OPPRENTICE_GUARDED_BY, atomic, const, or
//                        suppressed with a reason
//   unknown-lock         an acquisition expression whose mutex cannot be
//                        matched to a declaration (fix by naming the
//                        member like its declaration or suppressing)
//
// Suppressions follow the house style: `// opprentice-locks:
// allow(<rule>) <reason>` on the finding line or the line above. A
// suppression that silences nothing is itself an error
// (unused-suppression), as is a level tag that does not attach to a
// mutex declaration (malformed-tag).
#pragma once

#include <string>
#include <vector>

#include "tools/lint_common.hpp"

namespace opprentice::tools {

struct LocksRule {
  std::string id;
  std::string summary;
  // Meta rules police the annotations themselves and cannot be
  // suppressed; only non-meta rules are valid in allow(...).
  bool meta = false;
};

const std::vector<LocksRule>& locks_rules();

struct LocksOptions {
  // Minimum number of level-tagged mutex declarations expected in the
  // tree; guards against annotations being refactored away (0 disables).
  std::size_t min_locks = 0;
  bool dump_graph = false;  // fill LocksResult::graph with DOT
};

struct LocksResult {
  LintReport report;
  std::size_t lock_count = 0;  // level-tagged mutex declarations found
  std::string graph;           // DOT of the lock-acquisition graph
};

// Scans every C++ source under `roots` (skipping src/util/mutex.hpp, the
// one file allowed to hold raw primitives) and applies the rules above.
LocksResult locks_tree(const std::vector<std::string>& roots,
                       const LocksOptions& opts);

// Plants fixtures exercising every rule (violation fires, suppressed
// twin stays silent) in a temp tree and scans them.
LintReport locks_self_test();

}  // namespace opprentice::tools
