// Shared cross-TU call-graph builder for the project's whole-program
// linters: `opprentice_hotpath` (hot-path discipline, tools/hotpath_rules.*)
// and `opprentice_locks` (lock-order and lock-discipline,
// tools/locks_rules.*). Both need the same thing — every function
// definition in the tree as a node, call sites resolved by qualified
// name, then plain name, then terminal name — so the scanner, the parsed
// model, the name-resolution policy, and the effect token tables
// (allocation, locking, I/O, clocks) live here once.
//
// Scope discipline (DESIGN.md §5g): the scanner only classifies `{` at
// namespace/type scope. Function bodies are consumed wholesale by brace
// matching and mined for call sites, so lambdas, brace initializers and
// control flow inside bodies never confuse the scope stack.
//
// Tools customize body mining through `BodyMiner`, a hook interface with
// three interception points chosen to keep the generic call collection
// byte-for-byte what hotpath shipped with:
//   on_ident  — first shot at an identifier, before call-shape detection
//               (throw/new/lock-construction style findings live here)
//   on_call   — a call-shaped identifier survived the declaration
//               filters; return false to consume it without recording a
//               CallSite (member-growth findings, throw-argument
//               suppression)
//   on_declaration_window — a `;`-terminated window at namespace/type
//               scope (field and global declarations; the locks analyzer
//               collects mutex/condvar declarations and unguarded global
//               state from these)
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint_common.hpp"

namespace opprentice::tools::callgraph {

// ---- shared effect/rule token tables --------------------------------------
// Named for what they detect; both analyzers consult them (hotpath flags
// every category on the hot closure, locks flags the blocking subset
// inside lock scopes).

const std::set<std::string>& growing_members();
const std::set<std::string>& resizing_members();
const std::set<std::string>& alloc_free_fns();
const std::set<std::string>& container_types();
const std::set<std::string>& lock_types();
const std::set<std::string>& lock_members();
const std::set<std::string>& io_fns();
const std::set<std::string>& io_streams();
const std::set<std::string>& clock_types();
const std::set<std::string>& clock_fns();
// Pure-compute external functions a hot path may call freely: math,
// min/max-style selection, non-allocating algorithms over preallocated
// ranges, chrono arithmetic (no clock read), and numeric_limits queries.
const std::set<std::string>& extern_allowlist();
// Keywords that look call-shaped (`if (`, `sizeof (`) but never are.
const std::set<std::string>& call_keywords();

// ---- parsed model ----------------------------------------------------------

// One mined rule finding inside a function body (filled by a tool's
// BodyMiner; the generic scanner never adds findings itself).
struct RawFinding {
  std::string rule;
  std::size_t line = 0;
  std::string message;
};

struct CallSite {
  std::string chain;     // back-walked A::b qualifier chain ("" if none)
  std::string terminal;  // last identifier
  std::size_t line = 0;
  bool member = false;     // preceded by . or ->
  bool qualified = false;  // preceded by ::
  // Token index of the terminal identifier in its file's token stream;
  // lets miners relate call sites to lexical regions (lock scopes).
  std::size_t tok = 0;
};

struct FnDef {
  std::string name;       // terminal identifier
  std::string qualified;  // "Type::name" when defined in/for a type
  std::string file;
  std::size_t line = 0;
  bool hot = false;  // carried an OPPRENTICE_HOT marker
  std::vector<RawFinding> findings;
  std::vector<CallSite> calls;
  std::set<std::string> local_callables;  // lambdas/std::function locals
};

struct CallGraph {
  std::vector<FnDef> defs;
  // Qualified/plain names of OPPRENTICE_HOT declarations without bodies,
  // so the matching definition (often in another file) can be rooted.
  std::set<std::string> hot_decl_qualified;
  std::set<std::string> hot_decl_plain;
  std::map<std::string, std::vector<std::size_t>> by_qualified;
  std::map<std::string, std::vector<std::size_t>> by_plain;
  std::map<std::string, std::vector<std::size_t>> by_terminal;
  // file -> comment start line -> text, for the tools' suppression
  // directives and annotation tags.
  std::map<std::string, std::map<std::size_t, std::string>> comments;
};

// ---- body-mining hooks -----------------------------------------------------

class BodyMiner {
 public:
  virtual ~BodyMiner() = default;

  // A function body [open, close] is about to be scanned; `def_index` is
  // the index its FnDef will occupy in CallGraph::defs once recorded.
  virtual void on_body_begin(const std::vector<cpp::Token>& toks,
                             std::size_t open, std::size_t close,
                             std::size_t def_index);
  virtual void on_body_end(std::size_t def_index);

  // Every punctuation token inside a body (statement boundaries, braces).
  virtual void on_punct(const std::vector<cpp::Token>& toks, std::size_t i,
                        FnDef* def);

  // First shot at identifier `i` inside a body, before generic call
  // detection. Return cpp::kNpos to decline; any other value is the index
  // scanning resumes after (the loop continues with the next token).
  virtual std::size_t on_ident(const std::vector<cpp::Token>& toks,
                               std::size_t i, std::size_t close, FnDef* def);

  // A call-shaped identifier at `i` survived the declaration filters and
  // is about to be recorded as a CallSite. Return false to consume it.
  virtual bool on_call(const std::vector<cpp::Token>& toks, std::size_t i,
                       bool member, FnDef* def);

  // A `;`-terminated token window at namespace or type scope — where
  // field and namespace-scope variable declarations live.
  // `enclosing_type` is the innermost type scope's name ("" at namespace
  // scope); `type_scope` distinguishes the two.
  virtual void on_declaration_window(const std::vector<cpp::Token>& toks,
                                     std::size_t begin, std::size_t end,
                                     const std::string& enclosing_type,
                                     bool type_scope);
};

// Lexes `content`, records its comments under `path` in the graph, and
// appends every function definition found (with mined call sites, and
// whatever `miner` collects through its hooks; null for pure graphing).
void add_source(const std::string& path, const std::string& content,
                CallGraph* graph, BodyMiner* miner = nullptr);

// ---- resolution ------------------------------------------------------------

bool is_std_chain(const std::string& chain);

// Last `count` ::-separated components of a qualifier chain + terminal.
std::string chain_suffix(const CallSite& call, std::size_t count);

// Resolves a call site to project definitions. Empty result + `external`
// means nothing in the tree matches. Member calls resolve by terminal
// name against every definition sharing it — the over-approximation that
// stands in for virtual dispatch (callers wanting precision filter the
// fan-out themselves).
std::vector<std::size_t> resolve_call(const CallGraph& graph,
                                      const FnDef& from, const CallSite& call,
                                      bool* external);

// True when a reasoned directive at `line` or the line above allows
// `rule` (the shared suppression-lookup policy).
bool directive_allows(const std::map<std::size_t, cpp::Directive>& directives,
                      std::size_t line, const std::string& rule);

// " -> "-joined call path for witness messages.
std::string join_path(const std::vector<std::string>& path);

}  // namespace opprentice::tools::callgraph
