// opprentice_hotpath: hot-path discipline analyzer.
//
// Builds a name-resolved call graph over the C++ sources in src/, roots
// it at OPPRENTICE_HOT-annotated functions (src/util/hotpath.hpp), and
// walks the transitive closure flagging heap allocation, locking,
// blocking I/O, throw, clock reads, and unallowlisted external calls —
// the contracts the per-point pipeline must keep for the paper's
// practicality claim to survive the coming optimization work
// (tools/hotpath_rules.hpp, DESIGN.md §5g).
//
// Usage:
//   opprentice_hotpath [--root DIR] [--verbose] [--min-roots N]
//                      [--graph] [--sarif]
//   opprentice_hotpath --self-test
//   opprentice_hotpath --list-rules
//
// Exit status: 0 when the hot closure is clean, 1 on any violation, 2 on
// usage errors.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/hotpath_rules.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: opprentice_hotpath [--root DIR] [--verbose] [--min-roots N]\n"
      "                          [--graph] [--sarif]\n"
      "       opprentice_hotpath --self-test\n"
      "       opprentice_hotpath --list-rules\n"
      "\n"
      "Builds the intra-project call graph for the C++ sources under\n"
      "DIR/src (default: the current directory), roots it at\n"
      "OPPRENTICE_HOT functions, and flags hot-path discipline violations\n"
      "in the transitive closure. --graph dumps roots and resolved\n"
      "edges; --sarif emits SARIF 2.1.0 instead of text; --min-roots\n"
      "fails the scan when fewer hot roots are found. --self-test plants\n"
      "one violation per rule in a temp tree and verifies each is\n"
      "caught.\n",
      stderr);
}

int run_scan(const std::string& root, bool verbose, bool sarif,
             const opprentice::tools::HotpathOptions& opts) {
  const std::filesystem::path base(root);
  const opprentice::tools::HotpathResult result =
      opprentice::tools::hotpath_tree({(base / "src").string()}, opts);
  if (opts.dump_graph) std::fputs(result.graph.c_str(), stdout);
  if (sarif) {
    std::string strip = root;
    if (!strip.empty() && strip.back() != '/') strip += '/';
    std::fputs(opprentice::tools::format_sarif(result.report,
                                               "opprentice_hotpath", strip)
                   .c_str(),
               stdout);
  } else {
    std::fputs(
        opprentice::tools::format_report(result.report, verbose).c_str(),
        stdout);
    std::fprintf(stdout, "hot roots: %zu\n", result.root_count);
  }
  return result.report.ok() ? 0 : 1;
}

int run_self_test(bool verbose) {
  const opprentice::tools::LintReport report =
      opprentice::tools::hotpath_self_test();
  std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
             stdout);
  if (!report.ok()) {
    std::fputs("self-test FAILED: the analyzer missed planted violations\n",
               stderr);
  }
  return report.ok() ? 0 : 1;
}

int run_list_rules() {
  for (const auto& rule : opprentice::tools::hotpath_rules()) {
    std::printf("%-14s %s%s\n", rule.id.c_str(), rule.summary.c_str(),
                rule.descent_only ? " (descent control)" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool list_rules = false;
  bool verbose = false;
  bool sarif = false;
  std::string root = ".";
  opprentice::tools::HotpathOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--graph") {
      opts.dump_graph = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--root" || arg == "--min-roots") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "opprentice_hotpath: %s requires a value\n",
                     arg.c_str());
        print_usage();
        return 2;
      }
      const char* value = argv[++i];
      if (arg == "--root") {
        root = value;
      } else {
        try {
          opts.min_roots = static_cast<std::size_t>(std::stoull(value));
        } catch (const std::exception&) {
          std::fprintf(stderr,
                       "opprentice_hotpath: --min-roots expects a "
                       "non-negative integer, got '%s'\n",
                       value);
          return 2;
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "opprentice_hotpath: unknown argument '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }

  try {
    if (list_rules) return run_list_rules();
    return self_test ? run_self_test(verbose)
                     : run_scan(root, verbose, sarif, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opprentice_hotpath: uncaught exception: %s\n",
                 e.what());
    return 2;
  }
}
