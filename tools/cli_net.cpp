// `opprentice_cli serve` and `opprentice_cli agent` — the socket front
// end of the network ingestion daemon (src/net, DESIGN.md §5k).
//
//   serve  binds a TCP or Unix endpoint, drives core::FleetEngine from
//          framed agent traffic, drains gracefully on SIGTERM/SIGINT
//          (or after --exit-after-byes sessions for CI smoke runs), and
//          prints a per-source liveness/sequencing summary.
//   agent  replays a KPI CSV (and optional label windows) as one
//          lockstep source with seeded exponential backoff + jitter on
//          timeouts, backpressure RETRYs, and reconnects.
#include "cli_commands.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/agent.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/sockets.hpp"
#include "obs/obs.hpp"
#include "util/csv.hpp"
#include "util/fault_injection.hpp"

namespace opprentice::cli {
namespace {

void stage_time(const char* name, const obs::Stopwatch& watch) {
  if (run_report() != nullptr) {
    run_report()->add_stage(name, watch.elapsed_ms());
  }
}

}  // namespace

int cmd_serve(const Args& args) {
  const obs::Stopwatch watch;
  constexpr std::size_t kPointsPerDay = 64;
  core::FleetOptions fleet;
  fleet.ctx = detectors::SeriesContext{kPointsPerDay, 7 * kPointsPerDay};
  fleet.detector_factory = core::fleet_lite_configurations;
  fleet.shard_count = args.get_size("shards", 64);
  fleet.retrain_interval = args.get_size("retrain-interval", kPointsPerDay);
  fleet.quarantine_after = args.get_size("quarantine-after", 3);
  fleet.history_capacity = 4 * kPointsPerDay;
  fleet.forest.num_trees = args.get_size("trees", 16);
  fleet.forest.seed = args.get_size("seed", 42);
  core::FleetEngine engine(std::move(fleet));

  net::ServerOptions options;
  options.liveness.suspect_after_ticks = args.get_size("suspect-after", 5);
  options.liveness.lost_after_ticks = args.get_size("lost-after", 10);
  options.queue_capacity = args.get_size("queue-capacity", 64);
  options.apply_budget = args.get_size("apply-budget", 0);
  options.retry_after_ticks =
      static_cast<std::uint32_t>(args.get_size("retry-after", 1));
  options.default_interval_seconds =
      static_cast<std::int64_t>(args.get_size("interval", 0));
  options.repair_policy = ts::parse_repair_policy(
      args.get("repair-policy", "fill-interpolate"));
  net::IngestServer core(engine, options);

  const net::Endpoint endpoint =
      net::parse_endpoint(args.get("listen", "tcp:127.0.0.1:7737"));
  const std::uint64_t tick_ms = args.get_size("tick-ms", 100);
  net::SocketServer server(core, endpoint, tick_ms);
  net::install_stop_handlers();
  net::clear_stop();

  const std::uint64_t exit_after_byes = args.get_size("exit-after-byes", 0);
  std::printf("serving %s (port %u), tick=%llums — Ctrl-C drains and exits\n",
              args.get("listen", "tcp:127.0.0.1:7737").c_str(),
              static_cast<unsigned>(server.bound_port()),
              static_cast<unsigned long long>(tick_ms));

  const int wait_ms = static_cast<int>(tick_ms > 0 ? tick_ms : 50);
  while (server.run_once(wait_ms)) {
    if (exit_after_byes > 0 && core.byes_received() >= exit_after_byes &&
        server.open_connections() == 0) {
      break;
    }
  }
  core.drain();
  stage_time("serve", watch);

  std::printf("%-24s %-8s %9s %6s %6s %6s %6s\n", "source", "state",
              "accepted", "gaps", "dups", "reord", "queued");
  for (const auto& snap : core.snapshot()) {
    std::printf("%-24s %-8s %9llu %6llu %6llu %6llu %6zu\n",
                snap.id.c_str(), net::to_string(snap.state),
                static_cast<unsigned long long>(
                    snap.counters.frames_accepted),
                static_cast<unsigned long long>(snap.counters.gap_frames),
                static_cast<unsigned long long>(snap.counters.duplicates),
                static_cast<unsigned long long>(snap.counters.reordered),
                snap.queued_batches);
  }
  if (run_report() != nullptr) {
    run_report()->set_field("net_sources",
                            static_cast<std::uint64_t>(
                                core.snapshot().size()));
    run_report()->set_field("net_byes", core.byes_received());
    run_report()->set_field("net_ticks", core.now_tick());
  }
  return 0;
}

int cmd_agent(const Args& args) {
  const obs::Stopwatch watch;
  const std::string kpi_path = args.get("kpi", "kpi.csv");
  const std::string series_id = args.get("series", "kpi");
  const std::string source_id = args.get("source", "agent-1");
  const std::size_t batch = args.get_size("batch", 16);
  const std::size_t heartbeat_every = args.get_size("heartbeat-every", 4);
  const std::int64_t interval =
      static_cast<std::int64_t>(args.get_size("interval", 0));

  const auto csv = util::read_csv_file(kpi_path);
  const auto timestamps = csv.column("timestamp");
  const auto values = csv.column("value");
  if (timestamps.empty()) {
    throw std::runtime_error("KPI CSV has no rows: " + kpi_path);
  }
  std::vector<ts::RawPoint> points;
  points.reserve(timestamps.size());
  for (std::size_t i = 0; i < timestamps.size(); ++i) {
    points.push_back({static_cast<std::int64_t>(timestamps[i]), values[i]});
  }

  net::AgentCore agent(source_id);
  // Interleave a heartbeat every N DATA batches so the server's liveness
  // deadline keeps refreshing on slow links.
  const std::size_t per_batch = batch == 0 ? points.size() : batch;
  std::size_t since_heartbeat = 0;
  for (std::size_t at = 0; at < points.size(); at += per_batch) {
    const std::size_t n = std::min(per_batch, points.size() - at);
    agent.queue_data(series_id, interval,
                     std::span<const ts::RawPoint>(points).subspan(at, n),
                     per_batch);
    if (heartbeat_every > 0 && ++since_heartbeat >= heartbeat_every) {
      agent.queue_heartbeat();
      since_heartbeat = 0;
    }
  }
  if (args.has("labels")) {
    const auto labels_csv = util::read_csv_file(args.get("labels"));
    const std::size_t begin_col = labels_csv.column_index("window_begin");
    const std::size_t end_col = labels_csv.column_index("window_end");
    std::vector<std::uint8_t> dense(points.size(), 0);
    for (const auto& row : labels_csv.rows) {
      const auto hi = std::min(static_cast<std::size_t>(row[end_col]),
                               dense.size());
      for (std::size_t i = static_cast<std::size_t>(row[begin_col]); i < hi;
           ++i) {
        dense[i] = 1;
      }
    }
    agent.queue_labels(series_id, 0, std::move(dense));
  }
  agent.finish();

  net::BackoffPolicy backoff;
  backoff.base_ms = args.get_size("backoff-base", 50);
  backoff.max_ms = args.get_size("backoff-max", 2000);
  backoff.seed = args.get_size("seed", 1);
  const int reply_timeout_ms =
      static_cast<int>(args.get_size("timeout-ms", 1000));
  const std::size_t max_attempts = args.get_size("max-attempts", 25);

  const net::Endpoint endpoint =
      net::parse_endpoint(args.get("connect", "tcp:127.0.0.1:7737"));
  net::SocketClient client;
  net::FrameParser replies;
  // Outbound frames pass the wire-fault shaper so --faults plans exercise
  // the server's CRC/sequencing path from a real socket too.
  net::FrameFaultInjector shaper(util::stable_id_hash(source_id));
  std::uint64_t attempts = 0;
  std::uint64_t frames_sent = 0;
  bool connected_before = false;

  while (!agent.done() && !agent.failed()) {
    if (attempts > max_attempts) {
      throw std::runtime_error("agent gave up after " +
                               std::to_string(attempts - 1) + " attempts");
    }
    if (!client.connected()) {
      if (connected_before) {
        agent.on_disconnect();  // retained frames re-sent after re-HELLO
        connected_before = false;
      }
      if (attempts > 0) net::sleep_ms(backoff.delay_ms(attempts - 1));
      ++attempts;
      if (!client.connect_to(endpoint)) continue;
      connected_before = true;
      replies = net::FrameParser();
    }
    const std::uint32_t hold = agent.retry_after_ticks();
    if (hold > 0) net::sleep_ms(backoff.delay_ms(agent.retry_attempt()));
    const auto frame = agent.next_frame();
    if (frame.has_value()) {
      std::vector<std::uint8_t> wire;
      shaper.apply(net::encode_frame(*frame), wire);
      ++frames_sent;
      if (!wire.empty() && !client.send_bytes(wire)) continue;
    }
    if (!agent.awaiting_reply()) continue;
    std::vector<std::uint8_t> rx;
    if (!client.receive(rx, reply_timeout_ms)) continue;
    if (rx.empty()) {
      agent.on_timeout();  // quiet link: retransmit
      ++attempts;
      continue;
    }
    attempts = 0;
    replies.push_bytes(rx);
    net::Frame reply;
    while (replies.next(&reply)) agent.on_frame(reply);
    if (replies.dead()) client.close_conn();
  }
  client.close_conn();
  stage_time("agent", watch);

  if (agent.failed()) {
    std::fprintf(stderr, "agent failed: server sent ERROR\n");
    return 1;
  }
  std::printf(
      "agent done: %zu points in %llu frames, last_acked=%u "
      "retransmits=%llu backpressure=%llu reconnects=%llu\n",
      points.size(), static_cast<unsigned long long>(frames_sent),
      agent.last_acked(),
      static_cast<unsigned long long>(agent.retransmits()),
      static_cast<unsigned long long>(agent.backpressure_retries()),
      static_cast<unsigned long long>(agent.reconnects()));
  if (run_report() != nullptr) {
    run_report()->set_field("agent_frames_sent", frames_sent);
    run_report()->set_field("agent_retransmits", agent.retransmits());
    run_report()->set_field("agent_reconnects", agent.reconnects());
  }
  return 0;
}

}  // namespace opprentice::cli
