// opprentice_locks: whole-program lock-order & lock-discipline analyzer.
//
// Builds a lock-acquisition graph over the C++ sources in src/ using the
// shared call-graph library (tools/callgraph_common.*): every MutexLock
// scope is an acquisition region, every call reachable from inside a
// region carries that lock, and declared lock levels
// (`// opprentice-locks: level(<name>)=<int> [no-alloc]`) order the
// graph. Flags order cycles and level inversions, blocking work under a
// lock, CondVar waits outside predicate loops, and unannotated
// mutexes/globals (tools/locks_rules.hpp, DESIGN.md §5j).
//
// Usage:
//   opprentice_locks [--root DIR] [--verbose] [--min-locks N]
//                    [--graph] [--sarif]
//   opprentice_locks --self-test
//   opprentice_locks --list-rules
//
// Exit status: 0 when the tree is clean, 1 on any violation, 2 on usage
// errors.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/locks_rules.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: opprentice_locks [--root DIR] [--verbose] [--min-locks N]\n"
      "                        [--graph] [--sarif]\n"
      "       opprentice_locks --self-test\n"
      "       opprentice_locks --list-rules\n"
      "\n"
      "Builds the lock-acquisition graph for the C++ sources under\n"
      "DIR/src (default: the current directory) and flags lock-order\n"
      "cycles, level inversions, blocking work under a lock, undisciplined\n"
      "CondVar waits, and missing lock-level annotations. --graph dumps\n"
      "the acquired-while-held graph as DOT; --sarif emits SARIF 2.1.0\n"
      "instead of text; --min-locks fails the scan when fewer level-tagged\n"
      "mutexes are found. --self-test plants violations for every rule in\n"
      "a temp tree and verifies each is caught.\n",
      stderr);
}

int run_scan(const std::string& root, bool verbose, bool sarif,
             const opprentice::tools::LocksOptions& opts) {
  const std::filesystem::path base(root);
  const opprentice::tools::LocksResult result =
      opprentice::tools::locks_tree({(base / "src").string()}, opts);
  if (opts.dump_graph) std::fputs(result.graph.c_str(), stdout);
  if (sarif) {
    std::string strip = root;
    if (!strip.empty() && strip.back() != '/') strip += '/';
    std::fputs(opprentice::tools::format_sarif(result.report,
                                               "opprentice_locks", strip)
                   .c_str(),
               stdout);
  } else {
    std::fputs(
        opprentice::tools::format_report(result.report, verbose).c_str(),
        stdout);
    std::fprintf(stdout, "tagged locks: %zu\n", result.lock_count);
  }
  return result.report.ok() ? 0 : 1;
}

int run_self_test(bool verbose) {
  const opprentice::tools::LintReport report =
      opprentice::tools::locks_self_test();
  std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
             stdout);
  if (!report.ok()) {
    std::fputs("self-test FAILED: the analyzer missed planted violations\n",
               stderr);
  }
  return report.ok() ? 0 : 1;
}

int run_list_rules() {
  for (const auto& rule : opprentice::tools::locks_rules()) {
    std::printf("%-20s %s%s\n", rule.id.c_str(), rule.summary.c_str(),
                rule.meta ? " (meta; not suppressible)" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool list_rules = false;
  bool verbose = false;
  bool sarif = false;
  std::string root = ".";
  opprentice::tools::LocksOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--graph") {
      opts.dump_graph = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--root" || arg == "--min-locks") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "opprentice_locks: %s requires a value\n",
                     arg.c_str());
        print_usage();
        return 2;
      }
      const char* value = argv[++i];
      if (arg == "--root") {
        root = value;
      } else {
        try {
          opts.min_locks = static_cast<std::size_t>(std::stoull(value));
        } catch (const std::exception&) {
          std::fprintf(stderr,
                       "opprentice_locks: --min-locks expects a "
                       "non-negative integer, got '%s'\n",
                       value);
          return 2;
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "opprentice_locks: unknown argument '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }

  try {
    if (list_rules) return run_list_rules();
    return self_test ? run_self_test(verbose)
                     : run_scan(root, verbose, sarif, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opprentice_locks: uncaught exception: %s\n",
                 e.what());
    return 2;
  }
}
