#include "perf_gate.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json_util.hpp"
#include "util/ascii_chart.hpp"

namespace opprentice::perf {
namespace {

constexpr std::string_view kSummaryPrefix = "sec58.";

bool measured(double v) { return v > 0.0; }

// Bare keys live under the historical "sec58" summary object; a key with
// a dot ("fleet.us_per_point") is an absolute envelope path, so other
// benches join the gate without schema surgery.
std::string metric_path(const MetricSpec& spec) {
  return spec.key.find('.') == std::string::npos
             ? std::string(kSummaryPrefix) + spec.key
             : spec.key;
}

MetricResult gate_metric(const MetricSpec& spec,
                         const util::json::Value& baseline,
                         const util::json::Value& fresh) {
  const std::string path = metric_path(spec);
  MetricResult r;
  r.key = spec.key;
  r.tolerance = spec.tolerance;
  r.baseline = baseline.number_at(path, -1.0);
  r.fresh = fresh.number_at(path, -1.0);
  if (!measured(r.baseline) && !measured(r.fresh)) {
    r.note = "unmeasured on both sides";
    return r;
  }
  if (!measured(r.baseline)) {
    r.note = "newly measured (no baseline)";
    return r;
  }
  if (!measured(r.fresh)) {
    r.regressed = true;
    r.note = "metric disappeared from the fresh run";
    return r;
  }
  r.ratio = r.fresh / r.baseline;
  if (r.ratio > 1.0 + spec.tolerance) {
    r.regressed = true;
    r.note = "exceeds baseline by more than " +
             util::format_double(100.0 * spec.tolerance, 0) + "%";
  }
  return r;
}

std::string render_summary(const GateResult& result) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& m : result.metrics) {
    rows.push_back(
        {m.key, measured(m.baseline) ? util::format_double(m.baseline, 3) : "-",
         measured(m.fresh) ? util::format_double(m.fresh, 3) : "-",
         m.ratio > 0.0 ? util::format_double(m.ratio, 3) : "-",
         "<=" + util::format_double(1.0 + m.tolerance, 2),
         m.regressed ? "REGRESSED" : "ok"});
  }
  std::string out = util::render_table(
      {"metric", "baseline", "fresh", "ratio", "limit", "status"}, rows);
  for (const auto& m : result.metrics) {
    if (!m.note.empty()) out += "  " + m.key + ": " + m.note + "\n";
  }
  if (result.ordering_checked) {
    out += "  ordering_ok: ";
    out += result.ordering_ok ? "true" : "FALSE (sec5.8 ordering violated)";
    out += "\n  weekly_budget_ok: ";
    out += result.weekly_budget_ok ? "true" : "FALSE (over the 5-min budget)";
    out += "\n";
  }
  out += result.pass ? "PASS\n" : "FAIL\n";
  return out;
}

}  // namespace

std::vector<MetricSpec> default_metrics(double tolerance) {
  return {{"extraction_us_per_point", tolerance},
          {"classification_us_per_point", tolerance},
          {"training_ms_per_round", tolerance},
          {"five_fold_cthld_ms", tolerance}};
}

GateResult run_gate(const util::json::Value& baseline,
                    const util::json::Value& fresh,
                    const GateOptions& options) {
  const std::vector<MetricSpec> metrics =
      options.metrics.empty() ? default_metrics(options.default_tolerance)
                              : options.metrics;
  GateResult result;
  for (const auto& spec : metrics) {
    result.metrics.push_back(gate_metric(spec, baseline, fresh));
    result.pass = result.pass && !result.metrics.back().regressed;
  }
  if (options.require_ordering) {
    result.ordering_checked = true;
    result.ordering_ok = fresh.bool_at("sec58.ordering_ok", false);
    // weekly_budget_ok appeared after the first baselines; only require
    // it when the fresh run reports it (additive schema evolution).
    result.weekly_budget_ok =
        fresh.find_path("sec58.weekly_budget_ok") == nullptr ||
        fresh.bool_at("sec58.weekly_budget_ok", false);
    result.pass =
        result.pass && result.ordering_ok && result.weekly_budget_ok;
  }
  result.summary = render_summary(result);
  return result;
}

std::string history_row(std::string_view label,
                        const util::json::Value& fresh,
                        const std::vector<MetricSpec>& metrics) {
  std::string out = "{\"label\": ";
  obs::append_json_string(out, label);
  for (const auto& spec : metrics) {
    out += ", ";
    obs::append_json_string(out, spec.key);
    out += ": ";
    obs::append_json_double(out, fresh.number_at(metric_path(spec), -1.0));
  }
  // Only sec5.8 envelopes carry the ordering bit; a fleet row must not
  // record a misleading `false` for a check that never ran.
  if (fresh.find_path("sec58.ordering_ok") != nullptr) {
    out += ", \"ordering_ok\": ";
    out += fresh.bool_at("sec58.ordering_ok", false) ? "true" : "false";
  }
  out += "}";
  return out;
}

bool append_history(const std::string& path, const std::string& row) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << row << '\n';
  return static_cast<bool>(out);
}

std::string render_history(const std::string& path,
                           const std::vector<MetricSpec>& metrics) {
  std::ifstream in(path);
  if (!in) return "";
  std::vector<util::json::Value> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(util::json::parse(line));
  }
  if (rows.empty()) return "";
  std::string out = "history (" + std::to_string(rows.size()) +
                    " runs, oldest first):\n";
  for (const auto& spec : metrics) {
    std::vector<double> ys;
    ys.reserve(rows.size());
    for (const auto& row : rows) {
      const double v = row.number_at(spec.key, -1.0);
      ys.push_back(measured(v) ? v
                               : std::numeric_limits<double>::quiet_NaN());
    }
    double last = -1.0;
    std::string last_label = "-";
    for (std::size_t i = rows.size(); i-- > 0;) {
      if (measured(rows[i].number_at(spec.key, -1.0))) {
        last = rows[i].number_at(spec.key, -1.0);
        const auto* label = rows[i].find("label");
        if (label != nullptr && label->is_string()) {
          last_label = label->string;
        }
        break;
      }
    }
    out += "  " + spec.key + ": " + util::render_sparkline(ys) + " last " +
           (measured(last) ? util::format_double(last, 3) : "-") + " (" +
           last_label + ")\n";
  }
  return out;
}

int self_test() {
  auto bench_json = [](double extraction, double classification,
                       double training, double five_fold, bool ordering) {
    std::ostringstream doc;
    doc << "{\"schema\": \"opprentice.bench.metrics/1\", \"sec58\": {"
        << "\"extraction_us_per_point\": " << extraction
        << ", \"classification_us_per_point\": " << classification
        << ", \"training_ms_per_round\": " << training
        << ", \"five_fold_cthld_ms\": " << five_fold
        << ", \"ordering_ok\": " << (ordering ? "true" : "false")
        << ", \"weekly_budget_ok\": true}}";
    return util::json::parse(doc.str());
  };
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "perf_gate self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  const auto baseline = bench_json(100.0, 1.0, 500.0, 900.0, true);
  GateOptions options;

  // Identical runs pass.
  expect(run_gate(baseline, baseline, options).pass,
         "identical baseline/fresh must pass");

  // Small drift inside the tolerance passes.
  expect(run_gate(baseline, bench_json(110.0, 1.1, 520.0, 910.0, true),
                  options)
             .pass,
         "10% drift must pass the 25% tolerance");

  // A 2x extraction regression fails, and names the metric.
  const auto regressed =
      run_gate(baseline, bench_json(200.0, 1.0, 500.0, 900.0, true), options);
  expect(!regressed.pass, "2x extraction must fail");
  expect(!regressed.metrics.empty() && regressed.metrics[0].regressed &&
             regressed.metrics[0].key == "extraction_us_per_point",
         "the regressed metric must be flagged");

  // A generous per-metric override lets the same pair pass.
  GateOptions loose;
  loose.metrics = default_metrics(0.25);
  loose.metrics[0].tolerance = 1.5;
  expect(run_gate(baseline, bench_json(200.0, 1.0, 500.0, 900.0, true), loose)
             .pass,
         "tolerance override must admit the 2x run");

  // ordering_ok=false fails even with perfect numbers.
  expect(!run_gate(baseline, bench_json(100.0, 1.0, 500.0, 900.0, false),
                   options)
              .pass,
         "ordering_ok=false must fail");

  // A metric disappearing (-1) from the fresh run fails ...
  expect(!run_gate(baseline, bench_json(100.0, 1.0, 500.0, -1.0, true),
                   options)
              .pass,
         "a disappeared metric must fail");
  // ... while a metric the baseline never had passes.
  expect(run_gate(bench_json(100.0, 1.0, 500.0, -1.0, true),
                  bench_json(100.0, 1.0, 500.0, 900.0, true), options)
             .pass,
         "a newly measured metric must pass");

  // Dotted keys resolve as absolute envelope paths (other benches'
  // summaries), not under "sec58".
  const auto fleet_doc = [](double us_per_point) {
    std::ostringstream doc;
    doc << "{\"schema\": \"opprentice.bench.metrics/1\", \"fleet\": {"
        << "\"us_per_point\": " << us_per_point << "}}";
    return util::json::parse(doc.str());
  };
  GateOptions fleet_gate;
  fleet_gate.metrics = {{"fleet.us_per_point", 0.25}};
  fleet_gate.require_ordering = false;
  expect(run_gate(fleet_doc(10.0), fleet_doc(11.0), fleet_gate).pass,
         "dotted-key metric inside tolerance must pass");
  expect(!run_gate(fleet_doc(10.0), fleet_doc(20.0), fleet_gate).pass,
         "dotted-key metric regression must fail");
  const std::string fleet_row =
      history_row("r3", fleet_doc(10.0), fleet_gate.metrics);
  expect(fleet_row.find("\"fleet.us_per_point\": 10") != std::string::npos,
         "dotted-key metric must appear in history rows");
  expect(fleet_row.find("ordering_ok") == std::string::npos,
         "rows for envelopes without sec58 must omit ordering_ok");

  // History round-trip: two appended rows render two-run sparklines.
  const std::string path =
      (std::filesystem::temp_directory_path() / "opprentice_perf_selftest.jsonl")
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  const auto metrics = default_metrics(0.25);
  expect(append_history(path, history_row("r1", baseline, metrics)) &&
             append_history(
                 path, history_row("r2", bench_json(110.0, 1.0, 500.0, 900.0,
                                                    true),
                                   metrics)),
         "history append must succeed");
  const std::string rendered = render_history(path, metrics);
  expect(rendered.find("2 runs") != std::string::npos &&
             rendered.find("extraction_us_per_point") != std::string::npos &&
             rendered.find("(r2)") != std::string::npos,
         "history render must show both runs and the last label");
  std::filesystem::remove(path, ec);

  if (failures == 0) std::printf("perf_gate self-test: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace opprentice::perf
