// Subcommands of the opprentice_cli tool.
//
//   generate   synthesize a KPI (+ operator labels) to CSV
//   profile    Table-1-style statistics and an ASCII chart of a KPI CSV
//   train      extract the 133 features, train a forest, pick a cThld
//   detect     score a KPI CSV with a saved model and write detections
//   evaluate   recall/precision of detections against labels
//   fleet      drive a synthetic multi-series fleet through FleetEngine
//
// All file formats are the CSVs used by examples/csv_pipeline.cpp:
//   kpi.csv        timestamp,value
//   labels.csv     window_begin,window_end         (point indices)
//   detections.csv timestamp,value,anomaly_probability,is_anomaly
//   model file     ml/serialize.hpp format, plus a "cthld <x>" trailer
#pragma once

#include <map>
#include <string>
#include <vector>

namespace opprentice::obs {
class RunReport;
}

namespace opprentice::cli {

// Parsed "--key value" arguments plus positional leftovers.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
};

Args parse_args(int argc, char** argv);

// Installs the run report the commands add their stage wall-times to
// (--report <path>, run_report.hpp). Owned by the caller; nullptr
// uninstalls. Main sets this once before dispatching the command.
void set_run_report(obs::RunReport* report);
// The installed report, or nullptr (for commands in other files).
obs::RunReport* run_report();

// Renders the top-`k` rows of the per-configuration cost-attribution
// snapshot (cost_attribution.hpp) as an aligned text table; empty string
// when nothing was recorded (detailed timing off).
std::string render_top_configs(std::size_t k);

int cmd_generate(const Args& args);
int cmd_profile(const Args& args);
int cmd_train(const Args& args);
int cmd_detect(const Args& args);
int cmd_evaluate(const Args& args);
int cmd_fleet(const Args& args);
// Network ingestion daemon + replayer agent (src/net, cli_net.cpp).
int cmd_serve(const Args& args);
int cmd_agent(const Args& args);
int print_usage();

}  // namespace opprentice::cli
