// Domain-specific static checker for the detector registry.
//
// Opprentice's feature space is the paper's Table 3: 14 basic detector
// families sampled into 133 configurations. Every downstream stage —
// feature extraction, classifier training, cThld selection, the figure
// benches — trusts that the registry is exactly that shape and that every
// configuration honors the detector contract (non-negative finite
// severities, reset() restoring the just-constructed state). A silent
// violation corrupts every feature column built from it, so these
// invariants are checked statically by `opprentice_lint` (and in CI)
// instead of being rediscovered one bad experiment at a time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "detectors/detector.hpp"
#include "detectors/registry.hpp"
#include "tools/lint_common.hpp"

namespace opprentice::tools {

// Declared sampling grid of one Table 3 family: how many configurations it
// must expand to and, per parameter key, which printed values are legal.
struct FamilySpec {
  std::string family;
  std::size_t expected_configs = 0;
  std::map<std::string, std::vector<std::string>> allowed_values;
};

// The paper's Table 3 grids for the 14 standard families (sums to 133).
const std::vector<FamilySpec>& table3_specs();

// Parsed form of a configuration name "family(k1=v1,k2=v2)" or "family".
struct ParsedConfigName {
  std::string family;
  std::map<std::string, std::string> params;
  bool valid = false;
};

ParsedConfigName parse_config_name(const std::string& name);

// Options controlling the dynamic probe part of the lint.
struct LintOptions {
  // Compact calendar so seasonal warm-ups fit in a short probe.
  detectors::SeriesContext ctx{.points_per_day = 24, .points_per_week = 168};
  // Probe length; must exceed every detector's warm-up under `ctx`.
  std::size_t probe_points = 1024;
  std::uint64_t probe_seed = 42;
  // Check the registry against Table 3 (disable for custom registries).
  bool check_table3 = true;
};

// Runs every registry invariant check and returns the accumulated report:
//   config-count      total configurations == kStandardConfigurationCount
//   family-count      family list matches Table 3 (names and arity)
//   name-unique       no duplicate configuration names
//   name-grammar      names parse as family(k=v,...) of a known family
//   param-range       parameter values inside the Table 3 sampling grids
//   warmup-bound      warm-up fits the probe series under `opts.ctx`
//   severity-domain   probe severities are finite and >= 0 (NaNs fed too)
//   reset-idempotent  reset() + refeed reproduces severities bit-for-bit
LintReport lint_registry(const detectors::DetectorRegistry& registry,
                         const LintOptions& opts = {});

// Checks that dataset_builder's feature matrix stays aligned with the
// registry: one column per configuration, identical names in registration
// order, per-column row counts, and warm-up propagation.
LintReport lint_dataset_alignment(const detectors::DetectorRegistry& registry,
                                  const LintOptions& opts = {});

// Self-test: plants deliberately broken registries (duplicate names,
// out-of-grid parameters, negative severities, wrong count) and verifies
// the linter catches each. Returns issues describing any *missed* defect.
LintReport lint_self_test();

}  // namespace opprentice::tools
