#!/usr/bin/env bash
# Runs every project linter (registry, determinism contract, hot-path
# discipline, lock discipline) plus its self-test, then merges the four
# SARIF reports into one multi-run lint.sarif for code-scanning upload.
# This is exactly what the CI static-analysis job executes; run it
# locally before pushing a change that touches src/ or tools/.
#
# usage: tools/run_lints.sh [--build-dir DIR] [--root DIR] [--out FILE]
#   --build-dir  where the linter binaries live (default: ./build)
#   --root       source tree to scan (default: this script's repo)
#   --out        merged SARIF path (default: <build-dir>/lint.sarif)
#
# Every linter runs even after one fails, so a single invocation shows
# the full picture; the exit code is non-zero if anything failed.
set -u

root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="build"
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --root) root="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    -h|--help) sed -n '2,14p' "${BASH_SOURCE[0]}"; exit 0 ;;
    *) echo "run_lints.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done
out="${out:-${build_dir}/lint.sarif}"
bin="${build_dir}/tools"

for tool in opprentice_lint opprentice_check opprentice_hotpath opprentice_locks; do
  if [[ ! -x "${bin}/${tool}" ]]; then
    echo "run_lints.sh: ${bin}/${tool} not built (cmake --build ${build_dir} --target ${tool})" >&2
    exit 2
  fi
done

sarif_dir="${build_dir}/sarif"
mkdir -p "${sarif_dir}"
failed=0
run() {
  echo "== $*"
  "$@" || { echo "== FAILED ($*)" >&2; failed=1; }
}

run "${bin}/opprentice_lint" --verbose
run "${bin}/opprentice_lint" --self-test
run "${bin}/opprentice_check" --root "${root}" --verbose
run "${bin}/opprentice_check" --self-test
run "${bin}/opprentice_hotpath" --root "${root}" --verbose --min-roots 16
run "${bin}/opprentice_hotpath" --self-test
run "${bin}/opprentice_locks" --root "${root}" --verbose --min-locks 14
run "${bin}/opprentice_locks" --self-test

# SARIF export is unconditional (findings are what upload is for); a
# linter that cannot even produce a report fails the script above.
"${bin}/opprentice_lint" --sarif > "${sarif_dir}/lint.sarif" || failed=1
"${bin}/opprentice_check" --root "${root}" --sarif > "${sarif_dir}/check.sarif" || failed=1
"${bin}/opprentice_hotpath" --root "${root}" --sarif > "${sarif_dir}/hotpath.sarif" || failed=1
"${bin}/opprentice_locks" --root "${root}" --sarif > "${sarif_dir}/locks.sarif" || failed=1
"${bin}/opprentice_locks" --root "${root}" --graph > "${sarif_dir}/locks_graph.dot" || failed=1

# Merge: SARIF 2.1.0 allows one log with many runs; concatenating the
# runs arrays keeps each tool's rule metadata intact.
python3 - "${out}" "${sarif_dir}/lint.sarif" "${sarif_dir}/check.sarif" \
    "${sarif_dir}/hotpath.sarif" "${sarif_dir}/locks.sarif" <<'EOF' || failed=1
import json
import sys

out, *parts = sys.argv[1:]
runs = []
for part in parts:
    with open(part) as fh:
        doc = json.load(fh)
    assert doc["version"] == "2.1.0", (part, doc.get("version"))
    runs.extend(doc["runs"])
merged = {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": runs,
}
with open(out, "w") as fh:
    json.dump(merged, fh, indent=2)
    fh.write("\n")
tools = [run["tool"]["driver"]["name"] for run in runs]
results = sum(len(run.get("results", [])) for run in runs)
print(f"merged {len(runs)} runs ({', '.join(tools)}), "
      f"{results} results -> {out}")
EOF

if [[ "${failed}" -ne 0 ]]; then
  echo "run_lints.sh: FAILED (see above)" >&2
  exit 1
fi
echo "run_lints.sh: OK"
