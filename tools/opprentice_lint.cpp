// opprentice_lint: static checker for the detector registry.
//
// Validates the paper's Table 3 invariants without running a full
// detection experiment: 133 configurations, unique names, parameters
// inside the declared sampling grids, non-negative severities on a
// deterministic probe series, and dataset_builder column alignment.
//
// Usage:
//   opprentice_lint [--verbose] [--probe-points N] [--seed S]
//   opprentice_lint --self-test
//
// Exit status: 0 when every check passes, 1 on any violated invariant,
// 2 on usage errors.
#include <cstdio>
#include <exception>
#include <string>

#include "detectors/registry.hpp"
#include "tools/registry_lint.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: opprentice_lint [--verbose] [--sarif] [--probe-points N] "
      "[--seed S]\n"
      "       opprentice_lint --self-test\n"
      "\n"
      "Checks the standard detector registry against the paper's Table 3\n"
      "invariants. --sarif emits SARIF 2.1.0 instead of text.\n"
      "--self-test instead feeds deliberately broken registries to the\n"
      "linter and verifies each defect is caught.\n",
      stderr);
}

int run_lint(const opprentice::tools::LintOptions& opts, bool verbose,
             bool sarif) {
  const auto registry =
      opprentice::detectors::DetectorRegistry::with_standard_families();

  opprentice::tools::LintReport report =
      opprentice::tools::lint_registry(registry, opts);
  const opprentice::tools::LintReport alignment =
      opprentice::tools::lint_dataset_alignment(registry, opts);
  report.checks_run += alignment.checks_run;
  report.issues.insert(report.issues.end(), alignment.issues.begin(),
                       alignment.issues.end());

  if (sarif) {
    std::fputs(
        opprentice::tools::format_sarif(report, "opprentice_lint").c_str(),
        stdout);
  } else {
    std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
               stdout);
  }
  return report.ok() ? 0 : 1;
}

int run_self_test(bool verbose) {
  const opprentice::tools::LintReport report =
      opprentice::tools::lint_self_test();
  std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
             stdout);
  if (!report.ok()) {
    std::fputs("self-test FAILED: the linter missed planted defects\n",
               stderr);
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool verbose = false;
  bool sarif = false;
  opprentice::tools::LintOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--probe-points" || arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "opprentice_lint: %s requires a value\n",
                     arg.c_str());
        print_usage();
        return 2;
      }
      const char* value = argv[++i];
      try {
        if (arg == "--probe-points") {
          opts.probe_points = static_cast<std::size_t>(std::stoull(value));
        } else {
          opts.probe_seed = std::stoull(value);
        }
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "opprentice_lint: %s expects a non-negative integer, "
                     "got '%s'\n",
                     arg.c_str(), value);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "opprentice_lint: unknown argument '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }

  try {
    return self_test ? run_self_test(verbose)
                     : run_lint(opts, verbose, sarif);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opprentice_lint: uncaught exception: %s\n",
                 e.what());
    return 2;
  }
}
