#include "tools/lint_common.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <utility>

namespace opprentice::tools {

void LintReport::fail(std::string check, std::string message) {
  issues.push_back({std::move(check), std::move(message)});
}

void LintReport::merge(LintReport other) {
  issues.insert(issues.end(), std::make_move_iterator(other.issues.begin()),
                std::make_move_iterator(other.issues.end()));
  checks_run += other.checks_run;
}

std::string format_report(const LintReport& report, bool verbose) {
  std::ostringstream out;
  if (verbose || !report.ok()) {
    for (const auto& issue : report.issues) {
      out << "FAIL [" << issue.check << "] " << issue.message << '\n';
    }
  }
  out << (report.ok() ? "OK" : "FAIL") << ": " << report.checks_run
      << " checks, " << report.issues.size() << " issue"
      << (report.issues.size() == 1 ? "" : "s") << '\n';
  return out.str();
}

TempTree::TempTree(std::string_view prefix) {
  // Unique without entropy: pid separates concurrent ctest processes, the
  // counter separates instances within one process.
  static std::atomic<std::uint64_t> instance{0};
  const std::uint64_t n = instance.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream name;
  name << prefix << '-' << ::getpid() << '-' << n;
  root_ = std::filesystem::temp_directory_path() / name.str();
  std::filesystem::create_directories(root_);
}

TempTree::~TempTree() {
  std::error_code ec;  // best-effort cleanup; never throw from a destructor
  std::filesystem::remove_all(root_, ec);
}

std::filesystem::path TempTree::plant(const std::filesystem::path& rel,
                                      std::string_view content) const {
  const std::filesystem::path path = root_ / rel;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

}  // namespace opprentice::tools
