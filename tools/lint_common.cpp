#include "tools/lint_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <utility>

namespace opprentice::tools {

void LintReport::fail(std::string check, std::string message) {
  issues.push_back({std::move(check), std::move(message), std::string(), 0});
}

void LintReport::fail_at(std::string check, std::string message,
                         std::string file, std::size_t line) {
  issues.push_back({std::move(check), std::move(message), std::move(file),
                    line});
}

void LintReport::merge(LintReport other) {
  issues.insert(issues.end(), std::make_move_iterator(other.issues.begin()),
                std::make_move_iterator(other.issues.end()));
  checks_run += other.checks_run;
}

std::string format_report(const LintReport& report, bool verbose) {
  std::ostringstream out;
  if (verbose || !report.ok()) {
    for (const auto& issue : report.issues) {
      out << "FAIL [" << issue.check << "] ";
      if (!issue.file.empty()) out << issue.file << ':' << issue.line << ": ";
      out << issue.message << '\n';
    }
  }
  out << (report.ok() ? "OK" : "FAIL") << ": " << report.checks_run
      << " checks, " << report.issues.size() << " issue"
      << (report.issues.size() == 1 ? "" : "s") << '\n';
  return out.str();
}

namespace {

// Minimal JSON string escaping (SARIF payloads are ASCII-ish linter
// messages; control characters are emitted as \u00XX).
void append_json_escaped(std::ostringstream& out, std::string_view s) {
  static const char* const kHex = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  append_json_escaped(out, s);
  out << '"';
}

}  // namespace

std::string format_sarif(const LintReport& report, std::string_view tool_name,
                         std::string_view strip_prefix) {
  // Stable rule table: unique check ids in first-appearance order.
  std::vector<std::string> rule_ids;
  for (const auto& issue : report.issues) {
    if (std::find(rule_ids.begin(), rule_ids.end(), issue.check) ==
        rule_ids.end()) {
      rule_ids.push_back(issue.check);
    }
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": ";
  append_json_string(out, tool_name);
  out << ",\n          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "            {\"id\": ";
    append_json_string(out, rule_ids[i]);
    out << "}";
  }
  out << (rule_ids.empty() ? "]" : "\n          ]")
      << "\n        }\n      },\n      \"results\": [";
  for (std::size_t i = 0; i < report.issues.size(); ++i) {
    const LintIssue& issue = report.issues[i];
    out << (i == 0 ? "\n" : ",\n") << "        {\n          \"ruleId\": ";
    append_json_string(out, issue.check);
    out << ",\n          \"level\": \"error\",\n          \"message\": "
        << "{\"text\": ";
    append_json_string(out, issue.message);
    out << "}";
    if (!issue.file.empty()) {
      std::string_view uri = issue.file;
      if (!strip_prefix.empty() && uri.substr(0, strip_prefix.size()) ==
                                       strip_prefix) {
        uri.remove_prefix(strip_prefix.size());
      }
      out << ",\n          \"locations\": [{\"physicalLocation\": "
          << "{\"artifactLocation\": {\"uri\": ";
      append_json_string(out, uri);
      out << "}, \"region\": {\"startLine\": "
          << (issue.line > 0 ? issue.line : 1) << "}}}]";
    }
    out << "\n        }";
  }
  out << (report.issues.empty() ? "]" : "\n      ]")
      << "\n    }\n  ]\n}\n";
  return out.str();
}

TempTree::TempTree(std::string_view prefix) {
  // Unique without entropy: pid separates concurrent ctest processes, the
  // counter separates instances within one process.
  static std::atomic<std::uint64_t> instance{0};
  const std::uint64_t n = instance.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream name;
  name << prefix << '-' << ::getpid() << '-' << n;
  root_ = std::filesystem::temp_directory_path() / name.str();
  std::filesystem::create_directories(root_);
}

TempTree::~TempTree() {
  std::error_code ec;  // best-effort cleanup; never throw from a destructor
  std::filesystem::remove_all(root_, ec);
}

std::filesystem::path TempTree::plant(const std::filesystem::path& rel,
                                      std::string_view content) const {
  const std::filesystem::path path = root_ / rel;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

namespace {

bool is_checked_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool in_skipped_directory(const std::filesystem::path& p) {
  for (const auto& part : p.parent_path()) {
    const std::string s = part.string();
    if (s == ".git" || s == "bench-cache" || s.rfind("build", 0) == 0 ||
        s.rfind("cmake-build", 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::filesystem::path> list_cpp_sources(
    const std::vector<std::string>& roots, LintReport* report) {
  std::vector<std::filesystem::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec)) {
      if (report != nullptr) {
        report->fail("missing-root", "'" + root + "' is not a directory");
      }
      continue;
    }
    for (auto it = std::filesystem::recursive_directory_iterator(
             root, std::filesystem::directory_options::skip_permission_denied);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::filesystem::path& p = it->path();
      if (is_checked_extension(p) && !in_skipped_directory(p)) {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

namespace cpp {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_digit_char(char c) { return c >= '0' && c <= '9'; }

bool is_two_char_punct(char a, char b) {
  static const char* const kPairs[] = {"::", "->", "++", "--", "+=", "-=",
                                       "*=", "/=", "%=", "&=", "|=", "^=",
                                       "==", "!=", "<=", ">=", "&&", "||",
                                       "<<", ">>"};
  for (const char* pair : kPairs) {
    if (pair[0] == a && pair[1] == b) return true;
  }
  return false;
}

}  // namespace

bool is_ident_char(char c) { return is_ident_start(c) || is_digit_char(c); }

Lexed lex(std::string_view src) {
  Lexed out;
  const std::size_t n = src.size();
  std::size_t line = 1;
  std::size_t i = 0;
  const auto peek = [&](std::size_t ahead) {
    return i + ahead < n ? src[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#') {  // preprocessor directive, honoring line continuations
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          ++i;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments[line] += std::string(src.substr(i + 2, j - i - 2));
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text += src[j];
        ++j;
      }
      out.comments[start_line] += text;
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string ident(src.substr(i, j - i));
      if (j < n && src[j] == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR")) {
        // Raw string literal: R"delim( ... )delim"
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, k);
        end = (end == std::string_view::npos) ? n : end + closer.size();
        for (std::size_t p = i; p < end; ++p) {
          if (src[p] == '\n') ++line;
        }
        out.tokens.push_back({Tok::kLiteral, "<raw-string>", line});
        i = end;
        continue;
      }
      out.tokens.push_back({Tok::kIdent, std::move(ident), line});
      i = j;
      continue;
    }
    if (is_digit_char(c) || (c == '.' && is_digit_char(peek(1)))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char e = src[j - 1];
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, std::string(src.substr(i, j - i)),
                            line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        } else if (src[j] == '\n') {
          ++line;  // unterminated literal: stay lenient, keep line counts
        }
        ++j;
      }
      out.tokens.push_back(
          {Tok::kLiteral, quote == '"' ? "<string>" : "<char>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_two_char_punct(c, peek(1))) {
      out.tokens.push_back({Tok::kPunct, std::string(src.substr(i, 2)), line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool tok_is(const std::vector<Token>& toks, std::size_t i, Tok kind,
            std::string_view text) {
  return i < toks.size() && toks[i].kind == kind && toks[i].text == text;
}

bool is_punct(const std::vector<Token>& toks, std::size_t i,
              std::string_view text) {
  return tok_is(toks, i, Tok::kPunct, text);
}

bool is_ident(const std::vector<Token>& toks, std::size_t i,
              std::string_view text) {
  return tok_is(toks, i, Tok::kIdent, text);
}

std::size_t match_close(const std::vector<Token>& toks, std::size_t i,
                        std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::kPunct) continue;
    if (toks[j].text == open) {
      ++depth;
    } else if (toks[j].text == close) {
      if (--depth == 0) return j;
    }
  }
  return kNpos;
}

std::size_t match_template_close(const std::vector<Token>& toks,
                                 std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::kPunct) continue;
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j;
    } else if (t == ";" || t == "{" || t == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

bool prev_is_member_access(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && toks[i - 1].kind == Tok::kPunct &&
         (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::vector<Include> scan_includes(std::string_view src) {
  std::vector<Include> out;
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos <= src.size()) {
    const std::size_t eol = src.find('\n', pos);
    std::string_view text = trim(src.substr(
        pos, eol == std::string_view::npos ? src.size() - pos : eol - pos));
    if (!text.empty() && text.front() == '#') {
      text.remove_prefix(1);
      text = trim(text);
      if (text.substr(0, 7) == "include") {
        text = trim(text.substr(7));
        if (!text.empty() && (text.front() == '"' || text.front() == '<')) {
          const bool angled = text.front() == '<';
          const char closer = angled ? '>' : '"';
          const std::size_t end = text.find(closer, 1);
          if (end != std::string_view::npos) {
            out.push_back({std::string(text.substr(1, end - 1)), line,
                           angled});
          }
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
  return out;
}

std::map<std::size_t, Directive> parse_directives(
    const std::map<std::size_t, std::string>& comments,
    std::string_view marker, const std::set<std::string>& known_rules) {
  std::map<std::size_t, Directive> out;
  for (const auto& [line, raw] : comments) {
    // The marker must open the comment; mentions of the syntax in prose
    // (like the checkers' own documentation) are not directives.
    const std::string_view text = trim(raw);
    if (text.substr(0, marker.size()) != marker) continue;
    Directive d;
    std::string_view rest = trim(text.substr(marker.size()));
    const std::string kAllow = "allow(";
    const std::size_t open = rest.find(kAllow);
    const std::size_t close = rest.find(')');
    if (open != 0 || close == std::string_view::npos || close < kAllow.size()) {
      d.malformed = true;
      out.emplace(line, std::move(d));
      continue;
    }
    std::string_view inside =
        rest.substr(kAllow.size(), close - kAllow.size());
    while (!inside.empty()) {
      const std::size_t comma = inside.find(',');
      const std::string_view piece = trim(inside.substr(0, comma));
      if (!piece.empty()) {
        const std::string rule(piece);
        if (known_rules.count(rule) > 0) {
          d.rules.insert(rule);
        } else {
          d.unknown.push_back(rule);
        }
      }
      if (comma == std::string_view::npos) break;
      inside.remove_prefix(comma + 1);
    }
    if (d.rules.empty() && d.unknown.empty()) d.malformed = true;
    for (const char c : trim(rest.substr(close + 1))) {
      if (is_ident_char(c)) {
        d.has_reason = true;
        break;
      }
    }
    out.emplace(line, std::move(d));
  }
  return out;
}

}  // namespace cpp

}  // namespace opprentice::tools
