#include "cli_commands.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/cthld.hpp"
#include "core/dataset_builder.hpp"
#include "core/fleet_engine.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/pr_curve.hpp"
#include "eval/threshold_pickers.hpp"
#include "labeling/operator_model.hpp"
#include "ml/serialize.hpp"
#include "obs/obs.hpp"
#include "timeseries/repair.hpp"
#include "timeseries/series_stats.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

namespace opprentice::cli {
namespace {

// Active run report (--report <path>); set once by main before the
// command runs, so the commands never race on it.
obs::RunReport* g_report = nullptr;

// Times one command stage into the active run report; no-op without one.
class ReportStage {
 public:
  explicit ReportStage(std::string_view name) : name_(name) {}
  ~ReportStage() {
    if (g_report != nullptr) g_report->add_stage(name_, watch_.elapsed_ms());
  }
  ReportStage(const ReportStage&) = delete;
  ReportStage& operator=(const ReportStage&) = delete;

 private:
  std::string name_;
  obs::Stopwatch watch_;
};

// Loads a KPI CSV through the ingest repair pass (DESIGN.md §5f): raw
// (timestamp, value) points go through the active fault plan's ingest.*
// sites (no-op without one), then gaps / duplicates / disorder / NaNs are
// repaired under --repair-policy. On a clean stream with the default
// "drop" policy this is byte-identical to reading the CSV directly.
ts::TimeSeries load_series(const std::string& path, const Args& args) {
  const auto csv = util::read_csv_file(path);
  const auto timestamps = csv.column("timestamp");
  const auto values = csv.column("value");
  if (timestamps.size() < 2) {
    throw std::runtime_error("KPI CSV needs at least two rows: " + path);
  }
  std::vector<ts::RawPoint> points;
  points.reserve(timestamps.size());
  for (std::size_t i = 0; i < timestamps.size(); ++i) {
    points.push_back(
        {static_cast<std::int64_t>(timestamps[i]), values[i]});
  }
  ts::inject_ingest_faults(points);
  const auto policy =
      ts::parse_repair_policy(args.get("repair-policy", "drop"));
  auto repaired = ts::repair_series(path, std::move(points),
                                    /*interval_seconds=*/0, policy);
  if (!repaired.report.clean()) {
    std::fprintf(stderr, "ingest repair (%s): %s\n", path.c_str(),
                 repaired.report.summary().c_str());
  }
  return std::move(repaired.series);
}

ts::LabelSet load_labels(const std::string& path) {
  const auto csv = util::read_csv_file(path);
  ts::LabelSet labels;
  const std::size_t begin_col = csv.column_index("window_begin");
  const std::size_t end_col = csv.column_index("window_end");
  for (const auto& row : csv.rows) {
    labels.add_window({static_cast<std::size_t>(row[begin_col]),
                       static_cast<std::size_t>(row[end_col])});
  }
  return labels;
}

void write_series(const std::string& path, const ts::TimeSeries& series) {
  util::CsvTable csv;
  csv.columns = {"timestamp", "value"};
  for (std::size_t i = 0; i < series.size(); ++i) {
    csv.rows.push_back(
        {static_cast<double>(series.timestamp(i)), series[i]});
  }
  util::write_csv_file(path, csv);
}

void write_labels(const std::string& path, const ts::LabelSet& labels) {
  util::CsvTable csv;
  csv.columns = {"window_begin", "window_end"};
  for (const auto& w : labels.windows()) {
    csv.rows.push_back(
        {static_cast<double>(w.begin), static_cast<double>(w.end)});
  }
  util::write_csv_file(path, csv);
}

// The model file is the serialized forest followed by "cthld <x>".
void save_model(const std::string& path, const ml::RandomForest& forest,
                const std::vector<std::string>& names, double cthld) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open model file " + path);
  ml::save_forest(out, forest, names);
  out << "cthld " << cthld << '\n';
}

struct LoadedModel {
  ml::LoadedForest forest;
  double cthld = 0.5;
};

LoadedModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file " + path);
  LoadedModel model;
  model.forest = ml::load_forest(in);
  std::string token;
  if (in >> token && token == "cthld") in >> model.cthld;
  return model;
}

}  // namespace

void set_run_report(obs::RunReport* report) { g_report = report; }
obs::RunReport* run_report() { return g_report; }

std::string render_top_configs(std::size_t k) {
  const auto rows = obs::CostAttribution::instance().snapshot();
  if (rows.empty()) return "";
  std::vector<std::vector<std::string>> cells;
  for (std::size_t i = 0; i < rows.size() && i < k; ++i) {
    const auto& r = rows[i];
    cells.push_back({r.configuration, std::to_string(r.count),
                     util::format_double(r.sum_us / 1000.0, 1),
                     util::format_double(r.mean_us, 2),
                     util::format_double(r.max_us, 1),
                     util::format_double(100.0 * r.share, 1) + "%"});
  }
  std::string out = "top " + std::to_string(cells.size()) +
                    " most expensive configurations (of " +
                    std::to_string(rows.size()) + " observed):\n";
  out += util::render_table(
      {"configuration", "points", "total_ms", "mean_us", "max_us", "share"},
      cells);
  return out;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("--" + key + ": expected a number, got '" +
                             it->second + "'");
  }
}

std::size_t Args::get_size(const std::string& key,
                           std::size_t fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(it->second, &pos);
    if (pos != it->second.size() || it->second.front() == '-') {
      throw std::invalid_argument(it->second);
    }
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::runtime_error("--" + key +
                             ": expected a non-negative integer, got '" +
                             it->second + "'");
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --option, got '" + key + "'");
    }
    key = key.substr(2);
    if (i + 1 >= argc) {
      throw std::runtime_error("missing value for --" + key);
    }
    args.options[key] = argv[++i];
  }
  return args;
}

int print_usage() {
  std::printf(
      "opprentice_cli — anomaly detection the Opprentice way\n"
      "\n"
      "usage: opprentice_cli <command> [--option value]...\n"
      "\n"
      "commands:\n"
      "  generate --kpi pv|sr|srt --out kpi.csv --labels labels.csv\n"
      "           [--weeks N] [--seed S]\n"
      "  profile  --kpi kpi.csv\n"
      "  train    --kpi kpi.csv --labels labels.csv --model model.rf\n"
      "           [--recall 0.66] [--precision 0.66] [--trees 48]\n"
      "  detect   --kpi kpi.csv --model model.rf --out detections.csv\n"
      "           [--cthld X]   (default: the cThld stored in the model)\n"
      "  evaluate --detections detections.csv --labels labels.csv\n"
      "           [--recall 0.66] [--precision 0.66]\n"
      "  fleet    [--series 1000] [--points 192] [--shards 64]\n"
      "           [--retrain-interval 64] [--quarantine-after 3]\n"
      "           [--trees 16] [--seed 42]   synthetic fleet run: every\n"
      "           series streams through the lite detector set with\n"
      "           staggered per-series retrains (DESIGN.md 5i)\n"
      "  serve    --listen tcp:HOST:PORT|uds:PATH [--tick-ms 100]\n"
      "           [--queue-capacity 64] [--suspect-after 5]\n"
      "           [--lost-after 10] [--repair-policy fill-interpolate]\n"
      "           [--exit-after-byes N]   network ingestion daemon: framed\n"
      "           agent traffic drives the fleet engine with per-source\n"
      "           liveness and backpressure; SIGTERM drains (DESIGN.md 5k)\n"
      "  agent    --connect tcp:HOST:PORT|uds:PATH --kpi kpi.csv\n"
      "           [--series id] [--source id] [--batch 16]\n"
      "           [--heartbeat-every 4] [--labels labels.csv] [--seed 1]\n"
      "           [--backoff-base 50] [--backoff-max 2000]   replay a KPI\n"
      "           CSV as one lockstep source with seeded backoff + jitter\n"
      "\n"
      "observability (any command):\n"
      "  --trace file.json     write a Chrome trace-event JSON of this run\n"
      "                        (open at https://ui.perfetto.dev)\n"
      "  --metrics file.json   write a metrics snapshot (counters, gauges,\n"
      "                        latency histograms; .prom for Prometheus text)\n"
      "  --report file.json    write a schema-versioned run report (build\n"
      "                        info, seeds, stage times, counters, per-config\n"
      "                        cost attribution, flight-recorder dump) and\n"
      "                        print the most expensive configurations\n"
      "\n"
      "parallelism (any command):\n"
      "  --threads N           worker pool size: 0 = all hardware threads\n"
      "                        (the default), 1 = serial; results are\n"
      "                        bit-identical at any thread count\n"
      "\n"
      "fault tolerance (any command):\n"
      "  --repair-policy P     ingest repair for dirty KPI CSVs:\n"
      "                        fail | drop (default) | fill-interpolate\n"
      "  --faults SPEC         deterministic fault injection, e.g.\n"
      "                        \"seed=7,detector.throw=0.02,ingest.nan=0.01\"\n"
      "\n"
      "environment: OPPRENTICE_TRACE=<path> traces any run;\n"
      "OPPRENTICE_THREADS=<n> sets the pool size like --threads;\n"
      "OPPRENTICE_FAULTS=<spec> injects faults like --faults;\n"
      "OPPRENTICE_LOG=debug|info|warn|error enables structured logging\n");
  return 2;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kpi", "pv");
  datagen::KpiPreset preset;
  if (kind == "pv") {
    preset = datagen::pv_preset(datagen::scale_from_env(),
                                args.get_size("seed", 11));
  } else if (kind == "sr") {
    preset = datagen::sr_preset(datagen::scale_from_env(),
                                args.get_size("seed", 22));
  } else if (kind == "srt") {
    preset = datagen::srt_preset(datagen::scale_from_env(),
                                 args.get_size("seed", 33));
  } else {
    std::fprintf(stderr, "unknown --kpi '%s' (pv|sr|srt)\n", kind.c_str());
    return 2;
  }
  preset.model.weeks = args.get_size("weeks", preset.model.weeks);

  auto generate = [&] {
    ReportStage stage("generate");
    auto kpi = datagen::generate_kpi(preset.model, preset.injection);
    auto labels = labeling::simulate_labeling(
        kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});
    return std::make_pair(std::move(kpi), std::move(labels));
  };
  const auto [kpi, labels] = generate();

  write_series(args.get("out", "kpi.csv"), kpi.series);
  write_labels(args.get("labels", "labels.csv"), labels);
  std::printf("wrote %zu points to %s and %zu label windows to %s\n",
              kpi.series.size(), args.get("out", "kpi.csv").c_str(),
              labels.window_count(), args.get("labels", "labels.csv").c_str());
  return 0;
}

int cmd_profile(const Args& args) {
  const auto series = load_series(args.get("kpi", "kpi.csv"), args);
  const auto prof = ts::profile(series);
  std::printf("points:            %zu\n", series.size());
  std::printf("interval:          %lld s\n",
              static_cast<long long>(prof.interval_seconds));
  std::printf("length:            %.1f weeks\n", prof.length_weeks);
  std::printf("seasonality:       %s (day-lag autocorrelation %.2f)\n",
              ts::seasonality_class(prof.daily_seasonality).c_str(),
              prof.daily_seasonality);
  std::printf("Cv:                %.3f\n", prof.coefficient_of_variation);
  std::printf("missing:           %.2f%%\n", 100.0 * prof.missing_ratio);
  const std::size_t week = series.points_per_week();
  const std::size_t show = std::min(week, series.size());
  util::ChartOptions opt;
  opt.title = "first week:";
  opt.height = 10;
  std::printf("%s", util::render_line_chart(
                        series.values().subspan(0, show), opt)
                        .c_str());
  return 0;
}

int cmd_train(const Args& args) {
  auto load = [&] {
    ReportStage stage("load");
    return std::make_pair(load_series(args.get("kpi", "kpi.csv"), args),
                          load_labels(args.get("labels", "labels.csv")));
  };
  const auto [series, labels] = load();
  const eval::AccuracyPreference pref{args.get_double("recall", 0.66),
                                      args.get_double("precision", 0.66)};

  std::printf("extracting 133 features over %zu points...\n", series.size());
  auto extract = [&] {
    ReportStage stage("extract");
    return core::build_dataset(series, labels);
  };
  const ml::Dataset dataset = extract();
  // Skip the warm-up week so training never sees warm-up zeros.
  const ml::Dataset train =
      dataset.slice(std::min(series.points_per_week(), dataset.num_rows()),
                    dataset.num_rows());
  if (train.positives() == 0) {
    std::fprintf(stderr, "no labeled anomalies after warm-up; cannot train\n");
    return 1;
  }

  ml::ForestOptions opts;
  opts.num_trees = args.get_size("trees", 48);
  std::printf("training random forest (%zu trees) on %zu rows "
              "(%zu anomalous)...\n",
              opts.num_trees, train.num_rows(), train.positives());
  ml::RandomForest forest(opts);
  {
    ReportStage stage("train");
    forest.train(train);
  }

  std::printf("picking cThld by 5-fold cross-validated PC-Score "
              "(recall>=%.2f, precision>=%.2f)...\n",
              pref.min_recall, pref.min_precision);
  auto pick = [&] {
    ReportStage stage("cthld_pick");
    return core::five_fold_cthld(train, pref, opts);
  };
  const double cthld = pick();

  const std::string model_path = args.get("model", "model.rf");
  save_model(model_path, forest, dataset.feature_names(), cthld);
  std::printf("saved model to %s (cThld %.3f)\n", model_path.c_str(), cthld);
  obs::log(obs::LogLevel::kInfo, "cli", "train_done",
           {{"rows", train.num_rows()},
            {"positives", train.positives()},
            {"cthld", cthld},
            {"model", model_path}});
  return 0;
}

int cmd_detect(const Args& args) {
  auto load = [&] {
    ReportStage stage("load");
    return std::make_pair(load_series(args.get("kpi", "kpi.csv"), args),
                          load_model(args.get("model", "model.rf")));
  };
  const auto [series, model] = load();
  const double cthld = args.get_double("cthld", model.cthld);

  auto extract = [&] {
    ReportStage stage("extract");
    return detectors::extract_standard_features(series);
  };
  const auto features = extract();
  if (features.num_features() != model.forest.feature_names.size()) {
    std::fprintf(stderr, "model expects %zu features, extractor has %zu\n",
                 model.forest.feature_names.size(), features.num_features());
    return 1;
  }

  util::CsvTable out;
  out.columns = {"timestamp", "value", "anomaly_probability", "is_anomaly"};
  std::size_t flagged = 0;
  {
    ReportStage stage("score");
    obs::ScopedSpan score_span("cli.score_points", "cli");
    score_span.arg("points", series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      double score = 0.0;
      if (i >= features.max_warmup) {
        score = model.forest.forest.score(features.row(i));
      }
      const bool anomaly = score >= cthld;
      flagged += anomaly;
      out.rows.push_back({static_cast<double>(series.timestamp(i)), series[i],
                          score, anomaly ? 1.0 : 0.0});
    }
  }
  const std::string out_path = args.get("out", "detections.csv");
  util::write_csv_file(out_path, out);
  std::printf("wrote %s: %zu/%zu points flagged (cThld %.3f)\n",
              out_path.c_str(), flagged, series.size(), cthld);
  obs::log(obs::LogLevel::kInfo, "cli", "detect_done",
           {{"points", series.size()},
            {"flagged", flagged},
            {"cthld", cthld}});
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto csv = util::read_csv_file(args.get("detections",
                                                "detections.csv"));
  const auto decisions_col = csv.column("is_anomaly");
  const auto labels = load_labels(args.get("labels", "labels.csv"));

  std::vector<std::uint8_t> decisions(decisions_col.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    decisions[i] = decisions_col[i] >= 0.5 ? 1 : 0;
  }
  const auto truth = labels.to_point_labels(decisions.size());
  const auto counts = eval::confusion(decisions, truth);
  const double r = eval::recall(counts);
  const double p = eval::precision(counts);
  const eval::AccuracyPreference pref{args.get_double("recall", 0.66),
                                      args.get_double("precision", 0.66)};
  std::printf("recall:     %.3f\n", r);
  std::printf("precision:  %.3f\n", p);
  std::printf("F-score:    %.3f\n", eval::f_score(r, p));
  std::printf("PC-score:   %.3f\n", eval::pc_score(r, p, pref));
  std::printf("preference (recall>=%.2f, precision>=%.2f): %s\n",
              pref.min_recall, pref.min_precision,
              pref.satisfied_by(r, p) ? "SATISFIED" : "not satisfied");
  return pref.satisfied_by(r, p) ? 0 : 1;
}

int cmd_fleet(const Args& args) {
  const std::size_t series = args.get_size("series", 1000);
  const std::size_t points = args.get_size("points", 192);
  constexpr std::size_t kPointsPerDay = 64;

  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{kPointsPerDay, 7 * kPointsPerDay};
  options.detector_factory = core::fleet_lite_configurations;
  options.shard_count = args.get_size("shards", 64);
  options.retrain_interval = args.get_size("retrain-interval", kPointsPerDay);
  options.quarantine_after = args.get_size("quarantine-after", 3);
  options.history_capacity = 4 * kPointsPerDay;
  options.forest.num_trees = args.get_size("trees", 16);
  options.forest.seed = args.get_size("seed", 42);
  core::FleetEngine engine(std::move(options));

  std::vector<core::SeriesHandle> handles;
  std::vector<std::uint64_t> salts;
  std::vector<std::string> ids;
  {
    ReportStage stage("fleet_setup");
    for (std::size_t i = 0; i < series; ++i) {
      ids.push_back("kpi-" + std::to_string(i));
      handles.push_back(engine.add_series(ids.back()));
      salts.push_back(util::stable_id_hash(ids.back()));
    }
  }

  // Synchronized ticks of the synthetic daily-seasonal fleet; operator
  // labels (every 37th point anomalous) trail by one 32-point chunk so
  // staggered retrains always see labeled history.
  const obs::Stopwatch feed_watch;
  std::vector<double> values(series);
  std::vector<core::FleetDetection> verdicts(series);
  std::vector<std::uint8_t> chunk(32);
  std::size_t anomalies = 0, classified = 0;
  {
    ReportStage stage("fleet_feed");
    for (std::size_t t = 0; t < points; ++t) {
      for (std::size_t i = 0; i < series; ++i) {
        values[i] = core::synthetic_fleet_value(salts[i], t, kPointsPerDay);
      }
      engine.feed_tick(handles, values, verdicts);
      for (const auto& v : verdicts) {
        if (v.classified) ++classified;
        if (v.is_anomaly) ++anomalies;
      }
      if ((t + 1) % chunk.size() == 0) {
        const std::size_t begin = t + 1 - chunk.size();
        for (std::size_t j = 0; j < chunk.size(); ++j) {
          chunk[j] = (begin + j) % 37 == 0 ? 1 : 0;
        }
        for (const auto& handle : handles) {
          engine.ingest_labels(handle, chunk, begin);
        }
      }
    }
  }
  const double feed_ms = feed_watch.elapsed_ms();

  std::size_t retrains = 0, failures = 0, quarantined = 0, trained = 0;
  {
    ReportStage stage("fleet_stats");
    for (const auto& handle : handles) {
      const core::FleetSeriesStats stats = engine.stats(handle);
      retrains += stats.retrains;
      failures += stats.train_failures;
      if (stats.quarantined) ++quarantined;
      if (stats.trained) ++trained;
    }
  }

  const double total = static_cast<double>(series * points);
  const double pts_per_sec =
      feed_ms > 0.0 ? total / (feed_ms / 1000.0) : 0.0;
  std::printf("fleet: %zu series x %zu points (%zu-point days)\n", series,
              points, kPointsPerDay);
  std::printf("%s",
              util::render_table(
                  {"metric", "value"},
                  {{"points/sec", util::format_double(pts_per_sec, 0)},
                   {"us/point",
                    util::format_double(feed_ms > 0.0
                                            ? 1000.0 * feed_ms / total
                                            : 0.0,
                                        2)},
                   {"trained series", std::to_string(trained)},
                   {"retrains", std::to_string(retrains)},
                   {"train failures", std::to_string(failures)},
                   {"quarantined", std::to_string(quarantined)},
                   {"classified points", std::to_string(classified)},
                   {"anomalies", std::to_string(anomalies)}})
                  .c_str());

  // Retrain load stagger across the interval, eight buckets.
  const auto histogram = engine.scheduler().phase_histogram(ids, 8);
  std::vector<double> ys;
  for (const std::size_t bucket : histogram) {
    ys.push_back(static_cast<double>(bucket));
  }
  std::printf("retrain phase spread: %s\n", util::render_sparkline(ys).c_str());

  if (g_report != nullptr) {
    g_report->set_field("fleet_series", static_cast<std::uint64_t>(series));
    g_report->set_field("fleet_points_per_sec", pts_per_sec);
    g_report->set_field("fleet_retrains",
                        static_cast<std::uint64_t>(retrains));
    g_report->set_field("fleet_quarantined",
                        static_cast<std::uint64_t>(quarantined));
  }
  return 0;
}

}  // namespace opprentice::cli
