#include "tools/check_rules.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace opprentice::tools {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// ---- tokenizer -----------------------------------------------------------
//
// Just enough C++ lexing for the rules: identifiers, numbers, punctuation
// (longest-match two-char operators), with line numbers. String and char
// literals become opaque kLiteral tokens, so code quoted inside a string —
// including this checker's own rule patterns and self-test fixtures —
// can never trip a rule. Comments never become tokens; their text is kept
// per start line for suppression directives. Preprocessor lines are
// skipped entirely (macro bodies are out of scope for these heuristics).

enum class Tok { kIdent, kNumber, kPunct, kLiteral };

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::size_t line = 0;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<std::size_t, std::string> comments;  // start line -> text
};

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_digit_char(char c) { return c >= '0' && c <= '9'; }

bool is_ident_char(char c) { return is_ident_start(c) || is_digit_char(c); }

bool is_two_char_punct(char a, char b) {
  static const char* const kPairs[] = {"::", "->", "++", "--", "+=", "-=",
                                       "*=", "/=", "%=", "&=", "|=", "^=",
                                       "==", "!=", "<=", ">=", "&&", "||",
                                       "<<", ">>"};
  for (const char* pair : kPairs) {
    if (pair[0] == a && pair[1] == b) return true;
  }
  return false;
}

Lexed lex(std::string_view src) {
  Lexed out;
  const std::size_t n = src.size();
  std::size_t line = 1;
  std::size_t i = 0;
  const auto peek = [&](std::size_t ahead) {
    return i + ahead < n ? src[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#') {  // preprocessor directive, honoring line continuations
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          ++i;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments[line] += std::string(src.substr(i + 2, j - i - 2));
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text += src[j];
        ++j;
      }
      out.comments[start_line] += text;
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string ident(src.substr(i, j - i));
      if (j < n && src[j] == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR")) {
        // Raw string literal: R"delim( ... )delim"
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, k);
        end = (end == std::string_view::npos) ? n : end + closer.size();
        for (std::size_t p = i; p < end; ++p) {
          if (src[p] == '\n') ++line;
        }
        out.tokens.push_back({Tok::kLiteral, "<raw-string>", line});
        i = end;
        continue;
      }
      out.tokens.push_back({Tok::kIdent, std::move(ident), line});
      i = j;
      continue;
    }
    if (is_digit_char(c) || (c == '.' && is_digit_char(peek(1)))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char e = src[j - 1];
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, std::string(src.substr(i, j - i)),
                            line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        } else if (src[j] == '\n') {
          ++line;  // unterminated literal: stay lenient, keep line counts
        }
        ++j;
      }
      out.tokens.push_back(
          {Tok::kLiteral, quote == '"' ? "<string>" : "<char>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_two_char_punct(c, peek(1))) {
      out.tokens.push_back({Tok::kPunct, std::string(src.substr(i, 2)), line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---- token helpers -------------------------------------------------------

bool tok_is(const std::vector<Token>& toks, std::size_t i, Tok kind,
            std::string_view text) {
  return i < toks.size() && toks[i].kind == kind && toks[i].text == text;
}

bool is_punct(const std::vector<Token>& toks, std::size_t i,
              std::string_view text) {
  return tok_is(toks, i, Tok::kPunct, text);
}

bool is_ident(const std::vector<Token>& toks, std::size_t i,
              std::string_view text) {
  return tok_is(toks, i, Tok::kIdent, text);
}

// Index of the punct matching `open` at index i (which must be `open`).
std::size_t match_close(const std::vector<Token>& toks, std::size_t i,
                        std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::kPunct) continue;
    if (toks[j].text == open) {
      ++depth;
    } else if (toks[j].text == close) {
      if (--depth == 0) return j;
    }
  }
  return kNpos;
}

// Matching '>' for the '<' at i; ">>" closes two levels. Bails at statement
// punctuation so `a < b;` is not mistaken for an open template list.
std::size_t match_template_close(const std::vector<Token>& toks,
                                 std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::kPunct) continue;
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j;
    } else if (t == ";" || t == "{" || t == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

bool prev_is_member_access(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && toks[i - 1].kind == Tok::kPunct &&
         (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string basename_of(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return std::string(slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1));
}

using AddFn = std::function<void(const char*, std::size_t, std::string)>;

// ---- rule passes ---------------------------------------------------------

void pass_random_device(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "random_device")) {
      add("random-device", toks[i].line,
          "std::random_device draws nondeterministic entropy; seed a "
          "util::Rng from configuration instead");
    }
  }
}

void pass_rand(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (toks[i].text != "rand" && toks[i].text != "srand") continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    if (prev_is_member_access(toks, i)) continue;
    add("rand", toks[i].line,
        toks[i].text + "() uses hidden global RNG state; use a locally "
        "seeded util::Rng");
  }
}

bool is_seedish_ident(const Token& tok) {
  if (tok.kind != Tok::kIdent) return false;
  const std::string lowered = lower(tok.text);
  if (lowered.find("seed") != std::string::npos) return true;
  if (lowered.find("rng") != std::string::npos) return true;
  static const std::set<std::string> kEngines = {
      "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
      "ranlux24",      "ranlux48",     "ranlux24_base", "ranlux48_base",
      "knuth_b",       "default_random_engine", "srand"};
  return kEngines.count(tok.text) > 0;
}

// Index of a clock read inside [begin, end), or kNpos.
std::size_t find_clock_read(const std::vector<Token>& toks, std::size_t begin,
                            std::size_t end) {
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != Tok::kIdent) continue;
    if (toks[k].text == "time" && is_punct(toks, k + 1, "(") &&
        !prev_is_member_access(toks, k)) {
      return k;
    }
    if (kClocks.count(toks[k].text) > 0 && is_punct(toks, k + 1, "::") &&
        is_ident(toks, k + 2, "now")) {
      return k;
    }
  }
  return kNpos;
}

void pass_wall_clock_seed(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  std::size_t stmt_begin = 0;
  const auto scan = [&](std::size_t begin, std::size_t end) {
    const std::size_t clock_at = find_clock_read(toks, begin, end);
    if (clock_at == kNpos) return;
    for (std::size_t k = begin; k < end; ++k) {
      if (is_seedish_ident(toks[k])) {
        add("wall-clock-seed", toks[clock_at].line,
            "clock read feeds an RNG seed; runs become unreproducible — "
            "thread an explicit seed through instead");
        return;
      }
    }
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct &&
        (toks[i].text == ";" || toks[i].text == "{" || toks[i].text == "}")) {
      scan(stmt_begin, i);
      stmt_begin = i + 1;
    }
  }
  scan(stmt_begin, toks.size());
}

void pass_raw_thread(const Lexed& lx, std::string_view path,
                     const AddFn& add) {
  const std::string base = basename_of(path);
  // The pool implementation is the one place allowed to own threads.
  if (base == "thread_pool.cpp" || base == "thread_pool.hpp") return;
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "std") && is_punct(toks, i + 1, "::") &&
        is_ident(toks, i + 2, "thread") && !is_punct(toks, i + 3, "::")) {
      add("raw-thread", toks[i + 2].line,
          "raw std::thread outside util/thread_pool.cpp; route parallelism "
          "through util::parallel_for so the determinism guarantees hold");
    }
    if (is_ident(toks, i, "detach") && prev_is_member_access(toks, i) &&
        is_punct(toks, i + 1, "(")) {
      add("raw-thread", toks[i].line,
          "detached threads outlive the scope that reasons about them; use "
          "util::parallel_for or a joined scope");
    }
  }
}

void pass_unordered_iteration(const Lexed& lx, const AddFn& add) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& toks = lx.tokens;

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kUnorderedTypes.count(toks[i].text) == 0)
      continue;
    if (!is_punct(toks, i + 1, "<")) continue;
    const std::size_t close = match_template_close(toks, i + 1);
    if (close == kNpos) continue;
    std::size_t j = close + 1;
    while (j < toks.size() &&
           (is_punct(toks, j, "&") || is_punct(toks, j, "*") ||
            is_ident(toks, j, "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;
    static const std::set<std::string> kAfterName = {";", "=", "{",
                                                     "(", ")", ","};
    if (j + 1 < toks.size() && toks[j + 1].kind == Tok::kPunct &&
        kAfterName.count(toks[j + 1].text) > 0) {
      names.insert(toks[j].text);
    }
  }
  if (names.empty()) return;

  // Pass 2: iteration over one of those names.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "for") && is_punct(toks, i + 1, "(")) {
      const std::size_t close = match_close(toks, i + 1, "(", ")");
      if (close == kNpos) continue;
      int depth = 1;
      std::size_t colon = kNpos;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind != Tok::kPunct) continue;
        if (toks[k].text == "(") ++depth;
        else if (toks[k].text == ")") --depth;
        else if (toks[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon != kNpos && close == colon + 2 &&
          toks[colon + 1].kind == Tok::kIdent &&
          names.count(toks[colon + 1].text) > 0) {
        add("unordered-iteration", toks[colon + 1].line,
            "iterating '" + toks[colon + 1].text +
                "' visits hash order, which is unspecified; use "
                "std::map/std::set or sort the keys first");
      }
    }
    if (toks[i].kind == Tok::kIdent && names.count(toks[i].text) > 0 &&
        i + 3 < toks.size() && toks[i + 1].kind == Tok::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
        is_punct(toks, i + 3, "(")) {
      add("unordered-iteration", toks[i].line,
          "iterator over '" + toks[i].text +
              "' visits hash order, which is unspecified; use "
              "std::map/std::set or sort the keys first");
    }
  }
}

void pass_unguarded_static(const Lexed& lx, const AddFn& add) {
  enum class Scope { kNamespace, kType, kBlock };
  const auto& toks = lx.tokens;
  std::vector<Scope> stack;
  std::size_t window_start = 0;  // first token after the last ; { or }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct) {
      const std::string& t = toks[i].text;
      if (t == "{") {
        Scope kind = Scope::kBlock;
        if (!(i > 0 && is_punct(toks, i - 1, ")"))) {
          for (std::size_t k = window_start; k < i; ++k) {
            if (toks[k].kind != Tok::kIdent) continue;
            if (toks[k].text == "namespace") {
              kind = Scope::kNamespace;
              break;
            }
            if (toks[k].text == "class" || toks[k].text == "struct" ||
                toks[k].text == "union" || toks[k].text == "enum") {
              kind = Scope::kType;
            }
          }
        }
        stack.push_back(kind);
        window_start = i + 1;
      } else if (t == "}") {
        if (!stack.empty()) stack.pop_back();
        window_start = i + 1;
      } else if (t == ";") {
        window_start = i + 1;
      }
      continue;
    }
    if (!is_ident(toks, i, "static")) continue;
    if (stack.empty() || stack.back() != Scope::kBlock) continue;
    // Exemptions: immutable, per-thread, internally synchronized, or the
    // magic-static reference idiom (initialization is thread-safe and the
    // referent is expected to synchronize itself).
    bool exempt = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == Tok::kPunct &&
          (toks[j].text == ";" || toks[j].text == "=" ||
           toks[j].text == "(" || toks[j].text == "{")) {
        break;
      }
      if (is_punct(toks, j, "&") ||
          (toks[j].kind == Tok::kIdent &&
           (toks[j].text == "const" || toks[j].text == "constexpr" ||
            toks[j].text == "constinit" || toks[j].text == "thread_local" ||
            toks[j].text == "atomic"))) {
        exempt = true;
        break;
      }
    }
    if (!exempt) {
      add("unguarded-static", toks[i].line,
          "mutable function-local static is shared across threads with no "
          "guard; guard it, make it const/thread_local/atomic, or justify "
          "with an allow()");
    }
  }
}

void pass_fp_reduction(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks, i, "parallel_for") || !is_punct(toks, i + 1, "("))
      continue;
    const std::size_t call_close = match_close(toks, i + 1, "(", ")");
    if (call_close == kNpos) continue;
    std::size_t cap_open = kNpos;
    for (std::size_t k = i + 2; k < call_close; ++k) {
      if (is_punct(toks, k, "[")) {
        cap_open = k;
        break;
      }
    }
    if (cap_open == kNpos) continue;  // declaration, not a lambda call site
    const std::size_t cap_close = match_close(toks, cap_open, "[", "]");
    if (cap_close == kNpos) continue;

    // Names the body may legitimately assign to: lambda parameters plus
    // anything it declares itself.
    std::set<std::string> locals;
    std::size_t j = cap_close + 1;
    if (is_punct(toks, j, "(")) {
      const std::size_t params_close = match_close(toks, j, "(", ")");
      if (params_close == kNpos) continue;
      for (std::size_t k = j + 1; k < params_close; ++k) {
        if (toks[k].kind == Tok::kIdent && k + 1 < toks.size() &&
            toks[k + 1].kind == Tok::kPunct &&
            (toks[k + 1].text == "," || toks[k + 1].text == ")")) {
          locals.insert(toks[k].text);
        }
      }
      j = params_close + 1;
    }
    while (j < call_close && !is_punct(toks, j, "{")) ++j;
    if (j >= call_close) continue;
    const std::size_t body_open = j;
    const std::size_t body_close = match_close(toks, body_open, "{", "}");
    if (body_close == kNpos) continue;

    static const std::set<std::string> kDeclNext = {"=", ";", ",",
                                                    ":", "(", "{"};
    static const std::set<std::string> kDeclPrevPunct = {">", ">>", "&", "*",
                                                         "&&", "[", ","};
    static const std::set<std::string> kNotDeclPrevIdent = {
        "return", "throw", "goto", "case", "new", "delete",
        "co_return", "co_yield"};
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (toks[k].kind != Tok::kIdent || k + 1 >= toks.size() || k == 0)
        continue;
      const Token& nxt = toks[k + 1];
      const Token& prv = toks[k - 1];
      if (nxt.kind != Tok::kPunct || kDeclNext.count(nxt.text) == 0) continue;
      const bool prev_declish =
          (prv.kind == Tok::kIdent && kNotDeclPrevIdent.count(prv.text) == 0) ||
          (prv.kind == Tok::kPunct && kDeclPrevPunct.count(prv.text) > 0);
      if (prev_declish) locals.insert(toks[k].text);
    }
    static const std::set<std::string> kCompound = {"+=", "-=", "*=", "/="};
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (toks[k].kind != Tok::kPunct || kCompound.count(toks[k].text) == 0)
        continue;
      if (k == 0 || toks[k - 1].kind != Tok::kIdent) continue;
      const std::string& lhs = toks[k - 1].text;
      if (k >= 2) {
        const Token& before = toks[k - 2];
        if (before.kind == Tok::kPunct &&
            (before.text == "." || before.text == "->" || before.text == "]"))
          continue;  // member or element write, e.g. out[i] += v
      }
      if (locals.count(lhs) > 0) continue;
      add("fp-reduction", toks[k - 1].line,
          "'" + lhs + "' is accumulated from inside a parallel_for body; "
          "write into a per-index slot and reduce serially after the loop "
          "(summation order must not depend on thread interleaving)");
    }
  }
}

void pass_unchecked_stod(const Lexed& lx, const AddFn& add) {
  // std::sto* throws std::invalid_argument/out_of_range on malformed input
  // and silently accepts trailing garbage ("1.5x" parses as 1.5). On
  // external input (CSV cells, CLI flags, env specs) that is an ingest
  // crash or a misparse, so every call must sit inside a try/catch that
  // turns the failure into a located error (DESIGN.md §5f).
  static const std::set<std::string> kStoFns = {
      "stod", "stof", "stold", "stoi", "stol",
      "stoll", "stoul", "stoull"};
  const auto& toks = lx.tokens;

  // Token ranges covered by a try block body.
  std::vector<std::pair<std::size_t, std::size_t>> try_ranges;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks, i, "try") || !is_punct(toks, i + 1, "{")) continue;
    const std::size_t close = match_close(toks, i + 1, "{", "}");
    if (close != kNpos) try_ranges.emplace_back(i + 1, close);
  }
  const auto inside_try = [&](std::size_t i) {
    for (const auto& [open, close] : try_ranges) {
      if (i > open && i < close) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kStoFns.count(toks[i].text) == 0)
      continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    if (prev_is_member_access(toks, i)) continue;  // e.g. parser.stod(...)
    if (inside_try(i)) continue;
    add("unchecked-stod", toks[i].line,
        "std::" + toks[i].text +
            " throws on malformed input and accepts trailing garbage; "
            "wrap it in try/catch with a full-consumption (pos == size) "
            "check and report where the bad value came from");
  }
}

// ---- suppression directives ----------------------------------------------

struct Directive {
  std::set<std::string> rules;
  std::vector<std::string> unknown;
  bool has_reason = false;
  bool malformed = false;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

std::map<std::size_t, Directive> parse_directives(
    const std::map<std::size_t, std::string>& comments,
    const std::set<std::string>& known_rules) {
  static const std::string kMarker = "opprentice-check:";
  std::map<std::size_t, Directive> out;
  for (const auto& [line, raw] : comments) {
    // The marker must open the comment; mentions of the syntax in prose
    // (like this checker's own documentation) are not directives.
    const std::string_view text = trim(raw);
    if (text.substr(0, kMarker.size()) != kMarker) continue;
    Directive d;
    std::string_view rest = trim(text.substr(kMarker.size()));
    const std::string kAllow = "allow(";
    const std::size_t open = rest.find(kAllow);
    const std::size_t close = rest.find(')');
    if (open != 0 || close == std::string_view::npos || close < kAllow.size()) {
      d.malformed = true;
      out.emplace(line, std::move(d));
      continue;
    }
    std::string_view inside =
        rest.substr(kAllow.size(), close - kAllow.size());
    while (!inside.empty()) {
      const std::size_t comma = inside.find(',');
      const std::string_view piece = trim(inside.substr(0, comma));
      if (!piece.empty()) {
        const std::string rule(piece);
        if (known_rules.count(rule) > 0) {
          d.rules.insert(rule);
        } else {
          d.unknown.push_back(rule);
        }
      }
      if (comma == std::string_view::npos) break;
      inside.remove_prefix(comma + 1);
    }
    if (d.rules.empty() && d.unknown.empty()) d.malformed = true;
    for (const char c : trim(rest.substr(close + 1))) {
      if (is_ident_char(c)) {
        d.has_reason = true;
        break;
      }
    }
    out.emplace(line, std::move(d));
  }
  return out;
}

}  // namespace

// ---- public API ----------------------------------------------------------

const std::vector<CheckRule>& check_rules() {
  static const std::vector<CheckRule> kRules = {
      {"random-device",
       "std::random_device — nondeterministic entropy source"},
      {"rand", "rand()/srand() — hidden global RNG state"},
      {"wall-clock-seed", "clock reads (time(), *_clock::now()) feeding a "
                          "seed"},
      {"raw-thread", "std::thread or .detach() outside util/thread_pool.cpp"},
      {"unordered-iteration",
       "iterating an unordered container — hash order is unspecified"},
      {"unguarded-static",
       "mutable function-local static without a guard"},
      {"fp-reduction", "compound assignment to a captured variable inside a "
                       "parallel_for body"},
      {"unchecked-stod", "raw std::sto* on external input without a "
                         "try/catch"},
  };
  return kRules;
}

std::vector<CheckViolation> check_source(std::string_view path,
                                         std::string_view content) {
  const Lexed lx = lex(content);
  std::vector<CheckViolation> found;
  const AddFn add = [&](const char* rule, std::size_t line,
                        std::string message) {
    found.push_back({rule, std::string(path), line, std::move(message)});
  };

  pass_random_device(lx, add);
  pass_rand(lx, add);
  pass_wall_clock_seed(lx, add);
  pass_raw_thread(lx, path, add);
  pass_unordered_iteration(lx, add);
  pass_unguarded_static(lx, add);
  pass_fp_reduction(lx, add);
  pass_unchecked_stod(lx, add);

  std::set<std::string> known;
  for (const auto& rule : check_rules()) known.insert(rule.id);
  const std::map<std::size_t, Directive> directives =
      parse_directives(lx.comments, known);

  // A reasoned allow() on the violation's line or the line above wins.
  std::vector<CheckViolation> out;
  for (auto& v : found) {
    bool suppressed = false;
    for (const std::size_t at : {v.line, v.line > 1 ? v.line - 1 : v.line}) {
      const auto it = directives.find(at);
      if (it != directives.end() && it->second.has_reason &&
          it->second.rules.count(v.rule) > 0) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(v));
  }
  for (const auto& [line, d] : directives) {
    if (d.malformed || !d.has_reason) {
      out.push_back({"allow-without-reason", std::string(path), line,
                     "suppression must name a rule and give a reason: "
                     "opprentice-check: allow(<rule>) <why this is safe>"});
    }
    for (const auto& rule : d.unknown) {
      out.push_back({"allow-unknown-rule", std::string(path), line,
                     "allow() names unknown rule '" + rule +
                         "'; run opprentice_check --list-rules for valid "
                         "ids"});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CheckViolation& a, const CheckViolation& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const CheckViolation& a, const CheckViolation& b) {
                          return a.line == b.line && a.rule == b.rule &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

namespace {

bool is_checked_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool in_skipped_directory(const std::filesystem::path& p) {
  for (const auto& part : p.parent_path()) {
    const std::string s = part.string();
    if (s == ".git" || s == "bench-cache" || s.rfind("build", 0) == 0 ||
        s.rfind("cmake-build", 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

LintReport check_tree(const std::vector<std::string>& roots) {
  LintReport report;
  std::vector<std::filesystem::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec)) {
      report.fail("missing-root", "'" + root + "' is not a directory");
      continue;
    }
    for (auto it = std::filesystem::recursive_directory_iterator(
             root, std::filesystem::directory_options::skip_permission_denied);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::filesystem::path& p = it->path();
      if (is_checked_extension(p) && !in_skipped_directory(p)) {
        files.push_back(p);
      }
    }
  }
  // Directory enumeration order is filesystem-dependent; this tool holds
  // itself to the contract it enforces.
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++report.checks_run;
    for (const auto& v : check_source(file.string(), buffer.str())) {
      std::ostringstream msg;
      msg << v.file << ':' << v.line << ": " << v.message;
      report.fail(v.rule, msg.str());
    }
  }
  return report;
}

LintReport check_self_test() {
  LintReport result;
  const TempTree tree("opprentice-check-selftest");

  tree.plant("src/fixture_random_device.cpp",
             R"cpp(#include <random>

std::uint64_t fresh_entropy() {
  std::random_device dev;
  return dev();
}
)cpp");
  tree.plant("src/fixture_rand.cpp",
             R"cpp(#include <cstdlib>

int jitter() { return std::rand() % 3; }
)cpp");
  tree.plant("src/fixture_wall_clock_seed.cpp",
             R"cpp(#include <ctime>

unsigned make_run_seed() {
  const unsigned seed = static_cast<unsigned>(std::time(nullptr));
  return seed;
}
)cpp");
  tree.plant("src/fixture_raw_thread.cpp",
             R"cpp(#include <thread>

void run_blocking(void (*task)()) {
  std::thread runner(task);
  runner.join();
}
)cpp");
  tree.plant("src/fixture_unordered_iteration.cpp",
             R"cpp(#include <string>
#include <unordered_map>

std::unordered_map<std::string, double> g_totals;

double sum_totals() {
  double sum = 0.0;
  for (const auto& entry : g_totals) sum += entry.second;
  return sum;
}
)cpp");
  tree.plant("src/fixture_unguarded_static.cpp",
             R"cpp(int next_ticket() {
  static int counter = 0;
  return ++counter;
}
)cpp");
  tree.plant("src/fixture_unchecked_stod.cpp",
             R"cpp(#include <string>

double parse_ratio(const std::string& text) { return std::stod(text); }
)cpp");
  tree.plant("src/fixture_fp_reduction.cpp",
             R"cpp(#include <cstddef>
#include <vector>

double parallel_sum(const std::vector<double>& values) {
  double total = 0.0;
  opprentice::util::parallel_for(values.size(), [&](std::size_t i) {
    total += values[i];
  });
  return total;
}
)cpp");
  // Reasoned suppressions (same line and line above) must stay silent.
  tree.plant("src/fixture_suppressed.cpp",
             R"cpp(#include <random>

std::uint32_t demo_entropy() {
  std::random_device dev;  // opprentice-check: allow(random-device) fixture: exercises a reasoned same-line suppression
  return dev();
}

int bump() {
  // opprentice-check: allow(unguarded-static) fixture: exercises a line-above suppression
  static int hits = 0;
  return ++hits;
}
)cpp");
  tree.plant("src/fixture_bare_allow.cpp",
             R"cpp(// opprentice-check: allow(rand)
int bare_allow_placeholder = 0;
)cpp");
  tree.plant("src/fixture_unknown_allow.cpp",
             R"cpp(// opprentice-check: allow(no-such-rule) the rule id is misspelled on purpose
int unknown_allow_placeholder = 0;
)cpp");
  // Not a C++ extension: must be skipped by the walk.
  tree.plant("src/notes.txt", "std::rand();\n");

  const LintReport scanned = check_tree({tree.root().string()});

  std::map<std::string, std::size_t> tally;
  for (const auto& issue : scanned.issues) ++tally[issue.check];

  std::map<std::string, std::size_t> expected;
  for (const auto& rule : check_rules()) expected[rule.id] = 1;
  expected["allow-without-reason"] = 1;
  expected["allow-unknown-rule"] = 1;

  for (const auto& [rule, count] : expected) {
    ++result.checks_run;
    const std::size_t got = tally.count(rule) > 0 ? tally[rule] : 0;
    if (got != count) {
      std::ostringstream msg;
      msg << "rule '" << rule << "' fired " << got
          << " times on the planted tree, expected exactly " << count;
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // nothing beyond the expectations fired
  for (const auto& [rule, count] : tally) {
    if (expected.count(rule) == 0) {
      std::ostringstream msg;
      msg << "unexpected '" << rule << "' fired " << count
          << " times on the planted tree";
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // extension filter: 11 planted .cpp, notes.txt skipped
  if (scanned.checks_run != 11) {
    std::ostringstream msg;
    msg << "walk scanned " << scanned.checks_run
        << " files, expected the 11 planted .cpp fixtures";
    result.fail("self-test", msg.str());
  }
  return result;
}

}  // namespace opprentice::tools
