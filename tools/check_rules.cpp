#include "tools/check_rules.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace opprentice::tools {
namespace {

using namespace cpp;  // shared tokenizer (tools/lint_common.hpp)

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string basename_of(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return std::string(slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1));
}

// Module of a source path: the path component after the last "src"
// (e.g. src/util/mutex.hpp -> "util"), or "tools"/"bench" for files under
// those roots. Empty when the file sits directly in src/ or elsewhere.
std::string module_of(const std::filesystem::path& path) {
  std::vector<std::string> parts;
  for (const auto& part : path) parts.push_back(part.string());
  std::string module;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const bool last = i + 1 == parts.size();
    if (parts[i] == "src" && i + 2 < parts.size()) {
      module = parts[i + 1];
    } else if ((parts[i] == "tools" || parts[i] == "bench") && !last) {
      module = parts[i];
    }
  }
  return module;
}

// Module an #include "..." path points into: its first directory component
// (project includes are rooted at src/, so "util/mutex.hpp" -> "util").
// Empty for flat includes and <angled> system headers.
std::string include_module(const Include& inc) {
  if (inc.angled) return std::string();
  const std::size_t slash = inc.path.find('/');
  if (slash == std::string::npos) return std::string();
  return inc.path.substr(0, slash);
}

using AddFn = std::function<void(const char*, std::size_t, std::string)>;

// ---- rule passes ---------------------------------------------------------

void pass_random_device(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "random_device")) {
      add("random-device", toks[i].line,
          "std::random_device draws nondeterministic entropy; seed a "
          "util::Rng from configuration instead");
    }
  }
}

void pass_rand(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (toks[i].text != "rand" && toks[i].text != "srand") continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    if (prev_is_member_access(toks, i)) continue;
    add("rand", toks[i].line,
        toks[i].text + "() uses hidden global RNG state; use a locally "
        "seeded util::Rng");
  }
}

bool is_seedish_ident(const Token& tok) {
  if (tok.kind != Tok::kIdent) return false;
  const std::string lowered = lower(tok.text);
  if (lowered.find("seed") != std::string::npos) return true;
  if (lowered.find("rng") != std::string::npos) return true;
  static const std::set<std::string> kEngines = {
      "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
      "ranlux24",      "ranlux48",     "ranlux24_base", "ranlux48_base",
      "knuth_b",       "default_random_engine", "srand"};
  return kEngines.count(tok.text) > 0;
}

// Index of a clock read inside [begin, end), or kNpos.
std::size_t find_clock_read(const std::vector<Token>& toks, std::size_t begin,
                            std::size_t end) {
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != Tok::kIdent) continue;
    if (toks[k].text == "time" && is_punct(toks, k + 1, "(") &&
        !prev_is_member_access(toks, k)) {
      return k;
    }
    if (kClocks.count(toks[k].text) > 0 && is_punct(toks, k + 1, "::") &&
        is_ident(toks, k + 2, "now")) {
      return k;
    }
  }
  return kNpos;
}

void pass_wall_clock_seed(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  std::size_t stmt_begin = 0;
  const auto scan = [&](std::size_t begin, std::size_t end) {
    const std::size_t clock_at = find_clock_read(toks, begin, end);
    if (clock_at == kNpos) return;
    for (std::size_t k = begin; k < end; ++k) {
      if (is_seedish_ident(toks[k])) {
        add("wall-clock-seed", toks[clock_at].line,
            "clock read feeds an RNG seed; runs become unreproducible — "
            "thread an explicit seed through instead");
        return;
      }
    }
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct &&
        (toks[i].text == ";" || toks[i].text == "{" || toks[i].text == "}")) {
      scan(stmt_begin, i);
      stmt_begin = i + 1;
    }
  }
  scan(stmt_begin, toks.size());
}

void pass_raw_thread(const Lexed& lx, std::string_view path,
                     const AddFn& add) {
  const std::string base = basename_of(path);
  // The pool implementation is the one place allowed to own threads.
  if (base == "thread_pool.cpp" || base == "thread_pool.hpp") return;
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "std") && is_punct(toks, i + 1, "::") &&
        is_ident(toks, i + 2, "thread") && !is_punct(toks, i + 3, "::")) {
      add("raw-thread", toks[i + 2].line,
          "raw std::thread outside util/thread_pool.cpp; route parallelism "
          "through util::parallel_for so the determinism guarantees hold");
    }
    if (is_ident(toks, i, "detach") && prev_is_member_access(toks, i) &&
        is_punct(toks, i + 1, "(")) {
      add("raw-thread", toks[i].line,
          "detached threads outlive the scope that reasons about them; use "
          "util::parallel_for or a joined scope");
    }
  }
}

void pass_raw_mutex(const Lexed& lx, std::string_view path, const AddFn& add) {
  // util/mutex.hpp is the one place allowed to touch the raw std
  // synchronization primitives; everything else goes through
  // util::Mutex/MutexLock/CondVar so the lock-discipline analyzer
  // (opprentice_locks) sees every acquisition.
  if (basename_of(path) == "mutex.hpp") return;
  static const std::set<std::string> kPrimitives = {
      "lock_guard",         "unique_lock",
      "scoped_lock",        "shared_lock",
      "condition_variable", "condition_variable_any",
      "timed_mutex",        "recursive_mutex",
      "shared_mutex",       "recursive_timed_mutex",
      "shared_timed_mutex"};
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (prev_is_member_access(toks, i)) continue;
    // Unlike the unmistakable primitive names, bare "mutex" is a common
    // member name; only the std-qualified form is the raw type.
    const bool std_qualified = i >= 2 && is_punct(toks, i - 1, "::") &&
                               is_ident(toks, i - 2, "std");
    if (kPrimitives.count(toks[i].text) > 0 ||
        (toks[i].text == "mutex" && std_qualified)) {
      add("raw-mutex", toks[i].line,
          "raw std::" + toks[i].text +
              " outside util/mutex.hpp; use util::Mutex/MutexLock/CondVar "
              "so opprentice_locks can analyze every acquisition");
    }
  }
}

void pass_raw_socket(const Lexed& lx, std::string_view path,
                     const AddFn& add) {
  // net/sockets.* is the one place allowed to speak to the socket layer;
  // everything else goes through net::SocketServer/SocketClient so fd
  // lifecycle (close-on-drain, reset handling, nonblocking setup) stays
  // in one audited file and the session core stays byte-replayable.
  const std::string base = basename_of(path);
  if (base == "sockets.cpp" || base == "sockets.hpp") return;
  static const std::set<std::string> kSocketFns = {
      "socket",  "accept",     "accept4",    "listen",
      "recv",    "send",       "recvfrom",   "sendto",
      "recvmsg", "sendmsg",    "setsockopt", "getsockopt"};
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kSocketFns.count(toks[i].text) == 0)
      continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    if (prev_is_member_access(toks, i)) continue;  // e.g. client.send(...)
    // Namespace-qualified names (net::send) are project wrappers; only
    // the bare or global-scope (::recv) forms are the raw syscalls. A
    // statement keyword before '::' still means global scope
    // ("return ::socket(...)").
    static const std::set<std::string> kStmtKeywords = {
        "return", "throw", "else", "do", "case", "co_return", "co_yield"};
    if (i >= 2 && is_punct(toks, i - 1, "::") &&
        toks[i - 2].kind == Tok::kIdent &&
        kStmtKeywords.count(toks[i - 2].text) == 0) {
      continue;
    }
    add("raw-socket", toks[i].line,
        toks[i].text +
            "() outside net/sockets.*; use net::SocketServer/SocketClient "
            "so fd lifecycle stays confined to the audited wire layer");
  }
}

void pass_unordered_iteration(const Lexed& lx, const AddFn& add) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& toks = lx.tokens;

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kUnorderedTypes.count(toks[i].text) == 0)
      continue;
    if (!is_punct(toks, i + 1, "<")) continue;
    const std::size_t close = match_template_close(toks, i + 1);
    if (close == kNpos) continue;
    std::size_t j = close + 1;
    while (j < toks.size() &&
           (is_punct(toks, j, "&") || is_punct(toks, j, "*") ||
            is_ident(toks, j, "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;
    static const std::set<std::string> kAfterName = {";", "=", "{",
                                                     "(", ")", ","};
    if (j + 1 < toks.size() && toks[j + 1].kind == Tok::kPunct &&
        kAfterName.count(toks[j + 1].text) > 0) {
      names.insert(toks[j].text);
    }
  }
  if (names.empty()) return;

  // Pass 2: iteration over one of those names.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks, i, "for") && is_punct(toks, i + 1, "(")) {
      const std::size_t close = match_close(toks, i + 1, "(", ")");
      if (close == kNpos) continue;
      int depth = 1;
      std::size_t colon = kNpos;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind != Tok::kPunct) continue;
        if (toks[k].text == "(") ++depth;
        else if (toks[k].text == ")") --depth;
        else if (toks[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon != kNpos && close == colon + 2 &&
          toks[colon + 1].kind == Tok::kIdent &&
          names.count(toks[colon + 1].text) > 0) {
        add("unordered-iteration", toks[colon + 1].line,
            "iterating '" + toks[colon + 1].text +
                "' visits hash order, which is unspecified; use "
                "std::map/std::set or sort the keys first");
      }
    }
    if (toks[i].kind == Tok::kIdent && names.count(toks[i].text) > 0 &&
        i + 3 < toks.size() && toks[i + 1].kind == Tok::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
        is_punct(toks, i + 3, "(")) {
      add("unordered-iteration", toks[i].line,
          "iterator over '" + toks[i].text +
              "' visits hash order, which is unspecified; use "
              "std::map/std::set or sort the keys first");
    }
  }
}

void pass_unguarded_static(const Lexed& lx, const AddFn& add) {
  enum class Scope { kNamespace, kType, kBlock };
  const auto& toks = lx.tokens;
  std::vector<Scope> stack;
  std::size_t window_start = 0;  // first token after the last ; { or }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct) {
      const std::string& t = toks[i].text;
      if (t == "{") {
        Scope kind = Scope::kBlock;
        if (!(i > 0 && is_punct(toks, i - 1, ")"))) {
          for (std::size_t k = window_start; k < i; ++k) {
            if (toks[k].kind != Tok::kIdent) continue;
            if (toks[k].text == "namespace") {
              kind = Scope::kNamespace;
              break;
            }
            if (toks[k].text == "class" || toks[k].text == "struct" ||
                toks[k].text == "union" || toks[k].text == "enum") {
              kind = Scope::kType;
            }
          }
        }
        stack.push_back(kind);
        window_start = i + 1;
      } else if (t == "}") {
        if (!stack.empty()) stack.pop_back();
        window_start = i + 1;
      } else if (t == ";") {
        window_start = i + 1;
      }
      continue;
    }
    if (!is_ident(toks, i, "static")) continue;
    if (stack.empty() || stack.back() != Scope::kBlock) continue;
    // Exemptions: immutable, per-thread, internally synchronized, or the
    // magic-static reference idiom (initialization is thread-safe and the
    // referent is expected to synchronize itself).
    bool exempt = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == Tok::kPunct &&
          (toks[j].text == ";" || toks[j].text == "=" ||
           toks[j].text == "(" || toks[j].text == "{")) {
        break;
      }
      if (is_punct(toks, j, "&") ||
          (toks[j].kind == Tok::kIdent &&
           (toks[j].text == "const" || toks[j].text == "constexpr" ||
            toks[j].text == "constinit" || toks[j].text == "thread_local" ||
            toks[j].text == "atomic"))) {
        exempt = true;
        break;
      }
    }
    if (!exempt) {
      add("unguarded-static", toks[i].line,
          "mutable function-local static is shared across threads with no "
          "guard; guard it, make it const/thread_local/atomic, or justify "
          "with an allow()");
    }
  }
}

void pass_fp_reduction(const Lexed& lx, const AddFn& add) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks, i, "parallel_for") || !is_punct(toks, i + 1, "("))
      continue;
    const std::size_t call_close = match_close(toks, i + 1, "(", ")");
    if (call_close == kNpos) continue;
    std::size_t cap_open = kNpos;
    for (std::size_t k = i + 2; k < call_close; ++k) {
      if (is_punct(toks, k, "[")) {
        cap_open = k;
        break;
      }
    }
    if (cap_open == kNpos) continue;  // declaration, not a lambda call site
    const std::size_t cap_close = match_close(toks, cap_open, "[", "]");
    if (cap_close == kNpos) continue;

    // Names the body may legitimately assign to: lambda parameters plus
    // anything it declares itself.
    std::set<std::string> locals;
    std::size_t j = cap_close + 1;
    if (is_punct(toks, j, "(")) {
      const std::size_t params_close = match_close(toks, j, "(", ")");
      if (params_close == kNpos) continue;
      for (std::size_t k = j + 1; k < params_close; ++k) {
        if (toks[k].kind == Tok::kIdent && k + 1 < toks.size() &&
            toks[k + 1].kind == Tok::kPunct &&
            (toks[k + 1].text == "," || toks[k + 1].text == ")")) {
          locals.insert(toks[k].text);
        }
      }
      j = params_close + 1;
    }
    while (j < call_close && !is_punct(toks, j, "{")) ++j;
    if (j >= call_close) continue;
    const std::size_t body_open = j;
    const std::size_t body_close = match_close(toks, body_open, "{", "}");
    if (body_close == kNpos) continue;

    static const std::set<std::string> kDeclNext = {"=", ";", ",",
                                                    ":", "(", "{"};
    static const std::set<std::string> kDeclPrevPunct = {">", ">>", "&", "*",
                                                         "&&", "[", ","};
    static const std::set<std::string> kNotDeclPrevIdent = {
        "return", "throw", "goto", "case", "new", "delete",
        "co_return", "co_yield"};
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (toks[k].kind != Tok::kIdent || k + 1 >= toks.size() || k == 0)
        continue;
      const Token& nxt = toks[k + 1];
      const Token& prv = toks[k - 1];
      if (nxt.kind != Tok::kPunct || kDeclNext.count(nxt.text) == 0) continue;
      const bool prev_declish =
          (prv.kind == Tok::kIdent && kNotDeclPrevIdent.count(prv.text) == 0) ||
          (prv.kind == Tok::kPunct && kDeclPrevPunct.count(prv.text) > 0);
      if (prev_declish) locals.insert(toks[k].text);
    }
    static const std::set<std::string> kCompound = {"+=", "-=", "*=", "/="};
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (toks[k].kind != Tok::kPunct || kCompound.count(toks[k].text) == 0)
        continue;
      if (k == 0 || toks[k - 1].kind != Tok::kIdent) continue;
      const std::string& lhs = toks[k - 1].text;
      if (k >= 2) {
        const Token& before = toks[k - 2];
        if (before.kind == Tok::kPunct &&
            (before.text == "." || before.text == "->" || before.text == "]"))
          continue;  // member or element write, e.g. out[i] += v
      }
      if (locals.count(lhs) > 0) continue;
      add("fp-reduction", toks[k - 1].line,
          "'" + lhs + "' is accumulated from inside a parallel_for body; "
          "write into a per-index slot and reduce serially after the loop "
          "(summation order must not depend on thread interleaving)");
    }
  }
}

void pass_unchecked_stod(const Lexed& lx, const AddFn& add) {
  // std::sto* throws std::invalid_argument/out_of_range on malformed input
  // and silently accepts trailing garbage ("1.5x" parses as 1.5). On
  // external input (CSV cells, CLI flags, env specs) that is an ingest
  // crash or a misparse, so every call must sit inside a try/catch that
  // turns the failure into a located error (DESIGN.md §5f).
  static const std::set<std::string> kStoFns = {
      "stod", "stof", "stold", "stoi", "stol",
      "stoll", "stoul", "stoull"};
  const auto& toks = lx.tokens;

  // Token ranges covered by a try block body.
  std::vector<std::pair<std::size_t, std::size_t>> try_ranges;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks, i, "try") || !is_punct(toks, i + 1, "{")) continue;
    const std::size_t close = match_close(toks, i + 1, "{", "}");
    if (close != kNpos) try_ranges.emplace_back(i + 1, close);
  }
  const auto inside_try = [&](std::size_t i) {
    for (const auto& [open, close] : try_ranges) {
      if (i > open && i < close) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kStoFns.count(toks[i].text) == 0)
      continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    if (prev_is_member_access(toks, i)) continue;  // e.g. parser.stod(...)
    if (inside_try(i)) continue;
    add("unchecked-stod", toks[i].line,
        "std::" + toks[i].text +
            " throws on malformed input and accepts trailing garbage; "
            "wrap it in try/catch with a full-consumption (pos == size) "
            "check and report where the bad value came from");
  }
}

void pass_layering(std::string_view path, std::string_view content,
                   const AddFn& add) {
  // Dependencies point downward: src/util is the foundation and must not
  // include the layers built on it. (Cross-module include *cycles* need
  // the whole tree and are detected in check_tree.)
  if (module_of(std::filesystem::path(std::string(path))) != "util") return;
  static const std::set<std::string> kAbove = {"core", "detectors", "ml"};
  for (const Include& inc : scan_includes(content)) {
    const std::string target = include_module(inc);
    if (kAbove.count(target) > 0) {
      add("layering", inc.line,
          "src/util must not include src/" + target + " ('" + inc.path +
              "'); util is the foundation layer — move the shared piece "
              "down or invert the dependency");
    }
  }
}

}  // namespace

// ---- public API ----------------------------------------------------------

const std::vector<CheckRule>& check_rules() {
  static const std::vector<CheckRule> kRules = {
      {"random-device",
       "std::random_device — nondeterministic entropy source"},
      {"rand", "rand()/srand() — hidden global RNG state"},
      {"wall-clock-seed", "clock reads (time(), *_clock::now()) feeding a "
                          "seed"},
      {"raw-thread", "std::thread or .detach() outside util/thread_pool.cpp"},
      {"raw-mutex", "raw std synchronization primitives outside "
                    "util/mutex.hpp"},
      {"raw-socket", "raw socket syscalls outside net/sockets.*"},
      {"unordered-iteration",
       "iterating an unordered container — hash order is unspecified"},
      {"unguarded-static",
       "mutable function-local static without a guard"},
      {"fp-reduction", "compound assignment to a captured variable inside a "
                       "parallel_for body"},
      {"unchecked-stod", "raw std::sto* on external input without a "
                         "try/catch"},
      {"layering", "src/util including src/{core,detectors,ml}, or an "
                   "include cycle between modules"},
      {"unused-suppression",
       "reasoned allow() that no longer matches any finding"},
  };
  return kRules;
}

std::vector<CheckViolation> check_source(std::string_view path,
                                         std::string_view content) {
  const cpp::Lexed lx = cpp::lex(content);
  std::vector<CheckViolation> found;
  const AddFn add = [&](const char* rule, std::size_t line,
                        std::string message) {
    found.push_back({rule, std::string(path), line, std::move(message)});
  };

  pass_random_device(lx, add);
  pass_rand(lx, add);
  pass_wall_clock_seed(lx, add);
  pass_raw_thread(lx, path, add);
  pass_raw_mutex(lx, path, add);
  pass_raw_socket(lx, path, add);
  pass_unordered_iteration(lx, add);
  pass_unguarded_static(lx, add);
  pass_fp_reduction(lx, add);
  pass_unchecked_stod(lx, add);
  pass_layering(path, content, add);

  std::set<std::string> known;
  for (const auto& rule : check_rules()) known.insert(rule.id);
  const std::map<std::size_t, cpp::Directive> directives =
      cpp::parse_directives(lx.comments, "opprentice-check:", known);

  // A reasoned allow() on the violation's line or the line above wins.
  std::vector<CheckViolation> out;
  std::set<std::size_t> used;  // directive lines that silenced something
  for (auto& v : found) {
    bool suppressed = false;
    for (const std::size_t at : {v.line, v.line > 1 ? v.line - 1 : v.line}) {
      const auto it = directives.find(at);
      if (it != directives.end() && it->second.has_reason &&
          it->second.rules.count(v.rule) > 0) {
        used.insert(at);
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(v));
  }
  for (const auto& [line, d] : directives) {
    if (d.malformed || !d.has_reason) {
      out.push_back({"allow-without-reason", std::string(path), line,
                     "suppression must name a rule and give a reason: "
                     "opprentice-check: allow(<rule>) <why this is safe>"});
      continue;
    }
    if (!d.unknown.empty()) {
      for (const auto& rule : d.unknown) {
        out.push_back({"allow-unknown-rule", std::string(path), line,
                       "allow() names unknown rule '" + rule +
                           "'; run opprentice_check --list-rules for valid "
                           "ids"});
      }
      continue;
    }
    if (used.count(line) == 0) {
      out.push_back({"unused-suppression", std::string(path), line,
                     "suppression matches no finding; remove it (the "
                     "hazard it excused is gone) or fix the rule name"});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CheckViolation& a, const CheckViolation& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const CheckViolation& a, const CheckViolation& b) {
                          return a.line == b.line && a.rule == b.rule &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

namespace {

bool is_header(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h";
}

// Cross-module include cycles, over *header* includes only. A header
// including across modules makes the dependency structural (every
// includer inherits it); a .cpp reaching into another module's headers is
// a one-way implementation dependency and cannot create a build-order
// hazard on its own (util/*.cpp legitimately include obs/ headers while
// obs/ headers include util/ headers).
void check_module_cycles(
    const std::map<std::string, std::map<std::string, std::string>>& edges,
    LintReport* report) {
  // edges: module -> included module -> example "file:line ('include')".
  const auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen;
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      const std::string at = stack.back();
      stack.pop_back();
      if (!seen.insert(at).second) continue;
      const auto it = edges.find(at);
      if (it == edges.end()) continue;
      for (const auto& [next, example] : it->second) {
        if (next == to) return true;
        stack.push_back(next);
      }
    }
    return false;
  };
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [a, outs] : edges) {
    for (const auto& [b, example] : outs) {
      if (a == b) continue;
      auto key = std::minmax(a, b);
      if (reported.count({key.first, key.second}) > 0) continue;
      if (reaches(b, a)) {
        reported.insert({key.first, key.second});
        std::ostringstream msg;
        msg << "include cycle between modules '" << a << "' and '" << b
            << "': " << example;
        const auto back = edges.find(b);
        if (back != edges.end()) {
          const auto direct = back->second.find(a);
          if (direct != back->second.end()) {
            msg << " while " << direct->second;
          }
        }
        msg << " — break the cycle by splitting the shared interface into "
               "the lower module";
        report->fail("layering", msg.str());
      }
    }
  }
}

}  // namespace

LintReport check_tree(const std::vector<std::string>& roots) {
  LintReport report;
  const std::vector<std::filesystem::path> files =
      list_cpp_sources(roots, &report);
  std::map<std::string, std::map<std::string, std::string>> header_edges;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++report.checks_run;
    const std::string content = buffer.str();
    for (const auto& v : check_source(file.string(), content)) {
      report.fail_at(v.rule, v.message, v.file, v.line);
    }
    if (is_header(file)) {
      const std::string from = module_of(file);
      if (from.empty()) continue;
      for (const Include& inc : cpp::scan_includes(content)) {
        const std::string to = include_module(inc);
        if (to.empty() || to == from) continue;
        auto& example = header_edges[from][to];
        if (example.empty()) {
          std::ostringstream ex;
          ex << file.string() << ':' << inc.line << " includes '" << inc.path
             << "'";
          example = ex.str();
        }
      }
    }
  }
  check_module_cycles(header_edges, &report);
  return report;
}

LintReport check_self_test() {
  LintReport result;
  const TempTree tree("opprentice-check-selftest");

  tree.plant("src/fixture_random_device.cpp",
             R"cpp(#include <random>

std::uint64_t fresh_entropy() {
  std::random_device dev;
  return dev();
}
)cpp");
  tree.plant("src/fixture_rand.cpp",
             R"cpp(#include <cstdlib>

int jitter() { return std::rand() % 3; }
)cpp");
  tree.plant("src/fixture_wall_clock_seed.cpp",
             R"cpp(#include <ctime>

unsigned make_run_seed() {
  const unsigned seed = static_cast<unsigned>(std::time(nullptr));
  return seed;
}
)cpp");
  tree.plant("src/fixture_raw_thread.cpp",
             R"cpp(#include <thread>

void run_blocking(void (*task)()) {
  std::thread runner(task);
  runner.join();
}
)cpp");
  tree.plant("src/fixture_unordered_iteration.cpp",
             R"cpp(#include <string>
#include <unordered_map>

std::unordered_map<std::string, double> g_totals;

double sum_totals() {
  double sum = 0.0;
  for (const auto& entry : g_totals) sum += entry.second;
  return sum;
}
)cpp");
  tree.plant("src/fixture_unguarded_static.cpp",
             R"cpp(int next_ticket() {
  static int counter = 0;
  return ++counter;
}
)cpp");
  tree.plant("src/fixture_raw_mutex.cpp",
             R"cpp(#include <mutex>

std::mutex g_serial_mutex;
)cpp");
  tree.plant("src/fixture_raw_socket.cpp",
             R"cpp(#include <sys/socket.h>

int open_listener() { return ::socket(AF_INET, SOCK_STREAM, 0); }
)cpp");
  tree.plant("src/fixture_unchecked_stod.cpp",
             R"cpp(#include <string>

double parse_ratio(const std::string& text) { return std::stod(text); }
)cpp");
  tree.plant("src/fixture_fp_reduction.cpp",
             R"cpp(#include <cstddef>
#include <vector>

double parallel_sum(const std::vector<double>& values) {
  double total = 0.0;
  opprentice::util::parallel_for(values.size(), [&](std::size_t i) {
    total += values[i];
  });
  return total;
}
)cpp");
  // Reasoned suppressions (same line and line above) must stay silent.
  tree.plant("src/fixture_suppressed.cpp",
             R"cpp(#include <random>

std::uint32_t demo_entropy() {
  std::random_device dev;  // opprentice-check: allow(random-device) fixture: exercises a reasoned same-line suppression
  return dev();
}

int bump() {
  // opprentice-check: allow(unguarded-static) fixture: exercises a line-above suppression
  static int hits = 0;
  return ++hits;
}
)cpp");
  tree.plant("src/fixture_bare_allow.cpp",
             R"cpp(// opprentice-check: allow(rand)
int bare_allow_placeholder = 0;
)cpp");
  tree.plant("src/fixture_unknown_allow.cpp",
             R"cpp(// opprentice-check: allow(no-such-rule) the rule id is misspelled on purpose
int unknown_allow_placeholder = 0;
)cpp");
  // Reasoned, well-formed, and matching nothing: itself an error.
  tree.plant("src/fixture_unused_allow.cpp",
             R"cpp(// opprentice-check: allow(rand) fixture: nothing on this line draws randomness
int unused_allow_placeholder = 0;
)cpp");
  // Layering, upward include: util reaching into ml. The obs include is
  // allowed (observability sits beside util, not above it).
  tree.plant("src/util/fixture_layering.cpp",
             R"cpp(#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"

int layering_placeholder = 0;
)cpp");
  // Layering, include cycle: two headers across modules including each
  // other. Exactly one cycle must be reported for the pair.
  tree.plant("src/alpha/widget.hpp",
             R"cpp(#pragma once
#include "beta/gadget.hpp"
)cpp");
  tree.plant("src/beta/gadget.hpp",
             R"cpp(#pragma once
#include "alpha/widget.hpp"
)cpp");
  // Not a C++ extension: must be skipped by the walk.
  tree.plant("src/notes.txt", "std::rand();\n");

  const LintReport scanned = check_tree({tree.root().string()});

  std::map<std::string, std::size_t> tally;
  for (const auto& issue : scanned.issues) ++tally[issue.check];

  std::map<std::string, std::size_t> expected;
  for (const auto& rule : check_rules()) expected[rule.id] = 1;
  expected["layering"] = 2;  // upward include + one cycle report
  expected["allow-without-reason"] = 1;
  expected["allow-unknown-rule"] = 1;

  for (const auto& [rule, count] : expected) {
    ++result.checks_run;
    const std::size_t got = tally.count(rule) > 0 ? tally[rule] : 0;
    if (got != count) {
      std::ostringstream msg;
      msg << "rule '" << rule << "' fired " << got
          << " times on the planted tree, expected exactly " << count;
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // nothing beyond the expectations fired
  for (const auto& [rule, count] : tally) {
    if (expected.count(rule) == 0) {
      std::ostringstream msg;
      msg << "unexpected '" << rule << "' fired " << count
          << " times on the planted tree";
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // extension filter: 17 planted sources, notes.txt skipped
  if (scanned.checks_run != 17) {
    std::ostringstream msg;
    msg << "walk scanned " << scanned.checks_run
        << " files, expected the 17 planted C++ fixtures";
    result.fail("self-test", msg.str());
  }
  return result;
}

}  // namespace opprentice::tools
