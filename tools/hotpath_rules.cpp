#include "tools/hotpath_rules.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/callgraph_common.hpp"

namespace opprentice::tools {
namespace {

using namespace cpp;  // shared tokenizer (tools/lint_common.hpp)
namespace cg = callgraph;

constexpr const char* kMarker = "opprentice-hotpath:";

std::set<std::string> known_rules_for_directives() {
  std::set<std::string> out;
  for (const auto& rule : hotpath_rules()) out.insert(rule.id);
  return out;
}

// Mines hot-path findings while the shared scanner collects call sites:
// allocation (new, sized container construction, growth without
// reserve()), lock acquisition, I/O, throws, and clock reads.
class HotpathMiner : public cg::BodyMiner {
 public:
  void on_body_begin(const std::vector<Token>&, std::size_t, std::size_t,
                     std::size_t) override {
    preallocated_.clear();
    in_throw_ = false;
  }

  void on_punct(const std::vector<Token>& toks, std::size_t i,
                cg::FnDef*) override {
    const std::string& p = toks[i].text;
    if (p == ";" || p == "{" || p == "}") in_throw_ = false;
  }

  std::size_t on_ident(const std::vector<Token>& toks, std::size_t i,
                       std::size_t close, cg::FnDef* def) override {
    const Token& t = toks[i];
    const std::string& id = t.text;
    if (id == "throw") {
      def->findings.push_back(
          {"throw", t.line,
           "throw on the hot path; exceptional exits cost microseconds and "
           "allocate — return a sentinel or guard the precondition at the "
           "boundary"});
      in_throw_ = true;
      return i;
    }
    if (id == "new" && !prev_is_member_access(toks, i)) {
      def->findings.push_back(
          {"alloc", t.line,
           "operator new on the hot path; preallocate at setup time"});
      return i;
    }
    if (cg::io_streams().count(id) > 0 && !prev_is_member_access(toks, i)) {
      def->findings.push_back(
          {"io", t.line,
           "'" + id + "' on the hot path; buffer through obs counters or "
           "move the write behind a cold gate"});
      return i;
    }
    if (cg::lock_types().count(id) > 0 &&
        (is_punct(toks, i + 1, "<") || is_punct(toks, i + 1, "(") ||
         (i + 1 < close && toks[i + 1].kind == Tok::kIdent))) {
      def->findings.push_back(
          {"lock", t.line,
           "'" + id + "' acquisition on the hot path; per-point work must "
           "stay lock-free — snapshot shared state at setup or use "
           "atomics"});
      return i;
    }
    if (cg::clock_types().count(id) > 0 && is_punct(toks, i + 1, "::") &&
        is_ident(toks, i + 2, "now")) {
      def->findings.push_back(
          {"clock", t.line,
           "'" + id + "::now()' on the hot path; clock reads cost ~20ns "
           "and serialize — derive time from the point's own timestamp or "
           "gate behind detailed timing"});
      return i + 2;
    }

    // Container construction with arguments: vector<double> v(n) / v{...}.
    if (cg::container_types().count(id) > 0) {
      std::size_t j = i + 1;
      if (is_punct(toks, j, "<")) {
        const std::size_t tclose = match_template_close(toks, j);
        if (tclose == kNpos || tclose >= close) return i;
        j = tclose + 1;
      }
      if (j < close && toks[j].kind == Tok::kIdent &&
          (is_punct(toks, j + 1, "(") || is_punct(toks, j + 1, "{"))) {
        const std::size_t args_open = j + 1;
        const std::size_t args_close =
            match_close(toks, args_open, toks[args_open].text,
                        toks[args_open].text == "(" ? ")" : "}");
        if (args_close != kNpos && args_close > args_open + 1) {
          def->findings.push_back(
              {"alloc", t.line,
               "sized construction of '" + id + " " + toks[j].text +
                   "' on the hot path; hoist the buffer to a member and "
                   "reuse it"});
        }
        return j + 1;
      }
    }
    return kNpos;
  }

  bool on_call(const std::vector<Token>& toks, std::size_t i, bool member,
               cg::FnDef* def) override {
    const Token& t = toks[i];
    const std::string& id = t.text;
    if (member) {
      // Receiver: the identifier before the access punct (for chained
      // accesses, the nearest one is the container being mutated).
      std::string receiver;
      if (i >= 2 && toks[i - 2].kind == Tok::kIdent) receiver = toks[i - 2].text;
      if (id == "reserve") {
        preallocated_.insert(receiver);
        return false;
      }
      if (cg::resizing_members().count(id) > 0) {
        def->findings.push_back(
            {"alloc", t.line,
             "'." + id + "()' on the hot path may reallocate; preallocate "
             "at setup and overwrite in place"});
        preallocated_.insert(receiver);
        return false;
      }
      if (cg::growing_members().count(id) > 0) {
        if (preallocated_.count(receiver) == 0) {
          def->findings.push_back(
              {"alloc", t.line,
               "'." + id + "()' grows '" + receiver +
                   "' on the hot path without a visible reserve(); "
                   "preallocate at setup time"});
        }
        return false;
      }
      if (cg::lock_members().count(id) > 0) {
        def->findings.push_back(
            {"lock", t.line,
             "'." + id + "()' on the hot path; per-point work must stay "
             "lock-free"});
        return false;
      }
    }

    if (!member && cg::alloc_free_fns().count(id) > 0) {
      def->findings.push_back(
          {"alloc", t.line,
           "'" + id + "' allocates on the hot path; preallocate at setup "
           "time"});
      return false;
    }
    if (!member && cg::io_fns().count(id) > 0) {
      def->findings.push_back(
          {"io", t.line,
           "'" + id + "' blocks on the hot path; move it behind a cold "
           "gate or an obs counter"});
      return false;
    }
    if (!member && cg::clock_fns().count(id) > 0) {
      def->findings.push_back(
          {"clock", t.line,
           "'" + id + "()' reads the clock on the hot path; derive time "
           "from the point's own timestamp"});
      return false;
    }

    if (in_throw_) return false;  // `throw std::runtime_error(...)` is one finding
    return true;
  }

 private:
  std::set<std::string> preallocated_;
  bool in_throw_ = false;  // suppress call collection inside throw exprs
};

}  // namespace

// ---- public API ----------------------------------------------------------

const std::vector<HotpathRule>& hotpath_rules() {
  static const std::vector<HotpathRule> kRules = {
      {"alloc", "heap allocation: new/malloc/make_*, sized container "
                "construction, growth without reserve()", false},
      {"lock", "mutex/lock acquisition or condition wait", false},
      {"io", "blocking I/O, logging, sleeps, system()", false},
      {"throw", "throw expression", false},
      {"clock", "wall/steady clock read", false},
      {"extern-call", "call to an unresolvable external function not on "
                      "the pure-compute allowlist", false},
      {"dispatch", "descent control: virtual call site; concrete targets "
                   "are rooted individually", true},
      {"cold-call", "descent control: amortized or gated call (refit, "
                    "quarantine, detailed-timing)", true},
  };
  return kRules;
}

HotpathResult hotpath_tree(const std::vector<std::string>& roots,
                           const HotpathOptions& opts) {
  HotpathResult result;
  LintReport& report = result.report;
  cg::CallGraph model;
  HotpathMiner miner;

  for (const auto& file : list_cpp_sources(roots, &report)) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++report.checks_run;
    cg::add_source(file.string(), buffer.str(), &model, &miner);
  }

  // file -> line -> directive, for walk-time suppression lookups.
  std::map<std::string, std::map<std::size_t, Directive>> directives_by_file;
  for (const auto& [file, comments] : model.comments) {
    directives_by_file[file] =
        parse_directives(comments, kMarker, known_rules_for_directives());
  }

  // Suppression misuse is an error wherever it appears, hot or cold.
  for (const auto& [file, directives] : directives_by_file) {
    for (const auto& [line, d] : directives) {
      if (d.malformed || !d.has_reason) {
        report.fail_at("allow-without-reason",
                       "suppression must name a rule and give a reason: "
                       "opprentice-hotpath: allow(<rule>) <why this is "
                       "safe>",
                       file, line);
      }
      for (const auto& rule : d.unknown) {
        report.fail_at("allow-unknown-rule",
                       "allow() names unknown rule '" + rule +
                           "'; run opprentice_hotpath --list-rules for "
                           "valid ids",
                       file, line);
      }
    }
  }

  // Roots: definitions marked hot, plus definitions matching a hot
  // declaration's (qualified) name.
  std::deque<std::size_t> queue;
  std::map<std::size_t, std::vector<std::string>> paths;
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < model.defs.size(); ++i) {
    cg::FnDef& def = model.defs[i];
    if (!def.hot && model.hot_decl_qualified.count(def.qualified) == 0 &&
        model.hot_decl_plain.count(def.qualified) == 0) {
      continue;
    }
    def.hot = true;
    ++result.root_count;
    if (seen.insert(i).second) {
      queue.push_back(i);
      paths[i] = {def.qualified};
    }
  }
  if (opts.min_roots > 0 && result.root_count < opts.min_roots) {
    std::ostringstream msg;
    msg << "only " << result.root_count << " OPPRENTICE_HOT roots found, "
        << "expected at least " << opts.min_roots
        << " — were hot-path annotations dropped in a refactor?";
    report.fail("min-roots", msg.str());
  }

  std::ostringstream graph;
  std::vector<std::string> graph_edges;
  if (opts.dump_graph) {
    graph << "roots (" << result.root_count << "):\n";
    for (const std::size_t i : queue) {
      graph << "  " << model.defs[i].qualified << "  " << model.defs[i].file
            << ':' << model.defs[i].line << '\n';
    }
  }

  std::set<std::tuple<std::string, std::string, std::size_t>> emitted;
  const auto emit = [&](const std::string& rule, const std::string& message,
                        const std::string& file, std::size_t line) {
    if (emitted.emplace(rule, file, line).second) {
      report.fail_at(rule, message, file, line);
    }
  };

  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    const cg::FnDef& def = model.defs[at];
    const std::vector<std::string>& path = paths[at];
    ++report.checks_run;
    const auto& directives = directives_by_file[def.file];

    const std::string via =
        path.size() > 1 ? " [hot via " + cg::join_path(path) + "]" : "";
    for (const cg::RawFinding& finding : def.findings) {
      if (cg::directive_allows(directives, finding.line, finding.rule)) {
        continue;
      }
      emit(finding.rule, "in " + def.qualified + ": " + finding.message + via,
           def.file, finding.line);
    }
    for (const cg::CallSite& call : def.calls) {
      if (cg::directive_allows(directives, call.line, "dispatch") ||
          cg::directive_allows(directives, call.line, "cold-call")) {
        continue;
      }
      if (def.local_callables.count(call.terminal) > 0) continue;
      bool external = false;
      const std::vector<std::size_t> targets =
          cg::resolve_call(model, def, call, &external);
      if (external) {
        if (cg::extern_allowlist().count(call.terminal) > 0) continue;
        if (call.member) continue;  // std container/member calls
        if (cg::directive_allows(directives, call.line, "extern-call")) {
          continue;
        }
        const std::string shown =
            call.chain.empty() ? call.terminal
                               : call.chain + "::" + call.terminal;
        emit("extern-call",
             "in " + def.qualified + ": call to external '" + shown +
                 "' which is not on the hot-path allowlist; resolve it in "
                 "the tree, allowlist it, or gate it with allow(cold-call)" +
                 via,
             def.file, call.line);
        continue;
      }
      for (const std::size_t target : targets) {
        if (opts.dump_graph) {
          std::ostringstream edge;
          edge << "  " << def.qualified << " -> "
               << model.defs[target].qualified << "  (" << def.file << ':'
               << call.line << ")\n";
          graph_edges.push_back(edge.str());
        }
        if (seen.insert(target).second) {
          std::vector<std::string> next = path;
          next.push_back(model.defs[target].qualified);
          paths[target] = std::move(next);
          queue.push_back(target);
        }
      }
    }
  }

  if (opts.dump_graph) {
    std::sort(graph_edges.begin(), graph_edges.end());
    graph_edges.erase(std::unique(graph_edges.begin(), graph_edges.end()),
                      graph_edges.end());
    graph << "edges (" << graph_edges.size() << "):\n";
    for (const auto& edge : graph_edges) graph << edge;
    result.graph = graph.str();
  }

  std::sort(report.issues.begin(), report.issues.end(),
            [](const LintIssue& a, const LintIssue& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return result;
}

LintReport hotpath_self_test() {
  LintReport result;
  const TempTree tree("opprentice-hotpath-selftest");

  // alloc: direct growth, operator new, and a silent preallocated pair.
  tree.plant("src/core/fixture_alloc.cpp",
             R"cpp(#include <vector>

OPPRENTICE_HOT void hot_alloc(std::vector<double>& out) {
  out.push_back(1.0);
  double* scratch = new double(0.0);
  *scratch = 1.0;
  std::vector<double> ok;
  ok.reserve(8);
  ok.push_back(2.0);
}
)cpp");
  // alloc (transitive, cross-file): the root is clean, its helper is not.
  tree.plant("src/core/fixture_transitive_root.cpp",
             R"cpp(OPPRENTICE_HOT double hot_transitive(double v) {
  return scale_and_store(v);
}
)cpp");
  tree.plant("src/core/fixture_transitive_helper.cpp",
             R"cpp(#include <vector>

std::vector<double> g_store;

double scale_and_store(double v) {
  g_store.resize(128);
  return v * 2.0;
}
)cpp");
  // lock: guard construction.
  tree.plant("src/core/fixture_lock.cpp",
             R"cpp(#include <mutex>

std::mutex g_mu;

OPPRENTICE_HOT double hot_lock(double v) {
  std::lock_guard<std::mutex> hold(g_mu);
  return v;
}
)cpp");
  // io: direct printf, plus a second finding reached through a hot
  // *declaration* whose definition lives at the bottom of the file.
  tree.plant("src/core/fixture_io.cpp",
             R"cpp(#include <cstdio>

OPPRENTICE_HOT void hot_io(double v) { std::printf("%f\n", v); }

OPPRENTICE_HOT double declared_hot(double v);

double declared_hot(double v) {
  std::fputs("tick\n", stderr);
  return v;
}
)cpp");
  // throw: one finding; the runtime_error construction must NOT also
  // count as an extern-call.
  tree.plant("src/core/fixture_throw.cpp",
             R"cpp(#include <stdexcept>

OPPRENTICE_HOT double hot_throw(double v) {
  if (v < 0.0) throw std::runtime_error("negative");
  return v;
}
)cpp");
  // clock.
  tree.plant("src/core/fixture_clock.cpp",
             R"cpp(#include <chrono>

OPPRENTICE_HOT long hot_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  // extern-call: unresolvable free function; std::sqrt stays silent.
  tree.plant("src/core/fixture_extern.cpp",
             R"cpp(#include <cmath>

OPPRENTICE_HOT double hot_extern(double v) {
  return mystery_library_smooth(std::sqrt(v));
}
)cpp");
  // Suppression misuse.
  tree.plant("src/core/fixture_bare_allow.cpp",
             R"cpp(// opprentice-hotpath: allow(alloc)
int hotpath_bare_allow_placeholder = 0;
)cpp");
  tree.plant("src/core/fixture_unknown_allow.cpp",
             R"cpp(// opprentice-hotpath: allow(flux) the rule id is misspelled on purpose
int hotpath_unknown_allow_placeholder = 0;
)cpp");
  // Reasoned suppression silences a real finding.
  tree.plant("src/core/fixture_suppressed.cpp",
             R"cpp(OPPRENTICE_HOT double hot_suppressed(double v) {
  // opprentice-hotpath: allow(alloc) fixture: exercises a reasoned line-above suppression
  double* once = new double(v);
  const double out = *once;
  delete once;
  return out;
}
)cpp");
  // cold-call: the gated refit may allocate; the walk must not descend.
  tree.plant("src/core/fixture_cold_call.cpp",
             R"cpp(#include <vector>

std::vector<double> g_model;

void expensive_refit() { g_model.push_back(0.0); }

OPPRENTICE_HOT double hot_gated(double v, bool due) {
  if (due) expensive_refit();  // opprentice-hotpath: allow(cold-call) fixture: refit is amortized over the interval
  return v;
}
)cpp");
  // dispatch: the member call fans out to a violating definition unless
  // the site is marked as a dispatch point.
  tree.plant("src/core/fixture_dispatch.cpp",
             R"cpp(#include <vector>

struct Sink {
  std::vector<double> buf;
  void absorb(double v) { buf.push_back(v); }
};

OPPRENTICE_HOT double hot_dispatch(Sink& sink, double v) {
  sink.absorb(v);  // opprentice-hotpath: allow(dispatch) fixture: concrete sinks are rooted individually
  return v;
}
)cpp");
  // Cold code with violations: never reported.
  tree.plant("src/core/fixture_cold_code.cpp",
             R"cpp(#include <cstdio>
#include <vector>

double cold_setup(std::vector<double>& out) {
  out.push_back(3.0);
  std::printf("setup\n");
  return 0.0;
}
)cpp");
  // Not a C++ extension: skipped by the walk.
  tree.plant("src/notes.txt", "new double;\n");

  HotpathOptions opts;
  opts.min_roots = 11;
  const HotpathResult scanned = hotpath_tree({tree.root().string()}, opts);

  std::map<std::string, std::size_t> tally;
  for (const auto& issue : scanned.report.issues) ++tally[issue.check];

  const std::map<std::string, std::size_t> expected = {
      {"alloc", 3},   // push_back + new (fixture_alloc), resize (transitive)
      {"lock", 1},    {"io", 2},  // direct + via hot declaration
      {"throw", 1},   {"clock", 1},
      {"extern-call", 1},
      {"allow-without-reason", 1},
      {"allow-unknown-rule", 1},
  };
  for (const auto& [rule, count] : expected) {
    ++result.checks_run;
    const std::size_t got = tally.count(rule) > 0 ? tally.at(rule) : 0;
    if (got != count) {
      std::ostringstream msg;
      msg << "rule '" << rule << "' fired " << got
          << " times on the planted tree, expected exactly " << count;
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // nothing beyond the expectations fired
  for (const auto& [rule, count] : tally) {
    if (expected.count(rule) == 0) {
      std::ostringstream msg;
      msg << "unexpected '" << rule << "' fired " << count
          << " times on the planted tree";
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // every planted root was discovered
  if (scanned.root_count != 11) {
    std::ostringstream msg;
    msg << "found " << scanned.root_count
        << " hot roots on the planted tree, expected 11";
    result.fail("self-test", msg.str());
  }
  ++result.checks_run;  // min-roots guard stays quiet when satisfied
  for (const auto& issue : scanned.report.issues) {
    if (issue.check == "min-roots") {
      result.fail("self-test", "min-roots fired despite 11 planted roots");
    }
  }
  return result;
}

}  // namespace opprentice::tools
