#include "tools/hotpath_rules.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace opprentice::tools {
namespace {

using namespace cpp;  // shared tokenizer (tools/lint_common.hpp)

constexpr const char* kMarker = "opprentice-hotpath:";
constexpr const char* kHotToken = "OPPRENTICE_HOT";

// ---- rule tables ---------------------------------------------------------

const std::set<std::string>& growing_members() {
  static const std::set<std::string> kSet = {"push_back", "emplace_back",
                                             "insert", "emplace",
                                             "push_front", "emplace_front",
                                             "append"};
  return kSet;
}

const std::set<std::string>& resizing_members() {
  static const std::set<std::string> kSet = {"resize", "assign"};
  return kSet;
}

const std::set<std::string>& alloc_free_fns() {
  static const std::set<std::string> kSet = {
      "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
      "make_unique", "make_shared", "to_string"};
  return kSet;
}

const std::set<std::string>& container_types() {
  static const std::set<std::string> kSet = {
      "vector", "string", "basic_string", "deque", "list", "map", "set",
      "multimap", "multiset", "unordered_map", "unordered_set",
      "ostringstream", "istringstream", "stringstream"};
  return kSet;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> kSet = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "MutexLock"};
  return kSet;
}

const std::set<std::string>& lock_members() {
  static const std::set<std::string> kSet = {"lock", "try_lock",
                                             "lock_shared", "wait"};
  return kSet;
}

const std::set<std::string>& io_fns() {
  static const std::set<std::string> kSet = {
      "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fputc",
      "putchar", "fwrite", "fread", "fopen", "fclose", "fflush", "getline",
      "system", "usleep", "nanosleep", "sleep_for", "sleep_until"};
  return kSet;
}

const std::set<std::string>& io_streams() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog",
                                             "ofstream", "ifstream",
                                             "fstream"};
  return kSet;
}

const std::set<std::string>& clock_types() {
  static const std::set<std::string> kSet = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  return kSet;
}

const std::set<std::string>& clock_fns() {
  static const std::set<std::string> kSet = {"time", "clock_gettime",
                                             "gettimeofday", "clock"};
  return kSet;
}

// Pure-compute external functions a hot path may call freely: math,
// min/max-style selection, non-allocating algorithms over preallocated
// ranges, chrono arithmetic (no clock read), and numeric_limits queries.
const std::set<std::string>& extern_allowlist() {
  static const std::set<std::string> kSet = {
      // <cmath>
      "abs", "fabs", "fmin", "fmax", "fmod", "remainder", "sqrt", "cbrt",
      "pow", "exp", "exp2", "expm1", "log", "log2", "log10", "log1p", "sin",
      "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
      "floor", "ceil", "round", "lround", "llround", "trunc", "copysign",
      "hypot", "erf", "erfc", "lgamma", "tgamma", "isnan", "isinf",
      "isfinite", "signbit", "nan", "ldexp", "frexp", "modf", "ilogb",
      "logb", "scalbn", "nearbyint", "rint",
      // selection / utility
      "min", "max", "clamp", "minmax", "swap", "move", "forward",
      "as_const", "get", "tie", "make_pair", "exchange", "midpoint",
      // non-allocating algorithms
      "fill", "fill_n", "copy", "copy_n", "accumulate", "inner_product",
      "iota", "distance", "advance", "lower_bound", "upper_bound",
      "binary_search", "min_element", "max_element", "minmax_element",
      "all_of", "any_of", "none_of", "find", "find_if", "count",
      "count_if", "equal", "reverse", "rotate", "nth_element", "sort",
      "stable_sort", "partial_sort",
      // <cstring> / <cctype>
      "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp",
      "strncmp", "isdigit", "isalpha", "isspace", "tolower", "toupper",
      // numeric_limits / chrono arithmetic (no clock read)
      "quiet_NaN", "signaling_NaN", "infinity", "epsilon", "lowest",
      "denorm_min", "duration_cast", "time_point_cast", "duration",
      // diagnostics macros
      "assert",
  };
  return kSet;
}

const std::set<std::string>& call_keywords() {
  static const std::set<std::string> kSet = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "typeid", "noexcept", "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "delete",
      "co_return", "co_yield", "co_await", "defined", "alignas",
      "static_assert"};
  return kSet;
}

std::set<std::string> known_rules_for_directives() {
  std::set<std::string> out;
  for (const auto& rule : hotpath_rules()) out.insert(rule.id);
  return out;
}

// ---- parsed model --------------------------------------------------------

struct RawFinding {
  std::string rule;
  std::size_t line = 0;
  std::string message;
};

struct CallSite {
  std::string chain;     // back-walked A::b qualifier chain ("" if none)
  std::string terminal;  // last identifier
  std::size_t line = 0;
  bool member = false;    // preceded by . or ->
  bool qualified = false;  // preceded by ::
};

struct FnDef {
  std::string name;       // terminal identifier
  std::string qualified;  // "Type::name" when defined in/for a type
  std::string file;
  std::size_t line = 0;
  bool hot = false;
  std::vector<RawFinding> findings;
  std::vector<CallSite> calls;
  std::set<std::string> local_callables;  // lambdas/std::function locals
};

struct Model {
  std::vector<FnDef> defs;
  // file -> line -> directive, for walk-time suppression lookups.
  std::map<std::string, std::map<std::size_t, Directive>> directives;
  std::set<std::string> hot_decl_qualified;
  std::set<std::string> hot_decl_plain;
  std::map<std::string, std::vector<std::size_t>> by_qualified;
  std::map<std::string, std::vector<std::size_t>> by_plain;
  std::map<std::string, std::vector<std::size_t>> by_terminal;
};

bool is_std_chain(const std::string& chain) {
  return chain == "std" || chain.rfind("std::", 0) == 0;
}

// Last `count` ::-separated components of a qualifier chain + terminal.
std::string chain_suffix(const CallSite& call, std::size_t count) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= call.chain.size() && !call.chain.empty()) {
    const std::size_t sep = call.chain.find("::", pos);
    parts.push_back(call.chain.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos));
    if (sep == std::string::npos) break;
    pos = sep + 2;
  }
  parts.push_back(call.terminal);
  if (parts.size() < count) return std::string();
  std::string out;
  for (std::size_t i = parts.size() - count; i < parts.size(); ++i) {
    if (!out.empty()) out += "::";
    out += parts[i];
  }
  return out;
}

// ---- function-definition scanner -----------------------------------------
//
// Scope discipline: we only classify `{` at namespace/type scope. Function
// bodies are consumed wholesale by brace matching and mined for findings
// and call sites, so lambdas, brace initializers and control flow inside
// bodies never confuse the scope stack.

enum class ScopeKind { kNamespace, kType };

struct Scope {
  ScopeKind kind = ScopeKind::kNamespace;
  std::string name;
};

struct Signature {
  bool is_function = false;
  bool hot = false;
  std::string name;
  std::string qualifier;  // "Type" from an out-of-line Type::name
};

// Classifies the token window [begin, end) that precedes a `{` or `;`.
// Finds the first identifier at top level (outside parens/template
// argument lists) that is immediately followed by '(' — the declarator
// name; in `Ctor() : member_(init)` the first match wins, so the
// init-list never misleads.
Signature parse_signature(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  Signature sig;
  int paren_depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "(") ++paren_depth;
      else if (t.text == ")") --paren_depth;
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == kHotToken) {
      sig.hot = true;
      continue;
    }
    if (paren_depth > 0) continue;
    if (i + 1 < end && is_punct(toks, i + 1, "<")) {
      const std::size_t close = match_template_close(toks, i + 1);
      if (close != kNpos && close < end) {
        i = close;  // skip template argument list (e.g. vector<...>)
        continue;
      }
    }
    if (call_keywords().count(t.text) > 0) continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    sig.is_function = true;
    sig.name = t.text;
    // Back-walk the qualifier chain: Type::name, Type::~Type, ...
    std::size_t j = i;
    if (j > begin && is_punct(toks, j - 1, "~")) {
      sig.name = "~" + sig.name;
      --j;
    }
    while (j >= begin + 2 && is_punct(toks, j - 1, "::") &&
           toks[j - 2].kind == Tok::kIdent) {
      sig.qualifier = toks[j - 2].text;  // keep the innermost scope only
      j -= 2;
    }
    break;
  }
  return sig;
}

// True when the window declares a namespace; appends its name(s).
bool window_is_namespace(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (is_ident(toks, i, "namespace")) return true;
  }
  return false;
}

// Type name for a class/struct/union/enum window: the last identifier
// before the base-clause ':' (or the whole window), skipping "final".
bool window_is_type(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, std::string* name) {
  bool is_type = false;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    // `template <class T>` parameter lists also use the keywords; skip them.
    if (toks[i].text == "template" && is_punct(toks, i + 1, "<")) {
      const std::size_t tclose = match_template_close(toks, i + 1);
      if (tclose != kNpos && tclose < end) {
        i = tclose;
        continue;
      }
    }
    if (toks[i].text == "class" || toks[i].text == "struct" ||
        toks[i].text == "union" || toks[i].text == "enum") {
      is_type = true;
      break;
    }
  }
  if (!is_type) return false;
  std::size_t limit = end;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(" || toks[i].text == "<") ++depth;
    else if (toks[i].text == ")" || toks[i].text == ">") --depth;
    else if (toks[i].text == ":" && depth == 0) {
      limit = i;
      break;
    }
  }
  for (std::size_t i = limit; i > begin; --i) {
    const Token& t = toks[i - 1];
    if (t.kind == Tok::kIdent && t.text != "final" && t.text != "class" &&
        t.text != "struct" && t.text != "union" && t.text != "enum") {
      *name = t.text;
      return true;
    }
  }
  *name = "(anonymous)";
  return true;
}

bool window_has_toplevel_assign(const std::vector<Token>& toks,
                                std::size_t begin, std::size_t end) {
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(" || toks[i].text == "[") ++depth;
    else if (toks[i].text == ")" || toks[i].text == "]") --depth;
    else if (toks[i].text == "=" && depth == 0) return true;
  }
  return false;
}

// Mines a function body (open brace .. matching close) for rule findings
// and call sites.
void scan_body(const std::vector<Token>& toks, std::size_t open,
               std::size_t close, FnDef* def) {
  std::set<std::string> preallocated;
  bool in_throw = false;  // suppress call collection inside throw exprs
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == ";" || t.text == "{" || t.text == "}") in_throw = false;
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    const std::string& id = t.text;

    // Locals that are callable but not functions: lambdas and anything
    // assigned a lambda. Calls to them stay inside this body.
    if (i + 2 < close && is_punct(toks, i + 1, "=") &&
        is_punct(toks, i + 2, "[")) {
      def->local_callables.insert(id);
      continue;
    }

    if (id == "throw") {
      def->findings.push_back(
          {"throw", t.line,
           "throw on the hot path; exceptional exits cost microseconds and "
           "allocate — return a sentinel or guard the precondition at the "
           "boundary"});
      in_throw = true;
      continue;
    }
    if (id == "new" && !prev_is_member_access(toks, i)) {
      def->findings.push_back(
          {"alloc", t.line,
           "operator new on the hot path; preallocate at setup time"});
      continue;
    }
    if (io_streams().count(id) > 0 && !prev_is_member_access(toks, i)) {
      def->findings.push_back(
          {"io", t.line,
           "'" + id + "' on the hot path; buffer through obs counters or "
           "move the write behind a cold gate"});
      continue;
    }
    if (lock_types().count(id) > 0 &&
        (is_punct(toks, i + 1, "<") || is_punct(toks, i + 1, "(") ||
         (i + 1 < close && toks[i + 1].kind == Tok::kIdent))) {
      def->findings.push_back(
          {"lock", t.line,
           "'" + id + "' acquisition on the hot path; per-point work must "
           "stay lock-free — snapshot shared state at setup or use "
           "atomics"});
      continue;
    }
    if (clock_types().count(id) > 0 && is_punct(toks, i + 1, "::") &&
        is_ident(toks, i + 2, "now")) {
      def->findings.push_back(
          {"clock", t.line,
           "'" + id + "::now()' on the hot path; clock reads cost ~20ns "
           "and serialize — derive time from the point's own timestamp or "
           "gate behind detailed timing"});
      i += 2;
      continue;
    }

    // Container construction with arguments: vector<double> v(n) / v{...}.
    if (container_types().count(id) > 0) {
      std::size_t j = i + 1;
      if (is_punct(toks, j, "<")) {
        const std::size_t tclose = match_template_close(toks, j);
        if (tclose == kNpos || tclose >= close) continue;
        j = tclose + 1;
      }
      if (j < close && toks[j].kind == Tok::kIdent &&
          (is_punct(toks, j + 1, "(") || is_punct(toks, j + 1, "{"))) {
        const std::size_t args_open = j + 1;
        const std::size_t args_close =
            match_close(toks, args_open, toks[args_open].text,
                        toks[args_open].text == "(" ? ")" : "}");
        if (args_close != kNpos && args_close > args_open + 1) {
          def->findings.push_back(
              {"alloc", t.line,
               "sized construction of '" + id + " " + toks[j].text +
                   "' on the hot path; hoist the buffer to a member and "
                   "reuse it"});
        }
        i = j + 1;
        continue;
      }
    }

    // Call-shaped: ident '(' or ident '<...>' '('.
    std::size_t call_paren = kNpos;
    if (is_punct(toks, i + 1, "(")) {
      call_paren = i + 1;
    } else if (is_punct(toks, i + 1, "<")) {
      const std::size_t tclose = match_template_close(toks, i + 1);
      if (tclose != kNpos && tclose < close && is_punct(toks, tclose + 1, "(")) {
        call_paren = tclose + 1;
      }
    }
    if (call_paren == kNpos) continue;
    if (call_keywords().count(id) > 0) continue;
    // `Type name(args)` and `new Type(args)` are declarations and
    // constructions, not calls: a real call site is never preceded by a
    // plain identifier (other than statement keywords) or a template '>'.
    if (i > open) {
      const Token& prev = toks[i - 1];
      static const std::set<std::string> kCallAfter = {
          "return", "else", "do", "case", "co_return", "co_yield"};
      if (prev.kind == Tok::kIdent && kCallAfter.count(prev.text) == 0 &&
          !prev_is_member_access(toks, i) && !is_punct(toks, i - 1, "::")) {
        continue;
      }
      if (prev.kind == Tok::kPunct && (prev.text == ">" || prev.text == ">>")) {
        continue;
      }
    }

    const bool member = prev_is_member_access(toks, i);
    const bool qualified = i > 0 && is_punct(toks, i - 1, "::");

    if (member) {
      // Receiver: the identifier before the access punct (for chained
      // accesses, the nearest one is the container being mutated).
      std::string receiver;
      if (i >= 2 && toks[i - 2].kind == Tok::kIdent) receiver = toks[i - 2].text;
      if (id == "reserve") {
        preallocated.insert(receiver);
        continue;
      }
      if (resizing_members().count(id) > 0) {
        def->findings.push_back(
            {"alloc", t.line,
             "'." + id + "()' on the hot path may reallocate; preallocate "
             "at setup and overwrite in place"});
        preallocated.insert(receiver);
        continue;
      }
      if (growing_members().count(id) > 0) {
        if (preallocated.count(receiver) == 0) {
          def->findings.push_back(
              {"alloc", t.line,
               "'." + id + "()' grows '" + receiver +
                   "' on the hot path without a visible reserve(); "
                   "preallocate at setup time"});
        }
        continue;
      }
      if (lock_members().count(id) > 0) {
        def->findings.push_back(
            {"lock", t.line,
             "'." + id + "()' on the hot path; per-point work must stay "
             "lock-free"});
        continue;
      }
    }

    if (!member && alloc_free_fns().count(id) > 0) {
      def->findings.push_back(
          {"alloc", t.line,
           "'" + id + "' allocates on the hot path; preallocate at setup "
           "time"});
      continue;
    }
    if (!member && io_fns().count(id) > 0) {
      def->findings.push_back(
          {"io", t.line,
           "'" + id + "' blocks on the hot path; move it behind a cold "
           "gate or an obs counter"});
      continue;
    }
    if (!member && clock_fns().count(id) > 0) {
      def->findings.push_back(
          {"clock", t.line,
           "'" + id + "()' reads the clock on the hot path; derive time "
           "from the point's own timestamp"});
      continue;
    }

    if (in_throw) continue;  // `throw std::runtime_error(...)` is one finding
    std::string chain;
    std::size_t j = i;
    while (j >= 2 && is_punct(toks, j - 1, "::") &&
           toks[j - 2].kind == Tok::kIdent) {
      chain = toks[j - 2].text + (chain.empty() ? "" : "::" + chain);
      j -= 2;
    }
    def->calls.push_back({chain, id, t.line, member, qualified});
  }
}

void parse_file(const std::string& path, const std::string& content,
                Model* model) {
  const Lexed lx = lex(content);
  model->directives[path] =
      parse_directives(lx.comments, kMarker, known_rules_for_directives());

  const auto& toks = lx.tokens;
  std::vector<Scope> scopes;
  std::size_t window_start = 0;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      ++i;
      continue;
    }
    if (t.text == ";") {
      // Hot declaration without a body registers its qualified name so
      // the matching definition (often in another file) becomes a root.
      const Signature sig = parse_signature(toks, window_start, i);
      if (sig.is_function && sig.hot) {
        std::string qualifier = sig.qualifier;
        if (qualifier.empty() && !scopes.empty() &&
            scopes.back().kind == ScopeKind::kType) {
          qualifier = scopes.back().name;
        }
        if (qualifier.empty()) {
          model->hot_decl_plain.insert(sig.name);
        } else {
          model->hot_decl_qualified.insert(qualifier + "::" + sig.name);
        }
      }
      window_start = i + 1;
      ++i;
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      window_start = i + 1;
      ++i;
      continue;
    }
    if (t.text != "{") {
      ++i;
      continue;
    }
    // Classify the window preceding this '{'.
    if (window_is_namespace(toks, window_start, i)) {
      scopes.push_back({ScopeKind::kNamespace, std::string()});
      window_start = i + 1;
      ++i;
      continue;
    }
    std::string type_name;
    if (window_is_type(toks, window_start, i, &type_name)) {
      scopes.push_back({ScopeKind::kType, type_name});
      window_start = i + 1;
      ++i;
      continue;
    }
    const Signature sig =
        window_has_toplevel_assign(toks, window_start, i)
            ? Signature{}
            : parse_signature(toks, window_start, i);
    const std::size_t body_close = match_close(toks, i, "{", "}");
    if (body_close == kNpos) break;  // unbalanced; stop scanning the file
    if (sig.is_function) {
      FnDef def;
      def.name = sig.name;
      std::string qualifier = sig.qualifier;
      if (qualifier.empty() && !scopes.empty() &&
          scopes.back().kind == ScopeKind::kType) {
        qualifier = scopes.back().name;
      }
      def.qualified =
          qualifier.empty() ? sig.name : qualifier + "::" + sig.name;
      def.file = path;
      def.line = toks[i].line;
      for (std::size_t k = window_start; k < i; ++k) {
        if (toks[k].kind == Tok::kIdent) {
          def.line = toks[k].line;
          break;
        }
      }
      def.hot = sig.hot;
      scan_body(toks, i, body_close, &def);
      const std::size_t idx = model->defs.size();
      model->by_terminal[def.name].push_back(idx);
      if (def.qualified == def.name) {
        model->by_plain[def.name].push_back(idx);
      } else {
        model->by_qualified[def.qualified].push_back(idx);
      }
      model->defs.push_back(std::move(def));
    }
    // Function body or stray brace group: consume wholesale either way.
    i = body_close + 1;
    window_start = i;
  }
}

// ---- resolution and the hot walk -----------------------------------------

// Resolves a call site to project definitions. Empty result + `external`
// means nothing in the tree matches; the walk then consults the
// allowlist. Member calls resolve by terminal name against every
// definition sharing it — the over-approximation that stands in for
// virtual dispatch.
std::vector<std::size_t> resolve_call(const Model& model, const FnDef& from,
                                      const CallSite& call, bool* external) {
  *external = false;
  if (is_std_chain(call.chain)) {
    *external = true;
    return {};
  }
  if (!call.chain.empty()) {
    const std::string two = chain_suffix(call, 2);
    const auto qit = model.by_qualified.find(two);
    if (qit != model.by_qualified.end()) return qit->second;
    const auto pit = model.by_plain.find(call.terminal);
    if (pit != model.by_plain.end()) return pit->second;  // namespace::fn
    *external = true;
    return {};
  }
  if (!call.member) {
    // Unqualified call inside a member function: same-type methods first.
    const std::size_t sep = from.qualified.rfind("::");
    if (sep != std::string::npos) {
      const std::string same_type =
          from.qualified.substr(0, sep) + "::" + call.terminal;
      const auto qit = model.by_qualified.find(same_type);
      if (qit != model.by_qualified.end()) return qit->second;
    }
    const auto pit = model.by_plain.find(call.terminal);
    if (pit != model.by_plain.end()) return pit->second;
    *external = true;
    return {};
  }
  const auto tit = model.by_terminal.find(call.terminal);
  if (tit != model.by_terminal.end()) return tit->second;
  *external = true;
  return {};
}

bool directive_allows(const std::map<std::size_t, Directive>& directives,
                      std::size_t line, const std::string& rule) {
  for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
    const auto it = directives.find(at);
    if (it != directives.end() && it->second.has_reason &&
        it->second.rules.count(rule) > 0) {
      return true;
    }
  }
  return false;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const auto& hop : path) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

}  // namespace

// ---- public API ----------------------------------------------------------

const std::vector<HotpathRule>& hotpath_rules() {
  static const std::vector<HotpathRule> kRules = {
      {"alloc", "heap allocation: new/malloc/make_*, sized container "
                "construction, growth without reserve()", false},
      {"lock", "mutex/lock acquisition or condition wait", false},
      {"io", "blocking I/O, logging, sleeps, system()", false},
      {"throw", "throw expression", false},
      {"clock", "wall/steady clock read", false},
      {"extern-call", "call to an unresolvable external function not on "
                      "the pure-compute allowlist", false},
      {"dispatch", "descent control: virtual call site; concrete targets "
                   "are rooted individually", true},
      {"cold-call", "descent control: amortized or gated call (refit, "
                    "quarantine, detailed-timing)", true},
  };
  return kRules;
}

HotpathResult hotpath_tree(const std::vector<std::string>& roots,
                           const HotpathOptions& opts) {
  HotpathResult result;
  LintReport& report = result.report;
  Model model;

  for (const auto& file : list_cpp_sources(roots, &report)) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++report.checks_run;
    parse_file(file.string(), buffer.str(), &model);
  }

  // Suppression misuse is an error wherever it appears, hot or cold.
  for (const auto& [file, directives] : model.directives) {
    for (const auto& [line, d] : directives) {
      if (d.malformed || !d.has_reason) {
        report.fail_at("allow-without-reason",
                       "suppression must name a rule and give a reason: "
                       "opprentice-hotpath: allow(<rule>) <why this is "
                       "safe>",
                       file, line);
      }
      for (const auto& rule : d.unknown) {
        report.fail_at("allow-unknown-rule",
                       "allow() names unknown rule '" + rule +
                           "'; run opprentice_hotpath --list-rules for "
                           "valid ids",
                       file, line);
      }
    }
  }

  // Roots: definitions marked hot, plus definitions matching a hot
  // declaration's (qualified) name.
  std::deque<std::size_t> queue;
  std::map<std::size_t, std::vector<std::string>> paths;
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < model.defs.size(); ++i) {
    FnDef& def = model.defs[i];
    if (!def.hot && model.hot_decl_qualified.count(def.qualified) == 0 &&
        model.hot_decl_plain.count(def.qualified) == 0) {
      continue;
    }
    def.hot = true;
    ++result.root_count;
    if (seen.insert(i).second) {
      queue.push_back(i);
      paths[i] = {def.qualified};
    }
  }
  if (opts.min_roots > 0 && result.root_count < opts.min_roots) {
    std::ostringstream msg;
    msg << "only " << result.root_count << " OPPRENTICE_HOT roots found, "
        << "expected at least " << opts.min_roots
        << " — were hot-path annotations dropped in a refactor?";
    report.fail("min-roots", msg.str());
  }

  std::ostringstream graph;
  std::vector<std::string> graph_edges;
  if (opts.dump_graph) {
    graph << "roots (" << result.root_count << "):\n";
    for (const std::size_t i : queue) {
      graph << "  " << model.defs[i].qualified << "  " << model.defs[i].file
            << ':' << model.defs[i].line << '\n';
    }
  }

  std::set<std::tuple<std::string, std::string, std::size_t>> emitted;
  const auto emit = [&](const std::string& rule, const std::string& message,
                        const std::string& file, std::size_t line) {
    if (emitted.emplace(rule, file, line).second) {
      report.fail_at(rule, message, file, line);
    }
  };

  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    const FnDef& def = model.defs[at];
    const std::vector<std::string>& path = paths[at];
    ++report.checks_run;
    const auto& directives = model.directives[def.file];

    const std::string via =
        path.size() > 1 ? " [hot via " + join_path(path) + "]" : "";
    for (const RawFinding& finding : def.findings) {
      if (directive_allows(directives, finding.line, finding.rule)) continue;
      emit(finding.rule, "in " + def.qualified + ": " + finding.message + via,
           def.file, finding.line);
    }
    for (const CallSite& call : def.calls) {
      if (directive_allows(directives, call.line, "dispatch") ||
          directive_allows(directives, call.line, "cold-call")) {
        continue;
      }
      if (def.local_callables.count(call.terminal) > 0) continue;
      bool external = false;
      const std::vector<std::size_t> targets =
          resolve_call(model, def, call, &external);
      if (external) {
        if (extern_allowlist().count(call.terminal) > 0) continue;
        if (call.member) continue;  // std container/member calls
        if (directive_allows(directives, call.line, "extern-call")) continue;
        const std::string shown =
            call.chain.empty() ? call.terminal
                               : call.chain + "::" + call.terminal;
        emit("extern-call",
             "in " + def.qualified + ": call to external '" + shown +
                 "' which is not on the hot-path allowlist; resolve it in "
                 "the tree, allowlist it, or gate it with allow(cold-call)" +
                 via,
             def.file, call.line);
        continue;
      }
      for (const std::size_t target : targets) {
        if (opts.dump_graph) {
          std::ostringstream edge;
          edge << "  " << def.qualified << " -> "
               << model.defs[target].qualified << "  (" << def.file << ':'
               << call.line << ")\n";
          graph_edges.push_back(edge.str());
        }
        if (seen.insert(target).second) {
          std::vector<std::string> next = path;
          next.push_back(model.defs[target].qualified);
          paths[target] = std::move(next);
          queue.push_back(target);
        }
      }
    }
  }

  if (opts.dump_graph) {
    std::sort(graph_edges.begin(), graph_edges.end());
    graph_edges.erase(std::unique(graph_edges.begin(), graph_edges.end()),
                      graph_edges.end());
    graph << "edges (" << graph_edges.size() << "):\n";
    for (const auto& edge : graph_edges) graph << edge;
    result.graph = graph.str();
  }

  std::sort(report.issues.begin(), report.issues.end(),
            [](const LintIssue& a, const LintIssue& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return result;
}

LintReport hotpath_self_test() {
  LintReport result;
  const TempTree tree("opprentice-hotpath-selftest");

  // alloc: direct growth, operator new, and a silent preallocated pair.
  tree.plant("src/core/fixture_alloc.cpp",
             R"cpp(#include <vector>

OPPRENTICE_HOT void hot_alloc(std::vector<double>& out) {
  out.push_back(1.0);
  double* scratch = new double(0.0);
  *scratch = 1.0;
  std::vector<double> ok;
  ok.reserve(8);
  ok.push_back(2.0);
}
)cpp");
  // alloc (transitive, cross-file): the root is clean, its helper is not.
  tree.plant("src/core/fixture_transitive_root.cpp",
             R"cpp(OPPRENTICE_HOT double hot_transitive(double v) {
  return scale_and_store(v);
}
)cpp");
  tree.plant("src/core/fixture_transitive_helper.cpp",
             R"cpp(#include <vector>

std::vector<double> g_store;

double scale_and_store(double v) {
  g_store.resize(128);
  return v * 2.0;
}
)cpp");
  // lock: guard construction.
  tree.plant("src/core/fixture_lock.cpp",
             R"cpp(#include <mutex>

std::mutex g_mu;

OPPRENTICE_HOT double hot_lock(double v) {
  std::lock_guard<std::mutex> hold(g_mu);
  return v;
}
)cpp");
  // io: direct printf, plus a second finding reached through a hot
  // *declaration* whose definition lives at the bottom of the file.
  tree.plant("src/core/fixture_io.cpp",
             R"cpp(#include <cstdio>

OPPRENTICE_HOT void hot_io(double v) { std::printf("%f\n", v); }

OPPRENTICE_HOT double declared_hot(double v);

double declared_hot(double v) {
  std::fputs("tick\n", stderr);
  return v;
}
)cpp");
  // throw: one finding; the runtime_error construction must NOT also
  // count as an extern-call.
  tree.plant("src/core/fixture_throw.cpp",
             R"cpp(#include <stdexcept>

OPPRENTICE_HOT double hot_throw(double v) {
  if (v < 0.0) throw std::runtime_error("negative");
  return v;
}
)cpp");
  // clock.
  tree.plant("src/core/fixture_clock.cpp",
             R"cpp(#include <chrono>

OPPRENTICE_HOT long hot_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  // extern-call: unresolvable free function; std::sqrt stays silent.
  tree.plant("src/core/fixture_extern.cpp",
             R"cpp(#include <cmath>

OPPRENTICE_HOT double hot_extern(double v) {
  return mystery_library_smooth(std::sqrt(v));
}
)cpp");
  // Suppression misuse.
  tree.plant("src/core/fixture_bare_allow.cpp",
             R"cpp(// opprentice-hotpath: allow(alloc)
int hotpath_bare_allow_placeholder = 0;
)cpp");
  tree.plant("src/core/fixture_unknown_allow.cpp",
             R"cpp(// opprentice-hotpath: allow(flux) the rule id is misspelled on purpose
int hotpath_unknown_allow_placeholder = 0;
)cpp");
  // Reasoned suppression silences a real finding.
  tree.plant("src/core/fixture_suppressed.cpp",
             R"cpp(OPPRENTICE_HOT double hot_suppressed(double v) {
  // opprentice-hotpath: allow(alloc) fixture: exercises a reasoned line-above suppression
  double* once = new double(v);
  const double out = *once;
  delete once;
  return out;
}
)cpp");
  // cold-call: the gated refit may allocate; the walk must not descend.
  tree.plant("src/core/fixture_cold_call.cpp",
             R"cpp(#include <vector>

std::vector<double> g_model;

void expensive_refit() { g_model.push_back(0.0); }

OPPRENTICE_HOT double hot_gated(double v, bool due) {
  if (due) expensive_refit();  // opprentice-hotpath: allow(cold-call) fixture: refit is amortized over the interval
  return v;
}
)cpp");
  // dispatch: the member call fans out to a violating definition unless
  // the site is marked as a dispatch point.
  tree.plant("src/core/fixture_dispatch.cpp",
             R"cpp(#include <vector>

struct Sink {
  std::vector<double> buf;
  void absorb(double v) { buf.push_back(v); }
};

OPPRENTICE_HOT double hot_dispatch(Sink& sink, double v) {
  sink.absorb(v);  // opprentice-hotpath: allow(dispatch) fixture: concrete sinks are rooted individually
  return v;
}
)cpp");
  // Cold code with violations: never reported.
  tree.plant("src/core/fixture_cold_code.cpp",
             R"cpp(#include <cstdio>
#include <vector>

double cold_setup(std::vector<double>& out) {
  out.push_back(3.0);
  std::printf("setup\n");
  return 0.0;
}
)cpp");
  // Not a C++ extension: skipped by the walk.
  tree.plant("src/notes.txt", "new double;\n");

  HotpathOptions opts;
  opts.min_roots = 11;
  const HotpathResult scanned = hotpath_tree({tree.root().string()}, opts);

  std::map<std::string, std::size_t> tally;
  for (const auto& issue : scanned.report.issues) ++tally[issue.check];

  const std::map<std::string, std::size_t> expected = {
      {"alloc", 3},   // push_back + new (fixture_alloc), resize (transitive)
      {"lock", 1},    {"io", 2},  // direct + via hot declaration
      {"throw", 1},   {"clock", 1},
      {"extern-call", 1},
      {"allow-without-reason", 1},
      {"allow-unknown-rule", 1},
  };
  for (const auto& [rule, count] : expected) {
    ++result.checks_run;
    const std::size_t got = tally.count(rule) > 0 ? tally.at(rule) : 0;
    if (got != count) {
      std::ostringstream msg;
      msg << "rule '" << rule << "' fired " << got
          << " times on the planted tree, expected exactly " << count;
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // nothing beyond the expectations fired
  for (const auto& [rule, count] : tally) {
    if (expected.count(rule) == 0) {
      std::ostringstream msg;
      msg << "unexpected '" << rule << "' fired " << count
          << " times on the planted tree";
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // every planted root was discovered
  if (scanned.root_count != 11) {
    std::ostringstream msg;
    msg << "found " << scanned.root_count
        << " hot roots on the planted tree, expected 11";
    result.fail("self-test", msg.str());
  }
  ++result.checks_run;  // min-roots guard stays quiet when satisfied
  for (const auto& issue : scanned.report.issues) {
    if (issue.check == "min-roots") {
      result.fail("self-test", "min-roots fired despite 11 planted roots");
    }
  }
  return result;
}

}  // namespace opprentice::tools
