// opprentice_cli — file-based front end to the Opprentice library.
//
// A minimal operational workflow without writing any C++:
//
//   opprentice_cli generate --kpi pv --out kpi.csv --labels labels.csv
//   opprentice_cli profile  --kpi kpi.csv
//   opprentice_cli train    --kpi kpi.csv --labels labels.csv --model m.rf
//   opprentice_cli detect   --kpi kpi.csv --model m.rf --out det.csv
//   opprentice_cli evaluate --detections det.csv --labels labels.csv
#include <cstdio>
#include <exception>

#include "cli_commands.hpp"

int main(int argc, char** argv) {
  using namespace opprentice::cli;
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "profile") return cmd_profile(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "detect") return cmd_detect(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    return print_usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
