// opprentice_cli — file-based front end to the Opprentice library.
//
// A minimal operational workflow without writing any C++:
//
//   opprentice_cli generate --kpi pv --out kpi.csv --labels labels.csv
//   opprentice_cli profile  --kpi kpi.csv
//   opprentice_cli train    --kpi kpi.csv --labels labels.csv --model m.rf
//   opprentice_cli detect   --kpi kpi.csv --model m.rf --out det.csv
//   opprentice_cli evaluate --detections det.csv --labels labels.csv
//
// Every subcommand honors two observability flags (see README):
//   --trace <file>    write a Chrome trace-event JSON (Perfetto loadable)
//   --metrics <file>  write a metrics snapshot (JSON; .prom for
//                     Prometheus text)
#include <cstdio>
#include <exception>

#include "cli_commands.hpp"
#include "obs/obs.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace {

int run_command(const opprentice::cli::Args& args) {
  using namespace opprentice::cli;
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "profile") return cmd_profile(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "detect") return cmd_detect(args);
  if (args.command == "evaluate") return cmd_evaluate(args);
  return print_usage();
}

}  // namespace

int main(int argc, char** argv) {
  namespace obs = opprentice::obs;
  try {
    const opprentice::cli::Args args =
        opprentice::cli::parse_args(argc, argv);
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    if (!trace_path.empty()) obs::enable_tracing();
    if (!metrics_path.empty()) obs::set_detailed_timing(true);
    // --threads N: parallelism degree (0 = hardware concurrency,
    // 1 = serial); overrides OPPRENTICE_THREADS for this run.
    if (args.has("threads")) {
      opprentice::util::set_global_threads(args.get_size("threads", 0));
    }
    // --faults SPEC: deterministic fault injection (DESIGN.md §5f);
    // overrides OPPRENTICE_FAULTS for this run.
    if (args.has("faults")) {
      opprentice::util::set_fault_plan(
          opprentice::util::parse_fault_spec(args.get("faults")));
    }

    int status = 0;
    {
      obs::ScopedSpan span("cli." + args.command, "cli");
      obs::log(obs::LogLevel::kInfo, "cli", "command_start",
               {{"command", args.command}});
      status = run_command(args);
      obs::log(obs::LogLevel::kInfo, "cli", "command_done",
               {{"command", args.command}, {"status", status}});
    }

    if (!trace_path.empty() && !obs::write_trace(trace_path)) {
      std::fprintf(stderr, "warning: cannot write --trace file %s\n",
                   trace_path.c_str());
    }
    if (!metrics_path.empty() && !obs::write_metrics_file(metrics_path)) {
      std::fprintf(stderr, "warning: cannot write --metrics file %s\n",
                   metrics_path.c_str());
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
