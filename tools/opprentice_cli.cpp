// opprentice_cli — file-based front end to the Opprentice library.
//
// A minimal operational workflow without writing any C++:
//
//   opprentice_cli generate --kpi pv --out kpi.csv --labels labels.csv
//   opprentice_cli profile  --kpi kpi.csv
//   opprentice_cli train    --kpi kpi.csv --labels labels.csv --model m.rf
//   opprentice_cli detect   --kpi kpi.csv --model m.rf --out det.csv
//   opprentice_cli evaluate --detections det.csv --labels labels.csv
//
// Every subcommand honors the observability flags (see README):
//   --trace <file>    write a Chrome trace-event JSON (Perfetto loadable)
//   --metrics <file>  write a metrics snapshot (JSON; .prom for
//                     Prometheus text)
//   --report <file>   write a schema-versioned run report (run_report.hpp)
//                     and print the per-configuration cost table
#include <cstdio>
#include <exception>
#include <memory>

#include "cli_commands.hpp"
#include "obs/obs.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace {

int run_command(const opprentice::cli::Args& args) {
  using namespace opprentice::cli;
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "profile") return cmd_profile(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "detect") return cmd_detect(args);
  if (args.command == "evaluate") return cmd_evaluate(args);
  if (args.command == "fleet") return cmd_fleet(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "agent") return cmd_agent(args);
  return print_usage();
}

}  // namespace

int main(int argc, char** argv) {
  namespace obs = opprentice::obs;
  namespace util = opprentice::util;
  try {
    const opprentice::cli::Args args =
        opprentice::cli::parse_args(argc, argv);
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    const std::string report_path = args.get("report");
    if (!trace_path.empty()) obs::enable_tracing();
    // Detailed timing feeds the family histograms and the per-config
    // cost-attribution table; both --metrics and --report want them.
    if (!metrics_path.empty() || !report_path.empty()) {
      obs::set_detailed_timing(true);
    }
    // --threads N: parallelism degree (0 = hardware concurrency,
    // 1 = serial); overrides OPPRENTICE_THREADS for this run.
    if (args.has("threads")) {
      util::set_global_threads(args.get_size("threads", 0));
    }
    // --faults SPEC: deterministic fault injection (DESIGN.md §5f);
    // overrides OPPRENTICE_FAULTS for this run.
    if (args.has("faults")) {
      util::set_fault_plan(util::parse_fault_spec(args.get("faults")));
    }

    // --report <file>: one run-report manifest per run (run_report.hpp).
    std::unique_ptr<obs::RunReport> report;
    if (!report_path.empty()) {
      report = std::make_unique<obs::RunReport>("opprentice_cli",
                                                args.command);
      report->set_threads(args.get_size("threads", 0));
      if (args.has("seed")) report->set_seed("kpi", args.get_size("seed", 0));
      if (args.has("faults")) {
        report->set_seed("fault_plan",
                         util::parse_fault_spec(args.get("faults")).seed);
      }
      report->set_field("repair_policy", args.get("repair-policy", "drop"));
      opprentice::cli::set_run_report(report.get());
    }

    int status = 0;
    {
      obs::ScopedSpan span("cli." + args.command, "cli");
      obs::log(obs::LogLevel::kInfo, "cli", "command_start",
               {{"command", args.command}});
      status = run_command(args);
      obs::log(obs::LogLevel::kInfo, "cli", "command_done",
               {{"command", args.command}, {"status", status}});
    }

    if (report) {
      report->set_field("exit_status",
                        static_cast<std::uint64_t>(status < 0 ? 0 : status));
      const std::string table = opprentice::cli::render_top_configs(10);
      if (!table.empty()) std::printf("\n%s", table.c_str());
      opprentice::cli::set_run_report(nullptr);
      if (!report->write_file(report_path)) {
        std::fprintf(stderr, "warning: cannot write --report file %s\n",
                     report_path.c_str());
      } else {
        std::printf("wrote run report to %s\n", report_path.c_str());
      }
    }
    if (!trace_path.empty() && !obs::write_trace(trace_path)) {
      std::fprintf(stderr, "warning: cannot write --trace file %s\n",
                   trace_path.c_str());
    }
    if (!metrics_path.empty() && !obs::write_metrics_file(metrics_path)) {
      std::fprintf(stderr, "warning: cannot write --metrics file %s\n",
                   metrics_path.c_str());
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Postmortem: whatever notable events led up to the failure
    // (flight_recorder.hpp). Empty on the usual bad-flag errors.
    const std::string flight = obs::FlightRecorder::instance().dump_text();
    if (!flight.empty()) {
      std::fprintf(stderr, "flight recorder (last %zu events):\n%s",
                   obs::FlightRecorder::instance().event_count(),
                   flight.c_str());
    }
    return 1;
  }
}
