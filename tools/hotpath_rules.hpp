// Hot-path discipline analyzer (`opprentice_hotpath`).
//
// Opprentice's practicality claim rests on cheap per-point feature
// extraction and classification (PAPER.md, ROADMAP items 1–2). The
// per-point pipeline — StreamingExtractor::feed, the per-detector
// severity paths, RandomForest scoring, the duration filter, the cThld
// apply — must stay allocation-, lock-, I/O-, exception- and clock-free,
// and those are contracts a compiler never sees. This tool enforces them
// the way `opprentice_check` enforces the determinism contract: a
// tokenizer-based scan (tools/lint_common.hpp, no libclang), extended
// with a name-resolved intra-project call graph.
//
// Model (DESIGN.md §5g): every function definition across the scanned
// tree becomes a node; call sites resolve by qualified name
// ("Type::name"), then plain name, then — for member calls — by terminal
// name against every definition that shares it (a deliberate
// over-approximation standing in for virtual dispatch). The graph is
// rooted at functions carrying the OPPRENTICE_HOT marker
// (src/util/hotpath.hpp), either on the definition or on a declaration
// whose qualified name a definition matches, and the transitive closure
// is walked flagging:
//
//   alloc        operator new, malloc-family, make_unique/make_shared,
//                sized container construction, and growing-container
//                member calls (push_back/emplace_back/insert/emplace) on
//                receivers without a prior reserve()/resize() in the same
//                body; resize()/assign() themselves are flagged but mark
//                the receiver preallocated
//   lock         std::lock_guard/unique_lock/scoped_lock/shared_lock or
//                util::MutexLock construction, .lock()/.try_lock()/
//                .wait() member calls
//   io           stdio calls, std::cout/cerr/clog, fstream construction,
//                sleeps, system()
//   throw        any throw expression
//   clock        steady/system/high_resolution_clock::now(), time(),
//                clock_gettime(), gettimeofday()
//   extern-call  a call that resolves to no definition in the scanned
//                tree and is not on the pure-compute allowlist (math,
//                minmax/clamp, fill/copy-style algorithms, ...)
//
// Suppressions reuse the shared grammar on the offending line or the
// line above, reason mandatory:
//   // opprentice-hotpath: allow(<rule>[, <rule>...]) <why this is safe>
// Two extra allowable ids control graph descent instead of silencing a
// finding at the same line:
//   dispatch     a virtual call site; the walk does not fan out through
//                it (mark the concrete hot implementations OPPRENTICE_HOT
//                individually)
//   cold-call    an amortized or gated call (model refit, quarantine
//                transition, detailed-timing block); the walk does not
//                descend through it
// A bare allow() is an error ("allow-without-reason"), as is an unknown
// rule id ("allow-unknown-rule"); both are reported even in cold code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint_common.hpp"

namespace opprentice::tools {

struct HotpathRule {
  std::string id;
  std::string summary;
  // True for dispatch/cold-call: allowable in suppressions (they stop
  // graph descent) but never emitted as findings.
  bool descent_only = false;
};

// The six violation rules plus the two descent-control ids, in
// documentation order.
const std::vector<HotpathRule>& hotpath_rules();

struct HotpathOptions {
  // Fail with a "min-roots" issue when fewer hot roots are found —
  // protects against the annotations being refactored away while the
  // analyzer keeps reporting a vacuous clean scan.
  std::size_t min_roots = 0;
  bool dump_graph = false;
};

struct HotpathResult {
  LintReport report;
  std::size_t root_count = 0;
  // --graph: deterministic dump of roots and resolved call edges.
  std::string graph;
};

// Parses every C++ source under `roots`, builds the call graph, walks
// the hot closure, and reports unsuppressed violations plus suppression
// misuse. checks_run counts files scanned plus functions walked.
HotpathResult hotpath_tree(const std::vector<std::string>& roots,
                           const HotpathOptions& opts = {});

// Plants one violation per rule (plus transitive, cross-file, hot-decl,
// suppression, descent-control and preallocation fixtures) in a temp
// tree and verifies each fires exactly the expected number of times.
LintReport hotpath_self_test();

}  // namespace opprentice::tools
