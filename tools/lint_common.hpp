// Shared plumbing for the project's source-level linters:
// `opprentice_lint` (detector-registry invariants, tools/registry_lint.*),
// `opprentice_check` (determinism/concurrency contract, tools/check_rules.*),
// and `opprentice_hotpath` (hot-path discipline over the per-point
// pipeline, tools/hotpath_rules.*). All accumulate the same issue/report
// shape, render through one formatter (terminal text or SARIF for CI code
// scanning), share one just-enough-C++ tokenizer, and drive their
// --self-test modes off the same temp-tree file-planting helper.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace opprentice::tools {

// One violated invariant. `check` is a stable machine-readable id
// ("config-count", "unguarded-static", ...); `message` is for humans.
// `file`/`line` optionally anchor the issue to a source location (used by
// SARIF output); an empty `file` means the issue has no location.
struct LintIssue {
  std::string check;
  std::string message;
  std::string file;
  std::size_t line = 0;
};

struct LintReport {
  std::vector<LintIssue> issues;
  std::size_t checks_run = 0;

  bool ok() const { return issues.empty(); }
  void fail(std::string check, std::string message);
  // Like fail(), with a source anchor carried through to SARIF output.
  void fail_at(std::string check, std::string message, std::string file,
               std::size_t line);
  // Appends another report: issues are concatenated, checks_run summed.
  void merge(LintReport other);
};

// Renders a report for terminal output. `verbose` also lists passed checks.
std::string format_report(const LintReport& report, bool verbose);

// Renders a report as a minimal SARIF 2.1.0 document (one run, one result
// per issue, level "error") so CI can upload linter findings as
// code-scanning annotations. Issues with a non-empty `file` carry a
// physicalLocation; `strip_prefix` (usually the scan root plus '/') is
// removed from the front of each artifact URI so locations are
// repo-relative.
std::string format_sarif(const LintReport& report, std::string_view tool_name,
                         std::string_view strip_prefix = {});

// RAII temp tree for linter self-tests: a unique directory under the
// system temp path (prefix + pid + instance counter, so parallel ctest
// processes never collide) that is removed with everything planted in it
// when the object dies.
class TempTree {
 public:
  explicit TempTree(std::string_view prefix);
  ~TempTree();
  TempTree(const TempTree&) = delete;
  TempTree& operator=(const TempTree&) = delete;

  const std::filesystem::path& root() const { return root_; }

  // Writes `content` to root()/rel, creating parent directories; returns
  // the absolute path of the planted file.
  std::filesystem::path plant(const std::filesystem::path& rel,
                              std::string_view content) const;

 private:
  std::filesystem::path root_;
};

// Recursively collects .cpp/.cc/.hpp/.h files under `roots`, skipping
// build trees and caches, in sorted path order (directory enumeration
// order is filesystem-dependent; the linters hold themselves to the
// determinism contract they enforce). A root that is not a directory adds
// a "missing-root" issue to `report` when it is non-null.
std::vector<std::filesystem::path> list_cpp_sources(
    const std::vector<std::string>& roots, LintReport* report);

// ---- shared C++ tokenizer ------------------------------------------------
//
// Just enough C++ lexing for the contract linters: identifiers, numbers,
// punctuation (longest-match two-char operators), with line numbers.
// String and char literals become opaque kLiteral tokens, so code quoted
// inside a string — including the checkers' own rule patterns and
// self-test fixtures — can never trip a rule. Comments never become
// tokens; their text is kept per start line for suppression directives.
// Preprocessor lines are skipped entirely (macro bodies are out of scope
// for these heuristics); use scan_includes() for #include analysis.
namespace cpp {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

enum class Tok { kIdent, kNumber, kPunct, kLiteral };

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::size_t line = 0;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<std::size_t, std::string> comments;  // start line -> text
};

Lexed lex(std::string_view src);

bool is_ident_char(char c);

bool tok_is(const std::vector<Token>& toks, std::size_t i, Tok kind,
            std::string_view text);
bool is_punct(const std::vector<Token>& toks, std::size_t i,
              std::string_view text);
bool is_ident(const std::vector<Token>& toks, std::size_t i,
              std::string_view text);

// Index of the punct matching `open` at index i (which must be `open`).
std::size_t match_close(const std::vector<Token>& toks, std::size_t i,
                        std::string_view open, std::string_view close);

// Matching '>' for the '<' at i; ">>" closes two levels. Bails at
// statement punctuation so `a < b;` is not mistaken for a template list.
std::size_t match_template_close(const std::vector<Token>& toks,
                                 std::size_t i);

bool prev_is_member_access(const std::vector<Token>& toks, std::size_t i);

// One #include directive. `angled` distinguishes <system> from "project"
// includes; layering rules only reason about the quoted form.
struct Include {
  std::string path;
  std::size_t line = 0;
  bool angled = false;
};

// Line-based scan for #include directives (the lexer drops preprocessor
// lines, so include analysis reads the raw source).
std::vector<Include> scan_includes(std::string_view src);

// ---- suppression directives ----------------------------------------------
//
// All contract linters share one suppression grammar:
//   // <marker> allow(<rule>[, <rule>...]) <mandatory reason>
// on the violation's line or the line above. A reason-less or rule-less
// allow is `malformed`; rules not in `known_rules` land in `unknown`.
struct Directive {
  std::set<std::string> rules;
  std::vector<std::string> unknown;
  bool has_reason = false;
  bool malformed = false;
};

// Parses every directive in `comments` whose text opens with `marker`
// (e.g. "opprentice-check:"); mentions of the syntax in prose do not
// count. Keyed by comment start line.
std::map<std::size_t, Directive> parse_directives(
    const std::map<std::size_t, std::string>& comments,
    std::string_view marker, const std::set<std::string>& known_rules);

}  // namespace cpp

}  // namespace opprentice::tools
