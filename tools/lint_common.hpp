// Shared plumbing for the project's two source-level linters:
// `opprentice_lint` (detector-registry invariants, tools/registry_lint.*)
// and `opprentice_check` (determinism/concurrency contract,
// tools/check_rules.*). Both accumulate the same issue/report shape,
// render through one formatter, and drive their --self-test modes off the
// same temp-tree file-planting helper.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace opprentice::tools {

// One violated invariant. `check` is a stable machine-readable id
// ("config-count", "unguarded-static", ...); `message` is for humans.
struct LintIssue {
  std::string check;
  std::string message;
};

struct LintReport {
  std::vector<LintIssue> issues;
  std::size_t checks_run = 0;

  bool ok() const { return issues.empty(); }
  void fail(std::string check, std::string message);
  // Appends another report: issues are concatenated, checks_run summed.
  void merge(LintReport other);
};

// Renders a report for terminal output. `verbose` also lists passed checks.
std::string format_report(const LintReport& report, bool verbose);

// RAII temp tree for linter self-tests: a unique directory under the
// system temp path (prefix + pid + instance counter, so parallel ctest
// processes never collide) that is removed with everything planted in it
// when the object dies.
class TempTree {
 public:
  explicit TempTree(std::string_view prefix);
  ~TempTree();
  TempTree(const TempTree&) = delete;
  TempTree& operator=(const TempTree&) = delete;

  const std::filesystem::path& root() const { return root_; }

  // Writes `content` to root()/rel, creating parent directories; returns
  // the absolute path of the planted file.
  std::filesystem::path plant(const std::filesystem::path& rel,
                              std::string_view content) const;

 private:
  std::filesystem::path root_;
};

}  // namespace opprentice::tools
