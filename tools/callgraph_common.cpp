#include "tools/callgraph_common.hpp"

#include <utility>

namespace opprentice::tools::callgraph {

using namespace cpp;  // shared tokenizer (tools/lint_common.hpp)

namespace {

constexpr const char* kHotToken = "OPPRENTICE_HOT";

}  // namespace

// ---- effect/rule token tables ---------------------------------------------

const std::set<std::string>& growing_members() {
  static const std::set<std::string> kSet = {"push_back", "emplace_back",
                                             "insert", "emplace",
                                             "push_front", "emplace_front",
                                             "append"};
  return kSet;
}

const std::set<std::string>& resizing_members() {
  static const std::set<std::string> kSet = {"resize", "assign"};
  return kSet;
}

const std::set<std::string>& alloc_free_fns() {
  static const std::set<std::string> kSet = {
      "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
      "make_unique", "make_shared", "to_string"};
  return kSet;
}

const std::set<std::string>& container_types() {
  static const std::set<std::string> kSet = {
      "vector", "string", "basic_string", "deque", "list", "map", "set",
      "multimap", "multiset", "unordered_map", "unordered_set",
      "ostringstream", "istringstream", "stringstream"};
  return kSet;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> kSet = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "MutexLock"};
  return kSet;
}

const std::set<std::string>& lock_members() {
  static const std::set<std::string> kSet = {"lock", "try_lock",
                                             "lock_shared", "wait"};
  return kSet;
}

const std::set<std::string>& io_fns() {
  static const std::set<std::string> kSet = {
      "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fputc",
      "putchar", "fwrite", "fread", "fopen", "fclose", "fflush", "getline",
      "system", "usleep", "nanosleep", "sleep_for", "sleep_until"};
  return kSet;
}

const std::set<std::string>& io_streams() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog",
                                             "ofstream", "ifstream",
                                             "fstream"};
  return kSet;
}

const std::set<std::string>& clock_types() {
  static const std::set<std::string> kSet = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  return kSet;
}

const std::set<std::string>& clock_fns() {
  static const std::set<std::string> kSet = {"time", "clock_gettime",
                                             "gettimeofday", "clock"};
  return kSet;
}

const std::set<std::string>& extern_allowlist() {
  static const std::set<std::string> kSet = {
      // <cmath>
      "abs", "fabs", "fmin", "fmax", "fmod", "remainder", "sqrt", "cbrt",
      "pow", "exp", "exp2", "expm1", "log", "log2", "log10", "log1p", "sin",
      "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
      "floor", "ceil", "round", "lround", "llround", "trunc", "copysign",
      "hypot", "erf", "erfc", "lgamma", "tgamma", "isnan", "isinf",
      "isfinite", "signbit", "nan", "ldexp", "frexp", "modf", "ilogb",
      "logb", "scalbn", "nearbyint", "rint",
      // selection / utility
      "min", "max", "clamp", "minmax", "swap", "move", "forward",
      "as_const", "get", "tie", "make_pair", "exchange", "midpoint",
      // non-allocating algorithms
      "fill", "fill_n", "copy", "copy_n", "accumulate", "inner_product",
      "iota", "distance", "advance", "lower_bound", "upper_bound",
      "binary_search", "min_element", "max_element", "minmax_element",
      "all_of", "any_of", "none_of", "find", "find_if", "count",
      "count_if", "equal", "reverse", "rotate", "nth_element", "sort",
      "stable_sort", "partial_sort",
      // <cstring> / <cctype>
      "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp",
      "strncmp", "isdigit", "isalpha", "isspace", "tolower", "toupper",
      // numeric_limits / chrono arithmetic (no clock read)
      "quiet_NaN", "signaling_NaN", "infinity", "epsilon", "lowest",
      "denorm_min", "duration_cast", "time_point_cast", "duration",
      // diagnostics macros
      "assert",
  };
  return kSet;
}

const std::set<std::string>& call_keywords() {
  static const std::set<std::string> kSet = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "typeid", "noexcept", "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "delete",
      "co_return", "co_yield", "co_await", "defined", "alignas",
      "static_assert"};
  return kSet;
}

// ---- BodyMiner defaults ----------------------------------------------------

void BodyMiner::on_body_begin(const std::vector<Token>&, std::size_t,
                              std::size_t, std::size_t) {}
void BodyMiner::on_body_end(std::size_t) {}
void BodyMiner::on_punct(const std::vector<Token>&, std::size_t, FnDef*) {}
std::size_t BodyMiner::on_ident(const std::vector<Token>&, std::size_t,
                                std::size_t, FnDef*) {
  return kNpos;
}
bool BodyMiner::on_call(const std::vector<Token>&, std::size_t, bool, FnDef*) {
  return true;
}
void BodyMiner::on_declaration_window(const std::vector<Token>&, std::size_t,
                                      std::size_t, const std::string&, bool) {}

// ---- function-definition scanner -------------------------------------------

namespace {

enum class ScopeKind { kNamespace, kType };

struct Scope {
  ScopeKind kind = ScopeKind::kNamespace;
  std::string name;
};

struct Signature {
  bool is_function = false;
  bool hot = false;
  std::string name;
  std::string qualifier;  // "Type" from an out-of-line Type::name
};

// Classifies the token window [begin, end) that precedes a `{` or `;`.
// Finds the first identifier at top level (outside parens/template
// argument lists) that is immediately followed by '(' — the declarator
// name; in `Ctor() : member_(init)` the first match wins, so the
// init-list never misleads.
Signature parse_signature(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  Signature sig;
  int paren_depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "(") ++paren_depth;
      else if (t.text == ")") --paren_depth;
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == kHotToken) {
      sig.hot = true;
      continue;
    }
    if (paren_depth > 0) continue;
    if (i + 1 < end && is_punct(toks, i + 1, "<")) {
      const std::size_t close = match_template_close(toks, i + 1);
      if (close != kNpos && close < end) {
        i = close;  // skip template argument list (e.g. vector<...>)
        continue;
      }
    }
    if (call_keywords().count(t.text) > 0) continue;
    if (!is_punct(toks, i + 1, "(")) continue;
    sig.is_function = true;
    sig.name = t.text;
    // Back-walk the qualifier chain: Type::name, Type::~Type, ...
    std::size_t j = i;
    if (j > begin && is_punct(toks, j - 1, "~")) {
      sig.name = "~" + sig.name;
      --j;
    }
    while (j >= begin + 2 && is_punct(toks, j - 1, "::") &&
           toks[j - 2].kind == Tok::kIdent) {
      sig.qualifier = toks[j - 2].text;  // keep the innermost scope only
      j -= 2;
    }
    break;
  }
  return sig;
}

// True when the window declares a namespace.
bool window_is_namespace(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (is_ident(toks, i, "namespace")) return true;
  }
  return false;
}

// Type name for a class/struct/union/enum window: the last identifier
// before the base-clause ':' (or the whole window), skipping "final".
bool window_is_type(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, std::string* name) {
  bool is_type = false;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    // `template <class T>` parameter lists also use the keywords; skip them.
    if (toks[i].text == "template" && is_punct(toks, i + 1, "<")) {
      const std::size_t tclose = match_template_close(toks, i + 1);
      if (tclose != kNpos && tclose < end) {
        i = tclose;
        continue;
      }
    }
    if (toks[i].text == "class" || toks[i].text == "struct" ||
        toks[i].text == "union" || toks[i].text == "enum") {
      is_type = true;
      break;
    }
  }
  if (!is_type) return false;
  std::size_t limit = end;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(" || toks[i].text == "<") ++depth;
    else if (toks[i].text == ")" || toks[i].text == ">") --depth;
    else if (toks[i].text == ":" && depth == 0) {
      limit = i;
      break;
    }
  }
  for (std::size_t i = limit; i > begin; --i) {
    const Token& t = toks[i - 1];
    if (t.kind == Tok::kIdent && t.text != "final" && t.text != "class" &&
        t.text != "struct" && t.text != "union" && t.text != "enum") {
      *name = t.text;
      return true;
    }
  }
  *name = "(anonymous)";
  return true;
}

bool window_has_toplevel_assign(const std::vector<Token>& toks,
                                std::size_t begin, std::size_t end) {
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(" || toks[i].text == "[") ++depth;
    else if (toks[i].text == ")" || toks[i].text == "]") --depth;
    else if (toks[i].text == "=" && depth == 0) return true;
  }
  return false;
}

// Mines a function body (open brace .. matching close) for call sites,
// giving `miner` first shot at every token through its hooks.
void scan_body(const std::vector<Token>& toks, std::size_t open,
               std::size_t close, FnDef* def, BodyMiner* miner,
               std::size_t def_index) {
  if (miner != nullptr) miner->on_body_begin(toks, open, close, def_index);
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (miner != nullptr) miner->on_punct(toks, i, def);
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    const std::string& id = t.text;

    // Locals that are callable but not functions: lambdas and anything
    // assigned a lambda. Calls to them stay inside this body.
    if (i + 2 < close && is_punct(toks, i + 1, "=") &&
        is_punct(toks, i + 2, "[")) {
      def->local_callables.insert(id);
      continue;
    }

    if (miner != nullptr) {
      const std::size_t resume = miner->on_ident(toks, i, close, def);
      if (resume != kNpos) {
        i = resume;
        continue;
      }
    }

    // Call-shaped: ident '(' or ident '<...>' '('.
    std::size_t call_paren = kNpos;
    if (is_punct(toks, i + 1, "(")) {
      call_paren = i + 1;
    } else if (is_punct(toks, i + 1, "<")) {
      const std::size_t tclose = match_template_close(toks, i + 1);
      if (tclose != kNpos && tclose < close && is_punct(toks, tclose + 1, "(")) {
        call_paren = tclose + 1;
      }
    }
    if (call_paren == kNpos) continue;
    if (call_keywords().count(id) > 0) continue;
    // `Type name(args)` and `new Type(args)` are declarations and
    // constructions, not calls: a real call site is never preceded by a
    // plain identifier (other than statement keywords) or a template '>'.
    if (i > open) {
      const Token& prev = toks[i - 1];
      static const std::set<std::string> kCallAfter = {
          "return", "else", "do", "case", "co_return", "co_yield"};
      if (prev.kind == Tok::kIdent && kCallAfter.count(prev.text) == 0 &&
          !prev_is_member_access(toks, i) && !is_punct(toks, i - 1, "::")) {
        continue;
      }
      if (prev.kind == Tok::kPunct && (prev.text == ">" || prev.text == ">>")) {
        continue;
      }
    }

    const bool member = prev_is_member_access(toks, i);
    const bool qualified = i > 0 && is_punct(toks, i - 1, "::");

    if (miner != nullptr && !miner->on_call(toks, i, member, def)) continue;

    std::string chain;
    std::size_t j = i;
    while (j >= 2 && is_punct(toks, j - 1, "::") &&
           toks[j - 2].kind == Tok::kIdent) {
      chain = toks[j - 2].text + (chain.empty() ? "" : "::" + chain);
      j -= 2;
    }
    def->calls.push_back({chain, id, t.line, member, qualified, i});
  }
  if (miner != nullptr) miner->on_body_end(def_index);
}

}  // namespace

void add_source(const std::string& path, const std::string& content,
                CallGraph* graph, BodyMiner* miner) {
  const Lexed lx = lex(content);
  graph->comments[path] = lx.comments;

  const auto& toks = lx.tokens;
  std::vector<Scope> scopes;
  std::size_t window_start = 0;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      ++i;
      continue;
    }
    if (t.text == ";") {
      // Hot declaration without a body registers its qualified name so
      // the matching definition (often in another file) becomes a root.
      const Signature sig = parse_signature(toks, window_start, i);
      if (sig.is_function && sig.hot) {
        std::string qualifier = sig.qualifier;
        if (qualifier.empty() && !scopes.empty() &&
            scopes.back().kind == ScopeKind::kType) {
          qualifier = scopes.back().name;
        }
        if (qualifier.empty()) {
          graph->hot_decl_plain.insert(sig.name);
        } else {
          graph->hot_decl_qualified.insert(qualifier + "::" + sig.name);
        }
      }
      if (miner != nullptr) {
        const bool type_scope =
            !scopes.empty() && scopes.back().kind == ScopeKind::kType;
        miner->on_declaration_window(
            toks, window_start, i,
            type_scope ? scopes.back().name : std::string(), type_scope);
      }
      window_start = i + 1;
      ++i;
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      window_start = i + 1;
      ++i;
      continue;
    }
    if (t.text != "{") {
      ++i;
      continue;
    }
    // Classify the window preceding this '{'.
    if (window_is_namespace(toks, window_start, i)) {
      scopes.push_back({ScopeKind::kNamespace, std::string()});
      window_start = i + 1;
      ++i;
      continue;
    }
    std::string type_name;
    if (window_is_type(toks, window_start, i, &type_name)) {
      scopes.push_back({ScopeKind::kType, type_name});
      window_start = i + 1;
      ++i;
      continue;
    }
    const Signature sig =
        window_has_toplevel_assign(toks, window_start, i)
            ? Signature{}
            : parse_signature(toks, window_start, i);
    const std::size_t body_close = match_close(toks, i, "{", "}");
    if (body_close == kNpos) break;  // unbalanced; stop scanning the file
    if (sig.is_function) {
      FnDef def;
      def.name = sig.name;
      std::string qualifier = sig.qualifier;
      if (qualifier.empty() && !scopes.empty() &&
          scopes.back().kind == ScopeKind::kType) {
        qualifier = scopes.back().name;
      }
      def.qualified =
          qualifier.empty() ? sig.name : qualifier + "::" + sig.name;
      def.file = path;
      def.line = toks[i].line;
      for (std::size_t k = window_start; k < i; ++k) {
        if (toks[k].kind == Tok::kIdent) {
          def.line = toks[k].line;
          break;
        }
      }
      def.hot = sig.hot;
      scan_body(toks, i, body_close, &def, miner, graph->defs.size());
      const std::size_t idx = graph->defs.size();
      graph->by_terminal[def.name].push_back(idx);
      if (def.qualified == def.name) {
        graph->by_plain[def.name].push_back(idx);
      } else {
        graph->by_qualified[def.qualified].push_back(idx);
      }
      graph->defs.push_back(std::move(def));
    }
    // Function body or stray brace group: consume wholesale either way.
    i = body_close + 1;
    window_start = i;
  }
}

// ---- resolution ------------------------------------------------------------

bool is_std_chain(const std::string& chain) {
  return chain == "std" || chain.rfind("std::", 0) == 0;
}

std::string chain_suffix(const CallSite& call, std::size_t count) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= call.chain.size() && !call.chain.empty()) {
    const std::size_t sep = call.chain.find("::", pos);
    parts.push_back(call.chain.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos));
    if (sep == std::string::npos) break;
    pos = sep + 2;
  }
  parts.push_back(call.terminal);
  if (parts.size() < count) return std::string();
  std::string out;
  for (std::size_t i = parts.size() - count; i < parts.size(); ++i) {
    if (!out.empty()) out += "::";
    out += parts[i];
  }
  return out;
}

std::vector<std::size_t> resolve_call(const CallGraph& graph,
                                      const FnDef& from, const CallSite& call,
                                      bool* external) {
  *external = false;
  if (is_std_chain(call.chain)) {
    *external = true;
    return {};
  }
  if (!call.chain.empty()) {
    const std::string two = chain_suffix(call, 2);
    const auto qit = graph.by_qualified.find(two);
    if (qit != graph.by_qualified.end()) return qit->second;
    const auto pit = graph.by_plain.find(call.terminal);
    if (pit != graph.by_plain.end()) return pit->second;  // namespace::fn
    *external = true;
    return {};
  }
  if (!call.member) {
    // Unqualified call inside a member function: same-type methods first.
    const std::size_t sep = from.qualified.rfind("::");
    if (sep != std::string::npos) {
      const std::string same_type =
          from.qualified.substr(0, sep) + "::" + call.terminal;
      const auto qit = graph.by_qualified.find(same_type);
      if (qit != graph.by_qualified.end()) return qit->second;
    }
    const auto pit = graph.by_plain.find(call.terminal);
    if (pit != graph.by_plain.end()) return pit->second;
    *external = true;
    return {};
  }
  const auto tit = graph.by_terminal.find(call.terminal);
  if (tit != graph.by_terminal.end()) return tit->second;
  *external = true;
  return {};
}

bool directive_allows(const std::map<std::size_t, Directive>& directives,
                      std::size_t line, const std::string& rule) {
  for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
    const auto it = directives.find(at);
    if (it != directives.end() && it->second.has_reason &&
        it->second.rules.count(rule) > 0) {
      return true;
    }
  }
  return false;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const auto& hop : path) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

}  // namespace opprentice::tools::callgraph
