#include "tools/registry_lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/dataset_builder.hpp"
#include "detectors/basic_detectors.hpp"
#include "detectors/feature_extractor.hpp"
#include "timeseries/time_series.hpp"
#include "util/rng.hpp"

namespace opprentice::tools {
namespace {

using detectors::Detector;
using detectors::DetectorPtr;
using detectors::DetectorRegistry;
using detectors::SeriesContext;

// Deterministic probe series: daily sinusoid + seeded noise + one spike and
// two NaN gaps, so severity paths through missing-data handling are hit.
std::vector<double> make_probe_series(const LintOptions& opts) {
  util::Rng rng(opts.probe_seed);
  std::vector<double> values(opts.probe_points);
  const double day = static_cast<double>(opts.ctx.points_per_day);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double phase =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) / day;
    values[i] = 100.0 + 20.0 * std::sin(phase) + rng.normal(0.0, 2.0);
  }
  if (values.size() > 16) {
    values[values.size() / 2] += 300.0;  // spike
    values[values.size() / 3] = std::nan("");
    values[values.size() / 3 + 1] = std::nan("");
  }
  return values;
}

std::vector<double> feed_all(Detector& detector,
                             const std::vector<double>& probe) {
  std::vector<double> severities;
  severities.reserve(probe.size());
  for (double v : probe) severities.push_back(detector.feed(v));
  return severities;
}

void check_shape(const DetectorRegistry& registry,
                 const std::vector<DetectorPtr>& configs,
                 const LintOptions& opts, LintReport& report) {
  ++report.checks_run;  // config-count
  if (opts.check_table3 &&
      configs.size() != detectors::kStandardConfigurationCount) {
    std::ostringstream msg;
    msg << "registry expands to " << configs.size()
        << " configurations, expected "
        << detectors::kStandardConfigurationCount << " (paper Table 3)";
    report.fail("config-count", msg.str());
  }

  ++report.checks_run;  // family-count
  if (opts.check_table3) {
    const auto& specs = table3_specs();
    for (const auto& spec : specs) {
      if (!registry.has_family(spec.family)) {
        report.fail("family-count",
                    "missing Table 3 family '" + spec.family + "'");
        continue;
      }
      const auto family = registry.instantiate_family(spec.family, opts.ctx);
      if (family.size() != spec.expected_configs) {
        std::ostringstream msg;
        msg << "family '" << spec.family << "' expands to " << family.size()
            << " configurations, expected " << spec.expected_configs;
        report.fail("family-count", msg.str());
      }
    }
    for (const auto& name : registry.family_names()) {
      const bool known = std::any_of(
          specs.begin(), specs.end(),
          [&name](const FamilySpec& s) { return s.family == name; });
      if (!known) {
        report.fail("family-count",
                    "family '" + name + "' is not in Table 3");
      }
    }
  }

  ++report.checks_run;  // name-unique
  std::set<std::string> seen;
  for (const auto& config : configs) {
    const std::string name = config->name();
    if (!seen.insert(name).second) {
      report.fail("name-unique", "duplicate configuration name '" + name +
                                     "' (every feature column must be "
                                     "uniquely identifiable)");
    }
  }
}

void check_names_and_params(const DetectorRegistry& registry,
                            const std::vector<DetectorPtr>& configs,
                            const LintOptions& opts, LintReport& report) {
  ++report.checks_run;  // name-grammar
  ++report.checks_run;  // param-range
  for (const auto& config : configs) {
    const std::string name = config->name();
    const ParsedConfigName parsed = parse_config_name(name);
    if (!parsed.valid) {
      report.fail("name-grammar",
                  "configuration name '" + name +
                      "' does not parse as family(key=value,...)");
      continue;
    }
    if (!registry.has_family(parsed.family)) {
      report.fail("name-grammar", "configuration '" + name +
                                      "' claims unregistered family '" +
                                      parsed.family + "'");
      continue;
    }
    if (!opts.check_table3) continue;

    const auto& specs = table3_specs();
    const auto spec_it = std::find_if(
        specs.begin(), specs.end(),
        [&parsed](const FamilySpec& s) { return s.family == parsed.family; });
    if (spec_it == specs.end()) continue;  // reported by family-count

    for (const auto& [key, value] : parsed.params) {
      const auto allowed_it = spec_it->allowed_values.find(key);
      if (allowed_it == spec_it->allowed_values.end()) {
        report.fail("param-range", "configuration '" + name +
                                       "' has undeclared parameter '" + key +
                                       "'");
        continue;
      }
      const auto& allowed = allowed_it->second;
      if (std::find(allowed.begin(), allowed.end(), value) == allowed.end()) {
        std::ostringstream msg;
        msg << "configuration '" << name << "': parameter '" << key << "'="
            << (value.empty() ? "<none>" : value)
            << " is outside the Table 3 sampling grid {";
        for (std::size_t i = 0; i < allowed.size(); ++i) {
          if (i > 0) msg << ",";
          msg << allowed[i];
        }
        msg << "}";
        report.fail("param-range", msg.str());
      }
    }
    for (const auto& [key, allowed] : spec_it->allowed_values) {
      if (parsed.params.find(key) == parsed.params.end()) {
        report.fail("param-range", "configuration '" + name +
                                       "' is missing declared parameter '" +
                                       key + "'");
      }
    }
  }
}

void check_runtime_contracts(const std::vector<DetectorPtr>& configs,
                             const LintOptions& opts, LintReport& report) {
  const std::vector<double> probe = make_probe_series(opts);

  ++report.checks_run;  // warmup-bound
  ++report.checks_run;  // severity-domain
  ++report.checks_run;  // reset-idempotent
  for (const auto& config : configs) {
    const std::string name = config->name();

    const std::size_t warmup = config->warmup_points();
    if (warmup >= probe.size()) {
      std::ostringstream msg;
      msg << "configuration '" << name << "' declares warm-up " << warmup
          << " >= probe length " << probe.size()
          << " (points_per_week=" << opts.ctx.points_per_week
          << "); it would never emit a meaningful severity";
      report.fail("warmup-bound", msg.str());
      continue;
    }

    config->reset();
    const std::vector<double> first = feed_all(*config, probe);
    bool domain_ok = true;
    for (std::size_t i = 0; i < first.size(); ++i) {
      const double s = first[i];
      if (std::isnan(s) || std::isinf(s) || s < 0.0) {
        std::ostringstream msg;
        msg << "configuration '" << name << "' emitted severity " << s
            << " at probe point " << i
            << " (severities must be finite and >= 0, §4.3.1)";
        report.fail("severity-domain", msg.str());
        domain_ok = false;
        break;
      }
    }
    if (!domain_ok) continue;

    config->reset();
    const std::vector<double> second = feed_all(*config, probe);
    if (first != second) {
      std::size_t at = first.size();
      for (std::size_t i = 0; i < first.size(); ++i) {
        const bool both_nan = std::isnan(first[i]) && std::isnan(second[i]);
        if (first[i] != second[i] && !both_nan) {
          at = i;
          break;
        }
      }
      std::ostringstream msg;
      msg << "configuration '" << name
          << "': reset() did not restore the just-constructed state "
             "(severities diverge at probe point "
          << at << ")";
      report.fail("reset-idempotent", msg.str());
    }
  }
}

// ---- self-test fixtures: deliberately broken registries ----

// Violates the severity domain: emits the raw signed delta.
class NegativeSeverityDetector final : public Detector {
 public:
  std::string name() const override { return "negative_severity"; }
  std::size_t warmup_points() const override { return 1; }
  double feed(double value) override {
    const double severity = has_last_ ? value - last_ : 0.0;
    last_ = value;
    has_last_ = true;
    return severity;  // negative on any downward step
  }
  void reset() override { has_last_ = false; }

 private:
  double last_ = 0.0;
  bool has_last_ = false;
};

// Violates reset(): keeps accumulating across resets.
class StatefulResetDetector final : public Detector {
 public:
  std::string name() const override { return "stateful_reset"; }
  std::size_t warmup_points() const override { return 0; }
  double feed(double value) override {
    if (!std::isnan(value)) total_ += std::abs(value) * 1e-6;
    return total_;
  }
  void reset() override {}  // bug under test: total_ survives

 private:
  double total_ = 0.0;
};

DetectorRegistry broken_registry_duplicate_names() {
  DetectorRegistry registry;
  registry.register_family("dup_a", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<detectors::SimpleMaDetector>(10));
    return out;
  });
  registry.register_family("dup_b", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<detectors::SimpleMaDetector>(10));
    return out;
  });
  return registry;
}

DetectorRegistry broken_registry_out_of_grid() {
  DetectorRegistry registry = DetectorRegistry::with_standard_families();
  // A 14th simple_ma window the paper never sampled, smuggled in through a
  // legitimate family name.
  DetectorRegistry patched;
  for (const auto& family : registry.family_names()) {
    if (family == "simple_ma") {
      patched.register_family(family, [](const SeriesContext&) {
        std::vector<DetectorPtr> out;
        for (std::size_t win : {std::size_t{10}, std::size_t{20},
                                std::size_t{30}, std::size_t{40},
                                std::size_t{17}}) {
          out.push_back(std::make_unique<detectors::SimpleMaDetector>(win));
        }
        return out;
      });
    } else {
      patched.register_family(family,
                              [family](const SeriesContext& ctx) {
                                return DetectorRegistry::
                                    with_standard_families()
                                        .instantiate_family(family, ctx);
                              });
    }
  }
  return patched;
}

DetectorRegistry broken_registry_missing_family() {
  const DetectorRegistry standard = DetectorRegistry::with_standard_families();
  DetectorRegistry patched;
  for (const auto& family : standard.family_names()) {
    if (family == "ewma") continue;  // drop 5 configurations
    patched.register_family(family, [family](const SeriesContext& ctx) {
      return DetectorRegistry::with_standard_families().instantiate_family(
          family, ctx);
    });
  }
  return patched;
}

template <typename D>
DetectorRegistry single_detector_registry(const std::string& family) {
  DetectorRegistry registry;
  registry.register_family(family, [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<D>());
    return out;
  });
  return registry;
}

void expect_catches(const std::string& what, const DetectorRegistry& registry,
                    const std::string& check, bool table3,
                    LintReport& result) {
  ++result.checks_run;
  LintOptions opts;
  opts.check_table3 = table3;
  const LintReport report = lint_registry(registry, opts);
  const bool caught =
      std::any_of(report.issues.begin(), report.issues.end(),
                  [&check](const LintIssue& i) { return i.check == check; });
  if (!caught) {
    result.fail("self-test", "linter missed planted defect: " + what +
                                 " (expected a '" + check + "' issue)");
  }
}

}  // namespace

const std::vector<FamilySpec>& table3_specs() {
  static const std::vector<FamilySpec> specs = [] {
    const std::vector<std::string> ma_windows = {"10", "20", "30", "40", "50"};
    const std::vector<std::string> week_windows = {"1w", "2w", "3w", "4w",
                                                   "5w"};
    const std::vector<std::string> hw_grid = {"0.2", "0.4", "0.6", "0.8"};
    std::vector<FamilySpec> all;
    all.push_back({"simple_threshold", 1, {}});
    all.push_back({"diff", 3, {{"lag", {"slot", "day", "week"}}}});
    all.push_back({"simple_ma", 5, {{"win", ma_windows}}});
    all.push_back({"weighted_ma", 5, {{"win", ma_windows}}});
    all.push_back({"ma_of_diff", 5, {{"win", ma_windows}}});
    all.push_back(
        {"ewma", 5, {{"alpha", {"0.1", "0.3", "0.5", "0.7", "0.9"}}}});
    all.push_back({"tsd", 5, {{"win", week_windows}}});
    all.push_back({"tsd_mad", 5, {{"win", week_windows}}});
    all.push_back({"historical_average", 5, {{"win", week_windows}}});
    all.push_back({"historical_mad", 5, {{"win", week_windows}}});
    all.push_back({"holt_winters",
                   64,
                   {{"a", hw_grid}, {"b", hw_grid}, {"g", hw_grid}}});
    all.push_back({"svd",
                   15,
                   {{"row", {"10", "20", "30", "40", "50"}},
                    {"col", {"3", "5", "7"}}}});
    all.push_back({"wavelet",
                   9,
                   {{"win", {"3d", "5d", "7d"}},
                    {"freq", {"low", "mid", "high"}}}});
    all.push_back({"arima", 1, {{"auto", {""}}}});
    return all;
  }();
  return specs;
}

ParsedConfigName parse_config_name(const std::string& name) {
  ParsedConfigName parsed;
  const std::size_t open = name.find('(');
  if (open == std::string::npos) {
    // Parameterless form: a bare identifier like "simple_threshold".
    if (name.empty() || name.find(')') != std::string::npos) return parsed;
    parsed.family = name;
    parsed.valid = true;
    return parsed;
  }
  if (open == 0 || name.back() != ')') return parsed;
  parsed.family = name.substr(0, open);

  const std::string body = name.substr(open + 1, name.size() - open - 2);
  if (body.empty()) return parsed;
  std::stringstream tokens(body);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) return parsed;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      // Flag-style parameter, e.g. "arima(auto)".
      if (!parsed.params.emplace(token, "").second) return parsed;
    } else {
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key.empty() || value.empty()) return parsed;
      if (!parsed.params.emplace(key, value).second) return parsed;
    }
  }
  parsed.valid = true;
  return parsed;
}

LintReport lint_registry(const DetectorRegistry& registry,
                         const LintOptions& opts) {
  LintReport report;
  const std::vector<DetectorPtr> configs = registry.instantiate_all(opts.ctx);
  check_shape(registry, configs, opts, report);
  check_names_and_params(registry, configs, opts, report);
  check_runtime_contracts(configs, opts, report);
  return report;
}

LintReport lint_dataset_alignment(const DetectorRegistry& registry,
                                  const LintOptions& opts) {
  LintReport report;
  const std::vector<double> probe = make_probe_series(opts);
  const ts::TimeSeries series(
      "lint-probe", 0,
      ts::kSecondsPerDay / static_cast<std::int64_t>(opts.ctx.points_per_day),
      probe);
  std::vector<DetectorPtr> configs = registry.instantiate_all(opts.ctx);
  const detectors::FeatureMatrix matrix =
      detectors::extract_features(series, configs);

  ++report.checks_run;  // matrix-shape
  if (matrix.num_features() != configs.size()) {
    std::ostringstream msg;
    msg << "feature matrix has " << matrix.num_features()
        << " columns for " << configs.size() << " configurations";
    report.fail("matrix-shape", msg.str());
  }
  if (matrix.feature_names.size() != matrix.columns.size()) {
    report.fail("matrix-shape", "feature_names/columns size mismatch");
  }
  for (std::size_t f = 0; f < matrix.columns.size(); ++f) {
    if (matrix.columns[f].size() != matrix.num_rows) {
      std::ostringstream msg;
      msg << "feature column " << f << " ('" << matrix.feature_names[f]
          << "') has " << matrix.columns[f].size() << " rows, expected "
          << matrix.num_rows;
      report.fail("matrix-shape", msg.str());
    }
  }

  ++report.checks_run;  // column-alignment
  const std::size_t common =
      std::min(matrix.feature_names.size(), configs.size());
  for (std::size_t f = 0; f < common; ++f) {
    if (matrix.feature_names[f] != configs[f]->name()) {
      std::ostringstream msg;
      msg << "feature column " << f << " is named '"
          << matrix.feature_names[f] << "' but registry position " << f
          << " is '" << configs[f]->name()
          << "' (feature/config order must match)";
      report.fail("column-alignment", msg.str());
    }
  }

  ++report.checks_run;  // warmup-propagation
  std::size_t expected_warmup = 0;
  for (const auto& config : configs) {
    expected_warmup = std::max(expected_warmup, config->warmup_points());
  }
  if (matrix.max_warmup != expected_warmup) {
    std::ostringstream msg;
    msg << "feature matrix reports max_warmup " << matrix.max_warmup
        << " but the widest configuration declares " << expected_warmup;
    report.fail("warmup-propagation", msg.str());
  }

  ++report.checks_run;  // dataset-shape
  const ml::Dataset dataset = core::build_dataset(matrix, ts::LabelSet{});
  if (dataset.num_features() != matrix.num_features() ||
      dataset.num_rows() != matrix.num_rows ||
      dataset.feature_names() != matrix.feature_names) {
    report.fail("dataset-shape",
                "dataset_builder did not preserve the feature matrix shape "
                "(columns, rows, or names changed)");
  }
  return report;
}

LintReport lint_self_test() {
  LintReport result;

  // A healthy registry must lint clean, otherwise the planted-defect
  // checks below prove nothing.
  ++result.checks_run;
  const LintReport healthy =
      lint_registry(detectors::DetectorRegistry::with_standard_families());
  for (const auto& issue : healthy.issues) {
    result.fail("self-test", "standard registry unexpectedly failed '" +
                                 issue.check + "': " + issue.message);
  }
  ++result.checks_run;
  const LintReport healthy_alignment = lint_dataset_alignment(
      detectors::DetectorRegistry::with_standard_families());
  for (const auto& issue : healthy_alignment.issues) {
    result.fail("self-test", "standard alignment unexpectedly failed '" +
                                 issue.check + "': " + issue.message);
  }

  expect_catches("duplicate configuration names",
                 broken_registry_duplicate_names(), "name-unique",
                 /*table3=*/false, result);
  expect_catches("simple_ma window outside Table 3 grid",
                 broken_registry_out_of_grid(), "param-range",
                 /*table3=*/true, result);
  expect_catches("dropped ewma family (config count != 133)",
                 broken_registry_missing_family(), "config-count",
                 /*table3=*/true, result);
  expect_catches("dropped ewma family (family list)",
                 broken_registry_missing_family(), "family-count",
                 /*table3=*/true, result);
  expect_catches("negative severities",
                 single_detector_registry<NegativeSeverityDetector>(
                     "negative_severity"),
                 "severity-domain", /*table3=*/false, result);
  expect_catches("reset() that keeps state",
                 single_detector_registry<StatefulResetDetector>(
                     "stateful_reset"),
                 "reset-idempotent", /*table3=*/false, result);
  return result;
}

}  // namespace opprentice::tools
