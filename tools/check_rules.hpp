// Determinism & concurrency contract checker (`opprentice_check`).
//
// Opprentice's results are required to be bit-identical across runs and
// thread counts (DESIGN.md §5e): every RNG flows from an explicit seed,
// parallel loops write per-index slots, and iteration orders that feed
// output are defined. These are contracts a compiler never sees, so this
// tool enforces them the same way `opprentice_lint` enforces the registry
// invariants: a lightweight tokenizer-based scan over the C++ sources in
// src/, tools/, and bench/ — no libclang, no build needed.
//
// Rules (stable ids, used in suppressions and reports):
//   random-device       std::random_device — nondeterministic entropy
//   rand                rand()/srand() — hidden global RNG state
//   wall-clock-seed     clock reads (time(), *_clock::now()) feeding a seed
//   raw-thread          std::thread construction or .detach() outside the
//                       pool implementation (util/thread_pool.cpp)
//   unordered-iteration iterating an unordered_{map,set} local/global —
//                       hash order is unspecified and feeds output
//   unguarded-static    mutable function-local static without
//                       const/constexpr/thread_local or the magic-static
//                       reference idiom
//   fp-reduction        compound assignment (+=, -=, *=, /=) to a variable
//                       captured from outside a parallel_for body —
//                       reductions must go through per-index slots
//   unchecked-stod      raw std::sto{d,f,ld,i,l,ll,ul,ull} outside a
//                       try/catch — external input (CSV cells, CLI flags,
//                       env specs) must fail with a located error, not an
//                       uncaught exception or a silent prefix parse
//   layering            src/util including src/{core,detectors,ml} (the
//                       leaf layer must not depend upward), or two modules
//                       whose headers include each other — cycles make
//                       build order and ownership ambiguous
//
// A finding is suppressed with a comment on the same line or the line
// above:
//   // opprentice-check: allow(<rule>) <reason>
// The reason is mandatory; a bare allow() is itself an error
// ("allow-without-reason"), as is naming a rule that does not exist
// ("allow-unknown-rule").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_common.hpp"

namespace opprentice::tools {

struct CheckRule {
  std::string id;
  std::string summary;
};

// The nine enforceable rules above, in documentation order. The two
// suppression-misuse ids are not listed: they cannot be allowed away.
const std::vector<CheckRule>& check_rules();

struct CheckViolation {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

// Scans one C++ source. `path` is used for reports and for per-file
// exemptions (util/thread_pool.{cpp,hpp} may touch std::thread).
// Suppressions are already applied; misused suppressions surface as
// violations with the meta rule ids.
std::vector<CheckViolation> check_source(std::string_view path,
                                         std::string_view content);

// Recursively scans .cpp/.hpp/.h/.cc files under `roots` (skipping build
// trees and caches) in sorted path order and folds every violation into a
// report: one issue per violation, checks_run = files scanned.
LintReport check_tree(const std::vector<std::string>& roots);

// Plants one violation per rule (plus suppression-misuse fixtures) in a
// temp tree, runs the directory walk over it, and verifies each rule fires
// exactly once, a reasoned allow() silences its finding, and misused
// allows are reported. Returns issues describing any missed expectation.
LintReport check_self_test();

}  // namespace opprentice::tools
