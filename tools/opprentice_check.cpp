// opprentice_check: determinism & concurrency contract checker.
//
// Tokenizer-based scan over the C++ sources in src/, tools/, and bench/
// for the contracts the compiler cannot see (DESIGN.md §5e): no ambient
// entropy or wall-clock seeding, no raw threads outside the pool, no
// hash-order iteration feeding output, no unguarded function-local
// statics, no cross-index reductions inside parallel_for bodies.
//
// Usage:
//   opprentice_check [--root DIR] [--verbose]
//   opprentice_check --self-test
//   opprentice_check --list-rules
//
// Exit status: 0 when the tree is clean, 1 on any violation, 2 on usage
// errors.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/check_rules.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: opprentice_check [--root DIR] [--verbose] [--sarif]\n"
      "       opprentice_check --self-test\n"
      "       opprentice_check --list-rules\n"
      "\n"
      "Scans the C++ sources under DIR/src, DIR/tools, and DIR/bench\n"
      "(default: the current directory) for determinism/concurrency\n"
      "contract violations. --sarif emits SARIF 2.1.0 instead of text.\n"
      "--self-test plants one violation per rule in a temp tree and\n"
      "verifies each is caught.\n",
      stderr);
}

int run_check(const std::string& root, bool verbose, bool sarif) {
  const std::filesystem::path base(root);
  std::vector<std::string> roots;
  for (const char* sub : {"src", "tools", "bench"}) {
    roots.push_back((base / sub).string());
  }
  const opprentice::tools::LintReport report =
      opprentice::tools::check_tree(roots);
  if (sarif) {
    std::string strip = root;
    if (!strip.empty() && strip.back() != '/') strip += '/';
    std::fputs(opprentice::tools::format_sarif(report, "opprentice_check",
                                               strip)
                   .c_str(),
               stdout);
  } else {
    std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
               stdout);
  }
  return report.ok() ? 0 : 1;
}

int run_self_test(bool verbose) {
  const opprentice::tools::LintReport report =
      opprentice::tools::check_self_test();
  std::fputs(opprentice::tools::format_report(report, verbose).c_str(),
             stdout);
  if (!report.ok()) {
    std::fputs("self-test FAILED: the checker missed planted violations\n",
               stderr);
  }
  return report.ok() ? 0 : 1;
}

int run_list_rules() {
  for (const auto& rule : opprentice::tools::check_rules()) {
    std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool list_rules = false;
  bool verbose = false;
  bool sarif = false;
  std::string root = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "opprentice_check: --root requires a value\n");
        print_usage();
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "opprentice_check: unknown argument '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }

  try {
    if (list_rules) return run_list_rules();
    return self_test ? run_self_test(verbose)
                     : run_check(root, verbose, sarif);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opprentice_check: uncaught exception: %s\n",
                 e.what());
    return 2;
  }
}
