#include "tools/locks_rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/callgraph_common.hpp"

namespace opprentice::tools {
namespace {

using namespace cpp;  // shared tokenizer (tools/lint_common.hpp)
namespace cg = callgraph;

constexpr const char* kMarker = "opprentice-locks:";
// The one file allowed to hold raw synchronization primitives; the
// wrappers it defines are what everything else is analyzed against.
constexpr const char* kMutexHeader = "util/mutex.hpp";

std::set<std::string> suppressible_rules() {
  std::set<std::string> out;
  for (const auto& rule : locks_rules()) {
    if (!rule.meta) out.insert(rule.id);
  }
  return out;
}

// ---- mined facts -----------------------------------------------------------

// One `MutexLock <var>(<expr>)` scope. The scope spans from the closing
// ')' of the constructor to the '}' that destroys the guard.
struct Acq {
  std::string expr;      // reconstructed acquisition expression
  std::string terminal;  // last identifier in the expression
  std::size_t line = 0;
  std::size_t tok_begin = 0;  // token index of the closing ')'
  std::size_t tok_end = 0;    // token index of the scope-closing '}'
  int depth = 0;              // brace depth at the declaration
};

enum class EffectKind { kIo, kSubmit, kAlloc };

const char* describe(EffectKind kind) {
  switch (kind) {
    case EffectKind::kIo: return "does I/O";
    case EffectKind::kSubmit: return "submits pool work";
    case EffectKind::kAlloc: return "allocates";
  }
  return "blocks";
}

struct Effect {
  EffectKind kind = EffectKind::kIo;
  std::string what;
  std::size_t line = 0;
  std::size_t tok = 0;
};

struct WaitSite {
  std::string receiver;      // the condition variable
  std::string arg_terminal;  // the mutex the wait releases
  std::size_t line = 0;
  std::size_t tok = 0;
  bool in_loop = false;
};

struct BodyFacts {
  std::vector<Acq> acqs;
  std::vector<Effect> effects;
  std::vector<WaitSite> waits;
};

struct MutexDecl {
  std::string name;
  std::string type;  // enclosing type ("" at namespace scope)
  std::string file;
  std::size_t line = 0;
  bool tagged = false;
  int level = 0;
  bool no_alloc = false;
  std::string lock_id;  // tag name when tagged, else Type::name
};

struct GlobalDecl {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

// Collects lock facts while the shared scanner builds the call graph:
// MutexLock scopes (with their lexical extent), blocking effects,
// cv-wait sites, mutex/condvar declarations, and unguarded globals.
class LocksMiner : public cg::BodyMiner {
 public:
  std::map<std::size_t, BodyFacts> facts;  // def index -> facts
  std::vector<MutexDecl> mutexes;
  std::set<std::string> condvars;  // declared CondVar names
  std::vector<GlobalDecl> globals;
  std::string file;  // set by the driver before each add_source

  void on_body_begin(const std::vector<Token>& toks, std::size_t open,
                     std::size_t close, std::size_t def_index) override {
    def_ = def_index;
    close_ = close;
    depth_ = 0;
    loops_.clear();
    // Precompute loop extents so wait sites can check discipline: the
    // loop keyword through its brace body (or single statement).
    for (std::size_t i = open + 1; i < close; ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      if ((toks[i].text == "while" || toks[i].text == "for") &&
          is_punct(toks, i + 1, "(")) {
        const std::size_t pc = match_close(toks, i + 1, "(", ")");
        if (pc == kNpos || pc >= close) continue;
        std::size_t end = pc;
        if (is_punct(toks, pc + 1, "{")) {
          const std::size_t bc = match_close(toks, pc + 1, "{", "}");
          if (bc != kNpos && bc <= close) end = bc;
        } else {
          for (std::size_t j = pc + 1; j < close; ++j) {
            if (is_punct(toks, j, ";")) {
              end = j;
              break;
            }
          }
        }
        loops_.emplace_back(i, end);
      } else if (toks[i].text == "do" && is_punct(toks, i + 1, "{")) {
        const std::size_t bc = match_close(toks, i + 1, "{", "}");
        if (bc != kNpos && bc <= close) loops_.emplace_back(i, bc);
      }
    }
  }

  void on_body_end(std::size_t def_index) override {
    // Guards still open at the end of the body live until the closing
    // brace of the function itself.
    const auto it = facts.find(def_index);
    if (it == facts.end()) return;
    for (Acq& a : it->second.acqs) {
      if (a.tok_end == 0) a.tok_end = close_;
    }
  }

  void on_punct(const std::vector<Token>& toks, std::size_t i,
                cg::FnDef*) override {
    const std::string& p = toks[i].text;
    if (p == "{") {
      ++depth_;
      return;
    }
    if (p != "}") return;
    const auto it = facts.find(def_);
    if (it != facts.end()) {
      for (Acq& a : it->second.acqs) {
        if (a.tok_end == 0 && a.depth == depth_) a.tok_end = i;
      }
    }
    if (depth_ > 0) --depth_;
  }

  std::size_t on_ident(const std::vector<Token>& toks, std::size_t i,
                       std::size_t close, cg::FnDef*) override {
    const std::string& id = toks[i].text;
    if (id == "MutexLock" && i + 2 < close &&
        toks[i + 1].kind == Tok::kIdent && is_punct(toks, i + 2, "(")) {
      const std::size_t pc = match_close(toks, i + 2, "(", ")");
      if (pc == kNpos || pc >= close) return kNpos;
      Acq a;
      a.line = toks[i].line;
      a.depth = depth_;
      a.tok_begin = pc;
      for (std::size_t j = i + 3; j < pc; ++j) {
        if (toks[j].kind == Tok::kIdent) a.terminal = toks[j].text;
        a.expr += toks[j].text;
      }
      facts[def_].acqs.push_back(std::move(a));
      return pc;  // the expression holds no effects worth re-scanning
    }
    if (id == "new" && !prev_is_member_access(toks, i)) {
      facts[def_].effects.push_back(
          {EffectKind::kAlloc, "new", toks[i].line, i});
      return kNpos;
    }
    // Stream objects plus the manipulators that force a write; catches
    // `(*sink) << line << std::flush` where no io function is named.
    if ((cg::io_streams().count(id) > 0 && !prev_is_member_access(toks, i)) ||
        id == "flush" || id == "endl") {
      facts[def_].effects.push_back({EffectKind::kIo, id, toks[i].line, i});
      return kNpos;
    }
    return kNpos;
  }

  bool on_call(const std::vector<Token>& toks, std::size_t i, bool member,
               cg::FnDef*) override {
    const Token& t = toks[i];
    const std::string& id = t.text;
    if (member && id == "wait") {
      WaitSite w;
      w.line = t.line;
      w.tok = i;
      if (i >= 2 && toks[i - 2].kind == Tok::kIdent) {
        w.receiver = toks[i - 2].text;
      }
      if (is_punct(toks, i + 1, "(")) {
        const std::size_t pc = match_close(toks, i + 1, "(", ")");
        if (pc != kNpos) {
          for (std::size_t j = i + 2; j < pc; ++j) {
            if (toks[j].kind == Tok::kIdent) w.arg_terminal = toks[j].text;
          }
        }
      }
      for (const auto& [b, e] : loops_) {
        if (i > b && i < e) {
          w.in_loop = true;
          break;
        }
      }
      facts[def_].waits.push_back(std::move(w));
      return true;
    }
    if (member && (cg::growing_members().count(id) > 0 ||
                   cg::resizing_members().count(id) > 0)) {
      facts[def_].effects.push_back(
          {EffectKind::kAlloc, "." + id + "()", t.line, i});
      return true;
    }
    if (!member && cg::alloc_free_fns().count(id) > 0) {
      facts[def_].effects.push_back({EffectKind::kAlloc, id, t.line, i});
      return true;
    }
    // sprintf/snprintf format into caller-owned buffers; they cost time
    // on a hot path (hotpath keeps them) but can never block a lock.
    if (!member && cg::io_fns().count(id) > 0 && id != "sprintf" &&
        id != "snprintf") {
      facts[def_].effects.push_back({EffectKind::kIo, id, t.line, i});
      return true;
    }
    if (id == "parallel_for" || id == "submit") {
      facts[def_].effects.push_back({EffectKind::kSubmit, id, t.line, i});
      return true;
    }
    return true;
  }

  void on_declaration_window(const std::vector<Token>& toks, std::size_t begin,
                             std::size_t end, const std::string& enclosing_type,
                             bool type_scope) override {
    int depth = 0;
    bool has_primitive = false;
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "<" || t.text == "[") ++depth;
        else if (t.text == ")" || t.text == ">" || t.text == "]") --depth;
        continue;
      }
      if (t.kind != Tok::kIdent || depth != 0) continue;
      // `Mutex name` / `CondVar name` at top level is a declaration;
      // `Mutex&` parameters sit inside parens or are followed by punct.
      if ((t.text == "Mutex" || t.text == "CondVar") && i + 1 < end &&
          toks[i + 1].kind == Tok::kIdent) {
        has_primitive = true;
        if (t.text == "CondVar") {
          condvars.insert(toks[i + 1].text);
        } else {
          MutexDecl d;
          d.name = toks[i + 1].text;
          d.type = enclosing_type;
          d.file = file;
          d.line = toks[i + 1].line;
          mutexes.push_back(std::move(d));
        }
      }
    }
    if (type_scope || has_primitive) return;
    // annotation-coverage candidate: an initialized namespace-scope
    // variable with no exempting qualifier. Function declarations and
    // attribute macros contain parens and are skipped wholesale.
    static const std::set<std::string> kExempt = {
        "const",      "constexpr",  "constinit", "thread_local",
        "atomic",     "using",      "typedef",   "extern",
        "template",   "friend",     "operator",  "static_assert",
        "class",      "struct",     "union",     "enum",
        "namespace",  "GUARDED_BY", "OPPRENTICE_GUARDED_BY",
        "MutexLock"};
    std::size_t eq = kNpos;
    int d2 = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind == Tok::kPunct) {
        if (t.text == "(") return;  // function declaration / macro
        if (t.text == "<" || t.text == "[") ++d2;
        else if (t.text == ">" || t.text == "]") --d2;
        else if (t.text == "=" && d2 == 0 && eq == kNpos) eq = i;
        continue;
      }
      if (t.kind == Tok::kIdent && kExempt.count(t.text) > 0) return;
    }
    if (eq == kNpos || eq == begin) return;
    for (std::size_t i = eq; i > begin; --i) {
      if (toks[i - 1].kind == Tok::kIdent) {
        globals.push_back({toks[i - 1].text, file, toks[i - 1].line});
        return;
      }
    }
  }

 private:
  std::size_t def_ = 0;
  std::size_t close_ = 0;
  int depth_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> loops_;
};

// ---- level tags ------------------------------------------------------------

struct LevelTag {
  std::string name;
  int level = 0;
  bool no_alloc = false;
  std::string file;
  std::size_t line = 0;
  bool attached = false;
};

bool is_tag_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

// Parses "<name>)=<int> [no-alloc]" (the text after "level(").
bool parse_level_tag(const std::string& rest, LevelTag* tag) {
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) return false;
  tag->name = rest.substr(0, close);
  if (!is_tag_name(tag->name)) return false;
  std::size_t p = close + 1;
  const auto skip_space = [&] {
    while (p < rest.size() && std::isspace(static_cast<unsigned char>(rest[p]))) {
      ++p;
    }
  };
  skip_space();
  if (p >= rest.size() || rest[p] != '=') return false;
  ++p;
  skip_space();
  int value = 0;
  std::size_t digits = 0;
  while (p < rest.size() && std::isdigit(static_cast<unsigned char>(rest[p]))) {
    value = value * 10 + (rest[p] - '0');
    ++p;
    ++digits;
  }
  if (digits == 0) return false;
  tag->level = value;
  skip_space();
  if (p < rest.size()) {
    std::string extra = rest.substr(p);
    while (!extra.empty() &&
           std::isspace(static_cast<unsigned char>(extra.back()))) {
      extra.pop_back();
    }
    if (extra != "no-alloc") return false;
    tag->no_alloc = true;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// ---- public API ------------------------------------------------------------

const std::vector<LocksRule>& locks_rules() {
  static const std::vector<LocksRule> kRules = {
      {"lock-order-cycle",
       "cycle or declared-level inversion in the acquired-while-held "
       "graph (including same-level double acquisition)", false},
      {"blocking-under-lock",
       "I/O, pool submission, or a wait on another lock reachable inside "
       "a MutexLock scope; allocation too for no-alloc locks", false},
      {"cv-wait-discipline",
       "CondVar::wait outside a loop that re-checks its predicate", false},
      {"annotation-coverage",
       "util::Mutex without a level tag, or initialized mutable "
       "namespace-scope state that is not guarded/atomic/const", false},
      {"unknown-lock",
       "MutexLock argument that resolves to no util::Mutex declaration",
       false},
      {"allow-without-reason",
       "suppression must name a rule and give a reason", true},
      {"allow-unknown-rule", "allow() names a rule id that does not exist",
       true},
      {"unused-suppression",
       "reasoned suppression that matches no finding", true},
      {"malformed-tag",
       "unparseable, conflicting, or unattached level(...) tag", true},
  };
  return kRules;
}

LocksResult locks_tree(const std::vector<std::string>& roots,
                       const LocksOptions& opts) {
  LocksResult result;
  LintReport& report = result.report;
  cg::CallGraph graph;
  LocksMiner miner;

  for (const auto& file : list_cpp_sources(roots, &report)) {
    const std::string path = file.string();
    if (ends_with(path, kMutexHeader)) continue;
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++report.checks_run;
    miner.file = path;
    cg::add_source(path, buffer.str(), &graph, &miner);
  }

  // Split marker comments into allow() directives and level(...) tags;
  // parse_directives only understands the former.
  std::map<std::string, std::map<std::size_t, Directive>> directives;
  std::vector<LevelTag> tags;
  const std::size_t marker_len = std::strlen(kMarker);
  for (const auto& [file, comments] : graph.comments) {
    std::map<std::size_t, std::string> allow_comments;
    for (const auto& [line, text] : comments) {
      const std::size_t mp = text.find(kMarker);
      if (mp == std::string::npos) continue;
      std::size_t p = mp + marker_len;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (text.compare(p, 6, "level(") == 0) {
        LevelTag tag;
        tag.file = file;
        tag.line = line;
        if (parse_level_tag(text.substr(p + 6), &tag)) {
          tags.push_back(std::move(tag));
        } else {
          report.fail_at(
              "malformed-tag",
              "cannot parse lock-level tag; expected 'opprentice-locks: "
              "level(<name>)=<int> [no-alloc]'",
              file, line);
        }
      } else {
        allow_comments.emplace(line, text);
      }
    }
    directives[file] =
        parse_directives(allow_comments, kMarker, suppressible_rules());
  }

  // Attach tags to the mutex declared on the tag's line or the next.
  for (MutexDecl& m : miner.mutexes) {
    for (LevelTag& tag : tags) {
      if (tag.file == m.file && (tag.line == m.line || tag.line + 1 == m.line)) {
        m.tagged = true;
        m.level = tag.level;
        m.no_alloc = tag.no_alloc;
        m.lock_id = tag.name;
        tag.attached = true;
        break;
      }
    }
    if (!m.tagged) {
      m.lock_id = m.type.empty() ? m.name : m.type + "::" + m.name;
    } else {
      ++result.lock_count;
    }
  }
  for (const LevelTag& tag : tags) {
    ++report.checks_run;
    if (!tag.attached) {
      report.fail_at("malformed-tag",
                     "level tag attaches to no util::Mutex declaration on "
                     "this line or the next",
                     tag.file, tag.line);
    }
  }
  // Two declarations may share a lock-class name (that is the point of
  // lock classes) but never with different levels or no-alloc flags.
  std::map<std::string, const MutexDecl*> class_of;
  for (const MutexDecl& m : miner.mutexes) {
    if (!m.tagged) continue;
    const auto [it, inserted] = class_of.emplace(m.lock_id, &m);
    if (!inserted && (it->second->level != m.level ||
                      it->second->no_alloc != m.no_alloc)) {
      report.fail_at("malformed-tag",
                     "lock class '" + m.lock_id +
                         "' is re-tagged with a conflicting level; first "
                         "declared at " + it->second->file + ":" +
                         std::to_string(it->second->line),
                     m.file, m.line);
    }
  }

  // Suppression bookkeeping: every finding consults allows(); whatever
  // it matches is marked used, and leftovers are flagged at the end.
  std::set<std::pair<std::string, std::size_t>> used;
  const auto allows = [&](const std::string& file, std::size_t line,
                          const std::string& rule) {
    const auto fit = directives.find(file);
    if (fit == directives.end()) return false;
    for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
      const auto it = fit->second.find(at);
      if (it != fit->second.end() && it->second.has_reason &&
          it->second.rules.count(rule) > 0) {
        used.insert({file, at});
        return true;
      }
    }
    return false;
  };

  // Suppression misuse is an error wherever it appears.
  for (const auto& [file, ds] : directives) {
    for (const auto& [line, d] : ds) {
      if (d.malformed || !d.has_reason) {
        report.fail_at("allow-without-reason",
                       "suppression must name a rule and give a reason: "
                       "opprentice-locks: allow(<rule>) <why this is safe>",
                       file, line);
      }
      for (const auto& rule : d.unknown) {
        report.fail_at("allow-unknown-rule",
                       "allow() names unknown rule '" + rule +
                           "'; run opprentice_locks --list-rules for valid "
                           "ids",
                       file, line);
      }
    }
  }

  // annotation-coverage: every mutex ranked, every initialized global
  // accounted for.
  for (const MutexDecl& m : miner.mutexes) {
    ++report.checks_run;
    if (m.tagged) continue;
    if (allows(m.file, m.line, "annotation-coverage")) continue;
    report.fail_at("annotation-coverage",
                   "util::Mutex '" + m.name +
                       "' has no lock-level tag; add '// opprentice-locks: "
                       "level(<class>)=<N>' above or beside it so the "
                       "order analyzer can rank it",
                   m.file, m.line);
  }
  for (const GlobalDecl& g : miner.globals) {
    ++report.checks_run;
    if (allows(g.file, g.line, "annotation-coverage")) continue;
    report.fail_at("annotation-coverage",
                   "mutable namespace-scope '" + g.name +
                       "' is neither OPPRENTICE_GUARDED_BY, atomic, "
                       "const, nor thread_local; shared state needs a "
                       "declared owner",
                   g.file, g.line);
  }

  if (opts.min_locks > 0 && result.lock_count < opts.min_locks) {
    std::ostringstream msg;
    msg << "only " << result.lock_count
        << " level-tagged util::Mutex declarations found, expected at "
        << "least " << opts.min_locks
        << " — were lock-level tags dropped in a refactor?";
    report.fail("min-locks", msg.str());
  }

  // ---- resolution helpers --------------------------------------------------

  std::map<std::string, std::vector<std::size_t>> decls_by_name;
  for (std::size_t i = 0; i < miner.mutexes.size(); ++i) {
    decls_by_name[miner.mutexes[i].name].push_back(i);
  }

  // Resolve an acquisition/wait expression's terminal identifier to one
  // mutex declaration: narrow the same-name candidates by the calling
  // function's enclosing type, then by file; each narrowing reverts if
  // it would empty the set. Anything still ambiguous is unknown.
  const auto resolve_lock = [&](const cg::FnDef& def,
                                const std::string& terminal)
      -> const MutexDecl* {
    const auto it = decls_by_name.find(terminal);
    if (it == decls_by_name.end()) return nullptr;
    std::vector<std::size_t> cand = it->second;
    const std::size_t sep = def.qualified.rfind("::");
    if (sep != std::string::npos) {
      const std::string type = def.qualified.substr(0, sep);
      std::vector<std::size_t> narrowed;
      for (const std::size_t i : cand) {
        if (miner.mutexes[i].type == type) narrowed.push_back(i);
      }
      if (!narrowed.empty()) cand = std::move(narrowed);
    }
    if (cand.size() > 1) {
      std::vector<std::size_t> narrowed;
      for (const std::size_t i : cand) {
        if (miner.mutexes[i].file == def.file) narrowed.push_back(i);
      }
      if (!narrowed.empty()) cand = std::move(narrowed);
    }
    return cand.size() == 1 ? &miner.mutexes[cand[0]] : nullptr;
  };

  // Member fan-out is filtered to type-qualified definitions; a call
  // that stays ambiguous contributes nothing (under-approximation).
  // Member calls named like std container operations are overwhelmingly
  // receiver-is-a-container; resolving them to a same-named project
  // method manufactures false edges (std::map::erase lands on
  // SeriesRegistry::erase), so they are skipped outright.
  static const std::set<std::string> kContainerMembers = {
      "erase", "find", "insert", "emplace", "count", "at",
      "swap",  "assign", "append", "merge", "extract"};
  const auto resolve_targets = [&](const cg::FnDef& def,
                                   const cg::CallSite& call) {
    std::vector<std::size_t> none;
    if (def.local_callables.count(call.terminal) > 0) return none;
    if (call.member &&
        (kContainerMembers.count(call.terminal) > 0 ||
         cg::growing_members().count(call.terminal) > 0 ||
         cg::resizing_members().count(call.terminal) > 0)) {
      return none;
    }
    bool external = false;
    std::vector<std::size_t> targets =
        cg::resolve_call(graph, def, call, &external);
    if (external) return none;
    if (call.member && targets.size() > 1) {
      std::vector<std::size_t> qualified;
      for (const std::size_t idx : targets) {
        if (graph.defs[idx].qualified != graph.defs[idx].name) {
          qualified.push_back(idx);
        }
      }
      if (qualified.size() == 1) return qualified;
      return none;
    }
    return targets;
  };

  // ---- transitive summaries ------------------------------------------------

  struct Entry {
    std::string path;  // " -> "-joined callee chain to the witness
    std::size_t line = 0;
  };
  struct Summary {
    std::map<std::string, Entry> acquired;  // lock id -> witness
    std::map<int, Entry> effects;           // EffectKind -> witness
    std::map<std::string, Entry> waits;     // lock id waited on -> witness
  };
  static const Summary kEmptySummary;
  std::vector<std::optional<Summary>> memo(graph.defs.size());
  std::vector<char> onstack(graph.defs.size(), 0);
  const std::function<const Summary&(std::size_t)> summarize =
      [&](std::size_t d) -> const Summary& {
    if (memo[d]) return *memo[d];
    if (onstack[d]) return kEmptySummary;  // cut call-graph cycles
    onstack[d] = 1;
    Summary s;
    const cg::FnDef& def = graph.defs[d];
    const auto fit = miner.facts.find(d);
    if (fit != miner.facts.end()) {
      for (const Acq& a : fit->second.acqs) {
        const MutexDecl* m = resolve_lock(def, a.terminal);
        if (m != nullptr) s.acquired.emplace(m->lock_id, Entry{"", a.line});
      }
      for (const Effect& e : fit->second.effects) {
        s.effects.emplace(static_cast<int>(e.kind), Entry{"", e.line});
      }
      for (const WaitSite& w : fit->second.waits) {
        if (miner.condvars.count(w.receiver) == 0) continue;
        const MutexDecl* m =
            w.arg_terminal.empty() ? nullptr : resolve_lock(def, w.arg_terminal);
        if (m != nullptr) s.waits.emplace(m->lock_id, Entry{"", w.line});
      }
    }
    for (const cg::CallSite& call : def.calls) {
      for (const std::size_t tgt : resolve_targets(def, call)) {
        const Summary& sub = summarize(tgt);
        const std::string& hop = graph.defs[tgt].qualified;
        const auto extend = [&](const Entry& e) {
          return Entry{hop + (e.path.empty() ? "" : " -> " + e.path), e.line};
        };
        for (const auto& [k, e] : sub.acquired) s.acquired.emplace(k, extend(e));
        for (const auto& [k, e] : sub.effects) s.effects.emplace(k, extend(e));
        for (const auto& [k, e] : sub.waits) s.waits.emplace(k, extend(e));
      }
    }
    onstack[d] = 0;
    memo[d] = std::move(s);
    return *memo[d];
  };

  // ---- per-scope analysis --------------------------------------------------

  std::set<std::tuple<std::string, std::string, std::size_t>> emitted;
  const auto emit = [&](const std::string& rule, const std::string& message,
                        const std::string& file, std::size_t line) {
    if (emitted.emplace(rule, file, line).second) {
      report.fail_at(rule, message, file, line);
    }
  };

  struct EdgeInfo {
    std::string from, to;
    std::string file;
    std::size_t line = 0;
    std::string path;
  };
  std::vector<EdgeInfo> edges;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const std::string& file, std::size_t line,
                            const std::string& path) {
    // A reasoned allow(lock-order-cycle) at the edge site removes the
    // edge from the order graph entirely.
    if (allows(file, line, "lock-order-cycle")) return;
    edges.push_back({from, to, file, line, path});
  };

  for (std::size_t d = 0; d < graph.defs.size(); ++d) {
    const auto fit = miner.facts.find(d);
    if (fit == miner.facts.end()) continue;
    const cg::FnDef& def = graph.defs[d];
    const BodyFacts& bf = fit->second;

    for (const WaitSite& w : bf.waits) {
      if (miner.condvars.count(w.receiver) == 0) continue;
      ++report.checks_run;
      if (!w.in_loop && !allows(def.file, w.line, "cv-wait-discipline")) {
        emit("cv-wait-discipline",
             "in " + def.qualified + ": '" + w.receiver + ".wait(" +
                 w.arg_terminal +
                 ")' sits outside a loop; waits must re-check their "
                 "predicate in a while loop to survive spurious wakeups",
             def.file, w.line);
      }
    }

    for (const Acq& a : bf.acqs) {
      ++report.checks_run;
      const MutexDecl* held = resolve_lock(def, a.terminal);
      if (held == nullptr) {
        if (!allows(def.file, a.line, "unknown-lock")) {
          emit("unknown-lock",
               "in " + def.qualified + ": cannot resolve MutexLock "
               "argument '" + a.expr +
                   "' to a util::Mutex declaration; name the member like "
                   "its declaration or suppress with a reason",
               def.file, a.line);
        }
        continue;
      }
      const auto in_scope = [&](std::size_t tok) {
        return tok > a.tok_begin && tok < a.tok_end;
      };

      for (const Acq& b : bf.acqs) {
        if (&b == &a || !in_scope(b.tok_begin)) continue;
        const MutexDecl* inner = resolve_lock(def, b.terminal);
        if (inner == nullptr) continue;  // already reported unknown-lock
        add_edge(held->lock_id, inner->lock_id, def.file, b.line, "");
      }

      for (const Effect& e : bf.effects) {
        if (!in_scope(e.tok)) continue;
        if (e.kind == EffectKind::kAlloc && !held->no_alloc) continue;
        if (allows(def.file, e.line, "blocking-under-lock")) continue;
        emit("blocking-under-lock",
             "in " + def.qualified + ": '" + e.what + "' " +
                 describe(e.kind) + " while holding '" + held->lock_id + "'",
             def.file, e.line);
      }

      for (const WaitSite& w : bf.waits) {
        if (!in_scope(w.tok) || miner.condvars.count(w.receiver) == 0) {
          continue;
        }
        const MutexDecl* m =
            w.arg_terminal.empty() ? nullptr : resolve_lock(def, w.arg_terminal);
        // wait(M) releases M for the duration, so waiting on the lock
        // this very scope holds is the intended pattern.
        if (m == nullptr || m->lock_id == held->lock_id) continue;
        if (allows(def.file, w.line, "blocking-under-lock")) continue;
        emit("blocking-under-lock",
             "in " + def.qualified + ": '" + w.receiver + ".wait(" +
                 w.arg_terminal + ")' parks on '" + m->lock_id +
                 "' while still holding '" + held->lock_id + "'",
             def.file, w.line);
      }

      for (const cg::CallSite& call : def.calls) {
        if (!in_scope(call.tok)) continue;
        for (const std::size_t tgt : resolve_targets(def, call)) {
          const Summary& sub = summarize(tgt);
          const std::string& hop = graph.defs[tgt].qualified;
          const auto via = [&](const Entry& e) {
            return " [via " + hop + (e.path.empty() ? "" : " -> " + e.path) +
                   "]";
          };
          for (const auto& [lock_id, e] : sub.acquired) {
            add_edge(held->lock_id, lock_id, def.file, call.line,
                     hop + (e.path.empty() ? "" : " -> " + e.path));
          }
          for (const auto& [kind, e] : sub.effects) {
            if (static_cast<EffectKind>(kind) == EffectKind::kAlloc &&
                !held->no_alloc) {
              continue;
            }
            if (allows(def.file, call.line, "blocking-under-lock")) continue;
            emit("blocking-under-lock",
                 "in " + def.qualified + ": call transitively " +
                     describe(static_cast<EffectKind>(kind)) +
                     " while holding '" + held->lock_id + "'" + via(e),
                 def.file, call.line);
          }
          for (const auto& [lock_id, e] : sub.waits) {
            if (lock_id == held->lock_id) continue;
            if (allows(def.file, call.line, "blocking-under-lock")) continue;
            emit("blocking-under-lock",
                 "in " + def.qualified + ": call transitively parks on '" +
                     lock_id + "' while holding '" + held->lock_id + "'" +
                     via(e),
                 def.file, call.line);
          }
        }
      }
    }
  }

  // ---- order checking ------------------------------------------------------

  std::map<std::string, const MutexDecl*> decl_by_lockid;
  for (const MutexDecl& m : miner.mutexes) {
    decl_by_lockid.emplace(m.lock_id, &m);
  }

  // Declared levels are checked per edge; level-consistent and untagged
  // edges feed cycle detection.
  std::map<std::string, std::set<std::string>> adj;
  std::vector<const EdgeInfo*> undecided;
  for (const EdgeInfo& e : edges) {
    ++report.checks_run;
    const MutexDecl* from = decl_by_lockid.at(e.from);
    const MutexDecl* to = decl_by_lockid.at(e.to);
    const std::string via = e.path.empty() ? "" : " [via " + e.path + "]";
    if (from->tagged && to->tagged && to->level <= from->level) {
      std::ostringstream msg;
      if (e.from == e.to) {
        msg << "re-acquiring lock class '" << e.from << "' (level "
            << from->level
            << ") while already holding it; two instances of one class "
            << "deadlock when threads meet them in opposite orders — "
            << "acquire them in a canonical order behind one scope";
      } else {
        msg << "acquiring '" << e.to << "' (level " << to->level
            << ") while holding '" << e.from << "' (level " << from->level
            << ") inverts the declared lock order; take the lower level "
            << "first or retag";
      }
      emit("lock-order-cycle", msg.str() + via, e.file, e.line);
      continue;
    }
    if (e.from == e.to) {
      emit("lock-order-cycle",
           "re-acquiring lock '" + e.from +
               "' while already holding it deadlocks a non-recursive "
               "mutex" + via,
           e.file, e.line);
      continue;
    }
    adj[e.from].insert(e.to);
    undecided.push_back(&e);
  }

  // Tarjan SCC over the remaining edges: any component with two or more
  // locks is a cycle no level argument can excuse.
  std::map<std::string, int> index, lowlink, comp;
  std::vector<std::string> stack;
  std::set<std::string> onstack_scc;
  int next_index = 0, next_comp = 0;
  const std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        onstack_scc.insert(v);
        const auto it = adj.find(v);
        if (it != adj.end()) {
          for (const std::string& w : it->second) {
            if (index.count(w) == 0) {
              strongconnect(w);
              lowlink[v] = std::min(lowlink[v], lowlink[w]);
            } else if (onstack_scc.count(w) > 0) {
              lowlink[v] = std::min(lowlink[v], index[w]);
            }
          }
        }
        if (lowlink[v] == index[v]) {
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            onstack_scc.erase(w);
            comp[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
      };
  for (const auto& [node, _] : adj) {
    if (index.count(node) == 0) strongconnect(node);
  }
  std::map<int, std::vector<std::string>> members;
  for (const auto& [node, c] : comp) members[c].push_back(node);
  for (const EdgeInfo* e : undecided) {
    const auto fi = comp.find(e->from);
    const auto ti = comp.find(e->to);
    if (fi == comp.end() || ti == comp.end() || fi->second != ti->second) {
      continue;
    }
    const std::vector<std::string>& cycle = members[fi->second];
    if (cycle.size() < 2) continue;
    std::string names;
    for (const std::string& n : cycle) {
      if (!names.empty()) names += ", ";
      names += "'" + n + "'";
    }
    const std::string via = e->path.empty() ? "" : " [via " + e->path + "]";
    emit("lock-order-cycle",
         "acquiring '" + e->to + "' while holding '" + e->from +
             "' closes a lock-order cycle among " + names +
             "; rank these locks with level tags and acquire in order" + via,
         e->file, e->line);
  }

  // ---- unused suppressions -------------------------------------------------

  for (const auto& [file, ds] : directives) {
    for (const auto& [line, d] : ds) {
      ++report.checks_run;
      if (d.malformed || !d.has_reason || !d.unknown.empty()) continue;
      if (used.count({file, line}) > 0) continue;
      report.fail_at("unused-suppression",
                     "suppression matches no finding; remove it (the "
                     "hazard it excused is gone) or fix the rule name",
                     file, line);
    }
  }

  // ---- DOT graph -----------------------------------------------------------

  if (opts.dump_graph) {
    std::ostringstream dot;
    dot << "digraph opprentice_locks {\n  rankdir=LR;\n";
    std::set<std::string> nodes;
    for (const MutexDecl& m : miner.mutexes) nodes.insert(m.lock_id);
    for (const std::string& id : nodes) {
      const MutexDecl* m = decl_by_lockid.at(id);
      dot << "  \"" << id << "\" [label=\"" << id;
      if (m->tagged) {
        dot << "\\nlevel " << m->level;
        if (m->no_alloc) dot << " no-alloc";
      } else {
        dot << "\\n(untagged)";
      }
      dot << "\"];\n";
    }
    std::set<std::string> edge_lines;
    for (const EdgeInfo& e : edges) {
      std::ostringstream line;
      line << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
           << e.file << ':' << e.line << "\"];\n";
      edge_lines.insert(line.str());
    }
    for (const std::string& line : edge_lines) dot << line;
    dot << "}\n";
    result.graph = dot.str();
  }

  std::sort(report.issues.begin(), report.issues.end(),
            [](const LintIssue& a, const LintIssue& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return result;
}

LintReport locks_self_test() {
  LintReport result;
  const TempTree tree("opprentice-locks-selftest");

  // lock-order-cycle (level inversion): forward order is fine, backward
  // inverts the declared levels.
  tree.plant("src/core/fixture_inversion.cpp",
             R"cpp(// opprentice-locks: level(alpha)=10
util::Mutex g_alpha;
// opprentice-locks: level(beta)=20
util::Mutex g_beta;

void forward() {
  util::MutexLock hold_a(g_alpha);
  util::MutexLock hold_b(g_beta);
}

void backward() {
  util::MutexLock hold_b(g_beta);
  util::MutexLock hold_a(g_alpha);
}
)cpp");
  // lock-order-cycle (same-class re-acquisition): two shards of one lock
  // class acquired while one is held — the registry hazard.
  tree.plant("src/core/fixture_shards.cpp",
             R"cpp(struct ShardSet {
  // opprentice-locks: level(fixture_shard)=30
  util::Mutex mutex;
};

ShardSet g_a_shard;
ShardSet g_b_shard;

void cross_shard() {
  util::MutexLock first(g_a_shard.mutex);
  util::MutexLock second(g_b_shard.mutex);
}
)cpp");
  // lock-order-cycle (true cycle, one lock untagged so no level verdict
  // applies): both orders appear, SCC detection must flag both edges.
  // The untagged mutex also costs an annotation-coverage finding.
  tree.plant("src/core/fixture_cycle.cpp",
             R"cpp(// opprentice-locks: level(gamma)=15
util::Mutex g_gamma;
util::Mutex g_delta;

void gamma_then_delta() {
  util::MutexLock hold_c(g_gamma);
  util::MutexLock hold_d(g_delta);
}

void delta_then_gamma() {
  util::MutexLock hold_d(g_delta);
  util::MutexLock hold_c(g_gamma);
}
)cpp");
  // blocking-under-lock: direct I/O, transitive I/O through a helper,
  // and allocation under a no-alloc lock.
  tree.plant("src/core/fixture_blocking.cpp",
             R"cpp(#include <cstdio>
#include <vector>

// opprentice-locks: level(fixture_log)=90
util::Mutex g_log_mutex;
// opprentice-locks: level(fixture_rt)=40 no-alloc
util::Mutex g_rt_mutex;

void flush_all();

void log_line(const char* line) {
  util::MutexLock hold(g_log_mutex);
  std::fprintf(stderr, "%s\n", line);
}

void drain() {
  util::MutexLock hold(g_log_mutex);
  flush_all();
}

void rt_push(std::vector<double>& out) {
  util::MutexLock hold(g_rt_mutex);
  out.push_back(1.0);
}

void flush_all() { std::fflush(stderr); }
)cpp");
  // cv-wait-discipline: a bare wait fires; the predicate-loop twin and
  // waiting on the very lock the scope holds stay silent.
  tree.plant("src/core/fixture_cv.cpp",
             R"cpp(// opprentice-locks: level(fixture_cv)=50
util::Mutex g_cv_mutex;
util::CondVar g_cv;
bool g_ready OPPRENTICE_GUARDED_BY(g_cv_mutex) = false;

void wait_bad() {
  util::MutexLock hold(g_cv_mutex);
  g_cv.wait(g_cv_mutex);
}

void wait_good() {
  util::MutexLock hold(g_cv_mutex);
  while (!g_ready) g_cv.wait(g_cv_mutex);
}
)cpp");
  // annotation-coverage: an untagged mutex, an unguarded initialized
  // global, and a reasoned suppression keeping a third quiet.
  tree.plant("src/core/fixture_coverage.cpp",
             R"cpp(util::Mutex g_untagged_mutex;

double g_counter = 0.0;

// opprentice-locks: allow(annotation-coverage) fixture: migration stub tracked in the backlog
double g_suppressed_counter = 0.0;
)cpp");
  // unknown-lock: the guard argument matches no declaration.
  tree.plant("src/core/fixture_unknown.cpp",
             R"cpp(void grab(util::Mutex& stranger) {
  util::MutexLock hold(stranger);
}
)cpp");
  // Suppression misuse.
  tree.plant("src/core/fixture_bare_allow.cpp",
             R"cpp(// opprentice-locks: allow(blocking-under-lock)
const int locks_bare_allow_placeholder = 0;
)cpp");
  tree.plant("src/core/fixture_unknown_allow.cpp",
             R"cpp(// opprentice-locks: allow(flux) the rule id is misspelled on purpose
const int locks_unknown_allow_placeholder = 0;
)cpp");
  // unused-suppression: reasoned, well-formed, matches nothing.
  tree.plant("src/core/fixture_unused_allow.cpp",
             R"cpp(// opprentice-locks: allow(unknown-lock) fixture: nothing on this line needs it
const int locks_unused_allow_placeholder = 0;
)cpp");
  // malformed-tag: unparseable syntax, and a tag attached to no mutex.
  tree.plant("src/core/fixture_bad_tags.cpp",
             R"cpp(// opprentice-locks: level(broken= 3
const int locks_malformed_tag_placeholder = 0;

// opprentice-locks: level(orphan)=77
const int locks_orphan_tag_placeholder = 0;
)cpp");
  // Reasoned suppression silences a real blocking finding (and is
  // therefore used, not flagged).
  tree.plant("src/core/fixture_suppressed.cpp",
             R"cpp(#include <cstdio>

// opprentice-locks: level(fixture_quiet)=60
util::Mutex g_quiet_mutex;

void quiet_io() {
  util::MutexLock hold(g_quiet_mutex);
  // opprentice-locks: allow(blocking-under-lock) fixture: reasoned line-above suppression
  std::fprintf(stderr, "quiet\n");
}
)cpp");
  // The real mutex wrapper header is excluded from scanning wholesale;
  // this clone would otherwise trip annotation-coverage.
  tree.plant("src/util/mutex.hpp",
             R"cpp(namespace util {
class Mutex {};
}
util::Mutex g_hidden_in_wrapper_header;
)cpp");

  LocksOptions opts;
  opts.min_locks = 8;
  const LocksResult scanned = locks_tree({tree.root().string()}, opts);

  std::map<std::string, std::size_t> tally;
  for (const auto& issue : scanned.report.issues) ++tally[issue.check];

  const std::map<std::string, std::size_t> expected = {
      {"lock-order-cycle", 4},     // inversion + shard self + 2 SCC edges
      {"blocking-under-lock", 3},  // direct io, transitive io, no-alloc
      {"cv-wait-discipline", 1},
      {"annotation-coverage", 3},  // 2 untagged mutexes + 1 global
      {"unknown-lock", 1},
      {"allow-without-reason", 1},
      {"allow-unknown-rule", 1},
      {"unused-suppression", 1},
      {"malformed-tag", 2},
  };
  for (const auto& [rule, count] : expected) {
    ++result.checks_run;
    const std::size_t got = tally.count(rule) > 0 ? tally.at(rule) : 0;
    if (got != count) {
      std::ostringstream msg;
      msg << "rule '" << rule << "' fired " << got
          << " times on the planted tree, expected exactly " << count;
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // nothing beyond the expectations fired
  for (const auto& [rule, count] : tally) {
    if (expected.count(rule) == 0) {
      std::ostringstream msg;
      msg << "unexpected '" << rule << "' fired " << count
          << " times on the planted tree";
      result.fail("self-test", msg.str());
    }
  }
  ++result.checks_run;  // every planted tag was discovered
  if (scanned.lock_count != 8) {
    std::ostringstream msg;
    msg << "found " << scanned.lock_count
        << " level-tagged mutexes on the planted tree, expected 8";
    result.fail("self-test", msg.str());
  }
  ++result.checks_run;  // min-locks guard stays quiet when satisfied
  for (const auto& issue : scanned.report.issues) {
    if (issue.check == "min-locks") {
      result.fail("self-test", "min-locks fired despite 8 planted tags");
    }
  }
  return result;
}

}  // namespace opprentice::tools
