// Quickstart: the whole Opprentice loop on a synthetic KPI in ~80 lines.
//
//  1. Generate a seasonal KPI with injected anomalies (stand-in for your
//     monitoring data) and simulate an operator labeling it.
//  2. Bootstrap Opprentice on the first 8 weeks of labeled history.
//  3. Stream the remaining weeks point by point; each week, hand the
//     operator's new labels back to Opprentice so it retrains and adapts
//     its cThld.
//  4. Report precision/recall of the online detections.
#include <cstdio>

#include "core/opprentice.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/metrics.hpp"
#include "labeling/operator_model.hpp"

int main() {
  using namespace opprentice;

  // --- 1. Data: a PV-like KPI (strongly seasonal page views) ---
  datagen::KpiPreset preset = datagen::pv_preset();
  preset.model.weeks = 12;  // keep the demo quick
  const datagen::GeneratedKpi kpi =
      datagen::generate_kpi(preset.model, preset.injection);
  const ts::LabelSet operator_labels = labeling::simulate_labeling(
      kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});

  const std::size_t week = kpi.series.points_per_week();
  const std::size_t bootstrap_weeks = 8;
  const std::size_t bootstrap_points = bootstrap_weeks * week;

  std::printf("KPI %s: %zu points (%zu weeks), %zu labeled anomaly points\n",
              kpi.series.name().c_str(), kpi.series.size(),
              kpi.series.size() / week, operator_labels.anomalous_points());

  // --- 2. Bootstrap on labeled history ---
  const detectors::SeriesContext ctx{kpi.series.points_per_day(),
                                     kpi.series.points_per_week()};
  core::OpprenticeConfig config;
  config.preference = {0.66, 0.66};  // the operators' accuracy preference

  core::Opprentice system(ctx, config);
  system.bootstrap(kpi.series.slice(0, bootstrap_points),
                   operator_labels.slice(0, bootstrap_points));
  std::printf("bootstrapped: %zu detector configurations, cThld=%.3f\n",
              system.num_features(), system.current_cthld());

  // --- 3. Stream the rest; label weekly ---
  std::vector<std::uint8_t> decisions(kpi.series.size(), 0);
  for (std::size_t i = bootstrap_points; i < kpi.series.size(); ++i) {
    const auto detection = system.observe(kpi.series[i]);
    decisions[i] = detection.is_anomaly ? 1 : 0;

    const bool week_boundary = (i + 1) % week == 0;
    if (week_boundary) {
      // The operator labels everything seen so far (tens of seconds of
      // work with the labeling tool, §5.7).
      system.ingest_labels(operator_labels, i + 1);
    }
  }

  // --- 4. Accuracy over the streamed region ---
  // §5.1: "The KPI data labeled by operators are the so called ground
  // truth" — accuracy is measured against the operator labels.
  const auto truth = operator_labels.to_point_labels(kpi.series.size());
  const auto counts = eval::confusion(
      std::span(decisions).subspan(bootstrap_points),
      std::span(truth).subspan(bootstrap_points));
  std::printf("online detection: recall=%.3f precision=%.3f "
              "(preference: recall>=%.2f, precision>=%.2f)\n",
              eval::recall(counts), eval::precision(counts),
              config.preference.min_recall, config.preference.min_precision);

  // Which detector configurations did the forest actually rely on?
  auto importances = system.feature_importances();
  const auto names = system.feature_names();
  std::printf("top detector configurations by forest importance:\n");
  for (int rank = 0; rank < 5; ++rank) {
    std::size_t best = 0;
    double best_value = -1.0;
    for (std::size_t f = 0; f < importances.size(); ++f) {
      if (importances[f] > best_value) {
        best_value = importances[f];
        best = f;
      }
    }
    std::printf("  %d. %-28s %.1f%%\n", rank + 1, names[best].c_str(),
                100.0 * best_value);
    importances[best] = -2.0;
  }
  return 0;
}
