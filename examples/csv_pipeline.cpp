// File-based pipeline: KPI data and labels from CSV.
//
// Real deployments pull KPI series from monitoring systems as flat files.
// This example (1) exports a synthetic KPI + operator labels to CSV the
// way a monitoring exporter would, then (2) reads both back, extracts the
// 133 standard features, trains a random forest on the first 8 weeks,
// picks a cThld with the PC-Score, and writes per-point detections to a
// results CSV.
#include <cstdio>
#include <filesystem>

#include "core/dataset_builder.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/pr_curve.hpp"
#include "eval/threshold_pickers.hpp"
#include "labeling/operator_model.hpp"
#include "ml/random_forest.hpp"
#include "util/csv.hpp"

using namespace opprentice;

int main() {
  const std::string dir = "csv-example";
  std::filesystem::create_directories(dir);

  // ---- 1. Export (what your monitoring system would produce) ----
  auto preset = datagen::srt_preset();
  const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
  const auto labels = labeling::simulate_labeling(
      kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});

  util::CsvTable series_csv;
  series_csv.columns = {"timestamp", "value"};
  for (std::size_t i = 0; i < kpi.series.size(); ++i) {
    series_csv.rows.push_back(
        {static_cast<double>(kpi.series.timestamp(i)), kpi.series[i]});
  }
  util::write_csv_file(dir + "/kpi.csv", series_csv);

  util::CsvTable labels_csv;
  labels_csv.columns = {"window_begin", "window_end"};
  for (const auto& w : labels.windows()) {
    labels_csv.rows.push_back(
        {static_cast<double>(w.begin), static_cast<double>(w.end)});
  }
  util::write_csv_file(dir + "/labels.csv", labels_csv);
  std::printf("exported %zu points and %zu label windows to %s/\n",
              kpi.series.size(), labels.window_count(), dir.c_str());

  // ---- 2. Import and detect ----
  const auto series_in = util::read_csv_file(dir + "/kpi.csv");
  const auto values = series_in.column("value");
  const auto timestamps = series_in.column("timestamp");
  const auto interval = static_cast<std::int64_t>(timestamps[1] -
                                                  timestamps[0]);
  const ts::TimeSeries series("SRT(csv)",
                              static_cast<std::int64_t>(timestamps[0]),
                              interval, values);

  const auto labels_in = util::read_csv_file(dir + "/labels.csv");
  ts::LabelSet loaded_labels;
  for (const auto& row : labels_in.rows) {
    loaded_labels.add_window({static_cast<std::size_t>(row[0]),
                              static_cast<std::size_t>(row[1])});
  }

  const ml::Dataset dataset = core::build_dataset(series, loaded_labels);
  const std::size_t split = 8 * series.points_per_week();
  std::printf("extracted %zu features over %zu points\n",
              dataset.num_features(), dataset.num_rows());

  ml::RandomForest forest;
  forest.train(dataset.slice(series.points_per_week(), split));

  const ml::Dataset test = dataset.slice(split, dataset.num_rows());
  const auto scores = forest.score_all(test);
  const eval::PrCurve curve(scores, test.labels());
  const auto choice = eval::pick_threshold(
      curve, eval::ThresholdMethod::kPcScore, {0.66, 0.66});
  std::printf("PC-Score cThld=%.3f -> recall=%.3f precision=%.3f "
              "(AUCPR %.3f)\n",
              choice.cthld, choice.recall, choice.precision, curve.aucpr());

  // ---- 3. Write detections ----
  util::CsvTable out;
  out.columns = {"timestamp", "value", "anomaly_probability", "is_anomaly"};
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    out.rows.push_back({static_cast<double>(series.timestamp(split + i)),
                        series[split + i], scores[i],
                        scores[i] >= choice.cthld ? 1.0 : 0.0});
  }
  util::write_csv_file(dir + "/detections.csv", out);
  std::printf("wrote %s/detections.csv (%zu rows)\n", dir.c_str(),
              out.rows.size());
  return 0;
}
