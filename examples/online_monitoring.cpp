// Online monitoring scenario: Opprentice watching a live KPI feed.
//
// Simulates the deployment of Fig 3: a monitoring agent feeds one point
// per interval, alerts fire when the classifier's anomaly probability
// crosses the predicted cThld, and once a week the operator labels the
// new data (seconds of work), triggering incremental retraining and a
// cThld update. A duration filter (§6 "Anomaly duration") suppresses
// alerts shorter than a configurable number of points.
#include <cstdio>
#include <deque>

#include "core/opprentice.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/metrics.hpp"
#include "labeling/operator_model.hpp"

using namespace opprentice;

namespace {

// §6: "if operators are only interested in continuous anomalies that last
// for more than 5 minutes, one can solve it through a simple threshold
// filter" on the point-level decisions.
class DurationFilter {
 public:
  explicit DurationFilter(std::size_t min_run) : min_run_(min_run) {}

  // Feeds the point-level decision; returns true when an alert should
  // fire (the current anomalous run just reached min_run points).
  bool feed(bool anomalous) {
    run_ = anomalous ? run_ + 1 : 0;
    return run_ == min_run_;
  }

 private:
  std::size_t min_run_;
  std::size_t run_ = 0;
};

}  // namespace

int main() {
  using namespace opprentice;

  auto preset = datagen::pv_preset();
  preset.model.weeks = 14;
  const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
  const auto labels = labeling::simulate_labeling(
      kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});

  const std::size_t week = kpi.series.points_per_week();
  const detectors::SeriesContext ctx{kpi.series.points_per_day(), week};

  core::OpprenticeConfig config;
  config.preference = {0.66, 0.66};
  core::Opprentice system(ctx, config);

  const std::size_t bootstrap = 8 * week;
  system.bootstrap(kpi.series.slice(0, bootstrap),
                   labels.slice(0, bootstrap));
  std::printf("monitoring %s: bootstrap on 8 weeks, cThld=%.3f\n\n",
              kpi.series.name().c_str(), system.current_cthld());

  DurationFilter alert_filter(/*min_run=*/2);
  std::size_t alerts = 0, true_alerts = 0;

  for (std::size_t i = bootstrap; i < kpi.series.size(); ++i) {
    const auto detection = system.observe(kpi.series[i]);
    if (alert_filter.feed(detection.is_anomaly)) {
      ++alerts;
      const bool genuine = kpi.ground_truth.is_anomalous(i);
      true_alerts += genuine;
      if (alerts <= 12) {
        std::printf(
            "ALERT t=%-6zu value=%-10.0f p(anomaly)=%.2f cThld=%.2f  %s\n",
            i, detection.value, detection.score, detection.cthld,
            genuine ? "[genuine incident]" : "[false alarm]");
      }
    }
    if ((i + 1) % week == 0) {
      const double before = system.current_cthld();
      system.ingest_labels(labels, i + 1);
      std::printf(
          "-- week %zu labeled; retrained on %zu points; cThld %.3f -> %.3f\n",
          (i + 1) / week, system.labeled_until(), before,
          system.current_cthld());
    }
  }

  std::printf("\n%zu alerts fired, %zu matched a genuine incident (%.0f%%)\n",
              alerts, true_alerts,
              alerts == 0 ? 0.0
                          : 100.0 * static_cast<double>(true_alerts) /
                                static_cast<double>(alerts));
  std::printf(
      "(point-level accuracy is evaluated in the bench suite; alert-level\n"
      "precision here also reflects the duration filter)\n");
  return 0;
}
