// Plugging a custom detector into Opprentice.
//
// §4.3.2: "Opprentice is not limited to the detectors we used, and can
// incorporate emerging detectors, as long as they meet our detector
// requirements" — i.e. they emit a non-negative severity per point and
// run online. This example adds a toy "rate of change" detector family to
// the standard registry and trains Opprentice with 133 + 3 configurations.
#include <cmath>
#include <cstdio>

#include "core/opprentice.hpp"
#include "datagen/kpi_presets.hpp"
#include "detectors/registry.hpp"
#include "eval/metrics.hpp"
#include "labeling/operator_model.hpp"
#include "util/stats.hpp"

using namespace opprentice;

namespace {

// A deliberately simple detector: severity is the relative step change
// |v_t - v_{t-1}| / max(|v_{t-1}|, eps), smoothed over a window.
class RateOfChangeDetector final : public detectors::Detector {
 public:
  explicit RateOfChangeDetector(std::size_t window)
      : window_(window) {}

  std::string name() const override {
    return "rate_of_change(win=" + std::to_string(window_) + ")";
  }
  std::size_t warmup_points() const override { return window_ + 1; }

  double feed(double value) override {
    if (util::is_missing(value)) return 0.0;
    double severity = 0.0;
    if (has_last_) {
      const double rate =
          std::abs(value - last_) / std::max(std::abs(last_), 1e-9);
      smoothed_ += (rate - smoothed_) / static_cast<double>(window_);
      severity = smoothed_;
    }
    last_ = value;
    has_last_ = true;
    return detectors::sanitize_severity(severity);
  }

  void reset() override {
    has_last_ = false;
    smoothed_ = 0.0;
  }

 private:
  std::size_t window_;
  double last_ = 0.0;
  double smoothed_ = 0.0;
  bool has_last_ = false;
};

}  // namespace

int main() {
  // Build the registry: the 14 standard families + our custom family.
  auto registry = detectors::DetectorRegistry::with_standard_families();
  registry.register_family(
      "rate_of_change", [](const detectors::SeriesContext&) {
        std::vector<detectors::DetectorPtr> out;
        for (std::size_t win : {5, 15, 45}) {
          out.push_back(std::make_unique<RateOfChangeDetector>(win));
        }
        return out;
      });
  std::printf("registry: %zu detector families\n", registry.family_count());

  // Generate a jittery KPI where a change-rate feature should help.
  auto preset = datagen::srt_preset();
  preset.model.weeks = 12;
  preset.injection.kind_weights = {0.8, 0.3, 0.5, 0.3, 2.0, 0.8};  // jittery
  preset.injection.kind_phase_in.clear();
  const auto kpi = datagen::generate_kpi(preset.model, preset.injection);
  const auto labels = labeling::simulate_labeling(
      kpi.ground_truth, kpi.series.size(), labeling::OperatorModel{});

  const detectors::SeriesContext ctx{kpi.series.points_per_day(),
                                     kpi.series.points_per_week()};
  core::OpprenticeConfig config;
  config.preference = {0.66, 0.66};

  core::Opprentice system(registry.instantiate_all(ctx), ctx, config);
  const std::size_t split = 8 * kpi.series.points_per_week();
  system.bootstrap(kpi.series.slice(0, split), labels.slice(0, split));
  std::printf("features: %zu (133 standard + 3 custom)\n",
              system.num_features());

  // Detect the rest and measure against the operator labels.
  std::vector<std::uint8_t> decisions(kpi.series.size(), 0);
  for (std::size_t i = split; i < kpi.series.size(); ++i) {
    decisions[i] = system.observe(kpi.series[i]).is_anomaly ? 1 : 0;
    if ((i + 1) % kpi.series.points_per_week() == 0) {
      system.ingest_labels(labels, i + 1);
    }
  }
  const auto truth = labels.to_point_labels(kpi.series.size());
  const auto counts =
      eval::confusion(std::span(decisions).subspan(split),
                      std::span(truth).subspan(split));
  std::printf("online accuracy: recall=%.3f precision=%.3f\n",
              eval::recall(counts), eval::precision(counts));

  // Did the forest pick up the custom configurations?
  const auto names = system.feature_names();
  const auto importances = system.feature_importances();
  std::printf("custom configuration importances:\n");
  for (std::size_t f = 0; f < names.size(); ++f) {
    if (names[f].rfind("rate_of_change", 0) == 0) {
      std::printf("  %-24s %.2f%%\n", names[f].c_str(),
                  100.0 * importances[f]);
    }
  }
  std::printf(
      "\nNo retuning was needed: the forest decides how much the new\n"
      "detector matters. That is the point of Opprentice.\n");
  return 0;
}
