// Unit tests for src/eval: confusion metrics, PC-Score, PR curves, AUCPR,
// and the four cThld pickers.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "eval/pr_curve.hpp"
#include "eval/threshold_pickers.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::eval;

// ---- confusion / basic metrics ----

TEST(Metrics, ConfusionCountsAllQuadrants) {
  const std::vector<std::uint8_t> pred{1, 1, 0, 0, 1};
  const std::vector<std::uint8_t> truth{1, 0, 1, 0, 1};
  const auto c = confusion(pred, truth);
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
}

TEST(Metrics, RecallPrecisionValues) {
  ConfusionCounts c;
  c.true_positives = 6;
  c.false_negatives = 2;
  c.false_positives = 4;
  EXPECT_DOUBLE_EQ(recall(c), 0.75);
  EXPECT_DOUBLE_EQ(precision(c), 0.6);
}

TEST(Metrics, DefinedOnDegenerateWeeks) {
  // Zero-denominator cases return vacuously perfect values, never NaN, so
  // clean weeks (no anomalies, no detections) keep PC-Score and windowed
  // accuracy defined instead of poisoning downstream aggregation.
  ConfusionCounts none;
  EXPECT_DOUBLE_EQ(recall(none), 1.0);
  EXPECT_DOUBLE_EQ(precision(none), 1.0);
  EXPECT_DOUBLE_EQ(f_score(recall(none), precision(none)), 1.0);
  const AccuracyPreference pref{0.66, 0.66};
  EXPECT_FALSE(std::isnan(pc_score(recall(none), precision(none), pref)));

  // Anomalies present but nothing detected: silence is not rewarded.
  ConfusionCounts missed;
  missed.false_negatives = 5;
  EXPECT_DOUBLE_EQ(recall(missed), 0.0);
  EXPECT_DOUBLE_EQ(precision(missed), 1.0);
  EXPECT_DOUBLE_EQ(f_score(recall(missed), precision(missed)), 0.0);

  // Detections on a week with no actual anomalies: all false alarms.
  ConfusionCounts noisy;
  noisy.false_positives = 5;
  EXPECT_DOUBLE_EQ(recall(noisy), 1.0);
  EXPECT_DOUBLE_EQ(precision(noisy), 0.0);
  EXPECT_DOUBLE_EQ(f_score(recall(noisy), precision(noisy)), 0.0);
}

TEST(Metrics, FScoreHarmonicMean) {
  EXPECT_DOUBLE_EQ(f_score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(f_score(0.5, 0.5), 0.5);
  EXPECT_NEAR(f_score(0.75, 0.6), 2 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_DOUBLE_EQ(f_score(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isnan(f_score(NAN, 0.5)));
}

// ---- PC-Score (§4.5.1) ----

TEST(PcScore, IncentiveConstantSeparatesSatisfyingPoints) {
  const AccuracyPreference pref{0.66, 0.66};
  // A satisfying point always outranks any non-satisfying point
  // because F-Score <= 1 and the satisfying point gets +1.
  const double satisfying = pc_score(0.66, 0.66, pref);
  const double excellent_but_outside = pc_score(1.0, 0.65, pref);
  EXPECT_GT(satisfying, excellent_but_outside);
}

TEST(PcScore, EqualsFScorePlusOneInsideBox) {
  const AccuracyPreference pref{0.5, 0.5};
  EXPECT_DOUBLE_EQ(pc_score(0.8, 0.6, pref), f_score(0.8, 0.6) + 1.0);
}

TEST(PcScore, EqualsFScoreOutsideBox) {
  const AccuracyPreference pref{0.9, 0.9};
  EXPECT_DOUBLE_EQ(pc_score(0.8, 0.6, pref), f_score(0.8, 0.6));
}

TEST(PcScore, BoundaryCountsAsSatisfying) {
  const AccuracyPreference pref{0.66, 0.66};
  EXPECT_TRUE(pref.satisfied_by(0.66, 0.66));
  EXPECT_FALSE(pref.satisfied_by(0.6599, 0.66));
}

TEST(Preference, ScaledBoxIsEasier) {
  const AccuracyPreference pref{0.8, 0.8};
  const auto easier = pref.scaled(2.0);
  EXPECT_DOUBLE_EQ(easier.min_recall, 0.4);
  EXPECT_TRUE(easier.satisfied_by(0.5, 0.5));
  EXPECT_FALSE(pref.satisfied_by(0.5, 0.5));
}

TEST(SdDistance, GeometricMeaning) {
  EXPECT_DOUBLE_EQ(sd_distance(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(sd_distance(0.0, 1.0), 1.0);
  EXPECT_NEAR(sd_distance(0.0, 0.0), std::sqrt(2.0), 1e-12);
}

// ---- PR curve ----

TEST(PrCurveTest, HandComputedExample) {
  // scores:  .9  .8  .7  .6  .5
  // truth:    1   0   1   1   0
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 1, 0};
  const PrCurve curve(scores, truth);
  ASSERT_EQ(curve.points().size(), 5u);
  // At threshold .9: TP=1, FP=0 -> r=1/3, p=1.
  EXPECT_NEAR(curve.points()[0].recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve.points()[0].precision, 1.0, 1e-12);
  // At threshold .6: TP=3, FP=1 -> r=1, p=3/4.
  EXPECT_NEAR(curve.points()[3].recall, 1.0, 1e-12);
  EXPECT_NEAR(curve.points()[3].precision, 0.75, 1e-12);
  // At threshold .5: TP=3, FP=2 -> r=1, p=3/5.
  EXPECT_NEAR(curve.points()[4].precision, 0.6, 1e-12);
}

TEST(PrCurveTest, PerfectRankingAucprIsOne) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> truth{1, 1, 0, 0};
  EXPECT_NEAR(PrCurve(scores, truth).aucpr(), 1.0, 1e-9);
}

TEST(PrCurveTest, RandomScoresAucprNearPositiveRate) {
  util::Rng rng(5);
  const std::size_t n = 20000;
  std::vector<double> scores(n);
  std::vector<std::uint8_t> truth(n);
  const double rate = 0.1;
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.uniform();
    truth[i] = rng.uniform() < rate ? 1 : 0;
  }
  EXPECT_NEAR(PrCurve(scores, truth).aucpr(), rate, 0.02);
}

TEST(PrCurveTest, TiedScoresCollapseToOnePoint) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 0};
  const PrCurve curve(scores, truth);
  ASSERT_EQ(curve.points().size(), 1u);
  EXPECT_DOUBLE_EQ(curve.points()[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.points()[0].precision, 0.5);
}

TEST(PrCurveTest, NoPositivesEmptyCurve) {
  const std::vector<double> scores{0.9, 0.1};
  const std::vector<std::uint8_t> truth{0, 0};
  const PrCurve curve(scores, truth);
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.aucpr(), 0.0);
}

TEST(PrCurveTest, NaNScoresSkipped) {
  const std::vector<double> scores{0.9, NAN, 0.7};
  const std::vector<std::uint8_t> truth{1, 1, 0};
  const PrCurve curve(scores, truth);
  // Only 2 valid rows, 1 positive among them.
  EXPECT_EQ(curve.points().size(), 2u);
}

TEST(PrCurveTest, AtThresholdMatchesManualDecision) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 1, 0};
  const PrCurve curve(scores, truth);
  const PrPoint p = curve.at_threshold(0.65);
  const auto decisions = decide(scores, 0.65);
  const auto counts = confusion(decisions, truth);
  EXPECT_NEAR(p.recall, recall(counts), 1e-12);
  EXPECT_NEAR(p.precision, precision(counts), 1e-12);
}

TEST(PrCurveTest, MaxPrecisionAtRecall) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 1, 0};
  const PrCurve curve(scores, truth);
  // Points with recall >= 2/3: (r=2/3, p=2/3), (r=1, p=3/4), (r=1, p=3/5).
  EXPECT_NEAR(curve.max_precision_at_recall(0.66), 0.75, 1e-12);
  // Nothing reaches recall > 1.
  EXPECT_TRUE(std::isnan(curve.max_precision_at_recall(1.1)));
}

TEST(PrCurveTest, ReachesPreferenceBox) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 1, 0};
  const PrCurve curve(scores, truth);
  EXPECT_TRUE(curve.reaches({0.66, 0.66}));
  EXPECT_FALSE(curve.reaches({0.9, 0.9}));
}

TEST(Decide, ThresholdInclusive) {
  const std::vector<double> scores{0.5, 0.49, NAN};
  const auto d = decide(scores, 0.5);
  EXPECT_EQ(d, (std::vector<std::uint8_t>{1, 0, 0}));
}

// ---- threshold pickers (Fig 6 / Fig 12) ----

PrCurve demo_curve() {
  // Build a curve with a known shape: scores descend with ranks; positives
  // front-loaded but with noise.
  const std::vector<double> scores{0.95, 0.9, 0.85, 0.8, 0.75, 0.7,
                                   0.65, 0.6, 0.55, 0.5};
  const std::vector<std::uint8_t> truth{1, 1, 0, 1, 1, 0, 0, 1, 0, 0};
  return PrCurve(scores, truth);
}

TEST(Pickers, DefaultIsHalf) {
  const auto choice = pick_threshold(demo_curve(), ThresholdMethod::kDefault);
  EXPECT_DOUBLE_EQ(choice.cthld, 0.5);
}

TEST(Pickers, FScorePicksMaxFScorePoint) {
  const PrCurve curve = demo_curve();
  const auto choice = pick_threshold(curve, ThresholdMethod::kFScore);
  double best_f = -1.0;
  for (const auto& p : curve.points()) {
    best_f = std::max(best_f, f_score(p.recall, p.precision));
  }
  EXPECT_NEAR(f_score(choice.recall, choice.precision), best_f, 1e-12);
}

TEST(Pickers, Sd11PicksClosestToTopRight) {
  const PrCurve curve = demo_curve();
  const auto choice = pick_threshold(curve, ThresholdMethod::kSd11);
  double best_d = 1e9;
  for (const auto& p : curve.points()) {
    best_d = std::min(best_d, sd_distance(p.recall, p.precision));
  }
  EXPECT_NEAR(sd_distance(choice.recall, choice.precision), best_d, 1e-12);
}

TEST(Pickers, PcScoreSatisfiesReachablePreference) {
  // Preference reachable on this curve: the PC-Score pick must be inside.
  const AccuracyPreference pref{0.6, 0.6};
  ASSERT_TRUE(demo_curve().reaches(pref));
  const auto choice =
      pick_threshold(demo_curve(), ThresholdMethod::kPcScore, pref);
  EXPECT_TRUE(pref.satisfied_by(choice.recall, choice.precision));
}

TEST(Pickers, PcScoreAdaptsToDifferentPreferences) {
  // Fig 12's key property: different preferences move the chosen point;
  // the other metrics are preference-blind.
  const auto recall_heavy =
      pick_threshold(demo_curve(), ThresholdMethod::kPcScore, {0.8, 0.5});
  const auto precision_heavy =
      pick_threshold(demo_curve(), ThresholdMethod::kPcScore, {0.4, 0.9});
  EXPECT_GE(recall_heavy.recall, 0.8);
  EXPECT_GE(precision_heavy.precision, 0.9);
  EXPECT_NE(recall_heavy.cthld, precision_heavy.cthld);
}

TEST(Pickers, PcScoreFallsBackToFScoreWhenUnreachable) {
  const AccuracyPreference impossible{0.999, 0.999};
  ASSERT_FALSE(demo_curve().reaches(impossible));
  const auto pc =
      pick_threshold(demo_curve(), ThresholdMethod::kPcScore, impossible);
  const auto fs = pick_threshold(demo_curve(), ThresholdMethod::kFScore);
  EXPECT_DOUBLE_EQ(pc.cthld, fs.cthld);
}

TEST(Pickers, EmptyCurveGivesDefault) {
  const PrCurve empty(std::vector<double>{}, std::vector<std::uint8_t>{});
  const auto choice = pick_threshold(empty, ThresholdMethod::kPcScore);
  EXPECT_DOUBLE_EQ(choice.cthld, 0.5);
}

TEST(Pickers, MethodNames) {
  EXPECT_STREQ(to_string(ThresholdMethod::kDefault), "default_cthld");
  EXPECT_STREQ(to_string(ThresholdMethod::kPcScore), "pc_score");
}

}  // namespace
