// Unit tests for src/detectors: the 14 basic detectors, the configuration
// registry (Table 3), and feature extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "detectors/arima_detector.hpp"
#include "detectors/basic_detectors.hpp"
#include "detectors/feature_extractor.hpp"
#include "detectors/holt_winters_detector.hpp"
#include "detectors/registry.hpp"
#include "detectors/ring_buffer.hpp"
#include "detectors/seasonal_detectors.hpp"
#include "detectors/svd_detector.hpp"
#include "detectors/wavelet_detector.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::detectors;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Small calendar so seasonal detectors warm up quickly: hourly data.
SeriesContext small_ctx() {
  return SeriesContext{24, 168};
}

// A noisy daily-periodic signal with a big spike at `spike_at`.
std::vector<double> periodic_with_spike(std::size_t n, std::size_t spike_at,
                                        double spike_factor = 3.0,
                                        std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = static_cast<double>(i % 24) / 24.0;
    xs[i] = 100.0 + 30.0 * std::sin(2 * 3.14159265 * phase) +
            rng.normal(0.0, 1.0);
  }
  if (spike_at < n) xs[spike_at] *= spike_factor;
  return xs;
}

// ---- RingBuffer ----

TEST(RingBuffer, PushAndBack) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.back(0), 3);
  EXPECT_EQ(rb.back(2), 1);
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.back(0), 4);
  EXPECT_EQ(rb.back(2), 2);
  EXPECT_THROW(rb.back(3), std::out_of_range);
}

TEST(RingBuffer, CopyOrderedOldestFirst) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  std::vector<int> out;
  rb.copy_ordered(out);
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5}));
}

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

// ---- Generic properties over all 133 configurations ----

struct NamedConfig {
  std::string family;
  std::size_t index;
};

class AllConfigurations
    : public ::testing::TestWithParam<std::string> {  // family name
 protected:
  std::vector<DetectorPtr> make_family() {
    return DetectorRegistry::with_standard_families().instantiate_family(
        GetParam(), small_ctx());
  }
};

TEST_P(AllConfigurations, SeveritiesNonNegativeAndFinite) {
  for (auto& d : make_family()) {
    const auto xs = periodic_with_spike(600, 500);
    for (double x : xs) {
      const double s = d->feed(x);
      EXPECT_GE(s, 0.0) << d->name();
      EXPECT_TRUE(std::isfinite(s)) << d->name();
    }
  }
}

TEST_P(AllConfigurations, MissingInputYieldsZeroAndRecovers) {
  for (auto& d : make_family()) {
    const auto xs = periodic_with_spike(400, 1000);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double x = (i >= 200 && i < 210) ? kNaN : xs[i];
      const double s = d->feed(x);
      if (std::isnan(x)) {
        EXPECT_EQ(s, 0.0) << d->name() << " at " << i;
      } else {
        EXPECT_TRUE(std::isfinite(s)) << d->name() << " at " << i;
      }
    }
  }
}

TEST_P(AllConfigurations, ResetReproducesIdenticalStream) {
  for (auto& d : make_family()) {
    const auto xs = periodic_with_spike(500, 450);
    std::vector<double> first;
    for (double x : xs) first.push_back(d->feed(x));
    d->reset();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_DOUBLE_EQ(d->feed(xs[i]), first[i])
          << d->name() << " at " << i;
    }
  }
}

TEST_P(AllConfigurations, OnlineCausality) {
  // Severities of a prefix must not depend on what comes after it
  // (§4.3.2: detectors must work online).
  for (auto& d : make_family()) {
    const auto xs = periodic_with_spike(400, 1000);
    std::vector<double> full;
    for (double x : xs) full.push_back(d->feed(x));
    d->reset();
    // Feed only the first half and compare.
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_DOUBLE_EQ(d->feed(xs[i]), full[i]) << d->name() << " at " << i;
    }
  }
}

TEST_P(AllConfigurations, WarmupFitsInsideInitialTrainingSet) {
  // All warm-ups must fit comfortably inside the paper's 8-week initial
  // training set (the largest is SVD's row*col window).
  for (auto& d : make_family()) {
    EXPECT_LE(d->warmup_points(), 3 * small_ctx().points_per_week)
        << d->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllConfigurations,
    ::testing::Values("simple_threshold", "diff", "simple_ma", "weighted_ma",
                      "ma_of_diff", "ewma", "tsd", "tsd_mad",
                      "historical_average", "historical_mad", "holt_winters",
                      "svd", "wavelet", "arima"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// ---- Specific detector semantics ----

TEST(SimpleThreshold, SeverityIsTheValue) {
  SimpleThresholdDetector d;
  EXPECT_DOUBLE_EQ(d.feed(42.0), 42.0);
  EXPECT_DOUBLE_EQ(d.feed(0.0), 0.0);
  // Negative values clamp to zero severity (severities are non-negative).
  EXPECT_DOUBLE_EQ(d.feed(-5.0), 0.0);
}

TEST(Diff, LastSlotMeasuresStepChange) {
  DiffDetector d(DiffLag::kLastSlot, small_ctx());
  d.feed(10.0);
  EXPECT_DOUBLE_EQ(d.feed(13.0), 3.0);
  EXPECT_DOUBLE_EQ(d.feed(7.0), 6.0);
}

TEST(Diff, LastDayComparesSameHourYesterday) {
  DiffDetector d(DiffLag::kLastDay, small_ctx());
  std::vector<double> day1(24);
  for (std::size_t i = 0; i < 24; ++i) day1[i] = static_cast<double>(i);
  for (double x : day1) EXPECT_EQ(d.feed(x), 0.0);  // warm-up
  EXPECT_DOUBLE_EQ(d.feed(5.0), 5.0);   // vs day1[0] = 0
  EXPECT_DOUBLE_EQ(d.feed(1.0), 0.0);   // vs day1[1] = 1
}

TEST(Diff, WeekLagNamesDiffer) {
  const auto ctx = small_ctx();
  EXPECT_NE(DiffDetector(DiffLag::kLastDay, ctx).name(),
            DiffDetector(DiffLag::kLastWeek, ctx).name());
}

TEST(SimpleMa, ResidualAgainstWindowMean) {
  SimpleMaDetector d(3);
  d.feed(1.0);
  d.feed(2.0);
  d.feed(3.0);
  // Window mean = 2; |5 - 2| = 3.
  EXPECT_DOUBLE_EQ(d.feed(5.0), 3.0);
}

TEST(SimpleMa, FlatSignalZeroSeverity) {
  SimpleMaDetector d(5);
  for (int i = 0; i < 20; ++i) {
    const double s = d.feed(7.0);
    if (i >= 5) {
      EXPECT_DOUBLE_EQ(s, 0.0);
    }
  }
}

TEST(WeightedMa, RecentPointsWeighMore) {
  WeightedMaDetector d(2);
  d.feed(0.0);
  d.feed(3.0);
  // weights: newest=2, older=1 -> mean = (2*3 + 1*0)/3 = 2; |6-2| = 4.
  EXPECT_DOUBLE_EQ(d.feed(6.0), 4.0);
}

TEST(MaOfDiff, DetectsSustainedJitter) {
  MaOfDiffDetector d(4);
  // Flat first: zero severity once warm.
  for (int i = 0; i < 10; ++i) d.feed(10.0);
  double flat = d.feed(10.0);
  EXPECT_DOUBLE_EQ(flat, 0.0);
  // Alternating +-5 jitter: the MA of |diffs| ramps toward 10.
  double last = 0.0;
  for (int i = 0; i < 8; ++i) last = d.feed(i % 2 == 0 ? 15.0 : 5.0);
  EXPECT_NEAR(last, 10.0, 1e-9);
}

TEST(Ewma, PredictionTracksLevel) {
  EwmaDetector d(0.5);
  d.feed(10.0);  // initializes prediction
  EXPECT_DOUBLE_EQ(d.feed(10.0), 0.0);
  // prediction stays 10 -> jump to 20 has severity 10.
  EXPECT_DOUBLE_EQ(d.feed(20.0), 10.0);
  // prediction now 15 -> severity of 20 is 5.
  EXPECT_DOUBLE_EQ(d.feed(20.0), 5.0);
}

TEST(Ewma, HighAlphaAdaptsFaster) {
  EwmaDetector fast(0.9), slow(0.1);
  fast.feed(10.0);
  slow.feed(10.0);
  fast.feed(20.0);
  slow.feed(20.0);
  // After seeing the jump, the fast detector's next severity is smaller.
  EXPECT_LT(fast.feed(20.0), slow.feed(20.0));
}

TEST(Tsd, SpikeScoresFarAboveNormal) {
  TsdDetector d(3, small_ctx());
  const std::size_t spike_at = 3 * 168 + 50;
  const auto xs = periodic_with_spike(4 * 168, spike_at);
  double spike_severity = 0.0, normal_sum = 0.0;
  std::size_t normal_n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == spike_at) {
      spike_severity = s;
    } else if (i > 2 * 168) {
      normal_sum += s;
      ++normal_n;
    }
  }
  EXPECT_GT(spike_severity,
            10.0 * normal_sum / static_cast<double>(normal_n));
}

TEST(TsdMad, RobustToPriorOutlier) {
  // An extreme outlier in the history corrupts the mean-based template
  // more than the median-based one.
  const auto ctx = small_ctx();
  TsdDetector mean_based(3, ctx);
  TsdMadDetector median_based(3, ctx);
  auto xs = periodic_with_spike(5 * 168, 1000000);
  // Plant an extreme corruption at the same slot in week 3.
  const std::size_t slot = 3 * 168 + 7;
  xs[slot] = 100000.0;
  const std::size_t probe = 4 * 168 + 7;  // same slot a week later
  double sev_mean = 0.0, sev_median = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double a = mean_based.feed(xs[i]);
    const double b = median_based.feed(xs[i]);
    if (i == probe) {
      sev_mean = a;
      sev_median = b;
    }
  }
  // The probe point is normal: the robust variant should flag it less.
  EXPECT_LT(sev_median, sev_mean);
}

TEST(HistoricalAverage, CountsSigmasFromSlotMean) {
  HistoricalAverageDetector d(2, small_ctx());
  const auto xs = periodic_with_spike(6 * 168, 5 * 168 + 12, 2.0, 3);
  double spike_sev = 0.0;
  double late_normal = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == 5 * 168 + 12) spike_sev = s;
    if (i == 5 * 168 + 13) late_normal = s;
  }
  EXPECT_GT(spike_sev, 5.0);       // a 2x spike is many sigmas out
  EXPECT_LT(late_normal, spike_sev / 3.0);
}

TEST(HoltWinters, LearnsDailySeasonality) {
  HoltWintersDetector d(0.4, 0.2, 0.4, small_ctx());
  std::vector<double> xs(8 * 24);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 50.0 + 20.0 * std::sin(2 * 3.14159265 *
                                   static_cast<double>(i % 24) / 24.0);
  }
  double late_sum = 0.0;
  std::size_t late_n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i >= 6 * 24) {
      late_sum += s;
      ++late_n;
    }
  }
  // After several days the additive seasonal model tracks the clean
  // sinusoid closely.
  EXPECT_LT(late_sum / static_cast<double>(late_n), 1.0);
}

TEST(HoltWinters, FlagsSpikeAfterWarmup) {
  HoltWintersDetector d(0.4, 0.2, 0.4, small_ctx());
  const std::size_t spike_at = 5 * 24 + 7;
  const auto xs = periodic_with_spike(7 * 24, spike_at);
  double spike_sev = 0.0, before = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == spike_at - 1) before = s;
    if (i == spike_at) spike_sev = s;
  }
  EXPECT_GT(spike_sev, 10.0 * (before + 1.0));
}

TEST(Svd, NearZeroResidualOnRepeatingSegments) {
  SvdDetector d(10, 3);
  // A 10-periodic signal makes all lag-matrix columns identical -> rank 1.
  double last = 1.0;
  for (int i = 0; i < 120; ++i) {
    last = d.feed(10.0 + (i % 10));
  }
  EXPECT_NEAR(last, 0.0, 1e-9);
}

TEST(Svd, SpikeRaisesResidual) {
  SvdDetector d(10, 3);
  double base = 0.0;
  for (int i = 0; i < 100; ++i) base = d.feed(10.0 + (i % 10));
  const double spike = d.feed(200.0);
  EXPECT_GT(spike, 10.0);
  EXPECT_GT(spike, 100.0 * (base + 1e-9));
}

TEST(Wavelet, HighBandCatchesSpike) {
  WaveletDetector d(3, util::FrequencyBand::kHigh, small_ctx());
  const std::size_t n = 6 * 24;
  const std::size_t spike_at = 5 * 24;
  const auto xs = periodic_with_spike(n, spike_at, 4.0);
  double spike_sev = 0.0, typical = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == spike_at) {
      spike_sev = s;
    } else if (i > 4 * 24 && i < spike_at) {
      typical += s;
      ++count;
    }
  }
  EXPECT_GT(spike_sev, 5.0 * typical / static_cast<double>(count));
}

TEST(Wavelet, LowBandCatchesLevelShift) {
  WaveletDetector d(3, util::FrequencyBand::kLow, small_ctx());
  std::vector<double> xs(8 * 24, 100.0);
  for (std::size_t i = 6 * 24; i < xs.size(); ++i) xs[i] = 160.0;
  double before = 0.0, after = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == 6 * 24 - 1) before = s;
    if (i == 7 * 24) after = s;
  }
  EXPECT_GT(after, before + 10.0);
}

TEST(Arima, FitRecoversArCoefficients) {
  // x_t = 0.7 x_{t-1} + e_t
  util::Rng rng(71);
  std::vector<double> xs(5000);
  double x = 0.0;
  for (auto& v : xs) {
    x = 0.7 * x + rng.normal();
    v = x;
  }
  const ArParameters p = fit_ar_by_aic(xs, 6);
  ASSERT_GE(p.order(), 1);
  EXPECT_NEAR(p.phi[0], 0.7, 0.05);
}

TEST(Arima, WhiteNoisePrefersLowOrder) {
  util::Rng rng(73);
  std::vector<double> xs(5000);
  for (auto& v : xs) v = rng.normal();
  const ArParameters p = fit_ar_by_aic(xs, 6);
  // AIC should not pick a large spurious order.
  EXPECT_LE(p.order(), 2);
}

TEST(Arima, DetectorFlagsSpikeAfterFit) {
  ArimaDetector d(small_ctx());
  const std::size_t spike_at = 300;
  const auto xs = periodic_with_spike(400, spike_at, 3.0);
  double spike_sev = 0.0, typical = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double s = d.feed(xs[i]);
    if (i == spike_at) {
      spike_sev = s;
    } else if (i > 200 && i < spike_at) {
      typical += s;
      ++n;
    }
  }
  EXPECT_GT(d.current_order(), 0);
  EXPECT_GT(spike_sev, 5.0 * typical / static_cast<double>(n));
}

// ---- registry ----

TEST(Registry, Produces133Configurations) {
  const auto all = standard_configurations(small_ctx());
  EXPECT_EQ(all.size(), kStandardConfigurationCount);
  EXPECT_EQ(all.size(), 133u);
}

TEST(Registry, NamesAreUnique) {
  const auto all = standard_configurations(small_ctx());
  std::set<std::string> names;
  for (const auto& d : all) names.insert(d->name());
  EXPECT_EQ(names.size(), all.size());
}

TEST(Registry, FourteenFamilies) {
  const auto reg = DetectorRegistry::with_standard_families();
  EXPECT_EQ(reg.family_count(), 14u);
}

TEST(Registry, Table3ConfigurationCounts) {
  const auto reg = DetectorRegistry::with_standard_families();
  const auto ctx = small_ctx();
  EXPECT_EQ(reg.instantiate_family("simple_threshold", ctx).size(), 1u);
  EXPECT_EQ(reg.instantiate_family("diff", ctx).size(), 3u);
  EXPECT_EQ(reg.instantiate_family("simple_ma", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("weighted_ma", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("ma_of_diff", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("ewma", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("tsd", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("tsd_mad", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("historical_average", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("historical_mad", ctx).size(), 5u);
  EXPECT_EQ(reg.instantiate_family("holt_winters", ctx).size(), 64u);
  EXPECT_EQ(reg.instantiate_family("svd", ctx).size(), 15u);
  EXPECT_EQ(reg.instantiate_family("wavelet", ctx).size(), 9u);
  EXPECT_EQ(reg.instantiate_family("arima", ctx).size(), 1u);
}

TEST(Registry, CustomFamilyPluggable) {
  DetectorRegistry reg;
  reg.register_family("custom", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<SimpleThresholdDetector>());
    return out;
  });
  EXPECT_TRUE(reg.has_family("custom"));
  EXPECT_EQ(reg.instantiate_all(small_ctx()).size(), 1u);
}

TEST(Registry, DuplicateFamilyThrows) {
  DetectorRegistry reg;
  auto factory = [](const SeriesContext&) {
    return std::vector<DetectorPtr>{};
  };
  reg.register_family("x", factory);
  EXPECT_THROW(reg.register_family("x", factory), std::invalid_argument);
}

TEST(Registry, UnknownFamilyThrows) {
  const auto reg = DetectorRegistry::with_standard_families();
  EXPECT_THROW(reg.instantiate_family("nope", small_ctx()),
               std::out_of_range);
}

// ---- feature extraction ----

TEST(FeatureExtractor, ShapeMatchesConfigurations) {
  const ts::TimeSeries series("kpi", 0, 3600,
                              periodic_with_spike(3 * 168, 400));
  const auto features = extract_standard_features(series);
  EXPECT_EQ(features.num_features(), 133u);
  EXPECT_EQ(features.num_rows, series.size());
  for (const auto& col : features.columns) {
    EXPECT_EQ(col.size(), series.size());
  }
}

TEST(FeatureExtractor, WarmupRegionIsZero) {
  const ts::TimeSeries series("kpi", 0, 3600,
                              periodic_with_spike(3 * 168, 10, 50.0));
  const auto features = extract_standard_features(series);
  // The spike at t=10 falls inside every seasonal detector's warm-up, so
  // their columns must be zero there.
  for (std::size_t f = 0; f < features.num_features(); ++f) {
    const auto& name = features.feature_names[f];
    if (name.rfind("tsd", 0) == 0) {
      EXPECT_EQ(features.columns[f][10], 0.0) << name;
    }
  }
}

TEST(FeatureExtractor, RowAccessor) {
  const ts::TimeSeries series("kpi", 0, 3600,
                              periodic_with_spike(2 * 168, 250));
  const auto features = extract_standard_features(series);
  const auto row = features.row(200);
  ASSERT_EQ(row.size(), 133u);
  for (std::size_t f = 0; f < row.size(); ++f) {
    EXPECT_DOUBLE_EQ(row[f], features.columns[f][200]);
  }
}

TEST(StreamingExtractor, MatchesBatchExtraction) {
  const ts::TimeSeries series("kpi", 0, 3600,
                              periodic_with_spike(2 * 168, 300));
  const SeriesContext ctx{series.points_per_day(), series.points_per_week()};
  const auto batch =
      extract_features(series, standard_configurations(ctx));

  StreamingExtractor streaming(standard_configurations(ctx));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto row = streaming.feed(series[i]);
    for (std::size_t f = 0; f < row.size(); ++f) {
      ASSERT_DOUBLE_EQ(row[f], batch.columns[f][i])
          << batch.feature_names[f] << " at " << i;
    }
  }
}

TEST(StreamingExtractor, WarmupFlag) {
  StreamingExtractor streaming(standard_configurations(small_ctx()));
  EXPECT_FALSE(streaming.warmed_up());
  for (std::size_t i = 0; i < streaming.max_warmup(); ++i) {
    streaming.feed(100.0);
  }
  EXPECT_TRUE(streaming.warmed_up());
}

}  // namespace
