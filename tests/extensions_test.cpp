// Tests for the extension features: model serialization, mRMR feature
// selection, the duration filter, cross-KPI severity normalization, and
// the extension detector families (CUSUM, Holt).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/duration_filter.hpp"
#include "core/transfer.hpp"
#include "detectors/basic_detectors.hpp"
#include "detectors/extra_detectors.hpp"
#include "ml/feature_selection.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;

ml::Dataset blobs(std::size_t n, double separation, std::uint64_t seed = 1,
                  std::size_t noise_features = 1) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> cols(1 + noise_features);
  std::vector<std::uint8_t> labels(n);
  std::vector<std::string> names{"signal"};
  for (std::size_t f = 0; f < noise_features; ++f) {
    names.push_back("noise " + std::to_string(f));  // space: tests encoding
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.3;
    labels[i] = anomaly;
    cols[0].push_back(rng.normal(anomaly ? separation : 0.0, 1.0));
    for (std::size_t f = 0; f < noise_features; ++f) {
      cols[1 + f].push_back(rng.normal(0.0, 1.0));
    }
  }
  return ml::Dataset(std::move(names), std::move(cols), std::move(labels));
}

// ---- serialization ----

TEST(Serialize, RoundTripPreservesScores) {
  const ml::Dataset train = blobs(800, 3.0);
  const ml::Dataset test = blobs(200, 3.0, 9);
  ml::ForestOptions opts;
  opts.num_trees = 12;
  ml::RandomForest forest(opts);
  forest.train(train);

  std::stringstream buffer;
  ml::save_forest(buffer, forest, train.feature_names());
  const ml::LoadedForest loaded = ml::load_forest(buffer);

  EXPECT_EQ(loaded.feature_names, train.feature_names());
  EXPECT_EQ(loaded.forest.tree_count(), forest.tree_count());
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.forest.score(test.row(i)),
                     forest.score(test.row(i)));
  }
}

TEST(Serialize, FeatureNamesWithSpacesSurvive) {
  const ml::Dataset train = blobs(200, 2.0, 1, 2);
  ml::RandomForest forest;
  forest.train(train);
  std::stringstream buffer;
  ml::save_forest(buffer, forest, train.feature_names());
  const auto loaded = ml::load_forest(buffer);
  EXPECT_EQ(loaded.feature_names[1], "noise 0");
}

TEST(Serialize, UntrainedForestThrows) {
  ml::RandomForest forest;
  std::stringstream buffer;
  EXPECT_THROW(ml::save_forest(buffer, forest, {}), std::logic_error);
}

TEST(Serialize, GarbageInputThrows) {
  std::stringstream buffer("not a forest at all");
  EXPECT_THROW(ml::load_forest(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedInputThrows) {
  const ml::Dataset train = blobs(100, 2.0);
  ml::RandomForest forest;
  forest.train(train);
  std::stringstream buffer;
  ml::save_forest(buffer, forest, train.feature_names());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(ml::load_forest(truncated), std::runtime_error);
}

TEST(Serialize, VersionMismatchThrows) {
  std::stringstream buffer("opprentice-forest v999\ntrees 0 features 0\n");
  EXPECT_THROW(ml::load_forest(buffer), std::runtime_error);
}

// ---- mRMR ----

TEST(Mrmr, FirstPickIsMostRelevant) {
  const ml::Dataset d = blobs(2000, 3.0, 1, 4);
  const auto selected = ml::mrmr_select(d, 3);
  ASSERT_GE(selected.size(), 1u);
  EXPECT_EQ(selected[0], 0u);  // the signal feature
}

TEST(Mrmr, PenalizesRedundantCopies) {
  // signal + exact copy of signal + independent weak feature: mRMR should
  // prefer the weak-but-novel feature over the redundant copy for pick 2.
  util::Rng rng(5);
  const std::size_t n = 3000;
  std::vector<std::vector<double>> cols(3);
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.3;
    labels[i] = anomaly;
    const double signal = rng.normal(anomaly ? 3.0 : 0.0, 1.0);
    cols[0].push_back(signal);
    cols[1].push_back(signal);  // perfect copy: zero new information
    cols[2].push_back(rng.normal(anomaly ? 0.8 : 0.0, 1.0));  // weak, novel
  }
  const ml::Dataset d({"signal", "copy", "weak"}, std::move(cols),
                      std::move(labels));
  const auto selected = ml::mrmr_select(d, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[1], 2u) << "mRMR must prefer the novel feature";
}

TEST(Mrmr, ClampsKAndKeepsOrderUnique) {
  const ml::Dataset d = blobs(500, 2.0, 1, 3);
  const auto selected = ml::mrmr_select(d, 100);
  EXPECT_EQ(selected.size(), 4u);
  std::set<std::size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST(Mrmr, FeatureMiSymmetricAndNonNegative) {
  util::Rng rng(7);
  // Large sample: the plug-in MI estimator has a positive finite-sample
  // bias of about (bins-1)^2 / (2n).
  std::vector<double> a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = 0.7 * a[i] + 0.3 * rng.normal();
  }
  const double ab = ml::feature_mutual_information(a, b);
  const double ba = ml::feature_mutual_information(b, a);
  EXPECT_GT(ab, 0.1);
  EXPECT_NEAR(ab, ba, 0.05);
  // Independent features: near-zero MI.
  std::vector<double> c(20000);
  for (auto& v : c) v = rng.normal();
  EXPECT_LT(ml::feature_mutual_information(a, c), 0.05);
}

// ---- duration filter ----

TEST(DurationFilterTest, FiresOnceWhenRunReachesMin) {
  core::DurationFilter filter({.min_run = 3, .merge_gap = 0});
  EXPECT_FALSE(filter.feed(true));
  EXPECT_FALSE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));    // run hits 3: alarm
  EXPECT_FALSE(filter.feed(true));   // still the same incident: no re-alarm
  EXPECT_TRUE(filter.in_incident());
}

TEST(DurationFilterTest, NormalPointResetsRun) {
  core::DurationFilter filter({.min_run = 3, .merge_gap = 0});
  filter.feed(true);
  filter.feed(true);
  filter.feed(false);
  EXPECT_EQ(filter.current_run(), 0u);
  EXPECT_FALSE(filter.feed(true));
  EXPECT_FALSE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));
}

TEST(DurationFilterTest, MergeGapBridgesFlicker) {
  core::DurationFilter filter({.min_run = 4, .merge_gap = 1});
  filter.feed(true);
  filter.feed(true);
  EXPECT_FALSE(filter.feed(false));  // bridged
  EXPECT_TRUE(filter.feed(true));    // run = 2 + gap 1 + 1 = 4: alarm
}

TEST(DurationFilterTest, LongGapStillResets) {
  core::DurationFilter filter({.min_run = 3, .merge_gap = 1});
  filter.feed(true);
  filter.feed(true);
  filter.feed(false);
  filter.feed(false);  // gap exceeds merge_gap: reset
  EXPECT_EQ(filter.current_run(), 0u);
}

TEST(DurationFilterTest, MinRunOneAlarmsImmediately) {
  core::DurationFilter filter({.min_run = 1});
  EXPECT_TRUE(filter.feed(true));
  EXPECT_FALSE(filter.feed(true));
}

TEST(DurationFilterTest, ResetClearsState) {
  core::DurationFilter filter({.min_run = 2});
  filter.feed(true);
  filter.reset();
  EXPECT_FALSE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));
}

// ---- cross-KPI severity normalization ----

TEST(Transfer, NormalizedScalesAreComparable) {
  // Same-shape severities at 100x different scales normalize to the same
  // range.
  util::Rng rng(11);
  std::vector<double> small(1000), large(1000);
  for (std::size_t i = 0; i < small.size(); ++i) {
    const double s = std::abs(rng.normal());
    small[i] = s;
    large[i] = 100.0 * s;
  }
  const ml::Dataset ref({"sev"}, {small}, std::vector<std::uint8_t>(1000, 0));
  const ml::Dataset other({"sev"}, {large},
                          std::vector<std::uint8_t>(1000, 0));
  core::SeverityNormalizer norm_small, norm_large;
  norm_small.fit(ref);
  norm_large.fit(other);
  const auto a = norm_small.transform(ref);
  const auto b = norm_large.transform(other);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(a.value(i, 0), b.value(i, 0), 1e-9);
  }
}

TEST(Transfer, ClassifierTransfersAcrossScales) {
  // Train on KPI A; detect on KPI B = same generator at 50x scale.
  // With normalization the forest transfers; without, severities are off
  // the training distribution's scale entirely.
  const ml::Dataset a = blobs(3000, 4.0, 21, 1);
  // B: same distribution scaled by 50.
  std::vector<std::vector<double>> cols;
  for (std::size_t f = 0; f < a.num_features(); ++f) {
    std::vector<double> col(a.column(f).begin(), a.column(f).end());
    for (double& v : col) v *= 50.0;
    cols.push_back(std::move(col));
  }
  const ml::Dataset b(a.feature_names(), std::move(cols), a.labels());

  core::SeverityNormalizer norm_a, norm_b;
  norm_a.fit(a);
  norm_b.fit(b);

  ml::ForestOptions opts;
  opts.num_trees = 12;
  ml::RandomForest forest(opts);
  forest.train(norm_a.transform(a));

  const auto scores = forest.score_all(norm_b.transform(b));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < b.num_rows(); ++i) {
    correct += (scores[i] >= 0.5) == (b.label(i) != 0);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(b.num_rows()),
            0.9);
}

TEST(Transfer, UnfittedThrows) {
  core::SeverityNormalizer norm;
  EXPECT_THROW(norm.transform(blobs(10, 1.0)), std::logic_error);
}

TEST(Transfer, FeatureCountMismatchThrows) {
  core::SeverityNormalizer norm;
  norm.fit(blobs(100, 1.0, 1, 1));
  EXPECT_THROW(norm.transform(blobs(10, 1.0, 1, 3)), std::logic_error);
}

// ---- extension detectors ----

TEST(Cusum, AccumulatesSustainedSmallShift) {
  detectors::CusumDetector cusum(0.5, 50);
  util::Rng rng(13);
  // Baseline noise, then a sustained +1.5-sigma shift.
  double before = 0.0, after = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double shift = i >= 200 ? 1.5 : 0.0;
    const double sev = cusum.feed(rng.normal(10.0 + shift, 1.0));
    if (i == 199) before = sev;
    if (i == 240) after = sev;
  }
  EXPECT_GT(after, before + 10.0);  // evidence accumulates over the shift
}

TEST(Cusum, DownwardShiftAlsoDetected) {
  detectors::CusumDetector cusum(0.5, 50);
  util::Rng rng(17);
  // Measure while the rolling baseline is still mostly pre-shift: CUSUM
  // evidence decays again once the baseline has absorbed the new level.
  double after = 0.0;
  for (int i = 0; i < 240; ++i) {
    const double shift = i >= 200 ? -1.5 : 0.0;
    const double sev = cusum.feed(rng.normal(10.0 + shift, 1.0));
    if (i == 235) after = sev;
  }
  EXPECT_GT(after, 10.0);
}

TEST(Holt, TracksLinearTrendUnlikeEwma) {
  detectors::HoltDetector holt(0.5, 0.3);
  detectors::EwmaDetector ewma(0.5);
  // Clean linear ramp: Holt's trend term learns it; EWMA always lags.
  double holt_sev = 0.0, ewma_sev = 0.0;
  for (int i = 0; i < 200; ++i) {
    holt_sev = holt.feed(10.0 + 2.0 * i);
    ewma_sev = ewma.feed(10.0 + 2.0 * i);
  }
  EXPECT_LT(holt_sev, 0.1);
  EXPECT_GT(ewma_sev, 1.0);
}

TEST(ExtensionFamilies, RegisterIntoRegistry) {
  auto registry = detectors::DetectorRegistry::with_standard_families();
  detectors::register_extension_families(registry);
  EXPECT_EQ(registry.family_count(), 16u);
  const auto all =
      registry.instantiate_all(detectors::SeriesContext{24, 168});
  EXPECT_EQ(all.size(), 133u + 3u + 4u);
}

TEST(ExtensionFamilies, ExtensionDetectorsHonorContract) {
  auto registry = detectors::DetectorRegistry::with_standard_families();
  detectors::register_extension_families(registry);
  util::Rng rng(19);
  for (const char* family : {"cusum", "holt"}) {
    for (auto& d :
         registry.instantiate_family(family, {24, 168})) {
      std::vector<double> first;
      for (int i = 0; i < 300; ++i) {
        const double v =
            i == 150 ? std::nan("") : rng.normal(100.0, 5.0);
        const double sev = d->feed(v);
        EXPECT_GE(sev, 0.0) << d->name();
        EXPECT_TRUE(std::isfinite(sev)) << d->name();
        first.push_back(sev);
      }
      d->reset();
      rng.reseed(19);  // replay identical input
      for (int i = 0; i < 300; ++i) {
        const double v =
            i == 150 ? std::nan("") : rng.normal(100.0, 5.0);
        EXPECT_DOUBLE_EQ(d->feed(v), first[static_cast<std::size_t>(i)])
            << d->name();
      }
      rng.reseed(19);
    }
  }
}

}  // namespace
