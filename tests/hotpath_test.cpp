// Unit tests for the hot-path discipline analyzer
// (tools/hotpath_rules.*): call-graph construction and rooting, each rule
// on a planted violation, descent control, suppression handling, and the
// --graph dump. Fixture code lives in string literals, which is also how
// the analyzer stays clean when it scans its own sources.
#include "tools/hotpath_rules.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using opprentice::tools::hotpath_rules;
using opprentice::tools::hotpath_self_test;
using opprentice::tools::hotpath_tree;
using opprentice::tools::HotpathOptions;
using opprentice::tools::HotpathResult;
using opprentice::tools::LintReport;
using opprentice::tools::TempTree;

// Scans a single planted source and returns the result.
HotpathResult scan(const std::string& content, HotpathOptions opts = {}) {
  const TempTree tree("hotpath-test");
  tree.plant("src/core/probe.cpp", content);
  return hotpath_tree({(tree.root() / "src").string()}, opts);
}

std::vector<std::string> rule_ids(const HotpathResult& result) {
  std::vector<std::string> ids;
  for (const auto& issue : result.report.issues) ids.push_back(issue.check);
  return ids;
}

TEST(HotpathRules, RuleTableHasStableIds) {
  std::vector<std::string> ids;
  std::vector<std::string> descent_only;
  for (const auto& rule : hotpath_rules()) {
    (rule.descent_only ? descent_only : ids).push_back(rule.id);
  }
  const std::vector<std::string> expected = {"alloc", "lock",  "io",
                                             "throw", "clock", "extern-call"};
  const std::vector<std::string> expected_descent = {"dispatch", "cold-call"};
  EXPECT_EQ(ids, expected);
  EXPECT_EQ(descent_only, expected_descent);
}

TEST(HotpathGraph, UnannotatedFunctionsAreNotScanned) {
  const auto result = scan(
      "#include <vector>\n"
      "void cold() { auto* p = new int(7); delete p; }\n");
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.root_count, 0u);
}

TEST(HotpathGraph, HotDefinitionIsARoot) {
  const auto result = scan(
      "OPPRENTICE_HOT double step(double x) { return x * 2.0; }\n");
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.root_count, 1u);
}

TEST(HotpathGraph, HotDeclarationRootsTheMatchingDefinition) {
  const TempTree tree("hotpath-test");
  tree.plant("src/core/probe.hpp",
             "class Engine {\n"
             " public:\n"
             "  OPPRENTICE_HOT double step(double x);\n"
             "};\n");
  tree.plant("src/core/probe.cpp",
             "#include \"core/probe.hpp\"\n"
             "double Engine::step(double x) { return helper(x); }\n"
             "double Engine::helper(double x) { throw x; }\n");
  const auto result = hotpath_tree({(tree.root() / "src").string()});
  EXPECT_EQ(result.root_count, 1u);
  ASSERT_EQ(result.report.issues.size(), 1u);
  EXPECT_EQ(result.report.issues[0].check, "throw");
  EXPECT_EQ(result.report.issues[0].line, 3u);
}

TEST(HotpathGraph, ViolationsReachedTransitivelyAreFlagged) {
  const auto result = scan(
      "#include <mutex>\n"
      "void leaf() { std::lock_guard<std::mutex> hold(mu); }\n"
      "void middle() { leaf(); }\n"
      "OPPRENTICE_HOT void root() { middle(); }\n");
  ASSERT_EQ(result.report.issues.size(), 1u);
  EXPECT_EQ(result.report.issues[0].check, "lock");
  // The message carries the root-to-violation path.
  EXPECT_NE(result.report.issues[0].message.find("root -> middle -> leaf"),
            std::string::npos);
}

TEST(HotpathGraph, SharedVictimReportedOncePerSite) {
  const auto result = scan(
      "void leaf() { throw 1; }\n"
      "OPPRENTICE_HOT void a() { leaf(); }\n"
      "OPPRENTICE_HOT void b() { leaf(); }\n");
  EXPECT_EQ(result.root_count, 2u);
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"throw"});
}

TEST(HotpathRulesFire, AllocOnGrowingPushBack) {
  const auto result = scan(
      "#include <vector>\n"
      "OPPRENTICE_HOT void hot(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"alloc"});
}

TEST(HotpathRulesFire, ReservedPushBackIsExempt) {
  const auto result = scan(
      "#include <vector>\n"
      "OPPRENTICE_HOT void hot(std::vector<int>& v) {\n"
      "  v.reserve(8);\n"
      "  v.push_back(1);\n"
      "}\n");
  EXPECT_TRUE(result.report.ok()) << result.report.issues.size();
}

TEST(HotpathRulesFire, IoOnStreamWrite) {
  const auto result = scan(
      "#include <iostream>\n"
      "OPPRENTICE_HOT void hot() { std::cout << 1; }\n");
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"io"});
}

TEST(HotpathRulesFire, ClockOnSteadyClockNow) {
  const auto result = scan(
      "#include <chrono>\n"
      "OPPRENTICE_HOT void hot() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  (void)t;\n"
      "}\n");
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"clock"});
}

TEST(HotpathRulesFire, ExternCallOffAllowlist) {
  const auto result = scan(
      "OPPRENTICE_HOT void hot() { mystery_syscall(42); }\n");
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"extern-call"});
}

TEST(HotpathRulesFire, MathExternalsAreAllowlisted) {
  const auto result = scan(
      "#include <cmath>\n"
      "#include <algorithm>\n"
      "OPPRENTICE_HOT double hot(double x) {\n"
      "  return std::max(std::abs(std::sqrt(x)), std::log(x));\n"
      "}\n");
  EXPECT_TRUE(result.report.ok());
}

TEST(HotpathDescent, ColdCallDirectiveStopsDescent) {
  const auto result = scan(
      "void rare() { throw 1; }\n"
      "OPPRENTICE_HOT void hot(bool once) {\n"
      "  if (once) {\n"
      "    // opprentice-hotpath: allow(cold-call) runs once at startup\n"
      "    rare();\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(result.report.ok());
}

TEST(HotpathDescent, DispatchDirectiveStopsDescent) {
  const auto result = scan(
      "struct Impl { void feed() { throw 1; } };\n"
      "OPPRENTICE_HOT void hot(Impl& d) {\n"
      "  // opprentice-hotpath: allow(dispatch) overrides checked as roots\n"
      "  d.feed();\n"
      "}\n");
  EXPECT_TRUE(result.report.ok());
}

TEST(HotpathSuppressions, ReasonedAllowSilencesAFinding) {
  const auto result = scan(
      "OPPRENTICE_HOT void hot() {\n"
      "  // opprentice-hotpath: allow(throw) cold precondition guard\n"
      "  throw 1;\n"
      "}\n");
  EXPECT_TRUE(result.report.ok());
}

TEST(HotpathSuppressions, BareAllowIsAnErrorAndDoesNotSuppress) {
  const auto result = scan(
      "OPPRENTICE_HOT void hot() {\n"
      "  throw 1;  // opprentice-hotpath: allow(throw)\n"
      "}\n");
  const std::vector<std::string> expected = {"allow-without-reason", "throw"};
  EXPECT_EQ(rule_ids(result), expected);
}

TEST(HotpathSuppressions, UnknownRuleIdIsAnError) {
  const auto result = scan(
      "// opprentice-hotpath: allow(no-such-rule) reasoned but wrong id\n"
      "int x = 0;\n");
  EXPECT_EQ(rule_ids(result),
            std::vector<std::string>{"allow-unknown-rule"});
}

TEST(HotpathOptionsTest, MinRootsFailsWhenUnderTarget) {
  HotpathOptions opts;
  opts.min_roots = 3;
  const auto result =
      scan("OPPRENTICE_HOT void only_one() {}\n", opts);
  EXPECT_EQ(rule_ids(result), std::vector<std::string>{"min-roots"});
}

TEST(HotpathOptionsTest, GraphDumpListsRootsAndEdges) {
  HotpathOptions opts;
  opts.dump_graph = true;
  const auto result = scan(
      "double helper(double x) { return x; }\n"
      "OPPRENTICE_HOT double root_fn(double x) { return helper(x); }\n",
      opts);
  EXPECT_NE(result.graph.find("root_fn"), std::string::npos);
  EXPECT_NE(result.graph.find("root_fn -> helper"), std::string::npos);
}

// Pins the full --graph dump for a fixed fixture tree against
// tests/golden/hotpath_graph.txt, regression-locking the shared
// call-graph extraction (tools/callgraph_common.*): definition
// discovery, qualified naming, rooting, and edge resolution order. To
// update after an intentional change:
//   OPPRENTICE_REGENERATE_GOLDEN=1 ./hotpath_test
// then review the diff like any other code change.
TEST(HotpathGolden, GraphDumpMatchesGoldenFile) {
  const TempTree tree("hotpath-golden");
  tree.plant("src/core/pipeline.cpp",
             "#include \"detectors/ewma.hpp\"\n"
             "namespace core {\n"
             "struct Pipeline {\n"
             "  double step(double x);\n"
             "};\n"
             "OPPRENTICE_HOT double Pipeline::step(double x) {\n"
             "  return detectors::smooth(x) + bias(x);\n"
             "}\n"
             "double bias(double x) { return x * 0.5; }\n"
             "}  // namespace core\n");
  tree.plant("src/detectors/ewma.cpp",
             "#include \"detectors/ewma.hpp\"\n"
             "namespace detectors {\n"
             "double decay(double x) { return x * 0.9; }\n"
             "double smooth(double x) { return decay(x); }\n"
             "}  // namespace detectors\n");
  tree.plant("src/detectors/ewma.hpp",
             "namespace detectors {\n"
             "double smooth(double x);\n"
             "}  // namespace detectors\n");

  HotpathOptions opts;
  opts.dump_graph = true;
  const HotpathResult result =
      hotpath_tree({(tree.root() / "src").string()}, opts);
  EXPECT_TRUE(result.report.ok());

  // The temp root differs per run; normalize it so the dump is stable.
  std::string graph = result.graph;
  const std::string root = tree.root().string();
  for (std::size_t at = graph.find(root); at != std::string::npos;
       at = graph.find(root, at)) {
    graph.replace(at, root.size(), "<root>");
  }

  const std::filesystem::path golden =
      std::filesystem::path(OPPRENTICE_GOLDEN_DIR) / "hotpath_graph.txt";
  if (std::getenv("OPPRENTICE_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(golden);
    out << graph;
    SUCCEED() << "regenerated " << golden;
    return;
  }
  std::ifstream in(golden);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden
                         << "; regenerate with "
                            "OPPRENTICE_REGENERATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(graph, expected.str());
}

TEST(HotpathSelfTest, EveryPlantedViolationIsCaught) {
  const LintReport report = hotpath_self_test();
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.checks_run, 0u);
}

}  // namespace
