// Tests for the observability layer: histogram bucket/quantile math,
// metrics snapshots, trace-event JSON well-formedness (the emitted file is
// parsed), logger level gating, and a multi-threaded registry hammer that
// is also exercised by the OPPRENTICE_SANITIZE=thread CI job.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace obs = opprentice::obs;

namespace {

// ---- Minimal JSON syntax checker (no values extracted) ----
// Enough of RFC 8259 to reject malformed output: objects, arrays,
// strings with escapes, numbers, true/false/null.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("opprentice_obs_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

// ---- Histogram bucket boundaries ----

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(obs::Histogram::upper_bound(0),
                   std::ldexp(1.0, obs::Histogram::kMinExponent));
  for (std::size_t i = 1; i + 1 < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(obs::Histogram::upper_bound(i),
                     2.0 * obs::Histogram::upper_bound(i - 1));
    EXPECT_DOUBLE_EQ(obs::Histogram::lower_bound(i),
                     obs::Histogram::upper_bound(i - 1));
  }
  EXPECT_TRUE(
      std::isinf(obs::Histogram::upper_bound(obs::Histogram::kNumBuckets - 1)));
  EXPECT_DOUBLE_EQ(obs::Histogram::lower_bound(0), 0.0);
}

TEST(Histogram, BucketIndexHonorsBounds) {
  // Exact upper bounds land in their own bucket (bounds are inclusive).
  for (std::size_t i = 0; i + 1 < obs::Histogram::kNumBuckets; ++i) {
    const double bound = obs::Histogram::upper_bound(i);
    EXPECT_EQ(obs::Histogram::bucket_index(bound), i) << "bound " << bound;
    // Just above an upper bound falls into the next bucket.
    EXPECT_EQ(obs::Histogram::bucket_index(bound * 1.0001), i + 1);
  }
  // Everything at or below the smallest bound collapses into bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e-12), 0u);
  // Beyond the last finite bound: overflow bucket.
  EXPECT_EQ(obs::Histogram::bucket_index(1e30),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min_value()));
  h.record(2.0);
  h.record(8.0);
  h.record(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_value(), 8.0);
  EXPECT_NEAR(h.mean(), 3.5, 1e-12);
  // Negative values clamp to zero; NaN is dropped.
  h.record(-1.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, QuantileMath) {
  obs::Histogram single;
  single.record(3.25);
  // One observation: every quantile is that observation.
  EXPECT_DOUBLE_EQ(single.quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 3.25);

  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Quantiles are bucket-interpolated estimates: monotone in q, inside
  // [min, max], and within the true value's bucket (factor-2 resolution).
  double previous = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, previous) << "q=" << q;
    EXPECT_GE(est, h.min_value());
    EXPECT_LE(est, h.max_value());
    previous = est;
  }
  const double true_median = 500.0;
  EXPECT_GE(h.quantile(0.5), true_median / 2.0);
  EXPECT_LE(h.quantile(0.5), true_median * 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// ---- Registry and snapshots ----

TEST(Registry, InstrumentsAreStableAndSnapshotsParse) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.counter("test.counter").value(), 5u);

  reg.gauge("test.gauge").set(1.5);
  reg.histogram("test.hist.us").record(12.0);
  reg.histogram("test.hist.us").record(250.0);

  const std::string json = reg.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.counter\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.hist.us\""), std::string::npos);

  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("# TYPE test_counter counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_counter 5"), std::string::npos);
  EXPECT_NE(prom.find("test_hist_us_count 2"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  reg.reset_values();
  EXPECT_EQ(reg.counter("test.counter").value(), 0u);
  EXPECT_EQ(reg.histogram("test.hist.us").count(), 0u);
  // References registered before the reset stay valid.
  c.add();
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
}

TEST(Registry, WriteMetricsFilePicksFormatByExtension) {
  obs::counter("opprentice.test.file_metric").add(7);
  const std::string json_path = temp_path("metrics.json");
  const std::string prom_path = temp_path("metrics.prom");
  ASSERT_TRUE(obs::write_metrics_file(json_path));
  ASSERT_TRUE(obs::write_metrics_file(prom_path));
  const std::string json = read_file(json_path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("opprentice.test.file_metric"), std::string::npos);
  EXPECT_NE(read_file(prom_path).find("opprentice_test_file_metric 7"),
            std::string::npos);
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
}

// ---- Trace spans ----

TEST(Trace, DisabledSpansCostNothingAndRecordNothing) {
  obs::disable_tracing();
  obs::clear_trace();
  {
    obs::ScopedSpan span("never.recorded");
    EXPECT_FALSE(span.active());
    span.arg("ignored", 1);
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, EmittedFileIsWellFormedJson) {
  obs::clear_trace();
  obs::enable_tracing();
  {
    obs::ScopedSpan outer("test.outer", "test");
    outer.arg("week", 3);
    outer.arg("ratio", 0.25);
    obs::ScopedSpan inner("test.inner", "test");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      obs::ScopedSpan span("test.threaded", "test");
      span.arg("thread", t);
    });
  }
  for (auto& th : threads) th.join();
  obs::disable_tracing();
  EXPECT_EQ(obs::trace_event_count(), 6u);

  const std::string path = temp_path("trace.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string doc = read_file(path);
  std::filesystem::remove(path);

  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.threaded\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"week\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"ratio\": 0.25"), std::string::npos);

  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, EnablingTracingEnablesDetailedTiming) {
  obs::set_detailed_timing(false);
  obs::enable_tracing();
  EXPECT_TRUE(obs::detailed_timing_enabled());
  obs::disable_tracing();
  obs::clear_trace();
  obs::set_detailed_timing(false);
}

// ---- Structured logger ----

class LogCapture {
 public:
  LogCapture() { obs::set_log_sink(&stream_); }
  ~LogCapture() {
    obs::set_log_sink(nullptr);
    obs::set_log_level(obs::LogLevel::kOff);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

TEST(Log, LevelGating) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));

  obs::log(obs::LogLevel::kInfo, "test", "filtered");
  EXPECT_TRUE(capture.text().empty());
  obs::log(obs::LogLevel::kWarn, "test", "kept", {{"n", 3}});
  EXPECT_NE(capture.text().find("level=warn comp=test event=kept n=3"),
            std::string::npos)
      << capture.text();

  obs::set_log_level(obs::LogLevel::kOff);
  obs::log(obs::LogLevel::kError, "test", "also_filtered");
  EXPECT_EQ(capture.text().find("also_filtered"), std::string::npos);
}

TEST(Log, FieldFormatting) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kDebug);
  obs::log(obs::LogLevel::kDebug, "test", "fields",
           {{"str", "plain"},
            {"spaced", "two words"},
            {"flag", true},
            {"pi", 3.5},
            {"count", std::size_t{42}}});
  const std::string line = capture.text();
  EXPECT_NE(line.find("str=plain"), std::string::npos) << line;
  EXPECT_NE(line.find("spaced=\"two words\""), std::string::npos) << line;
  EXPECT_NE(line.find("flag=true"), std::string::npos);
  EXPECT_NE(line.find("pi=3.5"), std::string::npos);
  EXPECT_NE(line.find("count=42"), std::string::npos);
}

TEST(Log, ParsesLevelNames) {
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("nonsense"), obs::LogLevel::kOff);
}

// ---- Multi-threaded hammer (runs under OPPRENTICE_SANITIZE=thread) ----

TEST(RegistryHammer, ConcurrentUpdatesAreExactAndRaceFree) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Mix registration (mutex path) and updates (atomic path).
      obs::Counter& mine =
          reg.counter("hammer.thread." + std::to_string(t));
      obs::Histogram& shared_hist = reg.histogram("hammer.shared.us");
      for (int i = 0; i < kOps; ++i) {
        reg.counter("hammer.shared").add();
        mine.add();
        shared_hist.record(static_cast<double>(i % 257));
        reg.gauge("hammer.gauge").set(static_cast<double>(i));
        if (i % 1000 == 0) {
          // Snapshots race against writers by design; must not crash.
          (void)reg.json();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("hammer.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("hammer.thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kOps));
  }
  EXPECT_EQ(reg.histogram("hammer.shared.us").count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_TRUE(JsonChecker(reg.json()).valid());
}

TEST(RegistryHammer, ConcurrentTraceSpans) {
  obs::clear_trace();
  obs::enable_tracing();
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        obs::ScopedSpan span("hammer.span", "test");
        span.arg("thread", t);
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::disable_tracing();
  EXPECT_EQ(obs::trace_event_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  obs::clear_trace();
}

}  // namespace
