// Registry invariants (paper Table 3): 133 configurations, unique names,
// per-family sampling grids, and the severity contract on randomized
// series. The same invariants gate the build through `opprentice_lint`;
// this test exercises them in-process and on randomized (seeded) inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "../tools/registry_lint.hpp"
#include "detectors/detector.hpp"
#include "detectors/registry.hpp"
#include "util/rng.hpp"

namespace {

using opprentice::detectors::DetectorPtr;
using opprentice::detectors::DetectorRegistry;
using opprentice::detectors::SeriesContext;
using opprentice::tools::FamilySpec;
using opprentice::tools::parse_config_name;
using opprentice::tools::table3_specs;

// Compact calendar so seasonal warm-ups stay small.
SeriesContext small_ctx() {
  return {.points_per_day = 24, .points_per_week = 168};
}

std::vector<DetectorPtr> standard_configs() {
  return DetectorRegistry::with_standard_families().instantiate_all(
      small_ctx());
}

TEST(RegistryInvariants, Exactly133Configurations) {
  const auto configs = standard_configs();
  EXPECT_EQ(configs.size(),
            opprentice::detectors::kStandardConfigurationCount);
  EXPECT_EQ(configs.size(), 133u);
}

TEST(RegistryInvariants, ConfigurationNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& config : standard_configs()) {
    EXPECT_TRUE(names.insert(config->name()).second)
        << "duplicate configuration name: " << config->name();
  }
  EXPECT_EQ(names.size(), 133u);
}

TEST(RegistryInvariants, FamilyExpansionMatchesTable3) {
  const auto registry = DetectorRegistry::with_standard_families();
  std::size_t total = 0;
  for (const FamilySpec& spec : table3_specs()) {
    ASSERT_TRUE(registry.has_family(spec.family))
        << "missing family: " << spec.family;
    const auto family =
        registry.instantiate_family(spec.family, small_ctx());
    EXPECT_EQ(family.size(), spec.expected_configs)
        << "family " << spec.family;
    total += family.size();
  }
  EXPECT_EQ(total, 133u);
  EXPECT_EQ(registry.family_count(), table3_specs().size());
}

TEST(RegistryInvariants, ParametersInsideDeclaredSamplingGrids) {
  const auto& specs = table3_specs();
  for (const auto& config : standard_configs()) {
    const auto parsed = parse_config_name(config->name());
    ASSERT_TRUE(parsed.valid) << "unparseable name: " << config->name();
    const auto spec_it = std::find_if(
        specs.begin(), specs.end(),
        [&parsed](const FamilySpec& s) { return s.family == parsed.family; });
    ASSERT_NE(spec_it, specs.end())
        << "unknown family in name: " << config->name();
    EXPECT_EQ(parsed.params.size(), spec_it->allowed_values.size())
        << config->name();
    for (const auto& [key, value] : parsed.params) {
      const auto allowed_it = spec_it->allowed_values.find(key);
      ASSERT_NE(allowed_it, spec_it->allowed_values.end())
          << config->name() << ": undeclared parameter " << key;
      EXPECT_NE(std::find(allowed_it->second.begin(),
                          allowed_it->second.end(), value),
                allowed_it->second.end())
          << config->name() << ": " << key << "=" << value
          << " outside sampling grid";
    }
  }
}

TEST(RegistryInvariants, SeveritiesNonNegativeOnRandomizedSeries) {
  const SeriesContext ctx = small_ctx();
  for (const std::uint64_t seed : {7ull, 1234ull, 0xDEADBEEFull}) {
    opprentice::util::Rng rng(seed);
    std::vector<double> series(2 * ctx.points_per_week);
    for (double& v : series) v = rng.normal(50.0, 15.0);
    // Dirty data and extremes must not break the severity domain.
    series[ctx.points_per_day] = std::nan("");
    series[ctx.points_per_day + 1] = std::nan("");
    series[series.size() / 2] = -1e6;
    series[series.size() / 2 + 1] = 1e6;

    auto configs =
        DetectorRegistry::with_standard_families().instantiate_all(ctx);
    for (auto& config : configs) {
      for (std::size_t i = 0; i < series.size(); ++i) {
        const double severity = config->feed(series[i]);
        ASSERT_FALSE(std::isnan(severity))
            << config->name() << " emitted NaN at " << i << " (seed " << seed
            << ")";
        ASSERT_FALSE(std::isinf(severity))
            << config->name() << " emitted inf at " << i;
        ASSERT_GE(severity, 0.0)
            << config->name() << " emitted negative severity at " << i;
      }
    }
  }
}

TEST(RegistryInvariants, ResetRestoresConstructedState) {
  const SeriesContext ctx = small_ctx();
  opprentice::util::Rng rng(99);
  std::vector<double> series(ctx.points_per_week + ctx.points_per_day);
  for (double& v : series) v = rng.normal(100.0, 10.0);

  for (auto& config : standard_configs()) {
    std::vector<double> first;
    first.reserve(series.size());
    for (double v : series) first.push_back(config->feed(v));
    config->reset();
    for (std::size_t i = 0; i < series.size(); ++i) {
      ASSERT_EQ(config->feed(series[i]), first[i])
          << config->name() << " diverges after reset() at point " << i;
    }
  }
}

TEST(RegistryInvariants, LinterAcceptsStandardRegistry) {
  const auto report = opprentice::tools::lint_registry(
      DetectorRegistry::with_standard_families());
  EXPECT_TRUE(report.ok()) << opprentice::tools::format_report(report, true);
}

TEST(RegistryInvariants, LinterAlignmentAcceptsStandardRegistry) {
  const auto report = opprentice::tools::lint_dataset_alignment(
      DetectorRegistry::with_standard_families());
  EXPECT_TRUE(report.ok()) << opprentice::tools::format_report(report, true);
}

TEST(RegistryInvariants, LinterSelfTestCatchesPlantedDefects) {
  const auto report = opprentice::tools::lint_self_test();
  EXPECT_TRUE(report.ok()) << opprentice::tools::format_report(report, true);
}

TEST(RegistryInvariants, NameParserHandlesGrammar) {
  auto parsed = parse_config_name("ewma(alpha=0.3)");
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.family, "ewma");
  EXPECT_EQ(parsed.params.at("alpha"), "0.3");

  parsed = parse_config_name("simple_threshold");
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.family, "simple_threshold");
  EXPECT_TRUE(parsed.params.empty());

  parsed = parse_config_name("svd(row=10,col=3)");
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.params.size(), 2u);

  EXPECT_FALSE(parse_config_name("").valid);
  EXPECT_FALSE(parse_config_name("bad(open").valid);
  EXPECT_FALSE(parse_config_name("(noname)").valid);
  EXPECT_FALSE(parse_config_name("dup(a=1,a=2)").valid);
}

}  // namespace
