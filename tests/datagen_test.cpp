// Unit tests for src/datagen: KPI models, anomaly injection, and the
// Table 1 statistics of the three presets.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/anomaly_injector.hpp"
#include "datagen/kpi_model.hpp"
#include "datagen/kpi_presets.hpp"
#include "timeseries/series_stats.hpp"
#include "util/stats.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::datagen;

KpiModel small_model() {
  KpiModel m;
  m.name = "toy";
  m.interval_seconds = 600;
  m.weeks = 3;
  m.base_level = 100.0;
  m.daily_amplitude = 0.3;
  m.noise_level = 0.02;
  m.seed = 5;
  return m;
}

// ---- generate_normal ----

TEST(KpiModel, DeterministicForSameSeed) {
  const auto a = generate_normal(small_model());
  const auto b = generate_normal(small_model());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(KpiModel, DifferentSeedsDiffer) {
  KpiModel m2 = small_model();
  m2.seed = 6;
  const auto a = generate_normal(small_model());
  const auto b = generate_normal(m2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  EXPECT_LT(same, a.size() / 10);
}

TEST(KpiModel, LengthMatchesWeeks) {
  const auto s = generate_normal(small_model());
  EXPECT_EQ(s.size(), 3u * s.points_per_week());
}

TEST(KpiModel, ValuesNonNegative) {
  KpiModel m = small_model();
  m.daily_amplitude = 0.9;
  m.noise_level = 0.5;
  const auto s = generate_normal(m);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_GE(s[i], 0.0);
}

TEST(KpiModel, SeasonalTemplateIsWeekPeriodic) {
  const KpiModel m = small_model();
  const std::size_t week =
      static_cast<std::size_t>(ts::kSecondsPerWeek / m.interval_seconds);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(seasonal_template(m, i),
                seasonal_template(m, i + week), 1e-6 * m.base_level);
  }
}

TEST(KpiModel, TrendRaisesLevel) {
  KpiModel m = small_model();
  m.trend = 0.5;
  m.noise_level = 0.0;
  const double early = seasonal_template(m, 0);
  const std::size_t last = 3 * 1008 - 1008;  // same phase, 2 weeks later
  const double late = seasonal_template(m, last);
  EXPECT_GT(late, early);
}

TEST(KpiModel, WeekendsSitLower) {
  KpiModel m = small_model();
  m.weekly_amplitude = 0.2;
  m.noise_level = 0.0;
  // Day 5 (Saturday) midday vs day 0 (Monday) midday.
  const std::size_t ppd = 144;
  EXPECT_LT(seasonal_template(m, 5 * ppd + 72),
            seasonal_template(m, 0 * ppd + 72));
}

TEST(KpiModel, BurstsIncreaseDispersion) {
  KpiModel quiet = small_model();
  KpiModel bursty = small_model();
  bursty.burst_probability = 0.05;
  bursty.burst_magnitude = 10.0;
  const double cv_quiet =
      util::coefficient_of_variation(generate_normal(quiet).values());
  const double cv_bursty =
      util::coefficient_of_variation(generate_normal(bursty).values());
  EXPECT_GT(cv_bursty, 2.0 * cv_quiet);
}

// ---- inject_anomalies ----

TEST(Injector, HitsTargetFraction) {
  InjectionSpec spec;
  spec.anomaly_fraction = 0.05;
  spec.seed = 9;
  const auto kpi = inject_anomalies(generate_normal(small_model()), spec);
  const double frac = static_cast<double>(kpi.ground_truth.anomalous_points()) /
                      static_cast<double>(kpi.series.size());
  EXPECT_NEAR(frac, 0.05, 0.01);
}

TEST(Injector, WindowsAreDisjoint) {
  InjectionSpec spec;
  spec.anomaly_fraction = 0.08;
  const auto kpi = inject_anomalies(generate_normal(small_model()), spec);
  const auto& ws = kpi.ground_truth.windows();
  for (std::size_t i = 0; i + 1 < ws.size(); ++i) {
    EXPECT_LE(ws[i].end, ws[i + 1].begin);
  }
}

TEST(Injector, AnomaliesActuallyChangeValues) {
  const auto normal = generate_normal(small_model());
  InjectionSpec spec;
  spec.anomaly_fraction = 0.05;
  spec.min_magnitude = 0.3;
  const auto kpi = inject_anomalies(normal, spec);
  std::size_t changed = 0, total = 0;
  for (const auto& w : kpi.ground_truth.windows()) {
    for (std::size_t i = w.begin; i < w.end; ++i) {
      ++total;
      if (std::abs(kpi.series[i] - normal[i]) >
          1e-9 * std::abs(normal[i])) {
        ++changed;
      }
    }
  }
  ASSERT_GT(total, 0u);
  // The vast majority of anomalous points visibly deviate (ramp recovery
  // tails may touch zero deviation).
  EXPECT_GT(static_cast<double>(changed) / static_cast<double>(total), 0.9);
}

TEST(Injector, NormalPointsUntouched) {
  const auto normal = generate_normal(small_model());
  InjectionSpec spec;
  spec.anomaly_fraction = 0.05;
  const auto kpi = inject_anomalies(normal, spec);
  for (std::size_t i = 0; i < kpi.series.size(); ++i) {
    if (!kpi.ground_truth.is_anomalous(i)) {
      EXPECT_DOUBLE_EQ(kpi.series[i], normal[i]) << "at index " << i;
    }
  }
}

TEST(Injector, MissingFractionProducesNaNs) {
  InjectionSpec spec;
  spec.anomaly_fraction = 0.02;
  spec.missing_fraction = 0.05;
  const auto kpi = inject_anomalies(generate_normal(small_model()), spec);
  std::size_t missing = 0;
  for (std::size_t i = 0; i < kpi.series.size(); ++i) {
    if (std::isnan(kpi.series[i])) {
      ++missing;
      EXPECT_FALSE(kpi.ground_truth.is_anomalous(i));  // missing != anomaly
    }
  }
  const double frac = static_cast<double>(missing) /
                      static_cast<double>(kpi.series.size());
  EXPECT_NEAR(frac, 0.05, 0.015);
}

TEST(Injector, RecordsAnomalyMetadata) {
  InjectionSpec spec;
  spec.anomaly_fraction = 0.05;
  const auto kpi = inject_anomalies(generate_normal(small_model()), spec);
  EXPECT_EQ(kpi.anomalies.size(), kpi.ground_truth.window_count());
  for (const auto& a : kpi.anomalies) {
    EXPECT_GT(a.window.length(), 0u);
    EXPECT_NE(a.magnitude, 0.0);
  }
}

TEST(Injector, DeterministicBySeed) {
  InjectionSpec spec;
  spec.anomaly_fraction = 0.05;
  const auto a = inject_anomalies(generate_normal(small_model()), spec);
  const auto b = inject_anomalies(generate_normal(small_model()), spec);
  EXPECT_EQ(a.ground_truth.windows(), b.ground_truth.windows());
}

TEST(Injector, KindNamesAreStable) {
  EXPECT_STREQ(to_string(AnomalyKind::kSpike), "spike");
  EXPECT_STREQ(to_string(AnomalyKind::kDip), "dip");
  EXPECT_STREQ(to_string(AnomalyKind::kRampUp), "ramp-up");
  EXPECT_STREQ(to_string(AnomalyKind::kLevelShift), "level-shift");
}

// ---- presets vs Table 1 ----

struct PresetExpectation {
  const char* name;
  double cv_low, cv_high;        // Table 1 Cv with tolerance band
  double season_low, season_high;
  double anomaly_fraction;
  std::size_t weeks;
};

class PresetTable1 : public ::testing::TestWithParam<PresetExpectation> {};

TEST_P(PresetTable1, StatisticsMatchPaper) {
  const auto& expect = GetParam();
  KpiPreset preset;
  if (std::string(expect.name) == "PV") {
    preset = pv_preset();
  } else if (std::string(expect.name) == "#SR") {
    preset = sr_preset();
  } else {
    preset = srt_preset();
  }
  const auto kpi = generate_kpi(preset.model, preset.injection);
  const auto prof = ts::profile(kpi.series);

  EXPECT_EQ(kpi.series.name(), expect.name);
  EXPECT_NEAR(prof.length_weeks, static_cast<double>(expect.weeks), 0.01);
  EXPECT_GE(prof.coefficient_of_variation, expect.cv_low);
  EXPECT_LE(prof.coefficient_of_variation, expect.cv_high);
  EXPECT_GE(prof.daily_seasonality, expect.season_low);
  EXPECT_LE(prof.daily_seasonality, expect.season_high);

  const double frac =
      static_cast<double>(kpi.ground_truth.anomalous_points()) /
      static_cast<double>(kpi.series.size());
  EXPECT_NEAR(frac, expect.anomaly_fraction, 0.012);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PresetTable1,
    ::testing::Values(
        // Table 1: PV Cv=0.48 strong seasonality, 25 weeks, 7.8% anomalies.
        PresetExpectation{"PV", 0.3, 0.7, 0.8, 1.0, 0.078, 25},
        // #SR Cv=2.1 weak seasonality, 19 weeks, 2.8% anomalies.
        PresetExpectation{"#SR", 1.2, 3.2, -0.2, 0.4, 0.028, 19},
        // SRT Cv=0.07 moderate seasonality, 16 weeks, 7.4% anomalies.
        PresetExpectation{"SRT", 0.04, 0.12, 0.4, 0.8, 0.074, 16}),
    [](const ::testing::TestParamInfo<PresetExpectation>& param_info) {
      return std::string(param_info.param.name) == "#SR"
                 ? "SR"
                 : std::string(param_info.param.name);
    });

TEST(Presets, AllPresetsCoverPaperKpis) {
  const auto presets = all_presets();
  ASSERT_EQ(presets.size(), 3u);
  EXPECT_EQ(presets[0].model.name, "PV");
  EXPECT_EQ(presets[1].model.name, "#SR");
  EXPECT_EQ(presets[2].model.name, "SRT");
}

TEST(Presets, PaperScaleUsesMinuteBins) {
  EXPECT_EQ(pv_preset(Scale::kPaper).model.interval_seconds, 60);
  EXPECT_EQ(pv_preset(Scale::kSmall).model.interval_seconds, 600);
  // SRT is hourly at both scales, as in the paper.
  EXPECT_EQ(srt_preset(Scale::kPaper).model.interval_seconds, 3600);
  EXPECT_EQ(srt_preset(Scale::kSmall).model.interval_seconds, 3600);
}

TEST(Presets, ScaleFromEnvDefaultsToSmall) {
  // (Does not modify the environment; just checks the default path.)
  EXPECT_EQ(scale_from_env(), Scale::kSmall);
}

}  // namespace
