// Chaos and session-core suite for the network ingestion daemon
// (src/net, DESIGN.md §5k). Everything here runs over an in-memory
// transport — AgentCore frames, optionally shaped by FrameFaultInjector,
// fed straight into IngestServer::on_bytes — so every scenario is a pure
// function of (byte trace, tick schedule, fault plan) and replays
// byte-identically: the fault runs assert rerun equality, the zero-fault
// run asserts equality with a no-plan run, and the flight-recorder dump
// is identical at any thread count.
//
// ctest labels: net, chaos (ASan job), parallel (TSan job).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/fleet_engine.hpp"
#include "net/agent.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace opprentice;

struct PlanGuard {
  explicit PlanGuard(const util::FaultPlan& plan) {
    util::set_fault_plan(plan);
  }
  ~PlanGuard() { util::clear_fault_plan(); }
};

std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

// A small engine: enough context for repair + feed, retrains pushed far
// out so the suite stays fast.
core::FleetOptions small_fleet() {
  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{24, 7 * 24};
  options.shard_count = 4;
  options.retrain_interval = 1 << 20;
  options.history_capacity = 256;
  options.forest.num_trees = 2;
  options.forest.seed = 7;
  return options;
}

std::vector<ts::RawPoint> clean_points(std::size_t n, std::int64_t interval,
                                       std::int64_t start = 1700000000) {
  std::vector<ts::RawPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({start + static_cast<std::int64_t>(i) * interval,
                      10.0 + std::sin(static_cast<double>(i) * 0.31)});
  }
  return points;
}

// Sends one pre-built client frame on an established connection and
// returns the server's raw response bytes.
std::vector<std::uint8_t> send_frame(net::IngestServer& server,
                                     std::uint64_t conn_id,
                                     const net::Frame& frame,
                                     bool* keep = nullptr) {
  std::vector<std::uint8_t> responses;
  const bool ok =
      server.on_bytes(conn_id, net::encode_frame(frame), responses);
  if (keep != nullptr) *keep = ok;
  return responses;
}

net::FrameType first_response_type(std::span<const std::uint8_t> bytes) {
  net::FrameParser parser;
  parser.push_bytes(bytes);
  net::Frame frame;
  if (!parser.next(&frame)) return net::FrameType::kError;
  return frame.type;
}

// Drives one AgentCore to completion against an IngestServer over the
// in-memory transport. Frames pass a FrameFaultInjector keyed by the
// source id (identical to the socket replayer), lost replies become
// on_timeout retransmissions, transport resets become reconnects, and
// the server ticks every `tick_every` exchanges — one deterministic
// interleaving, replayable byte-for-byte.
struct DriveResult {
  bool done = false;
  std::uint64_t reconnects = 0;
  std::vector<std::uint8_t> response_trace;  // every server response byte
};

DriveResult drive(net::IngestServer& server, net::AgentCore& agent,
                  const std::string& source_id, std::size_t tick_every = 8,
                  std::size_t max_steps = 200000) {
  DriveResult result;
  net::FrameFaultInjector shaper(util::stable_id_hash(source_id));
  net::FrameParser replies;
  std::uint64_t conn_id = util::stable_id_hash(source_id) | 1;
  bool connected = false;
  bool ever_connected = false;
  std::size_t exchanges = 0;
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (agent.done() || agent.failed()) break;
    if (!connected) {
      if (ever_connected) agent.on_disconnect();
      replies = net::FrameParser();
      ++conn_id;
      if (!server.on_connect(conn_id)) {
        server.tick();  // accept refused (net.accept_fail): back off
        continue;
      }
      connected = true;
      ever_connected = true;
    }
    // Backpressure hint: in logical time, waiting = ticking the server.
    for (std::uint32_t hold = agent.retry_after_ticks(); hold > 0; --hold) {
      server.tick();
    }
    const auto frame = agent.next_frame();
    std::vector<std::uint8_t> wire;
    if (frame.has_value()) shaper.apply(net::encode_frame(*frame), wire);
    std::vector<std::uint8_t> responses;
    bool keep = true;
    if (!wire.empty()) keep = server.on_bytes(conn_id, wire, responses);
    result.response_trace.insert(result.response_trace.end(),
                                 responses.begin(), responses.end());
    replies.push_bytes(responses);
    net::Frame reply;
    bool advanced = false;
    while (replies.next(&reply)) {
      agent.on_frame(reply);
      advanced = true;
    }
    if (!keep) {
      server.on_disconnect(conn_id);
      connected = false;
      ++result.reconnects;
      continue;
    }
    if (agent.awaiting_reply() && !advanced) {
      agent.on_timeout();  // frame or reply lost in the shaper
    }
    if (++exchanges % tick_every == 0) server.tick();
  }
  // End-of-stream: a reorder-held frame must still be delivered.
  std::vector<std::uint8_t> tail;
  shaper.flush(tail);
  if (connected && !tail.empty()) {
    std::vector<std::uint8_t> responses;
    server.on_bytes(conn_id, tail, responses);
    result.response_trace.insert(result.response_trace.end(),
                                 responses.begin(), responses.end());
  }
  server.drain();
  result.done = agent.done();
  return result;
}

// ---- SourceTracker -------------------------------------------------------

TEST(SourceTracker, SequenceVerdictsClassifyTheWindow) {
  net::SourceTracker tracker;
  EXPECT_EQ(tracker.state(), net::SourceState::kAwaiting);
  EXPECT_EQ(tracker.observe(1, 0), net::SeqVerdict::kInOrder);
  EXPECT_EQ(tracker.state(), net::SourceState::kLive);
  EXPECT_EQ(tracker.observe(2, 0), net::SeqVerdict::kInOrder);
  EXPECT_EQ(tracker.observe(5, 0), net::SeqVerdict::kGap);  // 3, 4 missing
  EXPECT_EQ(tracker.counters().gap_frames, 2u);
  EXPECT_EQ(tracker.observe(4, 0), net::SeqVerdict::kReordered);
  EXPECT_EQ(tracker.counters().gap_frames, 1u);  // 4 filled its hole
  EXPECT_EQ(tracker.observe(4, 0), net::SeqVerdict::kDuplicate);
  EXPECT_EQ(tracker.observe(2, 0), net::SeqVerdict::kDuplicate);
  EXPECT_EQ(tracker.last_seq(), 5u);
  EXPECT_EQ(tracker.counters().frames_accepted, 4u);
}

TEST(SourceTracker, FarBehindTheWindowIsStale) {
  net::SourceTracker tracker;
  EXPECT_EQ(tracker.observe(1, 0), net::SeqVerdict::kInOrder);
  EXPECT_EQ(tracker.observe(100, 0), net::SeqVerdict::kGap);
  EXPECT_EQ(tracker.observe(2, 0), net::SeqVerdict::kStale);  // 98 behind
  EXPECT_EQ(tracker.counters().stale, 1u);
}

TEST(SourceTracker, LivenessDecaysAndOnlyReviveReturnsFromLost) {
  net::SourceTracker tracker(net::LivenessOptions{3, 6});
  tracker.observe(1, 10);
  EXPECT_EQ(tracker.state(), net::SourceState::kLive);
  EXPECT_EQ(tracker.tick(12), net::SourceState::kLive);
  EXPECT_EQ(tracker.tick(13), net::SourceState::kSuspect);
  EXPECT_EQ(tracker.counters().suspect_transitions, 1u);
  // A frame while suspect goes straight back to live.
  tracker.observe(2, 14);
  EXPECT_EQ(tracker.state(), net::SourceState::kLive);
  EXPECT_EQ(tracker.tick(20), net::SourceState::kLost);
  EXPECT_EQ(tracker.counters().lost_transitions, 1u);
  // kLost is sticky: frames do not resurrect the source...
  tracker.observe(3, 21);
  EXPECT_EQ(tracker.state(), net::SourceState::kLost);
  // ...only the explicit HELLO-driven revive does.
  tracker.revive(22);
  EXPECT_EQ(tracker.state(), net::SourceState::kLive);
  EXPECT_EQ(tracker.counters().revives, 1u);
  // The sequence window survived the outage: 3 was committed above.
  EXPECT_EQ(tracker.observe(3, 23), net::SeqVerdict::kDuplicate);
}

// ---- FrameFaultInjector --------------------------------------------------

TEST(FrameFaultInjector, PassthroughWithoutAPlan) {
  net::FrameFaultInjector injector(1234);
  const std::vector<std::uint8_t> wire =
      net::encode_frame(net::make_heartbeat(1));
  std::vector<std::uint8_t> out;
  injector.apply(wire, out);
  EXPECT_EQ(out, wire);
  std::vector<std::uint8_t> tail;
  injector.flush(tail);
  EXPECT_TRUE(tail.empty());
}

TEST(FrameFaultInjector, DropAndDuplicateAreDeterministicPerIndex) {
  util::FaultPlan plan;
  plan.seed = 11;
  plan.rates["net.frame_drop"] = 0.5;
  const PlanGuard guard(plan);

  const auto run = [] {
    net::FrameFaultInjector injector(42);
    std::vector<std::size_t> sizes;
    for (std::uint32_t i = 1; i <= 32; ++i) {
      std::vector<std::uint8_t> out;
      injector.apply(net::encode_frame(net::make_heartbeat(i)), out);
      sizes.push_back(out.size());
    }
    return sizes;
  };
  const auto first = run();
  EXPECT_EQ(first, run());  // same plan, same salt -> same drops
  std::size_t dropped = 0;
  for (const std::size_t size : first) {
    if (size == 0) ++dropped;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 32u);
}

TEST(FrameFaultInjector, ReorderHoldsOneFrameAndFlushReleasesIt) {
  util::FaultPlan plan;
  plan.seed = 3;
  plan.rates["net.frame_reorder"] = 1.0;
  const PlanGuard guard(plan);

  net::FrameFaultInjector injector(7);
  const auto a = net::encode_frame(net::make_heartbeat(1));
  std::vector<std::uint8_t> out;
  injector.apply(a, out);
  EXPECT_TRUE(out.empty());  // held back, waiting for a successor
  injector.flush(out);
  EXPECT_EQ(out, a);  // end-of-stream flush never silently drops
}

TEST(FrameFaultInjector, CorruptedFrameFailsCrcNotSync) {
  util::FaultPlan plan;
  plan.seed = 9;
  plan.rates["net.frame_corrupt"] = 1.0;
  const PlanGuard guard(plan);

  net::FrameFaultInjector injector(5);
  std::vector<std::uint8_t> out;
  injector.apply(net::encode_frame(net::make_heartbeat(1)), out);
  injector.apply(net::encode_frame(net::make_heartbeat(2)), out);
  net::FrameParser parser;
  parser.push_bytes(out);
  net::Frame frame;
  EXPECT_FALSE(parser.next(&frame));  // both corrupted, both skipped
  EXPECT_EQ(parser.corrupt_frames() + parser.bad_version_frames(), 2u);
  EXPECT_FALSE(parser.dead());  // resynchronized, not poisoned
}

// ---- IngestServer protocol edges -----------------------------------------

TEST(IngestServer, FrameBeforeHelloIsAProtocolError) {
  core::FleetEngine engine(small_fleet());
  net::IngestServer server(engine, net::ServerOptions{});
  ASSERT_TRUE(server.on_connect(1));
  bool keep = true;
  const auto responses =
      send_frame(server, 1, net::make_heartbeat(1), &keep);
  EXPECT_FALSE(keep);
  EXPECT_EQ(first_response_type(responses), net::FrameType::kError);
}

TEST(IngestServer, HelloWelcomeCarriesTheResumeSequence) {
  core::FleetEngine engine(small_fleet());
  net::IngestServer server(engine, net::ServerOptions{});
  ASSERT_TRUE(server.on_connect(1));
  auto responses = send_frame(
      server, 1, net::make_hello(0, net::HelloPayload{"src-a", 0}));
  net::FrameParser parser;
  parser.push_bytes(responses);
  net::Frame frame;
  ASSERT_TRUE(parser.next(&frame));
  net::WelcomePayload welcome;
  ASSERT_TRUE(net::decode_welcome(frame, &welcome));
  EXPECT_EQ(welcome.resume_seq, 0u);  // nothing committed yet

  send_frame(server, 1, net::make_heartbeat(1));
  send_frame(server, 1, net::make_heartbeat(2));
  // A second HELLO (same connection is fine) reports the new high water.
  responses = send_frame(
      server, 1, net::make_hello(0, net::HelloPayload{"src-a", 2}));
  parser = net::FrameParser();
  parser.push_bytes(responses);
  ASSERT_TRUE(parser.next(&frame));
  ASSERT_TRUE(net::decode_welcome(frame, &welcome));
  EXPECT_EQ(welcome.resume_seq, 2u);
}

TEST(IngestServer, BackpressureRetryThenDrainAcceptsTheRetransmit) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.queue_capacity = 2;
  options.retry_after_ticks = 3;
  options.default_interval_seconds = 3600;
  net::IngestServer server(engine, options);
  ASSERT_TRUE(server.on_connect(1));
  send_frame(server, 1, net::make_hello(0, net::HelloPayload{"src-a", 0}));

  const auto points = clean_points(40, 3600);
  const std::uint64_t rejects_before =
      counter_value("opprentice.net.backpressure_rejects");
  std::vector<std::vector<std::uint8_t>> responses;
  for (std::uint32_t seq = 1; seq <= 4; ++seq) {
    net::DataPayload data;
    data.series_id = "pv";
    data.interval_seconds = 3600;
    data.points.assign(points.begin() + (seq - 1) * 10,
                       points.begin() + seq * 10);
    responses.push_back(
        send_frame(server, 1, net::make_data(seq, data)));
  }
  EXPECT_EQ(first_response_type(responses[0]), net::FrameType::kAck);
  EXPECT_EQ(first_response_type(responses[1]), net::FrameType::kAck);
  EXPECT_EQ(first_response_type(responses[2]), net::FrameType::kRetry);
  EXPECT_EQ(first_response_type(responses[3]), net::FrameType::kRetry);
  EXPECT_EQ(counter_value("opprentice.net.backpressure_rejects"),
            rejects_before + 2);
  net::FrameParser parser;
  parser.push_bytes(responses[2]);
  net::Frame frame;
  ASSERT_TRUE(parser.next(&frame));
  net::RetryPayload retry;
  ASSERT_TRUE(net::decode_retry(frame, &retry));
  EXPECT_EQ(retry.seq, 3u);
  EXPECT_EQ(retry.retry_after_ticks, 3u);

  server.tick();  // drains the queue
  // The rejected sequence number was NOT committed: the retransmit is
  // fresh traffic, not a duplicate.
  net::DataPayload data;
  data.series_id = "pv";
  data.interval_seconds = 3600;
  data.points.assign(points.begin() + 20, points.begin() + 30);
  const auto retry_resp = send_frame(server, 1, net::make_data(3, data));
  EXPECT_EQ(first_response_type(retry_resp), net::FrameType::kAck);
  server.drain();
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(engine.stats(handle).repairs.duplicates, 0u);
  EXPECT_EQ(engine.stats(handle).points_seen, 30u);  // batches 1, 2, 3
}

TEST(IngestServer, AcceptFailSiteRefusesTheConnection) {
  util::FaultPlan plan;
  plan.seed = 21;
  plan.rates["net.accept_fail"] = 1.0;
  const PlanGuard guard(plan);
  core::FleetEngine engine(small_fleet());
  net::IngestServer server(engine, net::ServerOptions{});
  const std::uint64_t failures_before =
      counter_value("opprentice.net.accept_failures");
  EXPECT_FALSE(server.on_connect(99));
  EXPECT_EQ(server.connection_count(), 0u);
  EXPECT_EQ(counter_value("opprentice.net.accept_failures"),
            failures_before + 1);
}

TEST(IngestServer, ConnResetSiteClosesAfterAProcessedFrame) {
  util::FaultPlan plan;
  plan.seed = 22;
  plan.rates["net.conn_reset"] = 1.0;
  const PlanGuard guard(plan);
  core::FleetEngine engine(small_fleet());
  net::IngestServer server(engine, net::ServerOptions{});
  ASSERT_TRUE(server.on_connect(1));
  bool keep = true;
  const auto responses = send_frame(
      server, 1, net::make_hello(0, net::HelloPayload{"src-a", 0}), &keep);
  EXPECT_FALSE(keep);  // frame processed, then the stream was torn down
  // The WELCOME was already appended — bytes in flight on a real reset.
  EXPECT_EQ(first_response_type(responses), net::FrameType::kWelcome);
}

// ---- wire defects -> repair_series (satellite) ---------------------------

TEST(IngestServer, SequenceGapBecomesTimestampGapRepair) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.repair_policy = ts::RepairPolicy::kFillInterpolate;
  net::IngestServer server(engine, options);
  ASSERT_TRUE(server.on_connect(1));
  send_frame(server, 1, net::make_hello(0, net::HelloPayload{"src-a", 0}));

  const auto points = clean_points(30, 3600);
  const auto batch = [&](std::uint32_t seq, std::size_t from, std::size_t n) {
    net::DataPayload data;
    data.series_id = "pv";
    data.interval_seconds = 3600;
    data.points.assign(points.begin() + static_cast<std::ptrdiff_t>(from),
                       points.begin() + static_cast<std::ptrdiff_t>(from + n));
    return send_frame(server, 1, net::make_data(seq, data));
  };
  batch(1, 0, 10);
  // Frame seq=2 (points 10..19) lost on the wire: the agent's window has
  // moved on, so the server sees a sequence gap...
  const std::uint64_t gaps_before = counter_value("opprentice.net.seq_gaps");
  batch(3, 20, 10);
  EXPECT_EQ(counter_value("opprentice.net.seq_gaps"), gaps_before + 1);
  server.drain();
  // ...and the coalesced apply hands repair_series a 10-slot timestamp
  // hole, which fill-interpolate repairs and reports as gaps.
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_EQ(stats.repairs.gaps, 10u);
  EXPECT_EQ(stats.points_seen, 30u);  // 20 real + 10 interpolated
}

TEST(IngestServer, InterleavedDuplicateAndDisorderWithinOneBatch) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.repair_policy = ts::RepairPolicy::kFillInterpolate;
  net::IngestServer server(engine, options);
  ASSERT_TRUE(server.on_connect(1));
  send_frame(server, 1, net::make_hello(0, net::HelloPayload{"src-a", 0}));

  // One DATA frame whose points are themselves disordered AND contain a
  // duplicated grid slot — both defect classes inside a single batch.
  net::DataPayload data;
  data.series_id = "pv";
  data.interval_seconds = 3600;
  data.points = clean_points(12, 3600);
  std::swap(data.points[3], data.points[7]);      // disorder
  data.points.push_back(data.points[5]);          // duplicate slot (and
                                                  // also out of order)
  send_frame(server, 1, net::make_data(1, data));
  server.drain();
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_GT(stats.repairs.out_of_order, 0u);
  EXPECT_EQ(stats.repairs.duplicates, 1u);
  EXPECT_EQ(stats.points_seen, 12u);  // exactly-once per grid slot
}

TEST(IngestServer, HeartbeatOnlySourceStaysLiveWithoutEngineWork) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.liveness = net::LivenessOptions{2, 4};
  net::IngestServer server(engine, options);
  ASSERT_TRUE(server.on_connect(1));
  send_frame(server, 1, net::make_hello(0, net::HelloPayload{"watchdog", 0}));
  const std::uint64_t applied_before =
      counter_value("opprentice.net.batches_applied");
  std::uint32_t seq = 0;
  for (int round = 0; round < 10; ++round) {
    send_frame(server, 1, net::make_heartbeat(++seq));
    server.tick();
    ASSERT_EQ(server.source_state("watchdog"), net::SourceState::kLive)
        << "round " << round;
  }
  EXPECT_EQ(engine.series_count(), 0u);
  EXPECT_EQ(counter_value("opprentice.net.batches_applied"), applied_before);
  // Silence now lets the deadline lapse: kSuspect, then kLost.
  server.tick();
  server.tick();
  EXPECT_EQ(server.source_state("watchdog"), net::SourceState::kSuspect);
  server.tick();
  server.tick();
  EXPECT_EQ(server.source_state("watchdog"), net::SourceState::kLost);
}

TEST(IngestServer, ResumeAfterLostKeepsAttributionExact) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.liveness = net::LivenessOptions{2, 4};
  options.default_interval_seconds = 3600;
  net::IngestServer server(engine, options);

  const auto points = clean_points(64, 3600);
  net::AgentCore agent("field-agent");
  agent.queue_data("pv", 3600, points, 16);
  agent.finish();

  // First connection: HELLO + first two DATA frames, then the agent dies.
  ASSERT_TRUE(server.on_connect(1));
  net::FrameParser replies;
  net::Frame reply;
  for (int exchanges = 0; exchanges < 3; ++exchanges) {
    const auto frame = agent.next_frame();
    ASSERT_TRUE(frame.has_value());
    std::vector<std::uint8_t> responses;
    ASSERT_TRUE(server.on_bytes(1, net::encode_frame(*frame), responses));
    replies.push_bytes(responses);
    while (replies.next(&reply)) agent.on_frame(reply);
  }
  EXPECT_EQ(agent.last_acked(), 2u);  // two DATA batches committed
  server.on_disconnect(1);
  for (int i = 0; i < 6; ++i) server.tick();
  ASSERT_EQ(server.source_state("field-agent"), net::SourceState::kLost);

  // Reconnect: the HELLO revives the source and the WELCOME resume lets
  // the agent skip what the server already committed.
  const std::uint64_t revives_before =
      obs::FlightRecorder::instance().event_count();
  agent.on_disconnect();
  ASSERT_TRUE(server.on_connect(2));
  replies = net::FrameParser();
  while (!agent.done()) {
    const auto frame = agent.next_frame();
    ASSERT_TRUE(frame.has_value());
    std::vector<std::uint8_t> responses;
    ASSERT_TRUE(server.on_bytes(2, net::encode_frame(*frame), responses));
    replies.push_bytes(responses);
    while (replies.next(&reply)) agent.on_frame(reply);
  }
  EXPECT_GE(obs::FlightRecorder::instance().event_count(), revives_before);
  EXPECT_EQ(server.source_state("field-agent"), net::SourceState::kLive);
  server.drain();

  // Exactly-once attribution across the outage: every point fed once,
  // nothing duplicated, nothing lost.
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_EQ(stats.points_seen, points.size());
  EXPECT_EQ(stats.repairs.duplicates, 0u);
  EXPECT_EQ(stats.repairs.gaps, 0u);
  const auto snapshots = server.snapshot();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].counters.revives, 1u);
  EXPECT_TRUE(snapshots[0].saw_bye);
}

// ---- end-to-end chaos ----------------------------------------------------

// Engine fingerprint for rerun-equality assertions.
std::string engine_fingerprint(core::FleetEngine& engine) {
  std::string out;
  for (const auto& id : engine.series_ids()) {
    const auto stats = engine.stats(engine.find_series(id));
    out += id + ":" + std::to_string(stats.points_seen) + ":" +
           stats.repairs.summary() + ";";
  }
  return out;
}

TEST(NetChaos, CleanLockstepSessionAppliesEverythingExactlyOnce) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.default_interval_seconds = 3600;
  net::IngestServer server(engine, options);
  const auto points = clean_points(96, 3600);
  net::AgentCore agent("clean-agent");
  agent.queue_data("pv", 3600, points, 16);
  agent.queue_heartbeat();
  agent.queue_labels("pv", 0, std::vector<std::uint8_t>(32, 1));
  agent.finish();
  const DriveResult result = drive(server, agent, "clean-agent");
  ASSERT_TRUE(result.done);
  EXPECT_EQ(agent.retransmits(), 0u);
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_EQ(stats.points_seen, points.size());
  EXPECT_TRUE(stats.repairs.clean()) << stats.repairs.summary();
  EXPECT_GT(stats.labeled_until, 0u);
}

TEST(NetChaos, ZeroRatePlanIsByteIdenticalToNoPlan) {
  const auto run = [](bool with_plan) {
    std::unique_ptr<PlanGuard> guard;
    if (with_plan) {
      util::FaultPlan plan;
      plan.seed = 77;
      plan.rates["net.frame_drop"] = 0.0;
      plan.rates["net.frame_corrupt"] = 0.0;
      plan.rates["net.conn_reset"] = 0.0;
      guard = std::make_unique<PlanGuard>(plan);
    }
    core::FleetEngine engine(small_fleet());
    net::ServerOptions options;
    options.default_interval_seconds = 3600;
    net::IngestServer server(engine, options);
    net::AgentCore agent("zero-agent");
    agent.queue_data("pv", 3600, clean_points(48, 3600), 12);
    agent.finish();
    DriveResult result = drive(server, agent, "zero-agent");
    EXPECT_TRUE(result.done);
    result.response_trace.push_back(0);  // separator
    const std::string fp = engine_fingerprint(engine);
    result.response_trace.insert(result.response_trace.end(), fp.begin(),
                                 fp.end());
    return result.response_trace;
  };
  EXPECT_EQ(run(false), run(true));
}

// All six net.* sites at once: the session survives, completes, and the
// engine sees every point exactly once — and the whole run (response
// bytes, engine state, injected-fault counters) is identical on rerun.
TEST(NetChaos, AllSixFaultSitesDriveToExactlyOnceCompletion) {
  util::FaultPlan plan;
  plan.seed = 4242;
  plan.rates["net.frame_corrupt"] = 0.05;
  plan.rates["net.frame_drop"] = 0.05;
  plan.rates["net.frame_duplicate"] = 0.08;
  plan.rates["net.frame_reorder"] = 0.08;
  plan.rates["net.conn_reset"] = 0.02;
  plan.rates["net.accept_fail"] = 0.10;

  const auto run = [&] {
    const PlanGuard guard(plan);
    core::FleetEngine engine(small_fleet());
    net::ServerOptions options;
    options.default_interval_seconds = 3600;
    options.liveness = net::LivenessOptions{50, 100};
    net::IngestServer server(engine, options);
    net::AgentCore agent("chaos-agent");
    agent.queue_data("pv", 3600, clean_points(96, 3600), 8);
    agent.finish();
    DriveResult result = drive(server, agent, "chaos-agent");
    EXPECT_TRUE(result.done);
    const auto handle = engine.find_series("pv");
    EXPECT_NE(handle, nullptr);
    if (handle != nullptr) {
      const auto stats = engine.stats(handle);
      // Exactly-once under chaos: retransmits and duplicated frames are
      // deduplicated at the sequence layer, so the engine never sees a
      // duplicated grid slot, and the lockstep retransmit protocol means
      // nothing is lost either.
      EXPECT_EQ(stats.points_seen, 96u);
      EXPECT_EQ(stats.repairs.duplicates, 0u);
      EXPECT_EQ(stats.repairs.gaps, 0u);
    }
    std::vector<std::uint8_t> trace = std::move(result.response_trace);
    const std::string fp = engine_fingerprint(engine);
    trace.insert(trace.end(), fp.begin(), fp.end());
    return trace;
  };

  const std::uint64_t injected_before =
      counter_value("opprentice.faults.injected");
  const auto first = run();
  const std::uint64_t injected_mid =
      counter_value("opprentice.faults.injected");
  EXPECT_GT(injected_mid, injected_before);  // the plan actually fired
  const auto second = run();
  EXPECT_EQ(first, second);  // byte-identical rerun
  // Identical rerun implies identical fault decisions.
  EXPECT_EQ(counter_value("opprentice.faults.injected") - injected_mid,
            injected_mid - injected_before);
}

TEST(NetChaos, EverySiteFiresUnderItsOwnPlan) {
  const char* const sites[] = {
      "net.frame_corrupt", "net.frame_drop", "net.frame_duplicate",
      "net.frame_reorder", "net.conn_reset", "net.accept_fail"};
  for (const char* site : sites) {
    util::FaultPlan plan;
    plan.seed = 100;
    // High enough that a short session certainly hits the site, below
    // 1.0 so the session still completes. accept_fail gets one draw per
    // connection attempt (the others one per frame), so it needs a rate
    // near 1 to certainly fire — the refused connects then retry with
    // fresh ids until one passes.
    plan.rates[site] = std::string_view(site) == "net.accept_fail" ? 0.97
                                                                   : 0.6;
    const PlanGuard guard(plan);
    core::FleetEngine engine(small_fleet());
    net::ServerOptions options;
    options.default_interval_seconds = 3600;
    options.liveness = net::LivenessOptions{50, 100};
    net::IngestServer server(engine, options);
    net::AgentCore agent("site-agent");
    agent.queue_data("pv", 3600, clean_points(48, 3600), 8);
    agent.finish();
    const std::uint64_t before =
        counter_value(std::string("opprentice.faults.") + site);
    const DriveResult result = drive(server, agent, "site-agent");
    EXPECT_TRUE(result.done) << site;
    EXPECT_GT(counter_value(std::string("opprentice.faults.") + site), before)
        << site << " never fired";
    const auto handle = engine.find_series("pv");
    ASSERT_NE(handle, nullptr) << site;
    EXPECT_EQ(engine.stats(handle).points_seen, 48u) << site;
  }
}

// ---- determinism at any thread count -------------------------------------

TEST(NetChaos, FlightDumpIsByteIdenticalAtAnyThreadCount) {
  util::FaultPlan plan;
  plan.seed = 555;
  plan.rates["net.frame_drop"] = 0.1;
  plan.rates["net.frame_duplicate"] = 0.1;

  const auto run = [&](std::size_t threads) {
    util::set_global_threads(threads);
    const PlanGuard guard(plan);
    obs::FlightRecorder::instance().clear();
    core::FleetEngine engine(small_fleet());
    net::ServerOptions options;
    options.default_interval_seconds = 3600;
    options.liveness = net::LivenessOptions{2, 4};
    net::IngestServer server(engine, options);
    net::AgentCore agent("flight-agent");
    agent.queue_data("pv", 3600, clean_points(48, 3600), 8);
    agent.finish();
    const DriveResult result = drive(server, agent, "flight-agent");
    EXPECT_TRUE(result.done);
    // Let the source decay to kLost for suspect/lost flight events too.
    for (int i = 0; i < 6; ++i) server.tick();
    std::string dump = obs::FlightRecorder::instance().dump_json();
    obs::FlightRecorder::instance().clear();
    return dump;
  };
  const std::string serial = run(1);
  const std::string two = run(2);
  const std::string eight = run(8);
  util::set_global_threads(1);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  EXPECT_NE(serial.find("\"fault\""), std::string::npos);
  EXPECT_NE(serial.find("\"lost\""), std::string::npos);
}

// Entry points for DISTINCT connections may run concurrently (TSan
// coverage: the ctest "parallel" label): two sources stream on their own
// connections from two pool workers, then the main thread drains.
TEST(NetChaos, ConcurrentDistinctConnectionsAreSafeAndComplete) {
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.default_interval_seconds = 3600;
  net::IngestServer server(engine, options);
  constexpr std::size_t kAgents = 4;
  ASSERT_TRUE(server.on_connect(1));
  ASSERT_TRUE(server.on_connect(2));
  ASSERT_TRUE(server.on_connect(3));
  ASSERT_TRUE(server.on_connect(4));
  util::set_global_threads(kAgents);
  util::parallel_for(kAgents, [&](std::size_t i) {
    const std::uint64_t conn_id = i + 1;
    const std::string source = "agent-" + std::to_string(i);
    const std::string series = "pv-" + std::to_string(i);
    net::AgentCore agent(source);
    agent.queue_data(series, 3600, clean_points(32, 3600), 8);
    agent.finish();
    net::FrameParser replies;
    net::Frame reply;
    while (!agent.done() && !agent.failed()) {
      const auto frame = agent.next_frame();
      if (!frame.has_value()) break;
      std::vector<std::uint8_t> responses;
      if (!server.on_bytes(conn_id, net::encode_frame(*frame), responses)) {
        break;
      }
      replies.push_bytes(responses);
      while (replies.next(&reply)) agent.on_frame(reply);
    }
    EXPECT_TRUE(agent.done()) << source;
  });
  util::set_global_threads(1);
  server.drain();
  EXPECT_EQ(engine.series_count(), kAgents);
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto handle = engine.find_series("pv-" + std::to_string(i));
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(engine.stats(handle).points_seen, 32u);
  }
}

}  // namespace
