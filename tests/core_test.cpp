// Unit tests for src/core: training-set strategies, cThld prediction,
// weekly drivers, and the user-facing Opprentice class.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cthld.hpp"
#include "core/dataset_builder.hpp"
#include "core/opprentice.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/anomaly_injector.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::core;

// Small ML-ready dataset shaped like weekly KPI features: one informative
// severity column, one noise column, at a given points-per-week.
ml::Dataset weekly_data(std::size_t weeks, std::size_t ppw,
                        std::uint64_t seed = 1) {
  util::Rng rng(seed);
  const std::size_t n = weeks * ppw;
  std::vector<std::vector<double>> cols(2);
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.08;
    labels[i] = anomaly;
    cols[0].push_back(anomaly ? rng.uniform(5.0, 9.0)
                              : rng.uniform(0.0, 2.0));
    cols[1].push_back(rng.uniform(0.0, 4.0));
  }
  return ml::Dataset({"sev", "noise"}, std::move(cols), std::move(labels));
}

ml::ForestOptions tiny_forest() {
  ml::ForestOptions f;
  f.num_trees = 12;
  return f;
}

// ---- strategy windows (Table 2) ----

TEST(StrategyWindows, I1MovesOneWeek) {
  const auto w0 = strategy_windows(TrainingStrategy::kI1, 0, 2000, 100, 8);
  ASSERT_TRUE(w0.has_value());
  EXPECT_EQ(w0->train_begin, 0u);
  EXPECT_EQ(w0->train_end, 800u);
  EXPECT_EQ(w0->test_begin, 800u);
  EXPECT_EQ(w0->test_end, 900u);

  const auto w3 = strategy_windows(TrainingStrategy::kI1, 3, 2000, 100, 8);
  ASSERT_TRUE(w3.has_value());
  EXPECT_EQ(w3->train_end, 1100u);  // all historical data
  EXPECT_EQ(w3->test_begin, 1100u);
  EXPECT_EQ(w3->test_end, 1200u);
}

TEST(StrategyWindows, I4UsesAllHistory) {
  const auto w = strategy_windows(TrainingStrategy::kI4, 2, 2000, 100, 8);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->train_begin, 0u);
  EXPECT_EQ(w->train_end, 1000u);
  EXPECT_EQ(w->test_end, w->test_begin + 400u);
}

TEST(StrategyWindows, R4UsesRecentEightWeeks) {
  const auto w = strategy_windows(TrainingStrategy::kR4, 3, 3000, 100, 8);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->train_end, 1100u);
  EXPECT_EQ(w->train_begin, 1100u - 800u);
}

TEST(StrategyWindows, F4UsesFirstEightWeeks) {
  const auto w = strategy_windows(TrainingStrategy::kF4, 5, 3000, 100, 8);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->train_begin, 0u);
  EXPECT_EQ(w->train_end, 800u);
}

TEST(StrategyWindows, ReturnsNulloptPastEnd) {
  EXPECT_FALSE(
      strategy_windows(TrainingStrategy::kI1, 100, 2000, 100, 8).has_value());
  // I4 needs 4 test weeks: window 8 would need rows up to 2100 > 2000.
  EXPECT_FALSE(
      strategy_windows(TrainingStrategy::kI4, 9, 2000, 100, 8).has_value());
}

TEST(StrategyWindows, Names) {
  EXPECT_STREQ(to_string(TrainingStrategy::kI1), "I1");
  EXPECT_STREQ(to_string(TrainingStrategy::kF4), "F4");
}

// ---- EWMA cThld predictor ----

TEST(EwmaPredictor, BlendsBestCthlds) {
  EwmaCthldPredictor p(0.8);
  p.initialize(0.5);
  EXPECT_DOUBLE_EQ(p.predict(), 0.5);
  p.observe_best(1.0);
  EXPECT_NEAR(p.predict(), 0.8 * 1.0 + 0.2 * 0.5, 1e-12);
  p.observe_best(0.0);
  EXPECT_NEAR(p.predict(), 0.2 * 0.9, 1e-12);
}

TEST(EwmaPredictor, FirstObservationWithoutInitSeeds) {
  EwmaCthldPredictor p(0.8);
  p.observe_best(0.7);
  EXPECT_DOUBLE_EQ(p.predict(), 0.7);
}

TEST(EwmaPredictor, HighAlphaTracksFaster) {
  EwmaCthldPredictor fast(0.9), slow(0.1);
  fast.initialize(0.0);
  slow.initialize(0.0);
  fast.observe_best(1.0);
  slow.observe_best(1.0);
  EXPECT_GT(fast.predict(), slow.predict());
}

// ---- 5-fold cThld ----

TEST(FiveFold, ReturnsThresholdInRange) {
  const auto data = weekly_data(6, 100);
  const double cthld = five_fold_cthld(data, {0.66, 0.66}, tiny_forest());
  EXPECT_GE(cthld, 0.0);
  EXPECT_LE(cthld, 1.0);
}

TEST(FiveFold, DegenerateDataGivesDefault) {
  // No positives at all -> 0.5.
  ml::Dataset empty_labels({"f"}, {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
                           std::vector<std::uint8_t>(10, 0));
  EXPECT_DOUBLE_EQ(
      five_fold_cthld(empty_labels, {0.66, 0.66}, tiny_forest()), 0.5);
}

TEST(FiveFold, SeparableDataSatisfiesPreference) {
  const auto data = weekly_data(8, 100);
  const double cthld = five_fold_cthld(data, {0.66, 0.66}, tiny_forest());
  // Apply the chosen cthld to a fresh forest on fresh data: accuracy
  // should land near the preference on this separable problem.
  ml::RandomForest forest(tiny_forest());
  forest.train(data);
  const auto test = weekly_data(2, 100, 99);
  const auto scores = forest.score_all(test);
  const auto counts =
      eval::confusion(eval::decide(scores, cthld), test.labels());
  EXPECT_GT(eval::recall(counts), 0.6);
  EXPECT_GT(eval::precision(counts), 0.6);
}

// ---- weekly incremental driver ----

TEST(WeeklyDriver, ScoresCoverTestRegionOnly) {
  const auto data = weekly_data(11, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  const auto run = run_weekly_incremental(data, 100, 0, opt);
  EXPECT_EQ(run.test_start, 800u);
  EXPECT_EQ(run.weeks.size(), 3u);
  for (std::size_t i = 0; i < run.test_start; ++i) {
    EXPECT_TRUE(std::isnan(run.scores[i]));
  }
  for (std::size_t i = run.test_start; i < data.num_rows(); ++i) {
    EXPECT_FALSE(std::isnan(run.scores[i])) << i;
  }
}

TEST(WeeklyDriver, BestCthldsSatisfyPreferenceOnSeparableData) {
  const auto data = weekly_data(11, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  opt.preference = {0.66, 0.66};
  const auto run = run_weekly_incremental(data, 100, 0, opt);
  for (const auto& week : run.weeks) {
    EXPECT_GE(week.best.recall, 0.66);
    EXPECT_GE(week.best.precision, 0.66);
  }
}

TEST(WeeklyDriver, EwmaPredictionsFollowBests) {
  const auto data = weekly_data(12, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  const auto run = run_weekly_incremental(data, 100, 0, opt);
  const auto predicted = ewma_predicted_cthlds(run, 0.5, 0.8);
  ASSERT_EQ(predicted.size(), run.weeks.size());
  EXPECT_DOUBLE_EQ(predicted[0], 0.5);
  EXPECT_NEAR(predicted[1], 0.8 * run.weeks[0].best.cthld + 0.2 * 0.5,
              1e-12);
}

TEST(WeeklyDriver, DecisionsRespectWeeklyCthlds) {
  const auto data = weekly_data(10, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  const auto run = run_weekly_incremental(data, 100, 0, opt);
  // cThld 0 flags everything in the test region; cThld 1.01 nothing.
  const auto all = decisions_from_weekly_cthlds(
      run, std::vector<double>(run.weeks.size(), 0.0));
  const auto none = decisions_from_weekly_cthlds(
      run, std::vector<double>(run.weeks.size(), 1.01));
  for (std::size_t i = run.test_start; i < data.num_rows(); ++i) {
    EXPECT_EQ(all[i], 1);
    EXPECT_EQ(none[i], 0);
  }
  for (std::size_t i = 0; i < run.test_start; ++i) {
    EXPECT_EQ(all[i], 0);  // nothing flagged before the test region
  }
}

TEST(WeeklyDriver, WarmupRowsExcludedFromTraining) {
  // With warmup = everything before the test region, training would be
  // empty -> scores stay NaN.
  const auto data = weekly_data(9, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  const auto run = run_weekly_incremental(data, 100, 800, opt);
  for (std::size_t i = run.test_start; i < data.num_rows(); ++i) {
    EXPECT_TRUE(std::isnan(run.scores[i]));
  }
}

TEST(WeeklyDriver, FiveFoldWeeklyCthldsInRange) {
  const auto data = weekly_data(10, 100);
  DriverOptions opt;
  opt.forest = tiny_forest();
  const auto cthlds = five_fold_weekly_cthlds(data, 100, 0, opt);
  EXPECT_EQ(cthlds.size(), 2u);
  for (double c : cthlds) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(WindowedMetricsTest, CountsPerWindow) {
  // 10 points, window 5, step 5: two windows.
  const std::vector<std::uint8_t> decisions{1, 0, 0, 0, 0, 1, 1, 0, 0, 0};
  const std::vector<std::uint8_t> truth{1, 1, 0, 0, 0, 1, 0, 0, 0, 0};
  const auto windows = windowed_metrics(decisions, truth, 0, 5, 5);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(windows[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(windows[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(windows[1].precision, 0.5);
}

TEST(WindowedMetricsTest, StepSmallerThanWindowOverlaps) {
  const std::vector<std::uint8_t> decisions(20, 1);
  const std::vector<std::uint8_t> truth(20, 1);
  const auto windows = windowed_metrics(decisions, truth, 0, 10, 5);
  EXPECT_EQ(windows.size(), 3u);  // starts at 0, 5, 10
}

// ---- prepare_experiment / dataset builder ----

TEST(DatasetBuilder, ExperimentShape) {
  datagen::KpiModel model;
  model.interval_seconds = 3600;  // hourly for speed
  model.weeks = 3;
  model.daily_amplitude = 0.3;
  model.base_level = 100.0;
  datagen::InjectionSpec spec;
  spec.anomaly_fraction = 0.06;
  const auto kpi = datagen::generate_kpi(model, spec);
  const auto experiment = prepare_experiment(kpi);

  EXPECT_EQ(experiment.dataset.num_rows(), kpi.series.size());
  EXPECT_EQ(experiment.dataset.num_features(), 133u);
  EXPECT_EQ(experiment.points_per_week, 168u);
  EXPECT_GT(experiment.warmup, 0u);
  EXPECT_LT(experiment.warmup, kpi.series.size());
  // Operator labels differ slightly from ground truth (boundary noise),
  // but have a similar number of windows.
  EXPECT_NEAR(
      static_cast<double>(experiment.operator_labels.window_count()),
      static_cast<double>(kpi.ground_truth.window_count()),
      0.15 * static_cast<double>(kpi.ground_truth.window_count()) + 2.0);
}

// ---- Opprentice class ----

detectors::SeriesContext hourly_ctx() {
  return {24, 168};
}

ts::TimeSeries hourly_kpi(std::size_t weeks, datagen::GeneratedKpi* out_kpi) {
  datagen::KpiModel model;
  model.interval_seconds = 3600;
  model.weeks = weeks;
  model.daily_amplitude = 0.4;
  model.base_level = 200.0;
  model.noise_level = 0.02;
  datagen::InjectionSpec spec;
  spec.anomaly_fraction = 0.08;
  spec.min_magnitude = 0.3;
  // Many short windows so labeled anomalies exist beyond every detector's
  // warm-up region even in short bootstrap histories.
  spec.long_min_points = 4;
  spec.long_max_points = 10;
  *out_kpi = datagen::generate_kpi(model, spec);
  return out_kpi->series;
}

TEST(OpprenticeSystem, BootstrapTrainsClassifier) {
  datagen::GeneratedKpi kpi;
  const auto series = hourly_kpi(4, &kpi);
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  EXPECT_FALSE(system.is_trained());
  system.bootstrap(series, kpi.ground_truth);
  EXPECT_TRUE(system.is_trained());
  EXPECT_EQ(system.num_features(), 133u);
  EXPECT_GE(system.current_cthld(), 0.0);
  EXPECT_LE(system.current_cthld(), 1.0);
}

TEST(OpprenticeSystem, ObserveClassifiesAfterBootstrap) {
  datagen::GeneratedKpi kpi;
  const auto series = hourly_kpi(5, &kpi);
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  system.bootstrap(series.slice(0, 4 * 168), kpi.ground_truth);

  const auto detection = system.observe(series[4 * 168]);
  EXPECT_TRUE(detection.classified);
  EXPECT_GE(detection.score, 0.0);
  EXPECT_LE(detection.score, 1.0);
}

TEST(OpprenticeSystem, ObserveBeforeTrainingIsUnclassified) {
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  const auto detection = system.observe(100.0);
  EXPECT_FALSE(detection.classified);
  EXPECT_FALSE(detection.is_anomaly);
}

TEST(OpprenticeSystem, IngestLabelsRetrains) {
  datagen::GeneratedKpi kpi;
  const auto series = hourly_kpi(6, &kpi);
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  system.bootstrap(series.slice(0, 4 * 168), kpi.ground_truth);

  for (std::size_t i = 4 * 168; i < 5 * 168; ++i) system.observe(series[i]);
  EXPECT_EQ(system.labeled_until(), 4u * 168u);
  system.ingest_labels(kpi.ground_truth, 5 * 168);
  EXPECT_EQ(system.labeled_until(), 5u * 168u);
  EXPECT_TRUE(system.is_trained());
}

TEST(OpprenticeSystem, DoubleBootstrapThrows) {
  datagen::GeneratedKpi kpi;
  const auto series = hourly_kpi(4, &kpi);
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  system.bootstrap(series, kpi.ground_truth);
  EXPECT_THROW(system.bootstrap(series, kpi.ground_truth), std::logic_error);
}

TEST(OpprenticeSystem, ImportancesMatchFeatureCount) {
  datagen::GeneratedKpi kpi;
  const auto series = hourly_kpi(4, &kpi);
  OpprenticeConfig config;
  config.forest = tiny_forest();
  Opprentice system(hourly_ctx(), config);
  system.bootstrap(series, kpi.ground_truth);
  EXPECT_EQ(system.feature_importances().size(), 133u);
  EXPECT_EQ(system.feature_names().size(), 133u);
}

}  // namespace
