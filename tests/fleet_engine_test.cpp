// Fleet engine suite (DESIGN.md §5i): the sharded series registry keeps
// its insert/lookup/evict semantics under concurrent hammering, the
// staggered retrain scheduler reproduces a golden schedule from a fixed
// seed, and series are isolated — a quarantined or fault-injected series
// must not perturb any other series' output bytes.
//
// ctest label: fleet (CI runs these under TSan alongside `parallel`).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_engine.hpp"
#include "core/retrain_scheduler.hpp"
#include "core/series_registry.hpp"
#include "obs/metrics.hpp"
#include "timeseries/repair.hpp"
#include "util/fault_injection.hpp"

namespace {

using namespace opprentice;

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

struct PlanGuard {
  explicit PlanGuard(const util::FaultPlan& plan) {
    util::set_fault_plan(plan);
  }
  ~PlanGuard() { util::clear_fault_plan(); }
};

std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

// ---- series registry -----------------------------------------------------

TEST(SeriesRegistry, ShardIndexIsDeterministicAndInRange) {
  for (std::size_t shards : {1u, 7u, 64u}) {
    for (int i = 0; i < 200; ++i) {
      const std::string id = "kpi-" + std::to_string(i);
      const std::size_t a = core::registry_shard_index(id, shards, 42);
      const std::size_t b = core::registry_shard_index(id, shards, 42);
      EXPECT_EQ(a, b);
      EXPECT_LT(a, shards);
    }
  }
  // Different seeds give different layouts (else the seed is dead code).
  std::size_t moved = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "kpi-" + std::to_string(i);
    if (core::registry_shard_index(id, 64, 1) !=
        core::registry_shard_index(id, 64, 2)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(SeriesRegistry, InsertLookupEvict) {
  core::SeriesRegistry<int> registry(8, 0);
  EXPECT_EQ(registry.entry_count(), 0u);
  EXPECT_EQ(registry.find("a"), nullptr);
  EXPECT_FALSE(registry.erase("a"));

  auto a = registry.get_or_create("a", [] { return std::make_shared<int>(1); });
  auto a2 =
      registry.get_or_create("a", [] { return std::make_shared<int>(2); });
  EXPECT_EQ(a.get(), a2.get()) << "second factory must not run";
  EXPECT_EQ(*a, 1);
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_EQ(registry.entry_count(), 1u);

  registry.get_or_create("b", [] { return std::make_shared<int>(3); });
  EXPECT_EQ(registry.ids_sorted(), (std::vector<std::string>{"a", "b"}));

  // Evicted entries stay alive for existing holders.
  EXPECT_TRUE(registry.erase("a"));
  EXPECT_FALSE(registry.contains("a"));
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(registry.entry_count(), 1u);
}

TEST(SeriesRegistry, ConcurrentGetOrCreateConstructsOnce) {
  core::SeriesRegistry<int> registry(4, 0);
  constexpr int kThreads = 8;
  constexpr int kIds = 64;
  std::atomic<int> constructions{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&registry, &constructions] {
      for (int i = 0; i < kIds; ++i) {
        const std::string id = "kpi-" + std::to_string(i);
        auto entry = registry.get_or_create(id, [&constructions, i] {
          constructions.fetch_add(1);
          return std::make_shared<int>(i);
        });
        ASSERT_EQ(*entry, i);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(constructions.load(), kIds) << "one construction per id";
  EXPECT_EQ(registry.entry_count(), static_cast<std::size_t>(kIds));
}

TEST(SeriesRegistry, ConcurrentInsertLookupEvict) {
  core::SeriesRegistry<int> registry(8, 7);
  constexpr int kIds = 128;
  // Writers churn (insert + evict) even ids; readers look up everything;
  // odd ids are inserted once and must survive the churn untouched.
  for (int i = 1; i < kIds; i += 2) {
    registry.get_or_create("kpi-" + std::to_string(i),
                           [i] { return std::make_shared<int>(i); });
  }
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&registry, w] {
      for (int round = 0; round < 50; ++round) {
        for (int i = w; i < kIds; i += 8) {
          const int even = 2 * ((i + round) % (kIds / 2));
          const std::string id = "kpi-" + std::to_string(even);
          auto entry = registry.get_or_create(
              id, [even] { return std::make_shared<int>(even); });
          ASSERT_EQ(*entry, even);
          registry.erase(id);
        }
      }
    });
    workers.emplace_back([&registry] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kIds; ++i) {
          auto entry = registry.find("kpi-" + std::to_string(i));
          if (entry != nullptr) {
            ASSERT_EQ(*entry, i);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every odd id survived; ids_sorted is globally sorted.
  for (int i = 1; i < kIds; i += 2) {
    EXPECT_TRUE(registry.contains("kpi-" + std::to_string(i)));
  }
  const auto ids = registry.ids_sorted();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_GE(ids.size(), static_cast<std::size_t>(kIds / 2));
}

// ---- retrain scheduler ---------------------------------------------------

TEST(RetrainScheduler, PhaseIsStableAcrossInstances) {
  const core::RetrainScheduler a(2026, 64);
  const core::RetrainScheduler b(2026, 64);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "kpi-" + std::to_string(i);
    EXPECT_EQ(a.phase(id), b.phase(id));
    EXPECT_LT(a.phase(id), 64u);
  }
  const core::RetrainScheduler other_seed(2027, 64);
  std::size_t moved = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string id = "kpi-" + std::to_string(i);
    if (a.phase(id) != other_seed.phase(id)) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(RetrainScheduler, DueSemantics) {
  const core::RetrainScheduler scheduler(1, 10);
  const std::size_t phase = 3;
  // Never due inside the first full interval, then exactly every 10
  // points at the series' phase offset.
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_FALSE(scheduler.due_at(phase, n)) << "n=" << n;
  }
  for (std::size_t n = 10; n < 60; ++n) {
    EXPECT_EQ(scheduler.due_at(phase, n), n % 10 == phase) << "n=" << n;
  }
  EXPECT_EQ(scheduler.next_due(phase, 0), 13u);
  EXPECT_EQ(scheduler.next_due(phase, 13), 23u);
}

// The golden schedule: seed 2026, interval 64, ids kpi-0..kpi-999. The
// exact phases below and the checksum over all 1000 were captured from
// the first run and must never drift — a changed hash reshuffles every
// deployed fleet's retrain load.
TEST(RetrainScheduler, GoldenScheduleForSeed2026) {
  const core::RetrainScheduler scheduler(2026, 64);
  const std::size_t golden[10] = {10, 46, 0, 29, 51, 16, 18, 7, 46, 1};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scheduler.phase("kpi-" + std::to_string(i)), golden[i])
        << "kpi-" << i;
  }
  std::uint64_t checksum = 1469598103934665603ULL;
  std::vector<std::string> ids;
  std::vector<std::size_t> load(64, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string id = "kpi-" + std::to_string(i);
    const std::size_t phase = scheduler.phase(id);
    ++load[phase];
    checksum ^= phase;
    checksum *= 1099511628211ULL;
    ids.push_back(id);
  }
  EXPECT_EQ(checksum, 6472609295425330507ULL);
  // The stagger must actually spread load: with 1000 series over 64
  // phases (~15.6 expected per phase), no phase may carry more than 3x
  // its share.
  for (std::size_t phase = 0; phase < 64; ++phase) {
    EXPECT_LE(load[phase], 47u) << "phase " << phase;
  }
  const auto histogram = scheduler.phase_histogram(ids, 8);
  std::size_t total = 0;
  for (const std::size_t bucket : histogram) total += bucket;
  EXPECT_EQ(total, 1000u);
}

// ---- fleet engine --------------------------------------------------------

// Small context so the lite set (8 configurations here) warms up in 16
// points and a full train-classify cycle fits in 64.
core::FleetOptions small_fleet_options() {
  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{16, 112};
  options.detector_factory = core::fleet_lite_configurations;
  options.retrain_interval = 16;
  options.forest.num_trees = 8;
  options.forest.seed = 7;
  options.scheduler_seed = 2026;
  return options;
}

// Feeds `points` synthetic ticks to one series, ingesting labels (every
// 7th point anomalous) in 16-point trailing chunks; returns every
// verdict.
std::vector<core::FleetDetection> drive_series(core::FleetEngine& engine,
                                               const core::SeriesHandle& s,
                                               std::size_t points) {
  const std::uint64_t salt = 99;
  std::vector<core::FleetDetection> verdicts;
  std::vector<std::uint8_t> chunk(16);
  for (std::size_t t = 0; t < points; ++t) {
    verdicts.push_back(
        engine.feed(s, core::synthetic_fleet_value(salt, t, 16)));
    if ((t + 1) % 16 == 0) {
      const std::size_t begin = t + 1 - 16;
      for (std::size_t j = 0; j < 16; ++j) {
        chunk[j] = (begin + j) % 7 == 0 ? 1 : 0;
      }
      engine.ingest_labels(s, chunk, begin);
    }
  }
  return verdicts;
}

TEST(FleetEngine, WarmupTrainClassifyCycle) {
  core::FleetEngine engine(small_fleet_options());
  const auto s = engine.add_series("kpi-cycle");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(engine.find_series("kpi-cycle").get(), s.get());
  EXPECT_EQ(engine.forest_fingerprint(s), "");

  const auto verdicts = drive_series(engine, s, 64);
  const auto stats = engine.stats(s);
  EXPECT_EQ(stats.points_seen, 64u);
  EXPECT_EQ(stats.labeled_until, 64u);
  EXPECT_TRUE(stats.trained);
  EXPECT_GE(stats.retrains, 1u);
  EXPECT_FALSE(stats.quarantined);
  EXPECT_NE(engine.forest_fingerprint(s), "");

  // Nothing classifies before the first trained forest; everything after
  // the last retrain does, with finite scores in [0, 1].
  EXPECT_FALSE(verdicts.front().classified);
  EXPECT_TRUE(verdicts.back().classified);
  for (const auto& v : verdicts) {
    if (!v.classified) continue;
    EXPECT_GE(v.score, 0.0);
    EXPECT_LE(v.score, 1.0);
    EXPECT_EQ(v.is_anomaly, v.score >= v.cthld);
  }
}

TEST(FleetEngine, AddSeriesIsIdempotentAndRemovable) {
  core::FleetEngine engine(small_fleet_options());
  const auto a = engine.add_series("kpi-a");
  EXPECT_EQ(engine.add_series("kpi-a").get(), a.get());
  engine.add_series("kpi-b");
  EXPECT_EQ(engine.series_count(), 2u);
  EXPECT_EQ(engine.series_ids(),
            (std::vector<std::string>{"kpi-a", "kpi-b"}));
  EXPECT_TRUE(engine.remove_series("kpi-a"));
  EXPECT_FALSE(engine.remove_series("kpi-a"));
  EXPECT_EQ(engine.find_series("kpi-a"), nullptr);
  // The evicted handle still answers stats() for its holder.
  EXPECT_EQ(engine.stats(a).id, "kpi-a");
}

TEST(FleetEngine, QuarantineStopsConsumptionUntilReleased) {
  core::FleetEngine engine(small_fleet_options());
  const auto s = engine.add_series("kpi-q");
  drive_series(engine, s, 8);
  engine.set_quarantined(s, true);
  const auto verdict = engine.feed(s, 5.0);
  EXPECT_FALSE(verdict.classified);
  EXPECT_TRUE(std::isnan(verdict.score));
  EXPECT_EQ(engine.stats(s).points_seen, 8u) << "quarantined series consume nothing";
  engine.set_quarantined(s, false);
  engine.feed(s, 5.0);
  EXPECT_EQ(engine.stats(s).points_seen, 9u);
}

TEST(FleetEngine, RepeatedTrainFailureQuarantines) {
  util::FaultPlan plan;
  plan.seed = 11;
  plan.rates["forest.train"] = 1.0;
  PlanGuard guard(plan);
  const std::uint64_t quarantined_before =
      counter_value("opprentice.fleet.quarantined");

  auto options = small_fleet_options();
  options.quarantine_after = 2;
  core::FleetEngine engine(options);
  const auto s = engine.add_series("kpi-doomed");
  drive_series(engine, s, 112);

  const auto stats = engine.stats(s);
  EXPECT_FALSE(stats.trained);
  EXPECT_GE(stats.train_failures, 2u);
  EXPECT_TRUE(stats.quarantined);
  EXPECT_EQ(counter_value("opprentice.fleet.quarantined"),
            quarantined_before + 1);
}

TEST(FleetEngine, BoundedHistoryStillTrains) {
  auto options = small_fleet_options();
  options.history_capacity = 32;
  core::FleetEngine engine(options);
  const auto s = engine.add_series("kpi-bounded");
  const auto verdicts = drive_series(engine, s, 128);
  const auto stats = engine.stats(s);
  EXPECT_EQ(stats.points_seen, 128u);
  EXPECT_TRUE(stats.trained);
  EXPECT_TRUE(verdicts.back().classified);
}

// Cross-series isolation: series y and z must produce byte-identical
// outputs whether or not series x is being fault-injected, repaired, and
// quarantined next to them in the same engine.
TEST(FleetEngine, FaultedSeriesCannotPerturbNeighbors) {
  auto run = [](bool chaos_on_x) {
    core::FleetEngine engine(small_fleet_options());
    const auto x = engine.add_series("kpi-x");
    const auto y = engine.add_series("kpi-y");
    const auto z = engine.add_series("kpi-z");

    std::vector<std::uint64_t> observed;
    std::vector<std::uint8_t> chunk(16);
    std::vector<ts::RawPoint> raw;
    for (std::size_t t = 0; t < 64; ++t) {
      if (chaos_on_x) {
        // x ingests a dirty raw stream in 16-point batches (gaps /
        // duplicates / disorder via the salted ingest sites) and gets
        // quarantined halfway through.
        raw.push_back(
            ts::RawPoint{1700000000 + static_cast<std::int64_t>(t) * 600,
                         core::synthetic_fleet_value(1, t, 16)});
        if ((t + 1) % 16 == 0) {
          engine.ingest_raw(x, std::move(raw), 600,
                            ts::RepairPolicy::kFillInterpolate);
          raw.clear();
        }
        if (t == 32) engine.set_quarantined(x, true);
      }
      observed.push_back(
          bits(engine.feed(y, core::synthetic_fleet_value(2, t, 16)).score));
      observed.push_back(
          bits(engine.feed(z, core::synthetic_fleet_value(3, t, 16)).score));
      if ((t + 1) % 16 == 0) {
        const std::size_t begin = t + 1 - 16;
        for (std::size_t j = 0; j < 16; ++j) {
          chunk[j] = (begin + j) % 7 == 0 ? 1 : 0;
        }
        engine.ingest_labels(y, chunk, begin);
        engine.ingest_labels(z, chunk, begin);
      }
    }
    observed.push_back(engine.stats(y).retrains);
    observed.push_back(engine.stats(z).retrains);
    return std::make_pair(observed, engine.forest_fingerprint(y) + "|" +
                                        engine.forest_fingerprint(z));
  };

  // The quiet run: x idle, no fault plan.
  const auto quiet = run(false);

  // The chaos run: every ingest defect class fires on x's stream.
  util::FaultPlan plan;
  plan.seed = 1234;
  plan.rates["ingest.gap"] = 0.2;
  plan.rates["ingest.duplicate"] = 0.2;
  plan.rates["ingest.disorder"] = 0.2;
  plan.rates["ingest.nan"] = 0.2;
  PlanGuard guard(plan);
  const auto chaos = run(true);

  EXPECT_EQ(quiet.first, chaos.first)
      << "x's faults leaked into y/z score bytes";
  EXPECT_EQ(quiet.second, chaos.second)
      << "x's faults leaked into y/z forests";
  EXPECT_NE(quiet.second, "|") << "y/z must actually have trained";
}

TEST(FleetEngine, FeedTickMatchesSequentialFeed) {
  auto options = small_fleet_options();
  core::FleetEngine a(options);
  core::FleetEngine b(options);
  std::vector<core::SeriesHandle> series_a, series_b;
  for (int i = 0; i < 16; ++i) {
    const std::string id = "kpi-" + std::to_string(i);
    series_a.push_back(a.add_series(id));
    series_b.push_back(b.add_series(id));
  }
  std::vector<double> values(series_a.size());
  std::vector<core::FleetDetection> tick(series_a.size());
  for (std::size_t t = 0; t < 48; ++t) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = core::synthetic_fleet_value(i, t, 16);
    }
    a.feed_tick(series_a, values, tick);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto direct = b.feed(series_b[i], values[i]);
      EXPECT_EQ(bits(tick[i].score), bits(direct.score));
      EXPECT_EQ(tick[i].classified, direct.classified);
    }
  }
}

// TSan regression for the discipline opprentice_locks enforces
// statically: feed() takes the registry shard lock and the per-series
// lock one at a time, never holding one series' lock while touching
// another. Two threads working the same pair of series in opposite id
// order therefore cannot deadlock, and TSan's lock-order-inversion
// detector (enabled in the tsan-parallel CI job) must stay silent.
TEST(FleetEngine, OppositeOrderFeedsAcquireLocksOneAtATime) {
  const auto options = small_fleet_options();
  core::FleetEngine engine(options);
  // Pick two ids that land in different registry shards so the threads
  // genuinely cross two shard mutexes, not just one.
  const std::string first = "kpi-order-0";
  std::string second;
  for (int i = 1; i < 256 && second.empty(); ++i) {
    std::string candidate = "kpi-order-" + std::to_string(i);
    if (core::registry_shard_index(candidate, options.shard_count,
                                   options.scheduler_seed) !=
        core::registry_shard_index(first, options.shard_count,
                                   options.scheduler_seed)) {
      second = std::move(candidate);
    }
  }
  ASSERT_FALSE(second.empty());
  const auto a = engine.add_series(first);
  const auto b = engine.add_series(second);
  std::thread forward([&engine, &a, &b] {
    for (std::size_t t = 0; t < 64; ++t) {
      engine.feed(a, core::synthetic_fleet_value(1, t, 16));
      engine.feed(b, core::synthetic_fleet_value(2, t, 16));
    }
  });
  std::thread reverse([&engine, &a, &b] {
    for (std::size_t t = 0; t < 64; ++t) {
      engine.feed(b, core::synthetic_fleet_value(3, t, 16));
      engine.feed(a, core::synthetic_fleet_value(4, t, 16));
    }
  });
  forward.join();
  reverse.join();
  EXPECT_EQ(engine.stats(a).points_seen, 128u);
  EXPECT_EQ(engine.stats(b).points_seen, 128u);
}

}  // namespace
