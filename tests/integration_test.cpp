// Integration tests: end-to-end properties of the full pipeline on small
// synthetic KPIs — the qualitative claims of the paper's evaluation in
// miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "combiners/static_combiners.hpp"
#include "core/dataset_builder.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/kpi_presets.hpp"
#include "eval/pr_curve.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace opprentice;

// A small hourly KPI so the full 133-configuration pipeline stays fast.
core::ExperimentData small_experiment(std::uint64_t seed = 3) {
  datagen::KpiModel model;
  model.name = "it";
  model.interval_seconds = 3600;
  model.weeks = 12;
  model.base_level = 500.0;
  model.daily_amplitude = 0.4;
  model.weekly_amplitude = 0.1;
  model.noise_level = 0.03;
  model.noise_memory = 0.4;
  model.seed = seed;
  datagen::InjectionSpec spec;
  spec.anomaly_fraction = 0.07;
  spec.min_magnitude = 0.25;
  spec.max_magnitude = 0.7;
  spec.long_min_points = 4;
  spec.long_max_points = 16;
  spec.seed = seed * 10 + 1;
  return core::prepare_experiment(datagen::generate_kpi(model, spec));
}

ml::ForestOptions test_forest() {
  ml::ForestOptions f;
  f.num_trees = 24;
  return f;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = new core::ExperimentData(small_experiment());
    core::DriverOptions opt;
    opt.forest = test_forest();
    opt.preference = {0.66, 0.66};
    run_ = new core::IncrementalRunResult(core::run_weekly_incremental(
        experiment_->dataset, experiment_->points_per_week,
        experiment_->warmup, opt));
  }
  static void TearDownTestSuite() {
    delete run_;
    delete experiment_;
    run_ = nullptr;
    experiment_ = nullptr;
  }

  static core::ExperimentData* experiment_;
  static core::IncrementalRunResult* run_;
};

core::ExperimentData* PipelineTest::experiment_ = nullptr;
core::IncrementalRunResult* PipelineTest::run_ = nullptr;

// Scores/labels over the test region only.
std::pair<std::vector<double>, std::vector<std::uint8_t>> test_region(
    const core::ExperimentData& e, const core::IncrementalRunResult& run) {
  std::vector<double> scores(run.scores.begin() +
                                 static_cast<std::ptrdiff_t>(run.test_start),
                             run.scores.end());
  const auto& all_labels = e.dataset.labels();
  std::vector<std::uint8_t> labels(
      all_labels.begin() + static_cast<std::ptrdiff_t>(run.test_start),
      all_labels.end());
  return {std::move(scores), std::move(labels)};
}

TEST_F(PipelineTest, RandomForestAucprIsUseful) {
  const auto [scores, labels] = test_region(*experiment_, *run_);
  const double aucpr = eval::PrCurve(scores, labels).aucpr();
  // Far above the ~0.07 positive-rate baseline of a random scorer.
  EXPECT_GT(aucpr, 0.5);
}

TEST_F(PipelineTest, ForestBeatsStaticCombiners) {
  // §5.3.1 / Fig 9: the learned combination outranks both static
  // combination schemes, which equal-weight the many inaccurate
  // configurations.
  const auto [rf_scores, labels] = test_region(*experiment_, *run_);
  const double rf_aucpr = eval::PrCurve(rf_scores, labels).aucpr();

  const ml::Dataset train =
      experiment_->dataset.slice(experiment_->warmup, run_->test_start);
  const ml::Dataset test =
      experiment_->dataset.slice(run_->test_start,
                                 experiment_->dataset.num_rows());

  combiners::NormalizationScheme norm;
  norm.fit(train);
  combiners::MajorityVote vote;
  vote.fit(train);
  const double norm_aucpr =
      eval::PrCurve(norm.score_all(test), test.labels()).aucpr();
  const double vote_aucpr =
      eval::PrCurve(vote.score_all(test), test.labels()).aucpr();

  EXPECT_GT(rf_aucpr, norm_aucpr);
  EXPECT_GT(rf_aucpr, vote_aucpr);
}

TEST_F(PipelineTest, ForestBeatsMedianBasicConfiguration) {
  // The forest should outrank the typical (median) basic configuration by
  // a wide margin — most of the 133 are inaccurate for any given KPI.
  const auto [rf_scores, labels] = test_region(*experiment_, *run_);
  const double rf_aucpr = eval::PrCurve(rf_scores, labels).aucpr();

  std::vector<double> config_aucprs;
  for (std::size_t f = 0; f < experiment_->dataset.num_features(); ++f) {
    const auto col = experiment_->dataset.column(f);
    std::vector<double> sev(col.begin() +
                                static_cast<std::ptrdiff_t>(run_->test_start),
                            col.end());
    config_aucprs.push_back(eval::PrCurve(sev, labels).aucpr());
  }
  std::sort(config_aucprs.begin(), config_aucprs.end());
  const double median_aucpr = config_aucprs[config_aucprs.size() / 2];
  EXPECT_GT(rf_aucpr, median_aucpr + 0.2);
  // And it is at least competitive with the single best configuration.
  EXPECT_GT(rf_aucpr, config_aucprs.back() - 0.1);
}

TEST_F(PipelineTest, OracleWeeklyCthldsMostlySatisfyPreference) {
  // Fig 13's "best case": with the oracle cThld most weeks land inside
  // the preference box on this learnable synthetic KPI.
  std::size_t satisfied = 0;
  for (const auto& week : run_->weeks) {
    satisfied +=
        (week.best.recall >= 0.66 && week.best.precision >= 0.66) ? 1 : 0;
  }
  EXPECT_GE(satisfied * 2, run_->weeks.size());  // at least half
}

TEST_F(PipelineTest, PcScoreBeatsOtherMetricsAtPreference) {
  // Fig 12: count test weeks satisfying the preference under each
  // threshold-selection metric; PC-Score must win (or tie).
  const eval::AccuracyPreference pref{0.66, 0.66};
  std::size_t in_box[4] = {0, 0, 0, 0};
  const eval::ThresholdMethod methods[4] = {
      eval::ThresholdMethod::kDefault, eval::ThresholdMethod::kFScore,
      eval::ThresholdMethod::kSd11, eval::ThresholdMethod::kPcScore};
  for (const auto& week : run_->weeks) {
    std::vector<double> scores(
        run_->scores.begin() + static_cast<std::ptrdiff_t>(week.test_begin),
        run_->scores.begin() + static_cast<std::ptrdiff_t>(week.test_end));
    std::vector<std::uint8_t> labels(
        experiment_->dataset.labels().begin() +
            static_cast<std::ptrdiff_t>(week.test_begin),
        experiment_->dataset.labels().begin() +
            static_cast<std::ptrdiff_t>(week.test_end));
    const eval::PrCurve curve(scores, labels);
    for (int m = 0; m < 4; ++m) {
      const auto choice = eval::pick_threshold(curve, methods[m], pref);
      in_box[m] += pref.satisfied_by(choice.recall, choice.precision);
    }
  }
  EXPECT_GE(in_box[3], in_box[0]);
  EXPECT_GE(in_box[3], in_box[1]);
  EXPECT_GE(in_box[3], in_box[2]);
  EXPECT_GT(in_box[3], 0u);
}

TEST_F(PipelineTest, WholePipelineIsDeterministic) {
  const auto second = small_experiment();
  core::DriverOptions opt;
  opt.forest = test_forest();
  opt.preference = {0.66, 0.66};
  const auto rerun = core::run_weekly_incremental(
      second.dataset, second.points_per_week, second.warmup, opt);
  ASSERT_EQ(rerun.scores.size(), run_->scores.size());
  for (std::size_t i = rerun.test_start; i < rerun.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(rerun.scores[i], run_->scores[i]);
  }
}

TEST(IncrementalRetraining, I4AtLeastMatchesF4) {
  // Fig 11: incremental retraining (I4) outperforms the frozen first-8-
  // weeks training set (F4) when anomaly kinds drift over time. Aggregate
  // AUCPR over all 4-week windows.
  const auto experiment = small_experiment(17);
  double i4_total = 0.0, f4_total = 0.0;
  std::size_t windows = 0;
  for (std::size_t w = 0;; ++w) {
    const auto i4 = core::strategy_windows(
        core::TrainingStrategy::kI4, w, experiment.dataset.num_rows(),
        experiment.points_per_week, 8);
    if (!i4) break;
    const auto f4 = core::strategy_windows(
        core::TrainingStrategy::kF4, w, experiment.dataset.num_rows(),
        experiment.points_per_week, 8);
    const auto test = experiment.dataset.slice(i4->test_begin, i4->test_end);
    const auto i4_scores = core::run_strategy_window(
        experiment.dataset, experiment.warmup, *i4, test_forest());
    const auto f4_scores = core::run_strategy_window(
        experiment.dataset, experiment.warmup, *f4, test_forest());
    i4_total += eval::PrCurve(i4_scores, test.labels()).aucpr();
    f4_total += eval::PrCurve(f4_scores, test.labels()).aucpr();
    ++windows;
  }
  ASSERT_GT(windows, 0u);
  EXPECT_GE(i4_total, f4_total - 0.05 * static_cast<double>(windows));
}

}  // namespace
