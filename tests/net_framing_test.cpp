// Wire protocol unit tests (src/net/framing.*, DESIGN.md §5k): header
// and payload encode/decode round trips, incremental parsing across
// arbitrary byte boundaries, CRC/version rejection with length-prefix
// resynchronization, and the oversize-payload poison path.
//
// ctest label: net.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/session.hpp"

namespace {

using namespace opprentice;

std::vector<std::uint8_t> concat(
    const std::vector<std::vector<std::uint8_t>>& parts) {
  std::vector<std::uint8_t> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

TEST(Framing, HeaderRoundTrip) {
  const net::Frame frame = net::make_heartbeat(42);
  const std::vector<std::uint8_t> wire = net::encode_frame(frame);
  ASSERT_GE(wire.size(), net::kHeaderBytes + net::kCrcBytes);
  const net::FrameHeader header = net::decode_frame_header(wire.data());
  EXPECT_EQ(header.payload_len, 0u);
  EXPECT_EQ(header.version, net::kProtocolVersion);
  EXPECT_EQ(header.type, static_cast<std::uint8_t>(net::FrameType::kHeartbeat));
  EXPECT_EQ(header.seq, 42u);
}

TEST(Framing, HelloRoundTrip) {
  const net::Frame frame =
      net::make_hello(0, net::HelloPayload{"edge-agent-7", 31});
  net::HelloPayload out;
  ASSERT_TRUE(net::decode_hello(frame, &out));
  EXPECT_EQ(out.source_id, "edge-agent-7");
  EXPECT_EQ(out.resume_seq, 31u);
}

TEST(Framing, DataRoundTripPreservesPointsExactly) {
  net::DataPayload in;
  in.series_id = "pv-3";
  in.interval_seconds = 600;
  in.points = {{1700000000, 1.5},
               {1700000600, -0.25},
               {1700001200, 1e308},
               {-600, 0.0}};
  const net::Frame frame = net::make_data(9, in);
  EXPECT_EQ(frame.seq, 9u);
  net::DataPayload out;
  ASSERT_TRUE(net::decode_data(frame, &out));
  EXPECT_EQ(out.series_id, in.series_id);
  EXPECT_EQ(out.interval_seconds, in.interval_seconds);
  ASSERT_EQ(out.points.size(), in.points.size());
  for (std::size_t i = 0; i < in.points.size(); ++i) {
    EXPECT_EQ(out.points[i].timestamp, in.points[i].timestamp);
    EXPECT_EQ(out.points[i].value, in.points[i].value);  // bit-exact
  }
}

TEST(Framing, LabelAndControlRoundTrips) {
  net::LabelPayload label_in;
  label_in.series_id = "pv-3";
  label_in.begin = 1024;
  label_in.labels = {0, 1, 1, 0, 1};
  net::LabelPayload label_out;
  ASSERT_TRUE(net::decode_label(net::make_label(4, label_in), &label_out));
  EXPECT_EQ(label_out.series_id, "pv-3");
  EXPECT_EQ(label_out.begin, 1024u);
  EXPECT_EQ(label_out.labels, label_in.labels);

  net::WelcomePayload welcome;
  ASSERT_TRUE(net::decode_welcome(
      net::make_welcome(net::WelcomePayload{17}), &welcome));
  EXPECT_EQ(welcome.resume_seq, 17u);

  net::AckPayload ack;
  ASSERT_TRUE(net::decode_ack(net::make_ack(net::AckPayload{8}), &ack));
  EXPECT_EQ(ack.seq, 8u);

  net::RetryPayload retry;
  ASSERT_TRUE(net::decode_retry(
      net::make_retry(net::RetryPayload{8, 3}), &retry));
  EXPECT_EQ(retry.seq, 8u);
  EXPECT_EQ(retry.retry_after_ticks, 3u);

  net::ErrorPayload error;
  ASSERT_TRUE(net::decode_error(net::make_error("too fast"), &error));
  EXPECT_EQ(error.message, "too fast");
}

TEST(Framing, DecodeRejectsTruncatedPayload) {
  net::Frame frame = net::make_data(
      1, net::DataPayload{"s", 60, {{1700000000, 1.0}, {1700000060, 2.0}}});
  frame.payload.pop_back();  // cut the last value byte
  net::DataPayload out;
  EXPECT_FALSE(net::decode_data(frame, &out));
}

TEST(Framing, DecodeRejectsTrailingGarbage) {
  net::Frame frame = net::make_ack(net::AckPayload{5});
  frame.payload.push_back(0xFF);
  net::AckPayload out;
  EXPECT_FALSE(net::decode_ack(frame, &out));
}

TEST(Framing, DecodeRejectsWrongFrameType) {
  net::HelloPayload out;
  EXPECT_FALSE(net::decode_hello(net::make_heartbeat(1), &out));
}

TEST(Framing, ParserExtractsConcatenatedFrames) {
  const auto wire = concat({
      net::encode_frame(net::make_hello(0, net::HelloPayload{"a", 0})),
      net::encode_frame(net::make_heartbeat(1)),
      net::encode_frame(net::make_bye(2)),
  });
  net::FrameParser parser;
  parser.push_bytes(wire);
  net::Frame frame;
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.type, net::FrameType::kHello);
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.type, net::FrameType::kHeartbeat);
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.type, net::FrameType::kBye);
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_EQ(parser.frames_parsed(), 3u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_FALSE(parser.dead());
}

TEST(Framing, ParserHandlesSingleByteArrival) {
  const net::Frame original = net::make_data(
      7, net::DataPayload{"pv", 600, {{1700000000, 3.25}}});
  const std::vector<std::uint8_t> wire = net::encode_frame(original);
  net::FrameParser parser;
  net::Frame out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.push_bytes({&wire[i], 1});
    ASSERT_FALSE(parser.next(&out)) << "frame completed early at byte " << i;
  }
  parser.push_bytes({&wire.back(), 1});
  ASSERT_TRUE(parser.next(&out));
  EXPECT_EQ(out.seq, 7u);
  net::DataPayload data;
  ASSERT_TRUE(net::decode_data(out, &data));
  EXPECT_EQ(data.points.size(), 1u);
}

TEST(Framing, CorruptFrameIsSkippedAndStreamResynchronizes) {
  std::vector<std::uint8_t> corrupted =
      net::encode_frame(net::make_heartbeat(2));
  net::corrupt_frame_bytes(corrupted, 0xBEEF);
  const auto wire = concat({
      net::encode_frame(net::make_heartbeat(1)),
      corrupted,
      net::encode_frame(net::make_heartbeat(3)),
  });
  net::FrameParser parser;
  parser.push_bytes(wire);
  net::Frame frame;
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.seq, 1u);
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.seq, 3u);  // seq 2 skipped, not desynced
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_EQ(parser.corrupt_frames(), 1u);
  EXPECT_FALSE(parser.dead());
}

TEST(Framing, CorruptionNeverTouchesTheLengthPrefix) {
  for (std::uint64_t key = 0; key < 64; ++key) {
    std::vector<std::uint8_t> wire =
        net::encode_frame(net::make_heartbeat(static_cast<std::uint32_t>(key)));
    const std::vector<std::uint8_t> before(wire.begin(), wire.begin() + 4);
    net::corrupt_frame_bytes(wire, key);
    EXPECT_TRUE(std::equal(before.begin(), before.end(), wire.begin()))
        << "length prefix flipped for key " << key;
  }
}

TEST(Framing, UnknownVersionIsSkippedAndCounted) {
  net::Frame odd = net::make_heartbeat(5);
  odd.version = 99;
  const auto wire = concat({
      net::encode_frame(odd),
      net::encode_frame(net::make_heartbeat(6)),
  });
  net::FrameParser parser;
  parser.push_bytes(wire);
  net::Frame frame;
  ASSERT_TRUE(parser.next(&frame));
  EXPECT_EQ(frame.seq, 6u);
  EXPECT_EQ(parser.bad_version_frames(), 1u);
}

TEST(Framing, OversizePayloadKillsTheParser) {
  // Hand-build a header announcing a payload beyond the cap; the parser
  // must refuse to resynchronize (a hostile or broken peer).
  std::vector<std::uint8_t> wire(net::kHeaderBytes, 0);
  const std::uint32_t huge =
      static_cast<std::uint32_t>(net::kMaxPayloadBytes) + 1;
  wire[0] = static_cast<std::uint8_t>(huge & 0xFFu);
  wire[1] = static_cast<std::uint8_t>((huge >> 8) & 0xFFu);
  wire[2] = static_cast<std::uint8_t>((huge >> 16) & 0xFFu);
  wire[3] = static_cast<std::uint8_t>((huge >> 24) & 0xFFu);
  wire[4] = net::kProtocolVersion;
  wire[5] = static_cast<std::uint8_t>(net::FrameType::kData);
  net::FrameParser parser;
  parser.push_bytes(wire);
  net::Frame frame;
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_TRUE(parser.dead());
  // A dead parser stays dead even when more (valid) bytes arrive.
  parser.push_bytes(net::encode_frame(net::make_heartbeat(1)));
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_TRUE(parser.dead());
}

TEST(Framing, TypePredicatesPartitionTheProtocol) {
  const net::FrameType client[] = {
      net::FrameType::kHello, net::FrameType::kData, net::FrameType::kLabel,
      net::FrameType::kHeartbeat, net::FrameType::kBye};
  const net::FrameType server[] = {
      net::FrameType::kWelcome, net::FrameType::kAck, net::FrameType::kRetry,
      net::FrameType::kError};
  for (const auto t : client) {
    EXPECT_TRUE(net::is_client_frame(t)) << net::to_string(t);
    EXPECT_FALSE(net::is_server_frame(t)) << net::to_string(t);
  }
  for (const auto t : server) {
    EXPECT_TRUE(net::is_server_frame(t)) << net::to_string(t);
    EXPECT_FALSE(net::is_client_frame(t)) << net::to_string(t);
  }
}

TEST(Framing, Crc32MatchesKnownVector) {
  // CRC-32 (IEEE) of "123456789" is the classic check value 0xCBF43926.
  const std::string check = "123456789";
  const std::uint32_t crc = net::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

}  // namespace
