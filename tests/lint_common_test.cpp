// Unit tests for the shared linter infrastructure (tools/lint_common.*):
// report formatting pinned against golden files, SARIF escaping and
// structure, TempTree edge cases, and source-tree walking.
//
// Golden files live in tests/golden/ (path injected via
// OPPRENTICE_GOLDEN_DIR). To update after an intentional format change:
//   OPPRENTICE_REGENERATE_GOLDEN=1 ./lint_common_test
// then review the diff like any other code change.
#include "tools/lint_common.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using opprentice::tools::format_report;
using opprentice::tools::format_sarif;
using opprentice::tools::LintReport;
using opprentice::tools::list_cpp_sources;
using opprentice::tools::TempTree;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Compares `actual` against the named golden file, regenerating it when
// OPPRENTICE_REGENERATE_GOLDEN is set.
void expect_matches_golden(const std::string& actual, const char* name) {
  const std::filesystem::path golden =
      std::filesystem::path(OPPRENTICE_GOLDEN_DIR) / name;
  if (std::getenv("OPPRENTICE_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(golden);
    out << actual;
    return;
  }
  ASSERT_TRUE(std::filesystem::exists(golden))
      << "missing golden file " << golden
      << " (run with OPPRENTICE_REGENERATE_GOLDEN=1 to create)";
  EXPECT_EQ(actual, read_file(golden)) << "output diverged from " << name;
}

// The fixed report every formatting test renders: one anchored issue, one
// unanchored issue, one repeated rule (exercises SARIF rule dedup).
LintReport sample_report() {
  LintReport report;
  report.checks_run = 5;
  report.fail_at("alloc", "sized construction of 'vector v' on the hot path",
                 "src/core/pipeline.cpp", 42);
  report.fail("min-roots", "expected at least 8 hot roots, found 2");
  report.fail_at("alloc", "call to heap-allocating 'make_unique'",
                 "src/core/pipeline.cpp", 57);
  return report;
}

// ---- format_report ----

TEST(FormatReport, CleanReportIsOneLine) {
  LintReport report;
  report.checks_run = 3;
  EXPECT_EQ(format_report(report, false), "OK: 3 checks, 0 issues\n");
}

TEST(FormatReport, SingularIssueCount) {
  LintReport report;
  report.checks_run = 1;
  report.fail("rule", "message");
  const std::string text = format_report(report, false);
  EXPECT_NE(text.find("1 issue\n"), std::string::npos);
}

TEST(FormatReport, FailingReportMatchesGolden) {
  expect_matches_golden(format_report(sample_report(), false),
                        "report_failing.txt");
}

TEST(FormatReport, VerboseAndNonVerboseAgreeWhenFailing) {
  // Issues print whenever present; --verbose only changes clean runs.
  EXPECT_EQ(format_report(sample_report(), false),
            format_report(sample_report(), true));
}

// ---- format_sarif ----

TEST(FormatSarif, FailingReportMatchesGolden) {
  expect_matches_golden(
      format_sarif(sample_report(), "opprentice_hotpath", "src/"),
      "report_failing.sarif");
}

TEST(FormatSarif, EmptyReportMatchesGolden) {
  LintReport report;
  report.checks_run = 7;
  expect_matches_golden(format_sarif(report, "opprentice_check"),
                        "report_empty.sarif");
}

TEST(FormatSarif, StripPrefixMakesUrisRepoRelative) {
  const std::string sarif =
      format_sarif(sample_report(), "tool", "src/core/");
  EXPECT_NE(sarif.find("\"uri\": \"pipeline.cpp\""), std::string::npos);
}

TEST(FormatSarif, NonMatchingPrefixLeavesUriIntact) {
  const std::string sarif = format_sarif(sample_report(), "tool", "bench/");
  EXPECT_NE(sarif.find("\"uri\": \"src/core/pipeline.cpp\""),
            std::string::npos);
}

TEST(FormatSarif, RuleTableDeduplicatesInFirstAppearanceOrder) {
  const std::string sarif = format_sarif(sample_report(), "tool");
  const std::size_t first = sarif.find("{\"id\": \"alloc\"}");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(sarif.find("{\"id\": \"alloc\"}", first + 1), std::string::npos);
  EXPECT_LT(first, sarif.find("{\"id\": \"min-roots\"}"));
}

TEST(FormatSarif, EscapesQuotesBackslashesAndControlChars) {
  LintReport report;
  report.fail("rule", "quote \" backslash \\ newline \n tab \t bell \x07");
  const std::string sarif = format_sarif(report, "tool");
  EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n tab \\t "
                       "bell \\u0007"),
            std::string::npos);
}

TEST(FormatSarif, ZeroLineIsClampedToOne) {
  LintReport report;
  report.fail_at("rule", "message", "a.cpp", 0);
  const std::string sarif = format_sarif(report, "tool");
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

// ---- TempTree ----

TEST(TempTree, PlantCreatesNestedDirectories) {
  const TempTree tree("lint-common-test");
  const auto planted =
      tree.plant("a/b/c/deep.cpp", "int deep() { return 1; }\n");
  EXPECT_TRUE(std::filesystem::exists(planted));
  EXPECT_EQ(read_file(planted), "int deep() { return 1; }\n");
}

TEST(TempTree, PlantAcceptsEmptyFiles) {
  const TempTree tree("lint-common-test");
  const auto planted = tree.plant("empty.hpp", "");
  ASSERT_TRUE(std::filesystem::exists(planted));
  EXPECT_EQ(std::filesystem::file_size(planted), 0u);
  // Empty sources must also survive the walk + scan path.
  LintReport walk;
  const auto files = list_cpp_sources({tree.root().string()}, &walk);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_TRUE(walk.ok());
}

TEST(TempTree, ConcurrentInstancesGetDistinctRoots) {
  const TempTree a("lint-common-test");
  const TempTree b("lint-common-test");
  EXPECT_NE(a.root(), b.root());
}

TEST(TempTree, DestructorRemovesEverything) {
  std::filesystem::path root;
  {
    const TempTree tree("lint-common-test");
    root = tree.root();
    tree.plant("x/y.cpp", "int y;\n");
    ASSERT_TRUE(std::filesystem::exists(root));
  }
  EXPECT_FALSE(std::filesystem::exists(root));
}

TEST(TempTree, OverwritingAPlantedFileKeepsLatestContent) {
  const TempTree tree("lint-common-test");
  tree.plant("f.cpp", "int old_version;\n");
  const auto planted = tree.plant("f.cpp", "int new_version;\n");
  EXPECT_EQ(read_file(planted), "int new_version;\n");
}

// ---- list_cpp_sources ----

TEST(ListCppSources, SortedAndFilteredWalk) {
  const TempTree tree("lint-common-test");
  tree.plant("src/b.cpp", "int b;\n");
  tree.plant("src/a.hpp", "int a;\n");
  tree.plant("src/notes.md", "not C++\n");
  tree.plant("src/build/generated.cpp", "int skip_me;\n");
  LintReport report;
  const auto files = list_cpp_sources({(tree.root() / "src").string()},
                                      &report);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_TRUE(files[0].string().ends_with("a.hpp"));
  EXPECT_TRUE(files[1].string().ends_with("b.cpp"));
  EXPECT_TRUE(report.ok());
}

TEST(ListCppSources, MissingRootIsReportedNotFatal) {
  LintReport report;
  const auto files = list_cpp_sources({"/nonexistent/opprentice"}, &report);
  EXPECT_TRUE(files.empty());
  EXPECT_FALSE(report.ok());
}

}  // namespace
