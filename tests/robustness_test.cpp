// Robustness & property tests:
//  - §6 "Dirty data": (a) recent-window detectors recover quickly from
//    missing/corrupt points, (b) MAD variants beat mean/std variants under
//    contamination, (c) the forest survives a few contaminated features.
//  - ROC curves and footnote 3's PR-vs-ROC imbalance claim.
//  - Invariance properties: AUCPR under monotone score transforms, the
//    forest under per-feature monotone transforms (a consequence of
//    quantile binning), confusion-count identities.
//  - Failure injection: constant series, all-missing series, single-class
//    training, NaNs at prediction time.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "detectors/basic_detectors.hpp"
#include "detectors/registry.hpp"
#include "detectors/seasonal_detectors.hpp"
#include "eval/pr_curve.hpp"
#include "eval/roc_curve.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

detectors::SeriesContext small_ctx() {
  return {24, 168};
}

std::vector<double> periodic(std::size_t n, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 100.0 +
            30.0 * std::sin(2 * 3.14159265 *
                            static_cast<double>(i % 24) / 24.0) +
            rng.normal(0.0, 1.0);
  }
  return xs;
}

// ---- §6(a): recovery from dirty data ----

TEST(DirtyData, RecentWindowDetectorsRecoverQuickly) {
  // After a block of missing data, severity estimates must return to the
  // clean baseline within roughly one window length.
  detectors::WeightedMaDetector clean(10), dirty(10);
  const auto xs = periodic(500);
  std::vector<double> clean_sev, dirty_sev;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    clean_sev.push_back(clean.feed(xs[i]));
    const bool missing = i >= 200 && i < 215;
    dirty_sev.push_back(dirty.feed(missing ? kNaN : xs[i]));
  }
  // 30 points after the gap (3 window lengths), severities agree again.
  for (std::size_t i = 260; i < 300; ++i) {
    EXPECT_NEAR(dirty_sev[i], clean_sev[i], 2.0) << "at " << i;
  }
}

TEST(DirtyData, AllDetectorsSurviveLongMissingBlock) {
  for (auto& d : detectors::standard_configurations(small_ctx())) {
    const auto xs = periodic(3 * 168);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      // A two-day outage in week 2.
      const std::size_t outage_begin = 168 * 3 / 2;
      const bool missing = i >= outage_begin && i < outage_begin + 48;
      const double sev = d->feed(missing ? kNaN : xs[i]);
      EXPECT_TRUE(std::isfinite(sev)) << d->name() << " at " << i;
    }
  }
}

// ---- §6(b): MAD variants are more robust ----

TEST(DirtyData, MadVariantMoreRobustToContamination) {
  // Corrupt one historical day with extreme values. The mean/std baseline
  // absorbs the garbage into an enormous sigma, squashing all later
  // severities — it would MISS a genuine anomaly. The median/MAD variant
  // ignores the outliers and still flags the anomaly loudly.
  const auto ctx = small_ctx();
  detectors::HistoricalAverageDetector mean_based(3, ctx);
  detectors::HistoricalMadDetector mad_based(3, ctx);
  auto xs = periodic(6 * 168);
  for (std::size_t i = 3 * 168; i < 3 * 168 + 24; ++i) {
    xs[i] = 100000.0;  // a day of garbage (e.g. a broken exporter)
  }
  const std::size_t probe = 4 * 168 + 12;
  xs[probe] *= 1.5;  // a genuine anomaly after the dirty day
  double sev_mean = 0.0, sev_mad = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double a = mean_based.feed(xs[i]);
    const double b = mad_based.feed(xs[i]);
    if (i == probe) {
      sev_mean = a;
      sev_mad = b;
    }
  }
  EXPECT_GT(sev_mad, 5.0);             // clearly flagged
  EXPECT_LT(sev_mean, sev_mad / 3.0);  // suppressed by the dirty sigma
}

// ---- §6(c): the ensemble survives contaminated features ----

TEST(DirtyData, ForestSurvivesContaminatedFeatureColumns) {
  util::Rng rng(3);
  const std::size_t n = 3000;
  std::vector<std::vector<double>> cols(10);
  std::vector<std::uint8_t> labels(n);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < 10; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.1;
    labels[i] = anomaly;
    // Features 0-6 carry signal; 7-9 will be contaminated.
    for (std::size_t f = 0; f < 7; ++f) {
      cols[f].push_back(rng.normal(anomaly ? 3.0 : 0.0, 1.0));
    }
    for (std::size_t f = 7; f < 10; ++f) {
      cols[f].push_back(rng.normal(anomaly ? 3.0 : 0.0, 1.0));
    }
  }
  ml::Dataset clean(names, cols, labels);
  // Contaminate: three columns become garbage in train AND test.
  for (std::size_t f = 7; f < 10; ++f) {
    for (auto& v : cols[f]) v = rng.uniform(-1e6, 1e6);
  }
  ml::Dataset contaminated(names, cols, labels);

  ml::ForestOptions opts;
  opts.num_trees = 16;
  ml::RandomForest on_clean(opts), on_dirty(opts);
  on_clean.train(clean.slice(0, 2000));
  on_dirty.train(contaminated.slice(0, 2000));

  const auto test_clean = clean.slice(2000, n);
  const auto test_dirty = contaminated.slice(2000, n);
  const double aucpr_clean =
      eval::PrCurve(on_clean.score_all(test_clean), test_clean.labels())
          .aucpr();
  const double aucpr_dirty =
      eval::PrCurve(on_dirty.score_all(test_dirty), test_dirty.labels())
          .aucpr();
  EXPECT_GT(aucpr_dirty, aucpr_clean - 0.1);  // barely hurt
}

// ---- ROC curves ----

TEST(Roc, PerfectRankingAurocIsOne) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> truth{1, 1, 0, 0};
  EXPECT_NEAR(eval::RocCurve(scores, truth).auroc(), 1.0, 1e-9);
}

TEST(Roc, RandomScoresAurocNearHalf) {
  util::Rng rng(7);
  const std::size_t n = 20000;
  std::vector<double> scores(n);
  std::vector<std::uint8_t> truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.uniform();
    truth[i] = rng.uniform() < 0.2;
  }
  EXPECT_NEAR(eval::RocCurve(scores, truth).auroc(), 0.5, 0.02);
}

TEST(Roc, SingleClassIsEmpty) {
  const std::vector<double> scores{0.9, 0.1};
  EXPECT_TRUE(
      eval::RocCurve(scores, std::vector<std::uint8_t>{1, 1}).empty());
  EXPECT_TRUE(
      eval::RocCurve(scores, std::vector<std::uint8_t>{0, 0}).empty());
}

TEST(Roc, TprMatchesRecall) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<std::uint8_t> truth{1, 0, 1, 1, 0};
  const eval::RocCurve roc(scores, truth);
  const eval::PrCurve pr(scores, truth);
  ASSERT_EQ(roc.points().size(), pr.points().size());
  for (std::size_t i = 0; i < roc.points().size(); ++i) {
    EXPECT_NEAR(roc.points()[i].true_positive_rate, pr.points()[i].recall,
                1e-12);
  }
}

TEST(Roc, Footnote3PrExposesImbalanceRocHides) {
  // Footnote 3: with heavy imbalance, ROC looks nearly perfect while the
  // PR curve exposes the flood of false alarms. Build a detector that
  // ranks all positives above 99% of negatives — but the 1% of negatives
  // it confuses outnumber the positives 10:1.
  util::Rng rng(11);
  const std::size_t n = 100000;
  std::vector<double> scores;
  std::vector<std::uint8_t> truth;
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.001;  // 0.1% positives
    truth.push_back(anomaly);
    if (anomaly) {
      scores.push_back(rng.uniform(0.8, 1.0));
    } else if (rng.uniform() < 0.01) {
      scores.push_back(rng.uniform(0.8, 1.0));  // confused negatives
    } else {
      scores.push_back(rng.uniform(0.0, 0.5));
    }
  }
  const double auroc = eval::RocCurve(scores, truth).auroc();
  const double aucpr = eval::PrCurve(scores, truth).aucpr();
  EXPECT_GT(auroc, 0.95);  // looks excellent
  EXPECT_LT(aucpr, 0.3);   // is actually drowning in false alarms
}

// ---- invariance properties ----

TEST(Invariance, AucprInvariantUnderMonotoneScoreTransform) {
  util::Rng rng(13);
  std::vector<double> scores(5000);
  std::vector<std::uint8_t> truth(5000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    truth[i] = rng.uniform() < 0.1;
    scores[i] = rng.normal(truth[i] != 0 ? 1.0 : 0.0, 1.0);
  }
  const double base = eval::PrCurve(scores, truth).aucpr();
  std::vector<double> transformed(scores);
  for (double& s : transformed) s = std::exp(0.5 * s) + 3.0;
  EXPECT_NEAR(eval::PrCurve(transformed, truth).aucpr(), base, 1e-12);
}

TEST(Invariance, ForestInvariantUnderMonotoneFeatureTransform) {
  // Quantile binning only consumes the order of feature values, so a
  // strictly monotone per-feature transform applied to train AND test
  // leaves the forest's scores bit-identical (same seed).
  util::Rng rng(17);
  const std::size_t n = 2000;
  std::vector<std::vector<double>> cols(3);
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.uniform() < 0.2;
    for (auto& col : cols) {
      col.push_back(rng.normal(labels[i] != 0 ? 2.0 : 0.0, 1.0));
    }
  }
  const ml::Dataset original({"a", "b", "c"}, cols, labels);
  for (auto& col : cols) {
    for (double& v : col) v = std::atan(v) * 100.0 - 7.0;  // monotone
  }
  const ml::Dataset transformed({"a", "b", "c"}, cols, labels);

  ml::ForestOptions opts;
  opts.num_trees = 8;
  opts.seed = 99;
  ml::RandomForest f1(opts), f2(opts);
  f1.train(original.slice(0, 1500));
  f2.train(transformed.slice(0, 1500));
  for (std::size_t i = 1500; i < n; ++i) {
    EXPECT_DOUBLE_EQ(f1.score(original.row(i)), f2.score(transformed.row(i)))
        << "row " << i;
  }
}

TEST(Invariance, ConfusionCountsPartitionTheData) {
  util::Rng rng(19);
  std::vector<std::uint8_t> pred(1000), truth(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    pred[i] = rng.uniform() < 0.3;
    truth[i] = rng.uniform() < 0.2;
  }
  const auto c = eval::confusion(pred, truth);
  EXPECT_EQ(c.true_positives + c.false_positives + c.false_negatives +
                c.true_negatives,
            1000u);
  std::size_t actual_pos = 0;
  for (auto t : truth) actual_pos += t;
  EXPECT_EQ(c.actual_positives(), actual_pos);
}

TEST(Invariance, PrCurveFinalPointHasFullRecall) {
  util::Rng rng(23);
  std::vector<double> scores(500);
  std::vector<std::uint8_t> truth(500);
  for (std::size_t i = 0; i < 500; ++i) {
    scores[i] = rng.uniform();
    truth[i] = rng.uniform() < 0.3;
  }
  const eval::PrCurve curve(scores, truth);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.points().back().recall, 1.0);
}

// ---- failure injection ----

TEST(FailureInjection, DetectorsOnConstantSeries) {
  for (auto& d : detectors::standard_configurations(small_ctx())) {
    for (int i = 0; i < 2 * 168; ++i) {
      const double sev = d->feed(42.0);
      EXPECT_TRUE(std::isfinite(sev)) << d->name();
      EXPECT_GE(sev, 0.0) << d->name();
    }
  }
}

TEST(FailureInjection, DetectorsOnAllMissingSeries) {
  for (auto& d : detectors::standard_configurations(small_ctx())) {
    for (int i = 0; i < 400; ++i) {
      EXPECT_EQ(d->feed(kNaN), 0.0) << d->name();
    }
  }
}

TEST(FailureInjection, ForestOnSingleClassTrainsAndScoresZero) {
  // All-normal training data: every tree is a pure "normal" leaf.
  ml::Dataset d({"f"}, {{1, 2, 3, 4, 5, 6, 7, 8}},
                std::vector<std::uint8_t>(8, 0));
  ml::RandomForest forest;
  forest.train(d);
  EXPECT_DOUBLE_EQ(forest.score(std::vector<double>{100.0}), 0.0);
}

TEST(FailureInjection, ForestScoresRowWithNaNFeature) {
  util::Rng rng(29);
  std::vector<std::vector<double>> cols(2);
  std::vector<std::uint8_t> labels(500);
  for (std::size_t i = 0; i < 500; ++i) {
    labels[i] = rng.uniform() < 0.3;
    cols[0].push_back(rng.normal(labels[i] != 0 ? 3.0 : 0.0, 1.0));
    cols[1].push_back(rng.normal());
  }
  ml::RandomForest forest;
  forest.train(ml::Dataset({"a", "b"}, cols, labels));
  // NaN compares false against any threshold: the walk goes right; the
  // score must still be a valid probability.
  const double s = forest.score(std::vector<double>{kNaN, 0.0});
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(FailureInjection, TinyTrainingSets) {
  ml::Dataset d({"f"}, {{1.0, 10.0}}, {0, 1});
  ml::RandomForest forest;
  forest.train(d);  // must not crash
  EXPECT_GE(forest.score(std::vector<double>{5.0}), 0.0);
}

}  // namespace
