// Serial ≡ parallel equivalence suite (the determinism contract of
// DESIGN.md "Parallel execution"): for any thread count, feature
// extraction, random-forest training/scoring, and per-week cThld
// selection must produce bit-identical results. Thread counts 1 (exact
// serial fallback), 2, and 8 (oversubscribed on this host) are swept so
// scheduling differences get a real chance to surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/cthld.hpp"
#include "core/dataset_builder.hpp"
#include "core/fleet_engine.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/kpi_presets.hpp"
#include "detectors/feature_extractor.hpp"
#include "detectors/registry.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "obs/flight_recorder.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace opprentice;

constexpr std::size_t kThreadSweep[] = {1, 2, 8};

// Bit pattern of a double; "bit-identical" must hold even for NaN slots
// (weeks whose training window had no anomalies score as NaN).
std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Runs fn under each swept pool size and returns the collected results;
// the pool is restored to the hardware default afterwards.
template <typename Fn>
auto sweep(Fn&& fn) {
  std::vector<decltype(fn())> results;
  for (std::size_t threads : kThreadSweep) {
    util::set_global_threads(threads);
    results.push_back(fn());
  }
  util::set_global_threads(0);
  return results;
}

// Short PV / SRT preset series (fixed seeds, truncated to keep the full
// 133-configuration extraction affordable in a unit test).
ts::TimeSeries preset_series(const datagen::KpiPreset& preset_in,
                             std::size_t weeks) {
  datagen::KpiPreset preset = preset_in;
  preset.model.weeks = weeks;
  return datagen::generate_kpi(preset.model, preset.injection).series;
}

TEST(ParallelEquivalence, ExtractionColumnsBitIdentical) {
  for (const auto& preset :
       {datagen::pv_preset(datagen::Scale::kSmall),
        datagen::srt_preset(datagen::Scale::kSmall)}) {
    const ts::TimeSeries series = preset_series(preset, 3);
    const auto runs = sweep([&] {
      return detectors::extract_standard_features(series);
    });
    const detectors::FeatureMatrix& serial = runs[0];
    ASSERT_EQ(serial.num_features(), 133u);
    for (std::size_t r = 1; r < runs.size(); ++r) {
      ASSERT_EQ(runs[r].feature_names, serial.feature_names);
      ASSERT_EQ(runs[r].max_warmup, serial.max_warmup);
      for (std::size_t f = 0; f < serial.num_features(); ++f) {
        // operator== on the double vectors is an exact bit comparison
        // (no NaNs survive extraction: severities are sanitized).
        ASSERT_EQ(runs[r].columns[f], serial.columns[f])
            << preset.model.name << " threads=" << kThreadSweep[r]
            << " column " << serial.feature_names[f];
      }
    }
  }
}

// Installs a fault plan for one test and clears it on scope exit.
struct PlanGuard {
  explicit PlanGuard(const util::FaultPlan& plan) {
    util::set_fault_plan(plan);
  }
  ~PlanGuard() { util::clear_fault_plan(); }
};

TEST(ParallelEquivalence, FaultInjectedExtractionAndQuarantineBitIdentical) {
  // Detector faults fire from a pure (seed, site, config x point) hash,
  // so the scrubbed columns AND the quarantine decisions must match at
  // every thread count (DESIGN.md §5f extends the §5d contract).
  util::FaultPlan plan;
  plan.seed = 20260806;
  plan.rates["detector.throw"] = 0.04;
  plan.rates["detector.nan"] = 0.04;
  const PlanGuard guard(plan);

  const ts::TimeSeries series =
      preset_series(datagen::pv_preset(datagen::Scale::kSmall), 3);
  const auto runs = sweep([&] {
    return detectors::extract_standard_features(series);
  });
  const detectors::FeatureMatrix& serial = runs[0];
  ASSERT_EQ(serial.num_features(), 133u);
  // The plan's rates are high enough that some configuration hits three
  // consecutive failures, and low enough that extraction still serves.
  EXPECT_GT(serial.num_quarantined(), 0u);
  EXPECT_LT(serial.num_quarantined(), serial.num_features());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].quarantined, serial.quarantined)
        << "quarantine decisions drifted at threads=" << kThreadSweep[r];
    for (std::size_t f = 0; f < serial.num_features(); ++f) {
      ASSERT_EQ(runs[r].columns[f], serial.columns[f])
          << "threads=" << kThreadSweep[r] << " column "
          << serial.feature_names[f];
    }
  }
}

// Short synthetic series for the flight-recorder chaos scenario: small
// enough that the fault-fire events stay well under the recorder's
// capacity (overflow would make the retained subset depend on arrival
// order), busy enough that quarantines actually trip.
ts::TimeSeries chaos_series(std::size_t n) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 100.0 + 10.0 * static_cast<double>(i % 24) +
                static_cast<double>(i % 7);
  }
  return ts::TimeSeries("chaos", 0, 600, std::move(values));
}

// One extraction pass under `threads` with a fresh flight recorder;
// returns the JSON dump (flight_recorder.hpp's deterministic sorted
// order).
std::string flight_dump_for(const ts::TimeSeries& series,
                            std::size_t threads) {
  util::set_global_threads(threads);
  obs::FlightRecorder::instance().clear();
  (void)detectors::extract_standard_features(series);
  std::string dump = obs::FlightRecorder::instance().dump_json();
  util::set_global_threads(0);
  return dump;
}

TEST(ParallelEquivalence, FlightRecorderZeroFaultDumpBitIdentical) {
  // Without a fault plan nothing notable happens, and the dump must say
  // exactly that — identically at every thread count and across reruns.
  const ts::TimeSeries series = chaos_series(400);
  const std::string serial = flight_dump_for(series, 1);
  EXPECT_NE(serial.find("\"events\": []"), std::string::npos);
  for (std::size_t threads : kThreadSweep) {
    EXPECT_EQ(flight_dump_for(series, threads), serial)
        << "threads=" << threads;
    EXPECT_EQ(flight_dump_for(series, threads), serial)
        << "rerun threads=" << threads;
  }
}

TEST(ParallelEquivalence, FlightRecorderSeededFaultDumpBitIdentical) {
  // Chaos scenario: detector faults fire from the pure (seed, site, key)
  // hash and every fire (plus every quarantine transition) records a
  // flight event. The sorted dump must be byte-identical at any thread
  // count and across reruns (the §5h extension of the §5d contract).
  util::FaultPlan plan;
  plan.seed = 20260808;
  plan.rates["detector.throw"] = 0.06;
  plan.rates["detector.nan"] = 0.06;
  const PlanGuard guard(plan);

  const ts::TimeSeries series = chaos_series(200);
  const std::string serial = flight_dump_for(series, 1);
  // The scenario must exercise the recorder without overflowing it: an
  // overflowed ring retains an arrival-ordered subset, which is exactly
  // what this test must not depend on.
  EXPECT_EQ(obs::FlightRecorder::instance().dropped_count(), 0u);
  EXPECT_NE(serial.find("\"fault\""), std::string::npos);
  EXPECT_NE(serial.find("\"quarantine\""), std::string::npos);
  for (std::size_t threads : kThreadSweep) {
    EXPECT_EQ(flight_dump_for(series, threads), serial)
        << "threads=" << threads;
    EXPECT_EQ(flight_dump_for(series, threads), serial)
        << "rerun threads=" << threads;
  }
}

class ForestEquivalenceTest : public ::testing::Test {
 protected:
  // One small experiment shared by the forest and cThld cases: the SRT
  // preset truncated to 6 weeks (hourly bins keep 133-feature extraction
  // cheap).
  static void SetUpTestSuite() {
    util::set_global_threads(1);  // build the fixture serially
    datagen::KpiPreset preset = datagen::srt_preset(datagen::Scale::kSmall);
    preset.model.weeks = 6;
    data_ = new core::ExperimentData(core::prepare_experiment(
        datagen::generate_kpi(preset.model, preset.injection)));
    util::set_global_threads(0);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const core::ExperimentData* data_;
};

const core::ExperimentData* ForestEquivalenceTest::data_ = nullptr;

TEST_F(ForestEquivalenceTest, TrainedForestAndPredictionsBitIdentical) {
  const ml::Dataset train = data_->dataset.slice(
      data_->warmup, data_->dataset.num_rows());
  ASSERT_GT(train.positives(), 0u);
  ml::ForestOptions opts;
  opts.num_trees = 24;
  opts.seed = 42;

  struct ForestRun {
    std::string serialized;
    std::vector<double> scores;
  };
  const auto runs = sweep([&] {
    ml::RandomForest forest(opts);
    forest.train(train);
    std::ostringstream out;
    ml::save_forest(out, forest, train.feature_names());
    return ForestRun{out.str(), forest.score_all(train)};
  });
  for (std::size_t r = 1; r < runs.size(); ++r) {
    // The serialized form pins every node of every tree; equality means
    // the grown forests are structurally identical, not merely close.
    ASSERT_EQ(runs[r].serialized, runs[0].serialized)
        << "threads=" << kThreadSweep[r];
    ASSERT_EQ(runs[r].scores, runs[0].scores)
        << "threads=" << kThreadSweep[r];
  }
}

TEST_F(ForestEquivalenceTest, FiveFoldCthldPickBitIdentical) {
  const ml::Dataset train = data_->dataset.slice(
      data_->warmup, data_->dataset.num_rows());
  ml::ForestOptions opts;
  opts.num_trees = 12;
  opts.seed = 7;
  const auto picks = sweep([&] {
    return core::five_fold_cthld(train, {0.66, 0.66}, opts);
  });
  for (std::size_t r = 1; r < picks.size(); ++r) {
    ASSERT_EQ(picks[r], picks[0]) << "threads=" << kThreadSweep[r];
  }
}

TEST_F(ForestEquivalenceTest, WeeklyDriverRunBitIdentical) {
  core::DriverOptions opt;
  opt.initial_weeks = 3;
  opt.forest.num_trees = 12;
  opt.forest.seed = 42;
  opt.preference = {0.66, 0.66};

  const auto runs = sweep([&] {
    return core::run_weekly_incremental(data_->dataset,
                                        data_->points_per_week,
                                        data_->warmup, opt);
  });
  const core::IncrementalRunResult& serial = runs[0];
  ASSERT_FALSE(serial.weeks.empty());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].test_start, serial.test_start);
    ASSERT_EQ(runs[r].weeks.size(), serial.weeks.size());
    for (std::size_t w = 0; w < serial.weeks.size(); ++w) {
      // Per-week cThld picks: the §4.5 output that must not drift.
      ASSERT_EQ(runs[r].weeks[w].best.cthld, serial.weeks[w].best.cthld)
          << "threads=" << kThreadSweep[r] << " week " << w;
      ASSERT_EQ(runs[r].weeks[w].best.recall, serial.weeks[w].best.recall);
      ASSERT_EQ(runs[r].weeks[w].best.precision,
                serial.weeks[w].best.precision);
    }
    ASSERT_EQ(runs[r].scores.size(), serial.scores.size());
    for (std::size_t i = 0; i < serial.scores.size(); ++i) {
      ASSERT_EQ(bits(runs[r].scores[i]), bits(serial.scores[i]))
          << "threads=" << kThreadSweep[r] << " row " << i;
    }
  }
}

TEST_F(ForestEquivalenceTest, FiveFoldWeeklyCthldsBitIdentical) {
  core::DriverOptions opt;
  opt.initial_weeks = 3;
  opt.forest.num_trees = 12;
  opt.forest.seed = 42;
  opt.preference = {0.66, 0.66};
  const auto runs = sweep([&] {
    return core::five_fold_weekly_cthlds(data_->dataset,
                                         data_->points_per_week,
                                         data_->warmup, opt);
  });
  ASSERT_FALSE(runs[0].empty());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r], runs[0]) << "threads=" << kThreadSweep[r];
  }
}

// ---- fleet determinism sweep (DESIGN.md §5i) -----------------------------

// Everything a fleet run can output, flattened to comparable bytes: every
// verdict's score bits tick by tick, every trained forest's serialized
// text in id order, and the flight-recorder dump.
struct FleetRunOutput {
  std::vector<std::uint64_t> score_bits;
  std::string forests;
  std::string flight;
  std::uint64_t dropped = 0;

  bool operator==(const FleetRunOutput&) const = default;
};

// Drives a 200-series fleet for 64 synchronized ticks under `threads`
// with a fresh flight recorder: small 16-point "days" so the lite set
// warms up, labels (every 7th point anomalous) trail in 16-point chunks,
// and the 16-point retrain interval gives every series a staggered
// mid-run retrain.
FleetRunOutput fleet_run(std::size_t threads) {
  util::set_global_threads(threads);
  obs::FlightRecorder::instance().clear();

  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{16, 112};
  options.detector_factory = core::fleet_lite_configurations;
  options.retrain_interval = 16;
  options.forest.num_trees = 8;
  options.forest.seed = 7;
  options.scheduler_seed = 2026;
  core::FleetEngine engine(std::move(options));

  constexpr std::size_t kSeries = 200;
  constexpr std::size_t kPoints = 64;
  std::vector<core::SeriesHandle> handles;
  std::vector<std::uint64_t> salts;
  for (std::size_t i = 0; i < kSeries; ++i) {
    const std::string id = "fleet-" + std::to_string(i);
    handles.push_back(engine.add_series(id));
    salts.push_back(util::stable_id_hash(id));
  }

  FleetRunOutput out;
  std::vector<double> values(kSeries);
  std::vector<core::FleetDetection> verdicts(kSeries);
  std::vector<std::uint8_t> chunk(16);
  for (std::size_t t = 0; t < kPoints; ++t) {
    for (std::size_t i = 0; i < kSeries; ++i) {
      values[i] = core::synthetic_fleet_value(salts[i], t, 16);
    }
    engine.feed_tick(handles, values, verdicts);
    for (const auto& v : verdicts) out.score_bits.push_back(bits(v.score));
    if ((t + 1) % 16 == 0) {
      const std::size_t begin = t + 1 - 16;
      for (std::size_t j = 0; j < 16; ++j) {
        chunk[j] = (begin + j) % 7 == 0 ? 1 : 0;
      }
      for (const auto& handle : handles) {
        engine.ingest_labels(handle, chunk, begin);
      }
    }
  }
  for (const auto& handle : handles) {
    out.forests += engine.forest_fingerprint(handle);
    out.forests += '\n';
  }
  out.flight = obs::FlightRecorder::instance().dump_json();
  out.dropped = obs::FlightRecorder::instance().dropped_count();
  util::set_global_threads(0);
  return out;
}

TEST(ParallelEquivalence, FleetSweepZeroFaultBitIdentical) {
  const FleetRunOutput serial = fleet_run(1);
  EXPECT_EQ(serial.dropped, 0u);
  EXPECT_NE(serial.forests.find("forest"), std::string::npos)
      << "fleet must actually train";
  // Successful retrains flight-record; the dump must carry them.
  EXPECT_NE(serial.flight.find("\"retrain\""), std::string::npos);
  for (std::size_t threads : kThreadSweep) {
    const FleetRunOutput run = fleet_run(threads);
    EXPECT_EQ(run.dropped, 0u) << "threads=" << threads;
    EXPECT_TRUE(run == serial) << "threads=" << threads;
  }
}

TEST(ParallelEquivalence, FleetSweepSeededChaosBitIdentical) {
  // Seeded chaos across the fleet: detector throw/NaN faults fire inside
  // individual series' extractors and some staggered retrains fail. All
  // fault keys are salted per series, so the full output — scores,
  // forests, flight dump — must stay a pure function of the plan,
  // byte-identical at any thread count. Rates are sized to keep the
  // event volume well under the recorder's capacity (overflow would make
  // the retained subset arrival-ordered).
  util::FaultPlan plan;
  plan.seed = 20260808;
  plan.rates["detector.throw"] = 0.002;
  plan.rates["detector.nan"] = 0.002;
  plan.rates["forest.train"] = 0.05;
  const PlanGuard guard(plan);

  const FleetRunOutput serial = fleet_run(1);
  EXPECT_EQ(serial.dropped, 0u);
  EXPECT_NE(serial.flight.find("\"fault\""), std::string::npos)
      << "the chaos plan must actually fire";
  EXPECT_NE(serial.flight.find("\"train_failed\""), std::string::npos);
  for (std::size_t threads : kThreadSweep) {
    const FleetRunOutput run = fleet_run(threads);
    EXPECT_EQ(run.dropped, 0u) << "threads=" << threads;
    EXPECT_TRUE(run == serial) << "threads=" << threads;
  }
}

}  // namespace
