// Real-socket loopback tests for the ingestion daemon front door
// (src/net/sockets.*, DESIGN.md §5k): an AgentCore streaming over actual
// TCP and Unix-domain sockets into a SocketServer-hosted IngestServer,
// single-threaded by interleaving the client with server.run_once() —
// no background threads, no sleeps longer than a poll timeout.
//
// The kill/reconnect test is the acceptance scenario: abort_conn()
// (SO_LINGER 0 -> RST) mid-stream, liveness ticks the source
// kLive -> kSuspect -> kLost, a fresh client revives it via the
// HELLO/resume handshake, and the engine's per-series attribution comes
// out exact — nothing lost, nothing double-counted.
//
// ctest label: net.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fleet_engine.hpp"
#include "net/agent.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "net/sockets.hpp"
#include "util/fault_injection.hpp"

namespace {

using namespace opprentice;

core::FleetOptions small_fleet() {
  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{24, 7 * 24};
  options.shard_count = 4;
  options.retrain_interval = 1 << 20;
  options.history_capacity = 256;
  options.forest.num_trees = 2;
  options.forest.seed = 7;
  return options;
}

std::vector<ts::RawPoint> clean_points(std::size_t n, std::int64_t interval,
                                       std::int64_t start = 1700000000) {
  std::vector<ts::RawPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({start + static_cast<std::int64_t>(i) * interval,
                      10.0 + 0.5 * static_cast<double>(i)});
  }
  return points;
}

// One client/server exchange step: pump the server, then let the client
// read whatever arrived. Returns the frames the client received.
void pump(net::SocketServer& server, net::SocketClient& client,
          net::FrameParser& replies, net::AgentCore& agent,
          int rounds = 4) {
  for (int i = 0; i < rounds; ++i) server.run_once(10);
  std::vector<std::uint8_t> rx;
  client.receive(rx, 50);
  replies.push_bytes(rx);
  net::Frame reply;
  while (replies.next(&reply)) agent.on_frame(reply);
}

// Streams the agent to completion over an established client socket.
// Returns false if the transport died mid-stream (caller reconnects).
bool stream(net::SocketServer& server, net::SocketClient& client,
            net::FrameParser& replies, net::AgentCore& agent,
            std::size_t max_steps = 10000) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (agent.done() || agent.failed()) return true;
    const auto frame = agent.next_frame();
    if (frame.has_value()) {
      if (!client.send_bytes(net::encode_frame(*frame))) return false;
    }
    pump(server, client, replies, agent);
    if (agent.awaiting_reply()) {
      // One more generous read; a loopback reply never takes this long.
      pump(server, client, replies, agent, 8);
      if (agent.awaiting_reply()) agent.on_timeout();
    }
  }
  return agent.done();
}

struct EndpointCase {
  const char* name;
  std::string spec;
};

class SocketLoopback : public ::testing::TestWithParam<EndpointCase> {};

TEST_P(SocketLoopback, AgentReplayArrivesIntactOverTheWire) {
  net::clear_stop();
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.default_interval_seconds = 3600;
  net::IngestServer core(engine, options);
  const net::Endpoint endpoint = net::parse_endpoint(GetParam().spec);
  net::SocketServer server(core, endpoint, /*tick_interval_ms=*/5);

  net::Endpoint target = endpoint;
  if (!target.is_unix) target.port = server.bound_port();
  net::SocketClient client;
  ASSERT_TRUE(client.connect_to(target));

  const auto points = clean_points(64, 3600);
  net::AgentCore agent("loopback-agent");
  agent.queue_data("pv", 3600, points, 16);
  agent.queue_labels("pv", 0, std::vector<std::uint8_t>(16, 1));
  agent.finish();
  net::FrameParser replies;
  ASSERT_TRUE(stream(server, client, replies, agent));
  EXPECT_TRUE(agent.done());
  client.close_conn();
  for (int i = 0; i < 4; ++i) server.run_once(10);
  core.drain();

  EXPECT_EQ(core.byes_received(), 1u);
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_EQ(stats.points_seen, points.size());
  EXPECT_TRUE(stats.repairs.clean()) << stats.repairs.summary();
  EXPECT_GT(stats.labeled_until, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, SocketLoopback,
    ::testing::Values(
        EndpointCase{"Tcp", "tcp:127.0.0.1:0"},
        EndpointCase{"Uds", "uds:/tmp/opprentice-net-test.sock"}),
    [](const ::testing::TestParamInfo<EndpointCase>& param_info) {
      return param_info.param.name;
    });

TEST(SocketServer, EphemeralPortIsResolvedAndEndpointParserRejectsJunk) {
  core::FleetEngine engine(small_fleet());
  net::IngestServer core(engine, net::ServerOptions{});
  net::SocketServer server(core, net::parse_endpoint("tcp:127.0.0.1:0"), 50);
  EXPECT_NE(server.bound_port(), 0);
  EXPECT_THROW((void)net::parse_endpoint("carrier-pigeon:coop"),
               std::invalid_argument);
  EXPECT_THROW((void)net::parse_endpoint("tcp:localhost"),
               std::invalid_argument);
}

// The acceptance scenario: kill the agent mid-stream with an RST, let
// liveness declare the source kLost, reconnect, and verify exact
// attribution across the outage.
TEST(SocketReconnect, RstMidStreamThenResumeKeepsAttributionExact) {
  net::clear_stop();
  core::FleetEngine engine(small_fleet());
  net::ServerOptions options;
  options.default_interval_seconds = 3600;
  // Wide enough that streaming exchanges never decay the source, small
  // enough that the post-kill wait loop reaches kLost in well under a
  // second of 1 ms ticks.
  options.liveness = net::LivenessOptions{40, 80};
  net::IngestServer core(engine, options);
  net::SocketServer server(core, net::parse_endpoint("tcp:127.0.0.1:0"),
                           /*tick_interval_ms=*/1);

  net::Endpoint target = net::parse_endpoint("tcp:127.0.0.1:0");
  target.port = server.bound_port();

  const auto points = clean_points(80, 3600);
  net::AgentCore agent("field-agent");
  agent.queue_data("pv", 3600, points, 8);
  agent.finish();
  net::FrameParser replies;

  // First life: stream a few batches, then die hard (RST).
  net::SocketClient first;
  ASSERT_TRUE(first.connect_to(target));
  for (int exchanges = 0; exchanges < 4; ++exchanges) {
    const auto frame = agent.next_frame();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(first.send_bytes(net::encode_frame(*frame)));
    pump(server, first, replies, agent);
  }
  const std::uint32_t acked_before_kill = agent.last_acked();
  EXPECT_GT(acked_before_kill, 0u);
  first.abort_conn();  // SO_LINGER 0: the kernel sends RST

  // The server notices the dead peer and liveness decays the source.
  for (int i = 0; i < 2000; ++i) {
    server.run_once(5);
    if (core.source_state("field-agent") == net::SourceState::kLost) break;
  }
  ASSERT_EQ(core.source_state("field-agent"), net::SourceState::kLost);
  EXPECT_EQ(server.open_connections(), 0u);

  // Second life: reconnect, HELLO revives, WELCOME resume skips what the
  // server already committed, the rest streams through.
  agent.on_disconnect();
  replies = net::FrameParser();
  net::SocketClient second;
  ASSERT_TRUE(second.connect_to(target));
  ASSERT_TRUE(stream(server, second, replies, agent));
  EXPECT_TRUE(agent.done());
  second.close_conn();
  for (int i = 0; i < 4; ++i) server.run_once(5);
  core.drain();

  // Exactly-once attribution across the kill: every point fed once.
  const auto handle = engine.find_series("pv");
  ASSERT_NE(handle, nullptr);
  const auto stats = engine.stats(handle);
  EXPECT_EQ(stats.points_seen, points.size());
  EXPECT_EQ(stats.repairs.duplicates, 0u);
  EXPECT_EQ(stats.repairs.gaps, 0u);
  const auto snapshots = core.snapshot();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].id, "field-agent");
  EXPECT_EQ(snapshots[0].counters.revives, 1u);
  EXPECT_GE(snapshots[0].counters.lost_transitions, 1u);
  EXPECT_TRUE(snapshots[0].saw_bye);
}

TEST(SocketServer, StopRequestEndsRunOnce) {
  net::clear_stop();
  core::FleetEngine engine(small_fleet());
  net::IngestServer core(engine, net::ServerOptions{});
  net::SocketServer server(core, net::parse_endpoint("tcp:127.0.0.1:0"), 50);
  EXPECT_TRUE(server.run_once(1));
  net::request_stop();
  EXPECT_FALSE(server.run_once(1));
  net::clear_stop();
}

}  // namespace
