// Unit tests for src/util: RNG, statistics, matrix/SVD, wavelet, CSV,
// ASCII rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/svd.hpp"
#include "util/wavelet.hpp"

namespace {

using namespace opprentice::util;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIntCoversAllValuesWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma slack
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.2));
  EXPECT_NEAR(sum / n, 4.2, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleAllWhenKEqualsN) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ---- stats ----

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanSkipsNaN) {
  const std::vector<double> xs{1.0, kNaN, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(Stats, MeanAllMissingIsNaN) {
  const std::vector<double> xs{kNaN, kNaN};
  EXPECT_TRUE(std::isnan(mean(xs)));
}

TEST(Stats, EmptyIsNaN) {
  const std::vector<double> xs;
  EXPECT_TRUE(std::isnan(mean(xs)));
  EXPECT_TRUE(std::isnan(median(xs)));
  EXPECT_TRUE(std::isnan(stddev(xs)));
}

TEST(Stats, VariancePopulation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, QuantileEndpointsAndMid) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.75), 7.5, 1e-12);
}

TEST(Stats, MadGaussianConsistency) {
  // MAD (scaled by 1.4826) approximates sigma for Gaussian samples.
  Rng rng(29);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mad(xs), 2.0, 0.08);
}

TEST(Stats, MadRobustToOutlier) {
  std::vector<double> xs{1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1000.0};
  EXPECT_LT(mad(xs), 0.2);
  EXPECT_GT(stddev(xs), 100.0);  // stddev is not robust
}

TEST(Stats, MinMaxSkipNaN) {
  const std::vector<double> xs{kNaN, 3.0, -2.0, kNaN, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -2.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 2.0 / 5.0);
}

TEST(Stats, AutocorrelationPeriodicSignal) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / 50.0);
  }
  EXPECT_GT(autocorrelation(xs, 50), 0.95);   // full period
  EXPECT_LT(autocorrelation(xs, 25), -0.95);  // half period
}

TEST(Stats, AutocorrelationWhiteNoiseNearZero) {
  Rng rng(31);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(autocorrelation(xs, 7), 0.0, 0.05);
}

TEST(Stats, AutocorrelationBadLagIsNaN) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(autocorrelation(xs, 0)));
  EXPECT_TRUE(std::isnan(autocorrelation(xs, 3)));
}

TEST(Stats, WeightedMean) {
  const std::vector<double> xs{1.0, 3.0};
  const std::vector<double> ws{1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 2.5);
}

TEST(Stats, WeightedMeanSkipsNaN) {
  const std::vector<double> xs{kNaN, 3.0};
  const std::vector<double> ws{100.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 3.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(37);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.uniform(-5.0, 9.0);
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
}

TEST(Stats, RunningStatsIgnoresNaN) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(kNaN);
  rs.add(3.0);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
}

// ---- Matrix / SVD ----

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = a.multiplied(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -1.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -1.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiplied(b), std::invalid_argument);
}

TEST(Svd, ReconstructsOriginal) {
  Rng rng(41);
  Matrix a(8, 4);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  }
  const SvdResult d = svd(a);
  // U * diag(s) * V^T == A.
  Matrix recon(8, 4);
  for (std::size_t k = 0; k < d.singular_values.size(); ++k) {
    for (std::size_t r = 0; r < 8; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        recon(r, c) += d.u(r, k) * d.singular_values[k] * d.v(c, k);
      }
    }
  }
  EXPECT_LT(a.frobenius_distance(recon), 1e-8);
}

TEST(Svd, SingularValuesDescendingNonNegative) {
  Rng rng(43);
  Matrix a(10, 5);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-2, 2);
  }
  const SvdResult d = svd(a);
  for (std::size_t i = 0; i + 1 < d.singular_values.size(); ++i) {
    EXPECT_GE(d.singular_values[i], d.singular_values[i + 1]);
  }
  EXPECT_GE(d.singular_values.back(), 0.0);
}

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const SvdResult d = svd(a);
  ASSERT_EQ(d.singular_values.size(), 3u);
  EXPECT_NEAR(d.singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(d.singular_values[1], 2.0, 1e-10);
  EXPECT_NEAR(d.singular_values[2], 1.0, 1e-10);
}

TEST(Svd, UColumnsOrthonormal) {
  Rng rng(47);
  Matrix a(12, 3);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  }
  const SvdResult d = svd(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 12; ++r) dot += d.u(r, i) * d.u(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Svd, WideMatrixHandled) {
  Matrix a(2, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    a(0, c) = static_cast<double>(c + 1);
    a(1, c) = 2.0 * static_cast<double>(c + 1);
  }
  const SvdResult d = svd(a);
  // Rank-1 matrix: exactly one nonzero singular value.
  EXPECT_GT(d.singular_values[0], 1.0);
  EXPECT_NEAR(d.singular_values[1], 0.0, 1e-9);
}

TEST(Svd, LowRankApproximationOfRank1IsExact) {
  Matrix a(6, 3);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = static_cast<double>(r + 1) * static_cast<double>(c + 1);
    }
  }
  const Matrix approx = low_rank_approximation(a, 1);
  EXPECT_LT(a.frobenius_distance(approx), 1e-9);
}

TEST(Svd, LowRankApproximationReducesError) {
  Rng rng(53);
  Matrix a(10, 4);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  }
  const double err1 = a.frobenius_distance(low_rank_approximation(a, 1));
  const double err2 = a.frobenius_distance(low_rank_approximation(a, 2));
  const double err4 = a.frobenius_distance(low_rank_approximation(a, 4));
  EXPECT_GT(err1, err2);
  EXPECT_LT(err4, 1e-8);
}

// ---- wavelet ----

TEST(Wavelet, ForwardInverseRoundTrip) {
  Rng rng(59);
  std::vector<double> xs(64);
  for (auto& x : xs) x = rng.uniform(-10, 10);
  const auto coeffs = haar_forward(xs);
  const auto back = haar_inverse(coeffs);
  ASSERT_EQ(back.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(back[i], xs[i], 1e-10);
  }
}

TEST(Wavelet, EnergyPreserved) {
  Rng rng(61);
  std::vector<double> xs(128);
  for (auto& x : xs) x = rng.normal();
  const auto coeffs = haar_forward(xs);
  double ex = 0.0, ec = 0.0;
  for (double x : xs) ex += x * x;
  for (double c : coeffs) ec += c * c;
  EXPECT_NEAR(ex, ec, 1e-8);
}

TEST(Wavelet, NonPowerOfTwoThrows) {
  std::vector<double> xs(100, 1.0);
  EXPECT_THROW(haar_forward(xs), std::invalid_argument);
}

TEST(Wavelet, BandsSumToSignal) {
  Rng rng(67);
  std::vector<double> xs(64);
  for (auto& x : xs) x = rng.uniform(0, 5);
  const auto low = band_reconstruction(xs, FrequencyBand::kLow);
  const auto mid = band_reconstruction(xs, FrequencyBand::kMid);
  const auto high = band_reconstruction(xs, FrequencyBand::kHigh);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(low[i] + mid[i] + high[i], xs[i], 1e-9);
  }
}

TEST(Wavelet, ConstantSignalIsAllLowBand) {
  std::vector<double> xs(32, 4.2);
  const auto low = band_reconstruction(xs, FrequencyBand::kLow);
  const auto high = band_reconstruction(xs, FrequencyBand::kHigh);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(low[i], 4.2, 1e-10);
    EXPECT_NEAR(high[i], 0.0, 1e-10);
  }
}

TEST(Wavelet, AlternatingSignalIsHighBand) {
  std::vector<double> xs(32);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = i % 2 == 0 ? 1.0 : -1.0;
  const auto high = band_reconstruction(xs, FrequencyBand::kHigh);
  double energy = 0.0;
  for (double h : high) energy += h * h;
  EXPECT_NEAR(energy, 32.0, 1e-9);  // all of it
}

TEST(Wavelet, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(1008), 512u);
  EXPECT_EQ(floor_pow2(1024), 1024u);
}

// ---- CSV ----

TEST(Csv, RoundTrip) {
  CsvTable table;
  table.columns = {"a", "b"};
  table.rows = {{1.0, 2.5}, {3.0, kNaN}};
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  ASSERT_EQ(back.columns, table.columns);
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(back.rows[0][1], 2.5);
  EXPECT_TRUE(std::isnan(back.rows[1][1]));
}

TEST(Csv, ColumnLookup) {
  CsvTable table;
  table.columns = {"x", "y"};
  table.rows = {{1, 10}, {2, 20}};
  EXPECT_EQ(table.column_index("y"), 1u);
  EXPECT_THROW(table.column_index("z"), std::out_of_range);
  const auto y = table.column("y");
  EXPECT_EQ(y, (std::vector<double>{10, 20}));
}

TEST(Csv, EmptyCellsAreNaN) {
  std::istringstream in("a,b\n1,\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_TRUE(std::isnan(t.rows[0][1]));
}

TEST(Csv, WindowsLineEndingsHandled) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.columns.size(), 2u);
  EXPECT_EQ(t.columns[1], "b");
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2.0);
}

// Malformed-input hardening: errors locate the bad cell instead of
// surfacing a bare std::stod exception or silently misparsing.
std::string csv_error(const std::string& text) {
  std::istringstream in(text);
  try {
    read_csv(in);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(Csv, NonNumericCellReportsLineAndColumn) {
  const std::string err = csv_error("a,b\n1,2\n3,oops\n");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("column 2"), std::string::npos) << err;
  EXPECT_NE(err.find("'b'"), std::string::npos) << err;
  EXPECT_NE(err.find("oops"), std::string::npos) << err;
}

TEST(Csv, TrailingGarbageAfterNumberIsAnError) {
  // std::stod would silently parse the "1.5" prefix of "1.5x".
  const std::string err = csv_error("a\n1.5x\n");
  EXPECT_NE(err.find("1.5x"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Csv, ShortRowReportsExpectedWidth) {
  const std::string err = csv_error("a,b,c\n1,2\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("expected 3 cells, got 2"), std::string::npos) << err;
}

TEST(Csv, LongRowIsAnError) {
  const std::string err = csv_error("a,b\n1,2,3\n");
  EXPECT_NE(err.find("expected 2 cells, got 3"), std::string::npos) << err;
}

TEST(Csv, SurroundingWhitespaceInCellsIsAccepted) {
  std::istringstream in("a,b\n 1 ,\t2.5\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(t.rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(t.rows[0][1], 2.5);
}

// ---- ASCII rendering ----

TEST(Ascii, LineChartRendersGrid) {
  std::vector<double> ys(100);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ys[i] = std::sin(static_cast<double>(i) / 10.0);
  }
  ChartOptions options;
  options.width = 40;
  options.height = 8;
  const std::string chart = render_line_chart(ys, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(Ascii, SparklineLengthMatches) {
  const std::vector<double> ys{1, 2, 3, 2, 1};
  const std::string s = render_sparkline(ys);
  EXPECT_FALSE(s.empty());
}

TEST(Ascii, TableAlignsColumns) {
  const std::string t = render_table({"name", "value"},
                                     {{"alpha", "1"}, {"b", "22"}});
  EXPECT_NE(t.find("alpha"), std::string::npos);
  EXPECT_NE(t.find("22"), std::string::npos);
}

TEST(Ascii, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(kNaN), "nan");
}

}  // namespace
