// Tests for the opprentice_cli subcommands (linked directly against
// tools/cli_commands.cpp; file I/O goes through a temp directory).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "../tools/cli_commands.hpp"

namespace {

using namespace opprentice::cli;

Args make_args(const std::string& command,
               std::map<std::string, std::string> options) {
  Args args;
  args.command = command;
  args.options = std::move(options);
  return args;
}

class CliWorkflow : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each TEST_F as its own process, often
    // in parallel, so a shared path races (SetUp's remove_all deletes a
    // sibling test's files mid-run).
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("opprentice-cli-test-") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST(ParseArgs, CommandAndOptions) {
  const char* argv[] = {"cli", "train", "--kpi", "a.csv", "--trees", "12"};
  const Args args = parse_args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.command, "train");
  EXPECT_EQ(args.get("kpi"), "a.csv");
  EXPECT_EQ(args.get_size("trees", 0), 12u);
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

TEST(ParseArgs, MissingValueThrows) {
  const char* argv[] = {"cli", "train", "--kpi"};
  EXPECT_THROW(parse_args(3, const_cast<char**>(argv)), std::runtime_error);
}

TEST(ParseArgs, NonOptionTokenThrows) {
  const char* argv[] = {"cli", "train", "oops"};
  EXPECT_THROW(parse_args(3, const_cast<char**>(argv)), std::runtime_error);
}

TEST_F(CliWorkflow, GenerateProducesBothFiles) {
  ASSERT_EQ(cmd_generate(make_args("generate",
                                   {{"kpi", "srt"},
                                    {"weeks", "6"},
                                    {"out", path("kpi.csv")},
                                    {"labels", path("labels.csv")}})),
            0);
  EXPECT_TRUE(std::filesystem::exists(path("kpi.csv")));
  EXPECT_TRUE(std::filesystem::exists(path("labels.csv")));
}

TEST_F(CliWorkflow, GenerateRejectsUnknownKpi) {
  EXPECT_EQ(cmd_generate(make_args("generate", {{"kpi", "nope"}})), 2);
}

TEST_F(CliWorkflow, EndToEndTrainDetectEvaluate) {
  ASSERT_EQ(cmd_generate(make_args("generate",
                                   {{"kpi", "srt"},
                                    {"weeks", "8"},
                                    {"out", path("kpi.csv")},
                                    {"labels", path("labels.csv")}})),
            0);
  ASSERT_EQ(cmd_profile(make_args("profile", {{"kpi", path("kpi.csv")}})), 0);
  ASSERT_EQ(cmd_train(make_args("train",
                                {{"kpi", path("kpi.csv")},
                                 {"labels", path("labels.csv")},
                                 {"model", path("m.rf")},
                                 {"trees", "16"}})),
            0);
  ASSERT_TRUE(std::filesystem::exists(path("m.rf")));
  ASSERT_EQ(cmd_detect(make_args("detect",
                                 {{"kpi", path("kpi.csv")},
                                  {"model", path("m.rf")},
                                  {"out", path("det.csv")}})),
            0);
  // In-sample detection on a learnable KPI must satisfy the preference
  // (exit code 0 from evaluate).
  EXPECT_EQ(cmd_evaluate(make_args("evaluate",
                                   {{"detections", path("det.csv")},
                                    {"labels", path("labels.csv")}})),
            0);
}

TEST_F(CliWorkflow, DetectHonorsExplicitCthld) {
  ASSERT_EQ(cmd_generate(make_args("generate",
                                   {{"kpi", "srt"},
                                    {"weeks", "6"},
                                    {"out", path("kpi.csv")},
                                    {"labels", path("labels.csv")}})),
            0);
  ASSERT_EQ(cmd_train(make_args("train",
                                {{"kpi", path("kpi.csv")},
                                 {"labels", path("labels.csv")},
                                 {"model", path("m.rf")},
                                 {"trees", "8"}})),
            0);
  // cThld above 1.0: nothing can be flagged.
  ASSERT_EQ(cmd_detect(make_args("detect",
                                 {{"kpi", path("kpi.csv")},
                                  {"model", path("m.rf")},
                                  {"cthld", "1.5"},
                                  {"out", path("det.csv")}})),
            0);
  std::ifstream det(path("det.csv"));
  std::string line;
  std::getline(det, line);  // header
  while (std::getline(det, line)) {
    EXPECT_EQ(line.back(), '0') << line;  // is_anomaly column
  }
}

TEST_F(CliWorkflow, TrainFailsWithoutAnomalies) {
  // A labels file with no windows: training must refuse, not crash.
  ASSERT_EQ(cmd_generate(make_args("generate",
                                   {{"kpi", "srt"},
                                    {"weeks", "6"},
                                    {"out", path("kpi.csv")},
                                    {"labels", path("labels.csv")}})),
            0);
  std::ofstream empty(path("empty.csv"));
  empty << "window_begin,window_end\n";
  empty.close();
  EXPECT_EQ(cmd_train(make_args("train",
                                {{"kpi", path("kpi.csv")},
                                 {"labels", path("empty.csv")},
                                 {"model", path("m.rf")}})),
            1);
}

TEST_F(CliWorkflow, MissingFilesReportErrors) {
  EXPECT_THROW(cmd_profile(make_args("profile", {{"kpi", path("no.csv")}})),
               std::exception);
  EXPECT_THROW(cmd_detect(make_args("detect",
                                    {{"kpi", path("no.csv")},
                                     {"model", path("no.rf")}})),
               std::exception);
}

TEST_F(CliWorkflow, FleetRunsSyntheticMultiSeriesSweep) {
  // A tiny fleet must complete cleanly: 8 series, enough points for the
  // 64-point-day lite set to warm up and retrain once per series.
  EXPECT_EQ(cmd_fleet(make_args("fleet", {{"series", "8"},
                                          {"points", "160"},
                                          {"shards", "4"},
                                          {"trees", "8"}})),
            0);
}

}  // namespace
