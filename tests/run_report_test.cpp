// Run-report manifest, cost attribution, flight recorder, and the JSON
// parser they are validated with (DESIGN.md §5h).
//
// The schema case doubles as the golden test for
// "opprentice.run_report/1": it renders a populated report and re-parses
// it with util::json, pinning every top-level key and the row shapes
// downstream consumers (opprentice_perf, CI artifacts) rely on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/cost_attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "util/json.hpp"

namespace {

using namespace opprentice;
namespace json = util::json;

TEST(JsonParser, ParsesScalarsContainersAndEscapes) {
  const auto doc = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "q\"\\\né", "neg": -2e3})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_at("a", 0.0), 1.5);
  const auto* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_FALSE(b->array[1].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  const auto* s = doc.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "q\"\\\n\xc3\xa9");
  EXPECT_DOUBLE_EQ(doc.number_at("neg", 0.0), -2000.0);
}

TEST(JsonParser, DottedPathLookup) {
  const auto doc =
      json::parse(R"({"sec58": {"inner": {"x": 4}, "ok": true}})");
  EXPECT_DOUBLE_EQ(doc.number_at("sec58.inner.x", -1.0), 4.0);
  EXPECT_TRUE(doc.bool_at("sec58.ok", false));
  EXPECT_EQ(doc.find_path("sec58.missing.x"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_at("sec58.missing", 9.0), 9.0);
}

TEST(JsonParser, RejectsMalformedInputWithOffset) {
  EXPECT_THROW((void)json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\": 1,}"), std::runtime_error);
  try {
    (void)json::parse("[1, x]");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    // The offset points at the bad token so a corrupt bench file is
    // debuggable from the message alone.
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(CostAttribution, SnapshotOrdersByTotalCostAndNormalizesShare) {
  obs::CostAttribution attribution;
  attribution.slot("cheap").record(1.0);
  attribution.slot("cheap").record(1.0);
  attribution.slot("dear").record(6.0);
  attribution.slot("mid").record_pass(2.0, 2);

  const auto rows = attribution.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].configuration, "dear");
  EXPECT_EQ(rows[1].configuration, "cheap");
  EXPECT_EQ(rows[2].configuration, "mid");
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].mean_us, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].share, 0.6);
  // record_pass counts every point and folds the per-point mean into max.
  EXPECT_EQ(rows[2].count, 2u);
  EXPECT_DOUBLE_EQ(rows[2].max_us, 1.0);

  attribution.reset_values();
  EXPECT_TRUE(attribution.snapshot().empty());
  // Registrations survive a value reset (held slot pointers stay valid).
  EXPECT_EQ(attribution.slot_count(), 3u);
}

TEST(FlightRecorder, SortsDeterministicallyAndReportsOverflow) {
  obs::FlightRecorder recorder(/*capacity=*/3);
  recorder.record_event("b", "second", 2, "x");
  recorder.record_event("a", "first", 9);
  recorder.record_event("a", "first", 1);
  const auto sorted = recorder.sorted_events();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].category, "a");
  EXPECT_EQ(sorted[0].key, 1u);
  EXPECT_EQ(sorted[1].key, 9u);
  EXPECT_EQ(sorted[2].category, "b");
  EXPECT_EQ(recorder.dropped_count(), 0u);

  // A fourth event overwrites the oldest and is reported as dropped, so
  // a truncated postmortem is never mistaken for a complete one.
  recorder.record_event("c", "third", 3);
  EXPECT_EQ(recorder.event_count(), 3u);
  EXPECT_EQ(recorder.dropped_count(), 1u);
  const std::string dump = recorder.dump_json();
  EXPECT_NE(dump.find("\"dropped\": 1"), std::string::npos);
  EXPECT_EQ(dump.find("\"b\""), std::string::npos);  // oldest evicted

  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.dropped_count(), 0u);
}

TEST(FlightRecorder, DumpJsonParsesAndDumpTextMatchesOrder) {
  obs::FlightRecorder recorder(8);
  recorder.record_event("ingest", "repair", 7, "series=k");
  recorder.record_event("detector", "quarantine", 3, "configuration=svd");
  const auto doc = json::parse(recorder.dump_json());
  EXPECT_DOUBLE_EQ(doc.number_at("capacity", -1.0), 8.0);
  EXPECT_DOUBLE_EQ(doc.number_at("dropped", -1.0), 0.0);
  const auto* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].find("category")->string, "detector");
  EXPECT_EQ(events->array[1].find("category")->string, "ingest");
  const std::string text = recorder.dump_text();
  EXPECT_LT(text.find("detector.quarantine"), text.find("ingest.repair"));
}

// The schema-golden case: every "opprentice.run_report/1" top-level key
// must be present with the documented shape. Additive evolution only —
// if this test has to delete or retype an expectation, bump the schema
// version instead.
TEST(RunReport, SchemaGolden) {
  obs::FlightRecorder::instance().clear();
  obs::CostAttribution::instance().reset_values();
  obs::CostAttribution::instance().slot("ewma(alpha=0.3)").record(2.0);
  obs::CostAttribution::instance().slot("svd(row=10,col=5)").record(5.0);
  obs::flight_record("detector", "quarantine", 4, "configuration=svd");

  obs::RunReport report("unit_test", "train");
  report.set_threads(2);
  report.set_seed("forest", 42);
  report.set_seed("fault_plan", 7);
  report.add_stage("extract", 12.5);
  report.add_stage("train", 3.25);
  report.set_field("repair_policy", "drop");
  report.set_field("exit_status", std::uint64_t{0});
  report.set_field("cache_hit", true);
  report.set_field("speedup", 1.5);

  const auto doc = json::parse(report.to_json());
  EXPECT_EQ(doc.find("schema")->string, "opprentice.run_report/1");
  EXPECT_EQ(doc.find("tool")->string, "unit_test");
  EXPECT_EQ(doc.find("command")->string, "train");

  ASSERT_NE(doc.find("build"), nullptr);
  EXPECT_TRUE(doc.find_path("build.compiler")->is_string());
  EXPECT_TRUE(doc.find_path("build.build_type")->is_string());
  EXPECT_GT(doc.number_at("build.cxx_standard", 0.0), 201700.0);

  EXPECT_DOUBLE_EQ(doc.number_at("threads.configured", -1.0), 2.0);
  EXPECT_GE(doc.number_at("threads.hardware_concurrency", -1.0), 0.0);

  EXPECT_DOUBLE_EQ(doc.number_at("seeds.forest", -1.0), 42.0);
  EXPECT_DOUBLE_EQ(doc.number_at("seeds.fault_plan", -1.0), 7.0);

  const auto* stages = doc.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array.size(), 2u);
  EXPECT_EQ(stages->array[0].find("name")->string, "extract");
  EXPECT_DOUBLE_EQ(stages->array[0].number_at("ms", -1.0), 12.5);

  ASSERT_TRUE(doc.find("counters")->is_object());
  ASSERT_NE(doc.find_path("resilience.faults"), nullptr);
  ASSERT_NE(doc.find_path("resilience.ingest"), nullptr);
  ASSERT_NE(doc.find_path("resilience.detector"), nullptr);
  ASSERT_NE(doc.find_path("resilience.net"), nullptr);
  ASSERT_NE(doc.find_path("resilience.net_sources"), nullptr);
  EXPECT_GE(doc.number_at("resilience.forest_train_failures", -1.0), 0.0);

  const auto* attribution = doc.find("attribution");
  ASSERT_NE(attribution, nullptr);
  ASSERT_EQ(attribution->array.size(), 2u);
  // Ordered by total cost, share normalized over the snapshot.
  EXPECT_EQ(attribution->array[0].find("configuration")->string,
            "svd(row=10,col=5)");
  EXPECT_DOUBLE_EQ(attribution->array[0].number_at("share", -1.0),
                   5.0 / 7.0);
  EXPECT_DOUBLE_EQ(attribution->array[1].number_at("sum_us", -1.0), 2.0);

  const auto* flight = doc.find("flight_recorder");
  ASSERT_NE(flight, nullptr);
  ASSERT_EQ(flight->find("events")->array.size(), 1u);
  EXPECT_EQ(flight->find("events")->array[0].find("name")->string,
            "quarantine");

  EXPECT_EQ(doc.find_path("extra.repair_policy")->string, "drop");
  EXPECT_DOUBLE_EQ(doc.number_at("extra.exit_status", -1.0), 0.0);
  EXPECT_TRUE(doc.bool_at("extra.cache_hit", false));
  EXPECT_DOUBLE_EQ(doc.number_at("extra.speedup", -1.0), 1.5);

  obs::FlightRecorder::instance().clear();
  obs::CostAttribution::instance().reset_values();
}

TEST(RunReport, StageTimerAppendsOneRow) {
  obs::RunReport report("unit_test", "t");
  {
    obs::StageTimer timer(report, "scoped");
  }
  const auto doc = json::parse(report.to_json());
  const auto* stages = doc.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array.size(), 1u);
  EXPECT_EQ(stages->array[0].find("name")->string, "scoped");
  EXPECT_GE(stages->array[0].number_at("ms", -1.0), 0.0);
}

}  // namespace
