// Unit tests for src/timeseries: TimeSeries, LabelSet, series profiling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "timeseries/labels.hpp"
#include "timeseries/repair.hpp"
#include "timeseries/series_stats.hpp"
#include "timeseries/time_series.hpp"

namespace {

using namespace opprentice::ts;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TimeSeries make_series(std::size_t n, std::int64_t interval = 600) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  return TimeSeries("test", 1000, interval, std::move(values));
}

// ---- ingest repair (unit view; the chaos suite exercises policies
// end-to-end) ----

TEST(Repair, InfersIntervalFromSmallestPositiveDelta) {
  std::vector<RawPoint> points;
  for (std::size_t i = 0; i < 6; ++i) {
    points.push_back({600 * static_cast<std::int64_t>(i), 1.0});
  }
  points.erase(points.begin() + 2);  // a gap must not widen the interval
  const auto result =
      repair_series("infer", points, 0, RepairPolicy::kDrop);
  EXPECT_EQ(result.series.interval_seconds(), 600);
  EXPECT_EQ(result.series.size(), 6u);
  EXPECT_EQ(result.report.gaps, 1u);
}

TEST(Repair, OutOfOrderPointsAreResorted) {
  std::vector<RawPoint> points = {
      {0, 0.0}, {1200, 2.0}, {600, 1.0}, {1800, 3.0}};
  const auto result =
      repair_series("disorder", points, 600, RepairPolicy::kDrop);
  EXPECT_EQ(result.report.out_of_order, 1u);
  ASSERT_EQ(result.series.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result.series[i], static_cast<double>(i));
  }
}

TEST(Repair, DuplicateTimestampsKeepFirstArrival) {
  std::vector<RawPoint> points = {
      {0, 0.0}, {600, 1.0}, {600, 99.0}, {1200, 2.0}};
  const auto result =
      repair_series("dups", points, 600, RepairPolicy::kDrop);
  EXPECT_EQ(result.report.duplicates, 1u);
  ASSERT_EQ(result.series.size(), 3u);
  EXPECT_DOUBLE_EQ(result.series[1], 1.0);
}

TEST(Repair, EmptyStreamIsAnError) {
  EXPECT_THROW(repair_series("empty", {}, 600, RepairPolicy::kDrop),
               std::runtime_error);
}

TEST(Repair, RefusesGridsVastlyLargerThanTheInput) {
  // One corrupt far-future timestamp must not allocate a year of slots.
  std::vector<RawPoint> points = {{0, 1.0}, {600, 2.0}, {600'000'000, 3.0}};
  EXPECT_THROW(repair_series("corrupt", points, 600, RepairPolicy::kDrop),
               std::runtime_error);
}

// ---- TimeSeries ----

TEST(TimeSeries, TimestampsAreImplicit) {
  const TimeSeries s = make_series(5, 60);
  EXPECT_EQ(s.timestamp(0), 1000);
  EXPECT_EQ(s.timestamp(3), 1000 + 3 * 60);
}

TEST(TimeSeries, PointsPerDayAndWeek) {
  const TimeSeries s = make_series(10, 600);
  EXPECT_EQ(s.points_per_day(), 144u);
  EXPECT_EQ(s.points_per_week(), 1008u);
}

TEST(TimeSeries, HourlySeries) {
  const TimeSeries s = make_series(10, 3600);
  EXPECT_EQ(s.points_per_day(), 24u);
}

TEST(TimeSeries, RejectsNonDividingInterval) {
  EXPECT_THROW(TimeSeries("bad", 0, 7000, {1.0}), std::invalid_argument);
  EXPECT_THROW(TimeSeries("bad", 0, 0, {1.0}), std::invalid_argument);
  EXPECT_THROW(TimeSeries("bad", 0, -60, {1.0}), std::invalid_argument);
}

TEST(TimeSeries, SliceKeepsCalendarAlignment) {
  const TimeSeries s = make_series(100, 600);
  const TimeSeries part = s.slice(10, 20);
  EXPECT_EQ(part.size(), 10u);
  EXPECT_EQ(part.start_epoch(), s.timestamp(10));
  EXPECT_DOUBLE_EQ(part[0], 10.0);
}

TEST(TimeSeries, SliceBadRangeThrows) {
  const TimeSeries s = make_series(10);
  EXPECT_THROW(s.slice(5, 3), std::out_of_range);
  EXPECT_THROW(s.slice(0, 11), std::out_of_range);
}

TEST(TimeSeries, AppendContiguous) {
  TimeSeries a = make_series(10, 600);
  const TimeSeries b("test", a.timestamp(10), 600, {100.0, 101.0});
  a.append(b);
  EXPECT_EQ(a.size(), 12u);
  EXPECT_DOUBLE_EQ(a[10], 100.0);
}

TEST(TimeSeries, AppendNonContiguousThrows) {
  TimeSeries a = make_series(10, 600);
  const TimeSeries gap("test", a.timestamp(10) + 600, 600, {1.0});
  EXPECT_THROW(a.append(gap), std::invalid_argument);
  const TimeSeries wrong_interval("test", a.timestamp(10), 300, {1.0});
  EXPECT_THROW(a.append(wrong_interval), std::invalid_argument);
}

// ---- LabelSet ----

TEST(Labels, AddWindowMergesOverlaps) {
  LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({15, 25});
  ASSERT_EQ(ls.window_count(), 1u);
  EXPECT_EQ(ls.windows()[0], (LabelWindow{10, 25}));
}

TEST(Labels, AddWindowMergesAdjacent) {
  LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({20, 30});
  ASSERT_EQ(ls.window_count(), 1u);
  EXPECT_EQ(ls.windows()[0], (LabelWindow{10, 30}));
}

TEST(Labels, DisjointWindowsStaySeparate) {
  LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({30, 40});
  EXPECT_EQ(ls.window_count(), 2u);
  EXPECT_EQ(ls.anomalous_points(), 20u);
}

TEST(Labels, EmptyWindowIgnored) {
  LabelSet ls;
  ls.add_window({5, 5});
  EXPECT_EQ(ls.window_count(), 0u);
}

TEST(Labels, RemoveRangeSplitsWindow) {
  LabelSet ls;
  ls.add_window({10, 30});
  ls.remove_range(15, 20);
  ASSERT_EQ(ls.window_count(), 2u);
  EXPECT_EQ(ls.windows()[0], (LabelWindow{10, 15}));
  EXPECT_EQ(ls.windows()[1], (LabelWindow{20, 30}));
}

TEST(Labels, RemoveRangeTrimsEdges) {
  LabelSet ls;
  ls.add_window({10, 30});
  ls.remove_range(25, 40);
  ASSERT_EQ(ls.window_count(), 1u);
  EXPECT_EQ(ls.windows()[0], (LabelWindow{10, 25}));
}

TEST(Labels, RemoveEntireWindow) {
  LabelSet ls;
  ls.add_window({10, 30});
  ls.remove_range(0, 100);
  EXPECT_EQ(ls.window_count(), 0u);
}

TEST(Labels, IsAnomalousBoundaries) {
  LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({40, 45});
  EXPECT_FALSE(ls.is_anomalous(9));
  EXPECT_TRUE(ls.is_anomalous(10));
  EXPECT_TRUE(ls.is_anomalous(19));
  EXPECT_FALSE(ls.is_anomalous(20));
  EXPECT_TRUE(ls.is_anomalous(42));
  EXPECT_FALSE(ls.is_anomalous(100));
}

TEST(Labels, PointLabelRoundTrip) {
  LabelSet ls;
  ls.add_window({3, 6});
  ls.add_window({8, 9});
  const auto points = ls.to_point_labels(12);
  const LabelSet back = LabelSet::from_point_labels(points);
  EXPECT_EQ(back.windows(), ls.windows());
}

TEST(Labels, PointLabelsClampToSize) {
  LabelSet ls;
  ls.add_window({8, 20});
  const auto points = ls.to_point_labels(10);
  EXPECT_EQ(points.size(), 10u);
  EXPECT_EQ(points[9], 1);
}

TEST(Labels, SliceRebases) {
  LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({30, 40});
  const LabelSet part = ls.slice(15, 35);
  ASSERT_EQ(part.window_count(), 2u);
  EXPECT_EQ(part.windows()[0], (LabelWindow{0, 5}));    // 15..20 -> 0..5
  EXPECT_EQ(part.windows()[1], (LabelWindow{15, 20}));  // 30..35 -> 15..20
}

TEST(Labels, ShiftedOffsets) {
  LabelSet ls;
  ls.add_window({1, 3});
  const LabelSet moved = ls.shifted(100);
  EXPECT_EQ(moved.windows()[0], (LabelWindow{101, 103}));
}

TEST(Labels, MergedUnion) {
  LabelSet a, b;
  a.add_window({0, 5});
  b.add_window({3, 8});
  const LabelSet u = a.merged(b);
  ASSERT_EQ(u.window_count(), 1u);
  EXPECT_EQ(u.windows()[0], (LabelWindow{0, 8}));
}

TEST(Labels, ConstructorNormalizesUnsortedInput) {
  const LabelSet ls({{30, 40}, {10, 20}, {35, 50}});
  ASSERT_EQ(ls.window_count(), 2u);
  EXPECT_EQ(ls.windows()[0], (LabelWindow{10, 20}));
  EXPECT_EQ(ls.windows()[1], (LabelWindow{30, 50}));
}

// ---- series profiling ----

TEST(SeriesStats, ProfileOfSeasonalSeries) {
  const std::size_t ppd = 144;
  std::vector<double> values(ppd * 14);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 100.0 + 30.0 * std::sin(2.0 * 3.14159265 *
                                        static_cast<double>(i % ppd) /
                                        static_cast<double>(ppd));
  }
  const TimeSeries s("seasonal", 0, 600, std::move(values));
  const SeriesProfile p = profile(s);
  EXPECT_EQ(p.interval_seconds, 600);
  EXPECT_NEAR(p.length_weeks, 2.0, 1e-9);
  EXPECT_GT(p.daily_seasonality, 0.95);
  EXPECT_NEAR(p.coefficient_of_variation, 30.0 / std::sqrt(2.0) / 100.0,
              0.01);
  EXPECT_DOUBLE_EQ(p.missing_ratio, 0.0);
}

TEST(SeriesStats, MissingRatioCounted) {
  std::vector<double> values(1008, 1.0);
  for (std::size_t i = 0; i < 101; ++i) values[i * 10] = kNaN;
  const TimeSeries s("gappy", 0, 600, std::move(values));
  EXPECT_NEAR(profile(s).missing_ratio, 101.0 / 1008.0, 1e-9);
}

TEST(SeriesStats, SeasonalityClasses) {
  EXPECT_EQ(seasonality_class(0.9), "Strong");
  EXPECT_EQ(seasonality_class(0.5), "Moderate");
  EXPECT_EQ(seasonality_class(0.1), "Weak");
}

}  // namespace
