// Unit tests for src/ml: dataset, binning, decision tree, random forest,
// linear baselines, naive Bayes, mutual information, k-fold.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ml/binning.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/kfold.hpp"
#include "ml/linear_models.hpp"
#include "ml/mutual_information.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::ml;

// Two Gaussian blobs: feature 0 separates the classes, feature 1 is noise.
Dataset blobs(std::size_t n, double separation, std::uint64_t seed = 1,
              std::size_t noise_features = 1, double positive_rate = 0.5) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> cols(1 + noise_features);
  std::vector<std::uint8_t> labels(n);
  std::vector<std::string> names;
  names.emplace_back("signal");
  for (std::size_t f = 0; f < noise_features; ++f) {
    names.push_back("noise" + std::to_string(f));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < positive_rate;
    labels[i] = anomaly ? 1 : 0;
    cols[0].push_back(rng.normal(anomaly ? separation : 0.0, 1.0));
    for (std::size_t f = 0; f < noise_features; ++f) {
      cols[1 + f].push_back(rng.normal(0.0, 1.0));
    }
  }
  return Dataset(std::move(names), std::move(cols), std::move(labels));
}

double accuracy(const BinaryClassifier& clf, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const bool predicted = clf.score(data.row(i)) >= 0.5;
    correct += predicted == (data.label(i) != 0);
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

// ---- Dataset ----

TEST(Dataset, ShapeValidation) {
  EXPECT_THROW(Dataset({"a"}, {{1.0, 2.0}}, {0}), std::invalid_argument);
  EXPECT_THROW(Dataset({"a", "b"}, {{1.0}}, {0}), std::invalid_argument);
}

TEST(Dataset, SliceAndAppendRoundTrip) {
  const Dataset d = blobs(100, 2.0);
  Dataset head = d.slice(0, 60);
  const Dataset tail = d.slice(60, 100);
  head.append(tail);
  ASSERT_EQ(head.num_rows(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(head.value(i, 0), d.value(i, 0));
    EXPECT_EQ(head.label(i), d.label(i));
  }
}

TEST(Dataset, SelectFeaturesReorders) {
  const Dataset d = blobs(10, 2.0, 1, 2);
  const Dataset sel = d.select_features({2, 0});
  ASSERT_EQ(sel.num_features(), 2u);
  EXPECT_EQ(sel.feature_names()[0], "noise1");
  EXPECT_EQ(sel.feature_names()[1], "signal");
  EXPECT_DOUBLE_EQ(sel.value(3, 1), d.value(3, 0));
}

TEST(Dataset, SelectRowsPicksSubset) {
  const Dataset d = blobs(20, 2.0);
  const Dataset sel = d.select_rows({5, 1, 19});
  ASSERT_EQ(sel.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(sel.value(0, 0), d.value(5, 0));
  EXPECT_EQ(sel.label(2), d.label(19));
}

TEST(Dataset, PositivesCount) {
  const Dataset d({"f"}, {{1, 2, 3, 4}}, {0, 1, 1, 0});
  EXPECT_EQ(d.positives(), 2u);
}

TEST(Dataset, BadIndicesThrow) {
  const Dataset d = blobs(10, 1.0);
  EXPECT_THROW(d.slice(5, 11), std::out_of_range);
  EXPECT_THROW(d.select_features({7}), std::out_of_range);
  EXPECT_THROW(d.select_rows({10}), std::out_of_range);
}

// ---- binning ----

TEST(Binning, CodesMonotoneWithValue) {
  std::vector<double> col(1000);
  util::Rng rng(3);
  for (auto& v : col) v = rng.uniform(-5, 5);
  const FeatureBinner binner = FeatureBinner::fit(col);
  EXPECT_LE(binner.bin_of(-10.0), binner.bin_of(0.0));
  EXPECT_LE(binner.bin_of(0.0), binner.bin_of(10.0));
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-5, 5), b = rng.uniform(-5, 5);
    if (a <= b) {
      EXPECT_LE(binner.bin_of(a), binner.bin_of(b));
    }
  }
}

TEST(Binning, ConstantColumnSingleBin) {
  const std::vector<double> col(100, 3.0);
  const FeatureBinner binner = FeatureBinner::fit(col);
  EXPECT_EQ(binner.num_bins(), 1u);
  EXPECT_EQ(binner.bin_of(2.0), binner.bin_of(4.0));
}

TEST(Binning, FewDistinctValuesGetDistinctBins) {
  const std::vector<double> col{1.0, 2.0, 3.0, 1.0, 2.0, 3.0};
  const FeatureBinner binner = FeatureBinner::fit(col);
  EXPECT_NE(binner.bin_of(1.0), binner.bin_of(2.0));
  EXPECT_NE(binner.bin_of(2.0), binner.bin_of(3.0));
}

TEST(Binning, UpperEdgeSeparates) {
  const std::vector<double> col{1.0, 2.0, 3.0, 4.0};
  const FeatureBinner binner = FeatureBinner::fit(col);
  const std::uint8_t c2 = binner.bin_of(2.0);
  const double edge = binner.upper_edge(c2);
  EXPECT_GE(edge, 2.0);
  EXPECT_LT(edge, 3.0);
}

TEST(Binning, BinnedDatasetShape) {
  const Dataset d = blobs(50, 2.0, 1, 3);
  const BinnedDataset binned(d);
  EXPECT_EQ(binned.num_rows(), 50u);
  EXPECT_EQ(binned.num_features(), 4u);
  EXPECT_EQ(binned.codes(0).size(), 50u);
}

// ---- decision tree ----

TEST(DecisionTree, PerfectlySeparableDataFitsExactly) {
  Dataset d({"x"}, {{1, 2, 3, 10, 11, 12}}, {0, 0, 0, 1, 1, 1});
  DecisionTree tree;
  tree.train(d);
  EXPECT_DOUBLE_EQ(tree.score(std::vector<double>{2.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.score(std::vector<double>{11.0}), 1.0);
}

TEST(DecisionTree, LearnsBlobs) {
  const Dataset train = blobs(2000, 4.0, 1);
  const Dataset test = blobs(500, 4.0, 2);
  DecisionTree tree;
  tree.train(train);
  EXPECT_GT(accuracy(tree, test), 0.9);
}

TEST(DecisionTree, MaxDepthRespected) {
  const Dataset train = blobs(500, 1.0, 1);
  TreeOptions opts;
  opts.max_depth = 3;
  DecisionTree tree(opts);
  tree.train(train);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, PureNodeIsLeaf) {
  Dataset d({"x"}, {{1, 2, 3}}, {0, 0, 0});
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.score(std::vector<double>{5.0}), 0.0);
}

TEST(DecisionTree, ImportancesFavorSignalFeature) {
  const Dataset train = blobs(2000, 3.0, 1, 3);
  DecisionTree tree;
  tree.train(train);
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  for (std::size_t f = 1; f < 4; ++f) {
    EXPECT_GT(imp[0], imp[f]);
  }
}

TEST(DecisionTree, EmptyTrainThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.train(Dataset{}), std::invalid_argument);
}

TEST(DecisionTree, ScoreBeforeTrainThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.score(std::vector<double>{1.0}), std::logic_error);
}

TEST(DecisionTree, PrintRulesMentionsFeature) {
  Dataset d({"my_detector"}, {{1, 2, 3, 10, 11, 12}}, {0, 0, 0, 1, 1, 1});
  DecisionTree tree;
  tree.train(d);
  const std::string rules = tree.print_rules(d.feature_names());
  EXPECT_NE(rules.find("my_detector"), std::string::npos);
  EXPECT_NE(rules.find("Anomaly"), std::string::npos);
}

// ---- random forest ----

TEST(RandomForest, ScoresAreVoteFractions) {
  ForestOptions opts;
  opts.num_trees = 10;
  RandomForest forest(opts);
  forest.train(blobs(500, 3.0));
  const Dataset test = blobs(100, 3.0, 9);
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const double s = forest.score(test.row(i));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    // With 10 trees the score is a multiple of 0.1.
    EXPECT_NEAR(s * 10.0, std::round(s * 10.0), 1e-9);
  }
}

TEST(RandomForest, DeterministicBySeed) {
  const Dataset train = blobs(500, 2.0);
  const Dataset test = blobs(50, 2.0, 4);
  ForestOptions opts;
  opts.seed = 77;
  RandomForest a(opts), b(opts);
  a.train(train);
  b.train(train);
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.score(test.row(i)), b.score(test.row(i)));
  }
}

TEST(RandomForest, DifferentSeedsGrowDifferentForests) {
  const Dataset train = blobs(500, 1.0);
  ForestOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  RandomForest a(a_opts), b(b_opts);
  a.train(train);
  b.train(train);
  const Dataset test = blobs(200, 1.0, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < test.num_rows() && !any_diff; ++i) {
    any_diff = a.score(test.row(i)) != b.score(test.row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  // Weak signal + noise features: the ensemble should generalize at least
  // as well as one fully grown tree.
  const Dataset train = blobs(3000, 1.5, 1, 8);
  const Dataset test = blobs(1000, 1.5, 2, 8);
  DecisionTree tree;
  tree.train(train);
  RandomForest forest;
  forest.train(train);
  EXPECT_GE(accuracy(forest, test) + 0.01, accuracy(tree, test));
}

TEST(RandomForest, RobustToIrrelevantFeatures) {
  // The Fig 10 property in miniature: adding many noise features should
  // not collapse forest accuracy.
  const Dataset few_noise = blobs(2000, 3.0, 1, 2);
  const Dataset many_noise = blobs(2000, 3.0, 1, 40);
  const Dataset test_few = blobs(500, 3.0, 2, 2);
  const Dataset test_many = blobs(500, 3.0, 2, 40);
  RandomForest a, b;
  a.train(few_noise);
  b.train(many_noise);
  EXPECT_GT(accuracy(b, test_many), accuracy(a, test_few) - 0.05);
}

TEST(RandomForest, ClassifyUsesCthld) {
  RandomForest forest;
  forest.train(blobs(500, 4.0));
  const std::vector<double> anomalous{6.0, 0.0};
  EXPECT_TRUE(forest.classify(anomalous, 0.5));
  EXPECT_FALSE(forest.classify(anomalous, 1.01));  // unreachable threshold
}

TEST(RandomForest, ImportancesNormalized) {
  RandomForest forest;
  forest.train(blobs(1000, 2.0, 1, 5));
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 6u);
  const double sum = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Signal feature dominates.
  for (std::size_t f = 1; f < imp.size(); ++f) EXPECT_GT(imp[0], imp[f]);
}

TEST(RandomForest, TreeCountMatchesOptions) {
  ForestOptions opts;
  opts.num_trees = 7;
  RandomForest forest(opts);
  forest.train(blobs(200, 2.0));
  EXPECT_EQ(forest.tree_count(), 7u);
}

// ---- linear models ----

TEST(LogisticRegression, LearnsLinearBoundary) {
  const Dataset train = blobs(2000, 3.0);
  const Dataset test = blobs(500, 3.0, 6);
  LogisticRegression lr;
  lr.train(train);
  EXPECT_GT(accuracy(lr, test), 0.9);
}

TEST(LogisticRegression, ScoresAreProbabilities) {
  LogisticRegression lr;
  lr.train(blobs(500, 2.0));
  const Dataset test = blobs(100, 2.0, 3);
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const double s = lr.score(test.row(i));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(LinearSvm, LearnsLinearBoundary) {
  const Dataset train = blobs(2000, 3.0);
  const Dataset test = blobs(500, 3.0, 6);
  LinearSvm svm;
  svm.train(train);
  EXPECT_GT(accuracy(svm, test), 0.85);
}

TEST(LinearModels, HandleImbalancedData) {
  // 5% positives: class weighting must keep recall usable.
  const Dataset train = blobs(4000, 3.5, 1, 1, 0.05);
  const Dataset test = blobs(1000, 3.5, 2, 1, 0.05);
  LogisticRegression lr;
  lr.train(train);
  std::size_t tp = 0, pos = 0;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    if (test.label(i) != 0) {
      ++pos;
      tp += lr.score(test.row(i)) >= 0.5;
    }
  }
  ASSERT_GT(pos, 0u);
  EXPECT_GT(static_cast<double>(tp) / static_cast<double>(pos), 0.5);
}

TEST(FeatureScalerTest, StandardizesColumns) {
  const Dataset d = blobs(1000, 0.0);
  FeatureScaler scaler;
  scaler.fit(d);
  // Transform all rows; each column should have ~zero mean, unit variance.
  util::RunningStats rs;
  for (std::size_t i = 0; i < d.num_rows(); ++i) {
    rs.add(scaler.transform(d.row(i))[0]);
  }
  EXPECT_NEAR(rs.mean(), 0.0, 1e-9);
  EXPECT_NEAR(rs.stddev(), 1.0, 1e-9);
}

// ---- naive Bayes ----

TEST(NaiveBayes, LearnsBlobs) {
  const Dataset train = blobs(2000, 3.0);
  const Dataset test = blobs(500, 3.0, 6);
  GaussianNaiveBayes nb;
  nb.train(train);
  EXPECT_GT(accuracy(nb, test), 0.9);
}

TEST(NaiveBayes, PosteriorInUnitInterval) {
  GaussianNaiveBayes nb;
  nb.train(blobs(500, 2.0));
  const Dataset test = blobs(100, 2.0, 3);
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const double s = nb.score(test.row(i));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(NaiveBayes, HurtByRedundantFeatures) {
  // Duplicate the signal feature many times: NB double-counts the
  // "independent" evidence and its calibration degrades; the forest does
  // not. This is the core Fig 10 contrast.
  const Dataset base_train = blobs(3000, 1.2, 1, 0);
  const Dataset base_test = blobs(1000, 1.2, 2, 0);
  auto duplicate = [](const Dataset& d, std::size_t copies) {
    std::vector<std::vector<double>> cols;
    std::vector<std::string> names;
    for (std::size_t c = 0; c < copies; ++c) {
      std::vector<double> col(d.num_rows());
      for (std::size_t i = 0; i < d.num_rows(); ++i) {
        col[i] = d.value(i, 0);
      }
      cols.push_back(std::move(col));
      names.push_back("copy" + std::to_string(c));
    }
    return Dataset(std::move(names), std::move(cols), d.labels());
  };
  GaussianNaiveBayes nb1, nb30;
  nb1.train(duplicate(base_train, 1));
  nb30.train(duplicate(base_train, 30));
  // Compare Brier-style calibration: mean squared error of the posterior.
  auto brier = [&](const GaussianNaiveBayes& nb, const Dataset& test) {
    double sum = 0.0;
    for (std::size_t i = 0; i < test.num_rows(); ++i) {
      const double err =
          nb.score(test.row(i)) - (test.label(i) != 0 ? 1.0 : 0.0);
      sum += err * err;
    }
    return sum / static_cast<double>(test.num_rows());
  };
  EXPECT_GT(brier(nb30, duplicate(base_test, 30)),
            brier(nb1, duplicate(base_test, 1)));
}

// ---- mutual information ----

TEST(MutualInformation, SignalBeatsNoise) {
  const Dataset d = blobs(3000, 3.0, 1, 4);
  const auto order = rank_features_by_mutual_information(d);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);  // the signal feature ranks first
}

TEST(MutualInformation, IndependentFeatureNearZero) {
  const Dataset d = blobs(5000, 0.0);
  const double mi = mutual_information(d.column(0), d.labels());
  EXPECT_LT(mi, 0.01);
}

TEST(MutualInformation, PerfectPredictorHighMi) {
  std::vector<double> feature(1000);
  std::vector<std::uint8_t> labels(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    labels[i] = i % 2;
    feature[i] = labels[i] != 0 ? 10.0 : 0.0;
  }
  // MI of a balanced perfect predictor is ln 2.
  EXPECT_NEAR(mutual_information(feature, labels), std::log(2.0), 0.01);
}

// ---- k-fold ----

TEST(KFold, FoldsPartitionRows) {
  const auto folds = contiguous_folds(103, 5);
  ASSERT_EQ(folds.size(), 5u);
  EXPECT_EQ(folds.front().test_begin, 0u);
  EXPECT_EQ(folds.back().test_end, 103u);
  for (std::size_t f = 0; f + 1 < folds.size(); ++f) {
    EXPECT_EQ(folds[f].test_end, folds[f + 1].test_begin);
  }
}

TEST(KFold, TrainingRowsExcludeTestBlock) {
  const auto folds = contiguous_folds(10, 5);
  const auto rows = training_rows(folds[1], 10);
  ASSERT_EQ(rows.size(), 8u);
  for (std::size_t r : rows) {
    EXPECT_TRUE(r < folds[1].test_begin || r >= folds[1].test_end);
  }
}

TEST(KFold, InvalidArgsThrow) {
  EXPECT_THROW(contiguous_folds(10, 1), std::invalid_argument);
  EXPECT_THROW(contiguous_folds(3, 5), std::invalid_argument);
}

}  // namespace
