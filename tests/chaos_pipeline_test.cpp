// Chaos suite for the fault-tolerance layer (DESIGN.md §5f): under every
// injected fault class — ingest gap / NaN / duplicate / disorder, detector
// throw, NaN severity, repeated failure → quarantine, forest training
// failure — the pipeline completes with degraded-but-finite output, the
// opprentice.faults.* / opprentice.detector.* metrics account for every
// event, and with no fault plan installed the boundary is transparent:
// outputs are byte-identical to an unguarded run.
//
// ctest label: chaos (CI runs these under ASan/UBSan).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/fleet_engine.hpp"
#include "core/weekly_driver.hpp"
#include "datagen/kpi_presets.hpp"
#include "detectors/feature_extractor.hpp"
#include "detectors/registry.hpp"
#include "obs/metrics.hpp"
#include "timeseries/repair.hpp"
#include "util/fault_injection.hpp"

namespace {

using namespace opprentice;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Installs a fault plan for one test and clears it on scope exit; tests
// in this binary share the process-wide plan slot.
struct PlanGuard {
  explicit PlanGuard(const util::FaultPlan& plan) {
    util::set_fault_plan(plan);
  }
  ~PlanGuard() { util::clear_fault_plan(); }
};

// Counters are process-wide and shared across tests: assert on deltas.
std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

// A clean ten-minute KPI stream: strictly ordered, on-grid, finite.
std::vector<ts::RawPoint> clean_points(std::size_t n,
                                       std::int64_t interval = 600,
                                       std::int64_t start = 1700000000) {
  std::vector<ts::RawPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({start + static_cast<std::int64_t>(i) * interval,
                      10.0 + std::sin(static_cast<double>(i) * 0.1)});
  }
  return points;
}

// Detectors that misbehave on purpose.
class BombDetector : public detectors::Detector {
 public:
  std::string name() const override { return "bomb(mode=throw)"; }
  std::size_t warmup_points() const override { return 0; }
  double feed(double) override { throw std::runtime_error("boom"); }
  void reset() override {}
};

class NanDetector : public detectors::Detector {
 public:
  std::string name() const override { return "bomb(mode=nan)"; }
  std::size_t warmup_points() const override { return 0; }
  double feed(double) override { return kNan; }
  void reset() override {}
};

class EchoDetector : public detectors::Detector {
 public:
  std::string name() const override { return "echo()"; }
  std::size_t warmup_points() const override { return 0; }
  double feed(double value) override { return std::fabs(value); }
  void reset() override {}
};

ts::TimeSeries small_series(std::size_t n) {
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(5.0 + std::cos(static_cast<double>(i) * 0.2));
  }
  return ts::TimeSeries("chaos", 1700000000, 600, std::move(values));
}

// ---- fault spec / plan ---------------------------------------------------

TEST(FaultSpec, ParsesSeedAndRates) {
  const auto plan = util::parse_fault_spec(
      "seed=7, detector.throw=0.25; ingest.nan=1");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.rates.at("detector.throw"), 0.25);
  EXPECT_DOUBLE_EQ(plan.rates.at("ingest.nan"), 1.0);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(util::parse_fault_spec("detector.throw"),
               std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("no.such.site=0.5"),
               std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("detector.throw=1.5"),
               std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("detector.throw=abc"),
               std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("seed=xyz"), std::invalid_argument);
}

TEST(FaultSpec, DecisionsArePureFunctionsOfSiteAndKey) {
  util::FaultPlan plan;
  plan.seed = 99;
  plan.rates["detector.throw"] = 0.5;
  plan.rates["detector.nan"] = 0.0;
  const PlanGuard guard(plan);

  ASSERT_TRUE(util::faults_enabled());
  bool any_fired = false;
  bool any_skipped = false;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const bool first = util::fault_fires(util::faults::kDetectorThrow, key);
    // Re-asking must answer the same: no hidden counters.
    EXPECT_EQ(util::fault_fires(util::faults::kDetectorThrow, key), first);
    EXPECT_FALSE(util::fault_fires(util::faults::kDetectorNan, key));
    any_fired = any_fired || first;
    any_skipped = any_skipped || !first;
  }
  EXPECT_TRUE(any_fired);
  EXPECT_TRUE(any_skipped);
}

TEST(FaultSpec, NoPlanMeansNoFaults) {
  util::clear_fault_plan();
  EXPECT_FALSE(util::faults_enabled());
  EXPECT_FALSE(util::fault_fires(util::faults::kDetectorThrow, 1));
}

// ---- ingest repair -------------------------------------------------------

TEST(IngestRepair, PolicyParsing) {
  EXPECT_EQ(ts::parse_repair_policy("fail"), ts::RepairPolicy::kFail);
  EXPECT_EQ(ts::parse_repair_policy("drop"), ts::RepairPolicy::kDrop);
  EXPECT_EQ(ts::parse_repair_policy("fill-interpolate"),
            ts::RepairPolicy::kFillInterpolate);
  EXPECT_THROW(ts::parse_repair_policy("interpolate"),
               std::invalid_argument);
}

TEST(IngestRepair, CleanStreamIsBitwiseIdentity) {
  const auto points = clean_points(64);
  const auto result =
      ts::repair_series("clean", points, 0, ts::RepairPolicy::kDrop);
  EXPECT_TRUE(result.report.clean());
  ASSERT_EQ(result.series.size(), points.size());
  EXPECT_EQ(result.series.interval_seconds(), 600);
  EXPECT_EQ(result.series.start_epoch(), points.front().timestamp);
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Bitwise: the repair pass must not perturb clean values at all.
    EXPECT_EQ(result.series[i], points[i].value) << "point " << i;
  }
}

TEST(IngestRepair, CountsAndRepairsEveryDefectClass) {
  auto points = clean_points(20);
  std::swap(points[3], points[4]);           // out of order
  points[7].timestamp = points[6].timestamp; // duplicate slot
  points.erase(points.begin() + 10);         // gap
  points[12].value = kNan;                   // bad value
  points[14].timestamp += 60;                // misaligned (snaps back)

  const auto before = counter_value("opprentice.ingest.gaps");
  const auto result =
      ts::repair_series("dirty", points, 600, ts::RepairPolicy::kDrop);
  EXPECT_EQ(result.report.out_of_order, 1u);
  EXPECT_EQ(result.report.duplicates, 1u);
  EXPECT_GE(result.report.gaps, 2u);  // the erased point + the dup's slot
  EXPECT_EQ(result.report.bad_values, 1u);
  EXPECT_EQ(result.report.misaligned, 1u);
  EXPECT_EQ(counter_value("opprentice.ingest.gaps") - before,
            result.report.gaps);

  // The repaired series is back on a strict grid with NaN for missing.
  EXPECT_EQ(result.series.interval_seconds(), 600);
  std::size_t nan_count = 0;
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    if (std::isnan(result.series[i])) ++nan_count;
  }
  EXPECT_EQ(nan_count, result.report.gaps + result.report.bad_values);
}

TEST(IngestRepair, FailPolicyThrowsOnDirtyStreams) {
  auto points = clean_points(10);
  points[4].value = kNan;
  EXPECT_THROW(
      ts::repair_series("dirty", points, 600, ts::RepairPolicy::kFail),
      std::runtime_error);
  // ...but accepts a clean stream.
  EXPECT_NO_THROW(ts::repair_series("clean", clean_points(10), 600,
                                    ts::RepairPolicy::kFail));
}

TEST(IngestRepair, FillInterpolateBridgesGaps) {
  auto points = clean_points(5);
  points[1].value = 0.0;
  points[3].value = 10.0;
  points.erase(points.begin() + 2);  // gap between values 0 and 10
  const auto result = ts::repair_series("gappy", points, 600,
                                        ts::RepairPolicy::kFillInterpolate);
  ASSERT_EQ(result.series.size(), 5u);
  EXPECT_DOUBLE_EQ(result.series[2], 5.0);  // linear midpoint
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.series[i])) << "point " << i;
  }
}

TEST(IngestRepair, EdgeGapsCopyNearestFiniteValue) {
  auto points = clean_points(4);
  points[0].value = kNan;
  points[3].value = kNan;
  const auto result = ts::repair_series("edges", points, 600,
                                        ts::RepairPolicy::kFillInterpolate);
  ASSERT_EQ(result.series.size(), 4u);
  EXPECT_DOUBLE_EQ(result.series[0], result.series[1]);
  EXPECT_DOUBLE_EQ(result.series[3], result.series[2]);
}

TEST(IngestRepair, RejectsIntervalsThatDoNotDivideADay) {
  EXPECT_THROW(
      ts::repair_series("bad", clean_points(4, 7000), 7000,
                        ts::RepairPolicy::kDrop),
      std::runtime_error);
}

TEST(IngestRepair, InjectedIngestFaultsAreDeterministic) {
  util::FaultPlan plan;
  plan.seed = 4242;
  plan.rates["ingest.gap"] = 0.05;
  plan.rates["ingest.nan"] = 0.05;
  plan.rates["ingest.duplicate"] = 0.05;
  plan.rates["ingest.disorder"] = 0.05;
  const PlanGuard guard(plan);

  auto a = clean_points(400);
  auto b = clean_points(400);
  const auto injected_before = counter_value("opprentice.faults.injected");
  ts::inject_ingest_faults(a);
  ts::inject_ingest_faults(b);
  EXPECT_GT(counter_value("opprentice.faults.injected") - injected_before,
            0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << "point " << i;
  }
  EXPECT_LT(a.size(), 400u);  // at 5% over 400 points, some gap fired

  // The faulted stream still repairs into a finite pipeline input.
  const auto result = ts::repair_series("faulted", a, 600,
                                        ts::RepairPolicy::kFillInterpolate);
  EXPECT_GT(result.report.total(), 0u);
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.series[i])) << "point " << i;
  }
}

// ---- detector fault boundary ---------------------------------------------

TEST(DetectorBoundary, ThrowingConfigIsIsolatedAndQuarantined) {
  const ts::TimeSeries series = small_series(32);
  std::vector<detectors::DetectorPtr> dets;
  dets.push_back(std::make_unique<BombDetector>());
  dets.push_back(std::make_unique<EchoDetector>());

  const auto exceptions_before =
      counter_value("opprentice.detector.exceptions");
  const auto quarantined_before =
      counter_value("opprentice.detector.quarantined");
  const auto features = detectors::extract_features(series, dets);

  // The bomb column degraded to neutral everywhere; quarantine tripped
  // after the default three consecutive failures, after which the
  // detector is no longer fed (so exactly three exceptions).
  ASSERT_EQ(features.num_features(), 2u);
  EXPECT_EQ(features.quarantined[0], 1);
  EXPECT_EQ(features.quarantined[1], 0);
  EXPECT_EQ(features.num_quarantined(), 1u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(features.columns[0][i], 0.0) << "point " << i;
  }
  EXPECT_EQ(counter_value("opprentice.detector.exceptions") -
                exceptions_before,
            3u);
  EXPECT_EQ(counter_value("opprentice.detector.quarantined") -
                quarantined_before,
            1u);

  // The live column is untouched by its neighbor's failures.
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(features.columns[1][i], std::fabs(series[i])) << "point " << i;
  }
}

TEST(DetectorBoundary, NanSeveritiesAreScrubbedToNeutral) {
  const ts::TimeSeries series = small_series(16);
  std::vector<detectors::DetectorPtr> dets;
  dets.push_back(std::make_unique<NanDetector>());

  const auto scrubbed_before = counter_value("opprentice.detector.scrubbed");
  const auto features = detectors::extract_features(series, dets);
  EXPECT_EQ(counter_value("opprentice.detector.scrubbed") - scrubbed_before,
            3u);  // three scrubs, then quarantine stops feeding
  EXPECT_EQ(features.quarantined[0], 1);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(features.columns[0][i], 0.0) << "point " << i;
  }
}

TEST(DetectorBoundary, IntermittentFailuresDoNotQuarantine) {
  // Fails twice, recovers, fails twice, ... — never three in a row.
  class FlakyDetector : public detectors::Detector {
   public:
    std::string name() const override { return "flaky()"; }
    std::size_t warmup_points() const override { return 0; }
    double feed(double) override {
      const std::size_t at = calls_++;
      if (at % 3 != 2) throw std::runtime_error("flake");
      return 1.0;
    }
    void reset() override { calls_ = 0; }

   private:
    std::size_t calls_ = 0;
  };

  const ts::TimeSeries series = small_series(30);
  std::vector<detectors::DetectorPtr> dets;
  dets.push_back(std::make_unique<FlakyDetector>());
  const auto features = detectors::extract_features(series, dets);
  EXPECT_EQ(features.quarantined[0], 0);
  EXPECT_EQ(features.num_quarantined(), 0u);
  // Failed points are neutral, recovered points carry their severity.
  EXPECT_EQ(features.columns[0][0], 0.0);
  EXPECT_EQ(features.columns[0][2], 1.0);
}

TEST(DetectorBoundary, StreamingExtractorQuarantinesToo) {
  std::vector<detectors::DetectorPtr> dets;
  dets.push_back(std::make_unique<BombDetector>());
  dets.push_back(std::make_unique<EchoDetector>());
  detectors::StreamingExtractor extractor(std::move(dets));

  for (std::size_t i = 0; i < 8; ++i) {
    const auto features = extractor.feed(3.0);
    ASSERT_EQ(features.size(), 2u);
    EXPECT_EQ(features[0], 0.0) << "point " << i;
    EXPECT_EQ(features[1], 3.0) << "point " << i;
  }
  EXPECT_EQ(extractor.quarantined()[0], 1);
  EXPECT_EQ(extractor.quarantined()[1], 0);

  extractor.reset();
  EXPECT_EQ(extractor.quarantined()[0], 0);
}

TEST(DetectorBoundary, ZeroFaultExtractionMatchesUnguardedLoop) {
  // With no plan installed the boundary must be transparent: extraction
  // through the guarded path is byte-identical to feeding the detectors
  // by hand with no boundary at all.
  util::clear_fault_plan();
  const datagen::KpiPreset preset = datagen::pv_preset(datagen::Scale::kSmall);
  datagen::KpiModel model = preset.model;
  model.weeks = 1;
  const ts::TimeSeries series =
      datagen::generate_kpi(model, preset.injection).series;
  const detectors::SeriesContext ctx{series.points_per_day(),
                                     series.points_per_week()};

  const auto features = detectors::extract_standard_features(series);
  ASSERT_EQ(features.num_features(), 133u);
  EXPECT_EQ(features.num_quarantined(), 0u);

  auto reference = detectors::standard_configurations(ctx);
  ASSERT_EQ(reference.size(), features.num_features());
  for (std::size_t f = 0; f < reference.size(); ++f) {
    reference[f]->reset();
    std::vector<double> column(series.size(), 0.0);
    for (std::size_t i = 0; i < series.size(); ++i) {
      column[i] = reference[f]->feed(series[i]);
    }
    const std::size_t warm =
        std::min(reference[f]->warmup_points(), series.size());
    std::fill(column.begin(),
              column.begin() + static_cast<std::ptrdiff_t>(warm), 0.0);
    ASSERT_EQ(features.columns[f], column)
        << "column " << features.feature_names[f];
  }
}

// ---- end-to-end: the weekly driver under fire ----------------------------

TEST(ChaosPipeline, WeeklyDriverSurvivesDetectorAndForestFaults) {
  util::FaultPlan plan;
  plan.seed = 777;
  plan.rates["detector.throw"] = 0.02;
  plan.rates["detector.nan"] = 0.02;
  plan.rates["forest.train"] = 0.5;
  const PlanGuard guard(plan);

  datagen::KpiPreset preset = datagen::pv_preset(datagen::Scale::kSmall);
  preset.model.weeks = 4;
  const auto injected_before = counter_value("opprentice.faults.injected");
  const core::ExperimentData data = core::prepare_experiment(
      datagen::generate_kpi(preset.model, preset.injection));

  core::DriverOptions opt;
  opt.initial_weeks = 2;
  opt.forest.num_trees = 12;
  opt.forest.seed = 42;

  const auto run = core::run_weekly_incremental(
      data.dataset, data.points_per_week, data.warmup, opt);
  ASSERT_FALSE(run.weeks.empty());
  // Degraded-but-finite: a failed week's scores stay NaN (its decisions
  // are 0), but nothing is infinite and nothing aborted the run.
  for (const double s : run.scores) {
    EXPECT_FALSE(std::isinf(s));
  }
  const auto decisions = core::decisions_from_weekly_cthlds(
      run, std::vector<double>(run.weeks.size(), 0.5));
  EXPECT_EQ(decisions.size(), run.scores.size());
  EXPECT_GT(counter_value("opprentice.faults.injected") - injected_before,
            0u);

  // The faulted run itself is deterministic: same plan, same output.
  const auto rerun = core::run_weekly_incremental(
      data.dataset, data.points_per_week, data.warmup, opt);
  ASSERT_EQ(rerun.scores.size(), run.scores.size());
  for (std::size_t i = 0; i < run.scores.size(); ++i) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &run.scores[i], sizeof(a));
    std::memcpy(&b, &rerun.scores[i], sizeof(b));
    EXPECT_EQ(a, b) << "row " << i;
  }
}

TEST(ChaosPipeline, WeeklyDriverSurvivesIngestFaults) {
  // Dirty the stream itself, repair it, and run the full pipeline on the
  // repaired grid with synthetic labels.
  datagen::KpiPreset preset = datagen::pv_preset(datagen::Scale::kSmall);
  preset.model.weeks = 3;
  const ts::TimeSeries original =
      datagen::generate_kpi(preset.model, preset.injection).series;

  std::vector<ts::RawPoint> points;
  points.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    points.push_back({original.timestamp(i), original[i]});
  }
  {
    util::FaultPlan plan;
    plan.seed = 31337;
    plan.rates["ingest.gap"] = 0.02;
    plan.rates["ingest.nan"] = 0.02;
    plan.rates["ingest.duplicate"] = 0.01;
    plan.rates["ingest.disorder"] = 0.01;
    const PlanGuard guard(plan);
    ts::inject_ingest_faults(points);
  }  // detector/forest run fault-free: this test isolates ingest damage

  const auto repaired = ts::repair_series(
      "ingest-chaos", std::move(points), 0, ts::RepairPolicy::kFillInterpolate);
  EXPECT_GT(repaired.report.total(), 0u);
  ASSERT_GE(repaired.series.size(), 2u * repaired.series.points_per_week());

  // Synthetic labels: one window per week on the repaired grid.
  ts::LabelSet labels;
  const std::size_t ppw = repaired.series.points_per_week();
  for (std::size_t begin = 100; begin + 30 < repaired.series.size();
       begin += ppw) {
    labels.add_window({begin, begin + 30});
  }
  const ml::Dataset dataset = core::build_dataset(repaired.series, labels);

  core::DriverOptions opt;
  opt.initial_weeks = 2;
  opt.forest.num_trees = 12;
  opt.forest.seed = 42;
  const auto run = core::run_weekly_incremental(dataset, ppw, ppw, opt);
  ASSERT_FALSE(run.weeks.empty());
  for (const double s : run.scores) {
    EXPECT_FALSE(std::isinf(s));
  }
}

// ---- fleet-level ingest defects (DESIGN.md §5i) --------------------------

// Three series fed interleaved dirty chunks through one engine, each
// carrying exactly one handcrafted defect class: repairs must be
// attributed to the right series id, in the per-series totals, the
// global counters, and the flight-recorder details.
TEST(ChaosFleet, InterleavedIngestAttributesRepairsPerSeries) {
  constexpr std::int64_t kStart = 1700000000;
  constexpr std::int64_t kInterval = 600;
  auto at = [&](std::size_t slot) {
    return kStart + static_cast<std::int64_t>(slot) * kInterval;
  };
  auto value_at = [](std::size_t slot) {
    return 10.0 + std::sin(static_cast<double>(slot) * 0.1);
  };

  // Four 8-slot chunks per series. A drops one interior slot in chunks
  // 0-2 (3 gaps), B repeats one slot in chunks 0-1 (2 duplicates), C
  // swaps one adjacent pair in chunks 1-2 (2 out-of-order points).
  auto chunk_for = [&](char series, std::size_t chunk) {
    std::vector<ts::RawPoint> points;
    const std::size_t begin = 8 * chunk;
    for (std::size_t slot = begin; slot < begin + 8; ++slot) {
      points.push_back({at(slot), value_at(slot)});
    }
    if (series == 'A' && chunk < 3) {
      points.erase(points.begin() + 5);  // slots 5, 13, 21 go missing
    }
    if (series == 'B' && chunk < 2) {
      points.insert(points.begin() + 5, points[4]);  // slots 4, 12 repeat
    }
    if (series == 'C' && chunk >= 1 && chunk < 3) {
      std::swap(points[2], points[3]);  // slots 10/11 and 18/19 swap
    }
    return points;
  };

  const std::uint64_t gaps_before = counter_value("opprentice.ingest.gaps");
  const std::uint64_t dups_before =
      counter_value("opprentice.ingest.duplicates");
  const std::uint64_t disorder_before =
      counter_value("opprentice.ingest.out_of_order");

  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{16, 112};
  options.detector_factory = core::fleet_lite_configurations;
  core::FleetEngine engine(options);
  const auto a = engine.add_series("fleet-gappy");
  const auto b = engine.add_series("fleet-doubled");
  const auto c = engine.add_series("fleet-shuffled");

  for (std::size_t chunk = 0; chunk < 4; ++chunk) {
    engine.ingest_raw(a, chunk_for('A', chunk), kInterval,
                      ts::RepairPolicy::kFillInterpolate);
    engine.ingest_raw(b, chunk_for('B', chunk), kInterval,
                      ts::RepairPolicy::kFillInterpolate);
    engine.ingest_raw(c, chunk_for('C', chunk), kInterval,
                      ts::RepairPolicy::kFillInterpolate);
  }

  const auto stats_a = engine.stats(a);
  EXPECT_EQ(stats_a.repairs.gaps, 3u);
  EXPECT_EQ(stats_a.repairs.duplicates, 0u);
  EXPECT_EQ(stats_a.repairs.out_of_order, 0u);
  EXPECT_EQ(stats_a.points_seen, 32u) << "gap slots must be interpolated";

  const auto stats_b = engine.stats(b);
  EXPECT_EQ(stats_b.repairs.duplicates, 2u);
  EXPECT_EQ(stats_b.repairs.gaps, 0u);
  EXPECT_EQ(stats_b.repairs.out_of_order, 0u);
  EXPECT_EQ(stats_b.points_seen, 32u) << "duplicate slots must collapse";

  const auto stats_c = engine.stats(c);
  EXPECT_EQ(stats_c.repairs.out_of_order, 2u);
  EXPECT_EQ(stats_c.repairs.gaps, 0u);
  EXPECT_EQ(stats_c.repairs.duplicates, 0u);
  EXPECT_EQ(stats_c.points_seen, 32u);

  // The global instruments carry exactly the per-series sums.
  EXPECT_EQ(counter_value("opprentice.ingest.gaps"), gaps_before + 3);
  EXPECT_EQ(counter_value("opprentice.ingest.duplicates"), dups_before + 2);
  EXPECT_EQ(counter_value("opprentice.ingest.out_of_order"),
            disorder_before + 2);
}

// Per-call reports are this call's defects only; the per-series total
// accumulates across interleaved calls and survives clean chunks.
TEST(ChaosFleet, IngestReportIsPerCallAndTotalsAccumulate) {
  constexpr std::int64_t kInterval = 600;
  core::FleetOptions options;
  options.ctx = detectors::SeriesContext{16, 112};
  options.detector_factory = core::fleet_lite_configurations;
  core::FleetEngine engine(options);
  const auto s = engine.add_series("fleet-mixed");

  // Chunk 1: one gap. Chunk 2: clean. Chunk 3: one duplicate.
  std::vector<ts::RawPoint> chunk1 = clean_points(8);
  chunk1.erase(chunk1.begin() + 3);
  std::vector<ts::RawPoint> chunk2 = clean_points(8, kInterval,
                                                  1700000000 + 8 * kInterval);
  std::vector<ts::RawPoint> chunk3 = clean_points(8, kInterval,
                                                  1700000000 + 16 * kInterval);
  chunk3.insert(chunk3.begin() + 2, chunk3[1]);

  const auto report1 = engine.ingest_raw(s, std::move(chunk1), kInterval,
                                         ts::RepairPolicy::kFillInterpolate);
  EXPECT_EQ(report1.repairs.gaps, 1u);
  EXPECT_EQ(report1.repairs.duplicates, 0u);

  const auto report2 = engine.ingest_raw(s, std::move(chunk2), kInterval,
                                         ts::RepairPolicy::kFillInterpolate);
  EXPECT_EQ(report2.repairs.total(), 0u) << "clean chunks must report nothing";

  const auto report3 = engine.ingest_raw(s, std::move(chunk3), kInterval,
                                         ts::RepairPolicy::kFillInterpolate);
  EXPECT_EQ(report3.repairs.duplicates, 1u);
  EXPECT_EQ(report3.repairs.gaps, 0u);

  const auto stats = engine.stats(s);
  EXPECT_EQ(stats.repairs.gaps, 1u);
  EXPECT_EQ(stats.repairs.duplicates, 1u);
  EXPECT_EQ(stats.points_seen, 24u);
}

}  // namespace
