// Unit tests for src/labeling: the operator model and the labeling-time
// cost model behind Fig 14.
#include <gtest/gtest.h>

#include "labeling/labeling_session.hpp"
#include "labeling/operator_model.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::labeling;

ts::LabelSet truth_windows() {
  ts::LabelSet ls;
  ls.add_window({100, 110});
  ls.add_window({300, 330});
  ls.add_window({500, 502});
  return ls;
}

TEST(OperatorModel, NoNoiseIsIdentity) {
  OperatorModel m;
  m.boundary_jitter = 0;
  m.miss_probability = 0.0;
  m.merge_gap = 0;
  const auto labeled = simulate_labeling(truth_windows(), 1000, m);
  EXPECT_EQ(labeled.windows(), truth_windows().windows());
}

TEST(OperatorModel, JitterStaysBounded) {
  OperatorModel m;
  m.boundary_jitter = 3;
  m.miss_probability = 0.0;
  const ts::LabelSet truth_set = truth_windows();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    m.seed = seed;
    const auto labeled = simulate_labeling(truth_set, 1000, m);
    ASSERT_EQ(labeled.window_count(), 3u);
    const auto& truth = truth_set.windows();
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& w = labeled.windows()[i];
      EXPECT_LE(std::max(w.begin, truth[i].begin) -
                    std::min(w.begin, truth[i].begin),
                3u);
      EXPECT_LE(std::max(w.end, truth[i].end) - std::min(w.end, truth[i].end),
                3u);
    }
  }
}

TEST(OperatorModel, MissProbabilityDropsWindows) {
  OperatorModel m;
  m.boundary_jitter = 0;
  m.miss_probability = 1.0;
  const auto labeled = simulate_labeling(truth_windows(), 1000, m);
  EXPECT_EQ(labeled.window_count(), 0u);
}

TEST(OperatorModel, MergeGapJoinsCloseWindows) {
  ts::LabelSet truth;
  truth.add_window({10, 20});
  truth.add_window({22, 30});  // 2-point gap
  OperatorModel m;
  m.boundary_jitter = 0;
  m.miss_probability = 0.0;
  m.merge_gap = 3;
  const auto labeled = simulate_labeling(truth, 100, m);
  ASSERT_EQ(labeled.window_count(), 1u);
  EXPECT_EQ(labeled.windows()[0], (ts::LabelWindow{10, 30}));
}

TEST(OperatorModel, WindowsNeverVanishFromJitter) {
  // A 1-point window with big jitter must survive as >= 1 point.
  ts::LabelSet truth;
  truth.add_window({50, 51});
  OperatorModel m;
  m.boundary_jitter = 5;
  m.miss_probability = 0.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    m.seed = seed;
    const auto labeled = simulate_labeling(truth, 100, m);
    EXPECT_GE(labeled.anomalous_points(), 1u) << "seed " << seed;
  }
}

TEST(OperatorModel, ClampsToSeriesBounds) {
  ts::LabelSet truth;
  truth.add_window({0, 3});
  truth.add_window({97, 100});
  OperatorModel m;
  m.boundary_jitter = 5;
  m.miss_probability = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    m.seed = seed;
    const auto labeled = simulate_labeling(truth, 100, m);
    for (const auto& w : labeled.windows()) {
      EXPECT_LE(w.end, 100u);
    }
  }
}

TEST(OperatorModel, Deterministic) {
  OperatorModel m;
  m.seed = 7;
  const auto a = simulate_labeling(truth_windows(), 1000, m);
  const auto b = simulate_labeling(truth_windows(), 1000, m);
  EXPECT_EQ(a.windows(), b.windows());
}

// ---- labeling time (Fig 14) ----

ts::TimeSeries month_series(std::size_t months) {
  // 10-minute bins: 1008 points/week, 4032 per "month".
  return ts::TimeSeries("kpi", 0, 600,
                        std::vector<double>(months * 4032, 1.0));
}

TEST(LabelingTime, OneCostPerMonth) {
  const auto costs =
      estimate_monthly_costs(month_series(3), ts::LabelSet{}, {});
  ASSERT_EQ(costs.size(), 3u);
  for (const auto& c : costs) EXPECT_EQ(c.anomalous_windows, 0u);
}

TEST(LabelingTime, MoreWindowsMoreTime) {
  ts::LabelSet few, many;
  for (std::size_t i = 0; i < 3; ++i) few.add_window({i * 100, i * 100 + 5});
  for (std::size_t i = 0; i < 30; ++i) {
    many.add_window({i * 100, i * 100 + 5});
  }
  const auto cost_few = estimate_monthly_costs(month_series(1), few, {});
  const auto cost_many = estimate_monthly_costs(month_series(1), many, {});
  ASSERT_EQ(cost_few.size(), 1u);
  ASSERT_EQ(cost_many.size(), 1u);
  EXPECT_EQ(cost_few[0].anomalous_windows, 3u);
  EXPECT_EQ(cost_many[0].anomalous_windows, 30u);
  EXPECT_GT(cost_many[0].minutes, cost_few[0].minutes);
}

TEST(LabelingTime, MonthsUnderSixMinutesAtPaperDensity) {
  // §5.7: labeling one month is under ~6 minutes at the paper's anomaly
  // window density (tens of windows per month).
  ts::LabelSet ls;
  for (std::size_t i = 0; i < 15; ++i) ls.add_window({i * 200, i * 200 + 8});
  const auto costs = estimate_monthly_costs(month_series(1), ls, {});
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_LT(costs[0].minutes, 6.0);
  EXPECT_GT(costs[0].minutes, 0.5);
}

TEST(LabelingTime, TotalSumsMonths) {
  ts::LabelSet ls;
  ls.add_window({10, 20});
  ls.add_window({5000, 5010});
  const auto costs = estimate_monthly_costs(month_series(2), ls, {});
  EXPECT_NEAR(total_minutes(costs), costs[0].minutes + costs[1].minutes,
              1e-12);
}

TEST(LabelingTime, WindowsAttributedToRightMonth) {
  ts::LabelSet ls;
  ls.add_window({10, 20});      // month 0
  ls.add_window({4100, 4120});  // month 1
  ls.add_window({4200, 4230});  // month 1
  const auto costs = estimate_monthly_costs(month_series(2), ls, {});
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_EQ(costs[0].anomalous_windows, 1u);
  EXPECT_EQ(costs[1].anomalous_windows, 2u);
}

}  // namespace
