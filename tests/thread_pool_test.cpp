// Unit tests for the deterministic worker pool (util/thread_pool.hpp):
// result independence from scheduling, deterministic exception
// propagation, nested parallel_for safety, stress, and the exact serial
// fallback that OPPRENTICE_THREADS=1 promises.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

using opprentice::util::ThreadPool;

TEST(ResolveThreadCount, SpecGrammar) {
  const std::size_t hw = opprentice::util::resolve_thread_count("");
  EXPECT_GE(hw, 1u);
  EXPECT_EQ(opprentice::util::resolve_thread_count("0"), hw);
  EXPECT_EQ(opprentice::util::resolve_thread_count("1"), 1u);
  EXPECT_EQ(opprentice::util::resolve_thread_count("8"), 8u);
  // Unparsable specs degrade to serial, never to a thread explosion.
  EXPECT_EQ(opprentice::util::resolve_thread_count("lots"), 1u);
  EXPECT_EQ(opprentice::util::resolve_thread_count("4x"), 1u);
  EXPECT_EQ(opprentice::util::resolve_thread_count("-2"), 1u);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  const std::size_t n = 1000;
  std::vector<double> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<double>(i * i) + 0.5;
  }
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<double> out(n, 0.0);
    pool.parallel_for(n, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) + 0.5;
    });
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, GrainCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {1u, 3u, 64u, 1000u}) {
    const std::size_t n = 257;  // deliberately not a multiple of any grain
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "grain=" << grain << " i=" << i;
    }
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWinsAtAnyThreadCount) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::string message;
    try {
      pool.parallel_for(500, [](std::size_t i) {
        if (i == 11 || i == 12 || i == 400) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception, threads=" << threads;
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "boom 11") << "threads=" << threads;
  }
}

TEST(ThreadPool, EveryIndexRunsEvenWhenSomeThrow) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i % 7 == 0) {
                                     throw std::runtime_error("x");
                                   }
                                 }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  const std::size_t outer = 16, inner = 100;
  std::vector<std::size_t> sums(outer, 0);
  pool.parallel_for(outer, [&](std::size_t o) {
    // The nested call must run inline on this worker — same thread, no
    // second dispatch, no deadlock.
    const auto outer_thread = std::this_thread::get_id();
    std::vector<std::size_t> partial(inner, 0);
    pool.parallel_for(inner, [&](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      EXPECT_TRUE(ThreadPool::in_pool_task());
      partial[i] = o * i;
    });
    sums[o] = std::accumulate(partial.begin(), partial.end(),
                              std::size_t{0});
  });
  for (std::size_t o = 0; o < outer; ++o) {
    EXPECT_EQ(sums[o], o * (inner * (inner - 1)) / 2);
  }
}

TEST(ThreadPool, StressTenThousandNoopTasks) {
  ThreadPool pool(8);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(10000, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 10000u) << "round " << round;
  }
}

TEST(ThreadPool, SerialPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(64);
  std::vector<std::size_t> order;
  order.reserve(ids.size());
  pool.parallel_for(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
    order.push_back(i);  // safe: single-threaded by contract
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
  // Exact serial fallback also means in-order execution.
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, TaskCounterAdvances) {
  auto& tasks = opprentice::obs::counter("opprentice.pool.tasks");
  const auto before = tasks.value();
  ThreadPool pool(2);
  pool.parallel_for(123, [](std::size_t) {});
  EXPECT_EQ(tasks.value(), before + 123);
}

TEST(GlobalPool, EnvOverrideIsExactSerial) {
  ASSERT_EQ(setenv("OPPRENTICE_THREADS", "1", 1), 0);
  opprentice::util::set_global_threads_from_env();
  EXPECT_EQ(opprentice::util::global_thread_count(), 1u);

  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(32);
  opprentice::util::parallel_for(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);

  ASSERT_EQ(setenv("OPPRENTICE_THREADS", "3", 1), 0);
  opprentice::util::set_global_threads_from_env();
  EXPECT_EQ(opprentice::util::global_thread_count(), 3u);

  ASSERT_EQ(unsetenv("OPPRENTICE_THREADS"), 0);
  opprentice::util::set_global_threads_from_env();
  EXPECT_GE(opprentice::util::global_thread_count(), 1u);
}

TEST(GlobalPool, SetGlobalThreadsSticksAcrossUses) {
  opprentice::util::set_global_threads(2);
  EXPECT_EQ(opprentice::util::global_thread_count(), 2u);
  std::atomic<int> count{0};
  opprentice::util::parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  // A plain global_pool() use must not silently rebuild from the env.
  EXPECT_EQ(opprentice::util::global_thread_count(), 2u);
  opprentice::util::set_global_threads(0);  // restore hardware default
}

}  // namespace
