// Unit tests for the lock-order & lock-discipline analyzer
// (tools/locks_rules.*): acquisition scopes, level tags, every rule on a
// planted violation, suppression handling, and the name-resolution
// policies (container-member denial, type/file narrowing). Violating
// code lives in string literals, which is also how the analyzer stays
// clean when it scans this file.
#include "tools/locks_rules.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace {

using opprentice::tools::format_report;
using opprentice::tools::locks_rules;
using opprentice::tools::locks_self_test;
using opprentice::tools::locks_tree;
using opprentice::tools::LocksOptions;
using opprentice::tools::LocksResult;
using opprentice::tools::TempTree;

// Plants each (relative path, content) pair in a temp tree and scans it.
LocksResult scan(
    const std::vector<std::pair<std::string, std::string>>& files,
    const LocksOptions& opts = {}) {
  const TempTree tree("opprentice-locks-test");
  for (const auto& [rel, content] : files) tree.plant(rel, content);
  return locks_tree({tree.root().string()}, opts);
}

std::map<std::string, std::size_t> tally(const LocksResult& result) {
  std::map<std::string, std::size_t> out;
  for (const auto& issue : result.report.issues) ++out[issue.check];
  return out;
}

TEST(LocksRules, SelfTestPasses) {
  const auto report = locks_self_test();
  EXPECT_TRUE(report.ok()) << format_report(report, true);
}

TEST(LocksRules, RuleTableHasNineStableIds) {
  std::vector<std::string> ids;
  std::size_t meta = 0;
  for (const auto& rule : locks_rules()) {
    ids.push_back(rule.id);
    if (rule.meta) ++meta;
  }
  const std::vector<std::string> expected = {
      "lock-order-cycle",   "blocking-under-lock", "cv-wait-discipline",
      "annotation-coverage", "unknown-lock",        "allow-without-reason",
      "allow-unknown-rule", "unused-suppression",  "malformed-tag"};
  EXPECT_EQ(ids, expected);
  EXPECT_EQ(meta, 4u);  // the four annotation-police rules
}

TEST(LocksOrder, LevelInversionFires) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(low)=1\n"
                             "util::Mutex g_low;\n"
                             "// opprentice-locks: level(high)=2\n"
                             "util::Mutex g_high;\n"
                             "void wrong_way() {\n"
                             "  util::MutexLock b(g_high);\n"
                             "  util::MutexLock a(g_low);\n"
                             "}\n"}});
  const auto t = tally(result);
  EXPECT_EQ(t.at("lock-order-cycle"), 1u);
  EXPECT_EQ(result.lock_count, 2u);
}

TEST(LocksOrder, DeclaredOrderIsClean) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(low)=1\n"
                             "util::Mutex g_low;\n"
                             "// opprentice-locks: level(high)=2\n"
                             "util::Mutex g_high;\n"
                             "void right_way() {\n"
                             "  util::MutexLock a(g_low);\n"
                             "  util::MutexLock b(g_high);\n"
                             "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksOrder, SameClassReacquisitionFires) {
  // Two shards of one lock class: taking a second instance while one is
  // held deadlocks when threads meet the instances in opposite orders.
  const auto result = scan({{"src/a.cpp",
                             "struct Shard {\n"
                             "  // opprentice-locks: level(shard)=5\n"
                             "  util::Mutex mutex;\n"
                             "};\n"
                             "Shard g_first;\n"
                             "Shard g_second;\n"
                             "void cross() {\n"
                             "  util::MutexLock a(g_first.mutex);\n"
                             "  util::MutexLock b(g_second.mutex);\n"
                             "}\n"}});
  EXPECT_EQ(tally(result).at("lock-order-cycle"), 1u);
}

TEST(LocksOrder, UntaggedCycleCaughtBySccEvenWithoutLevels) {
  const auto result = scan(
      {{"src/a.cpp",
        "util::Mutex g_one;\n"
        "util::Mutex g_two;\n"
        "void forward() {\n"
        "  util::MutexLock a(g_one);\n"
        "  util::MutexLock b(g_two);\n"
        "}\n"
        "void backward() {\n"
        "  util::MutexLock b(g_two);\n"
        "  util::MutexLock a(g_one);\n"
        "}\n"}});
  const auto t = tally(result);
  EXPECT_EQ(t.at("lock-order-cycle"), 2u);  // both edges of the cycle
  EXPECT_EQ(t.at("annotation-coverage"), 2u);  // both mutexes untagged
}

TEST(LocksOrder, TransitiveAcquisitionThroughCalleeMakesAnEdge) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(outer)=9\n"
                             "util::Mutex g_outer;\n"
                             "// opprentice-locks: level(inner)=3\n"
                             "util::Mutex g_inner;\n"
                             "void helper() {\n"
                             "  util::MutexLock h(g_inner);\n"
                             "}\n"
                             "void entry() {\n"
                             "  util::MutexLock o(g_outer);\n"
                             "  helper();\n"
                             "}\n"}});
  // outer(9) -> inner(3) inverts the declared order via the call.
  EXPECT_EQ(tally(result).at("lock-order-cycle"), 1u);
}

TEST(LocksBlocking, DirectIoUnderLockFires) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void f() {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  std::fprintf(stderr, \"x\");\n"
                             "}\n"}});
  EXPECT_EQ(tally(result).at("blocking-under-lock"), 1u);
}

TEST(LocksBlocking, IoAfterScopeCloseIsFine) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void f() {\n"
                             "  {\n"
                             "    util::MutexLock hold(g_m);\n"
                             "  }\n"
                             "  std::fprintf(stderr, \"x\");\n"
                             "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksBlocking, SnprintfIsBufferFormattingNotBlocking) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void f(char* buf) {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  std::snprintf(buf, 8, \"x\");\n"
                             "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksBlocking, AllocUnderOrdinaryLockIsTolerated) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void f(std::vector<int>& v) {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  v.push_back(1);\n"
                             "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksBlocking, AllocUnderNoAllocLockFires) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1 no-alloc\n"
                             "util::Mutex g_m;\n"
                             "void f(std::vector<int>& v) {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  v.push_back(1);\n"
                             "}\n"}});
  EXPECT_EQ(tally(result).at("blocking-under-lock"), 1u);
}

TEST(LocksBlocking, TransitiveIoThroughCalleeFires) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void sink();\n"
                             "void f() {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  sink();\n"
                             "}\n"
                             "void sink() { std::fflush(stderr); }\n"}});
  const auto& issues = result.report.issues;
  ASSERT_EQ(tally(result).at("blocking-under-lock"), 1u);
  bool found_witness = false;
  for (const auto& issue : issues) {
    if (issue.message.find("[via sink]") != std::string::npos) {
      found_witness = true;
    }
  }
  EXPECT_TRUE(found_witness);
}

TEST(LocksCv, WaitOutsideLoopFires) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "util::CondVar g_cv;\n"
                             "void f() {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  g_cv.wait(g_m);\n"
                             "}\n"}});
  EXPECT_EQ(tally(result).at("cv-wait-discipline"), 1u);
}

TEST(LocksCv, WaitInPredicateLoopIsFine) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "util::CondVar g_cv;\n"
                             "bool g_ready OPPRENTICE_GUARDED_BY(g_m) = false;\n"
                             "void f() {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  while (!g_ready) g_cv.wait(g_m);\n"
                             "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksCv, WaitingOnAnotherLockIsBlocking) {
  const auto result = scan(
      {{"src/a.cpp",
        "// opprentice-locks: level(a)=1\n"
        "util::Mutex g_a;\n"
        "// opprentice-locks: level(b)=2\n"
        "util::Mutex g_b;\n"
        "util::CondVar g_cv;\n"
        "bool g_flag OPPRENTICE_GUARDED_BY(g_b) = false;\n"
        "void f() {\n"
        "  util::MutexLock outer(g_a);\n"
        "  util::MutexLock inner(g_b);\n"
        "  while (!g_flag) g_cv.wait(g_b);\n"
        "}\n"}});
  // wait(g_b) releases g_b (fine for that scope) but parks while g_a
  // stays held.
  EXPECT_EQ(tally(result).at("blocking-under-lock"), 1u);
}

TEST(LocksCoverage, UntaggedMutexAndUnguardedGlobalFire) {
  const auto result = scan({{"src/a.cpp",
                             "util::Mutex g_naked;\n"
                             "double g_total = 0.0;\n"}});
  EXPECT_EQ(tally(result).at("annotation-coverage"), 2u);
}

TEST(LocksCoverage, GuardedAtomicConstAndThreadLocalAreExempt) {
  const auto result = scan(
      {{"src/a.cpp",
        "// opprentice-locks: level(m)=1\n"
        "util::Mutex g_m;\n"
        "double g_guarded OPPRENTICE_GUARDED_BY(g_m) = 0.0;\n"
        "std::atomic<int> g_count{0};\n"
        "const double kRatio = 0.5;\n"
        "constexpr int kSlots = 4;\n"
        "thread_local int t_depth = 0;\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksResolution, UnknownLockFires) {
  const auto result = scan({{"src/a.cpp",
                             "void f(util::Mutex& somewhere) {\n"
                             "  util::MutexLock hold(somewhere);\n"
                             "}\n"}});
  EXPECT_EQ(tally(result).at("unknown-lock"), 1u);
}

TEST(LocksResolution, ContainerMemberCallsDoNotResolveToProjectMethods) {
  // Regression: `shard.entries.erase(it)` is std::map::erase; resolving
  // it by terminal name onto Registry::erase fabricated a self-deadlock.
  const auto result = scan(
      {{"src/a.cpp",
        "struct Registry {\n"
        "  // opprentice-locks: level(reg)=5\n"
        "  util::Mutex mutex;\n"
        "  bool erase(int id);\n"
        "};\n"
        "bool Registry::erase(int id) {\n"
        "  util::MutexLock lock(mutex);\n"
        "  entries.erase(id);\n"
        "  return true;\n"
        "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksSuppression, ReasonedAllowSilencesAndCountsAsUsed) {
  const auto result = scan(
      {{"src/a.cpp",
        "// opprentice-locks: level(m)=1\n"
        "util::Mutex g_m;\n"
        "void f() {\n"
        "  util::MutexLock hold(g_m);\n"
        "  // opprentice-locks: allow(blocking-under-lock) the write is the serialized section\n"
        "  std::fputs(\"x\", stderr);\n"
        "}\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

TEST(LocksSuppression, BareAllowIsAnErrorAndDoesNotSuppress) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"
                             "void f() {\n"
                             "  util::MutexLock hold(g_m);\n"
                             "  // opprentice-locks: allow(blocking-under-lock)\n"
                             "  std::fputs(\"x\", stderr);\n"
                             "}\n"}});
  const auto t = tally(result);
  EXPECT_EQ(t.at("allow-without-reason"), 1u);
  EXPECT_EQ(t.at("blocking-under-lock"), 1u);
}

TEST(LocksSuppression, UnusedSuppressionIsFlagged) {
  const auto result = scan(
      {{"src/a.cpp",
        "// opprentice-locks: allow(unknown-lock) nothing here needs this\n"
        "const int kPlaceholder = 0;\n"}});
  EXPECT_EQ(tally(result).at("unused-suppression"), 1u);
}

TEST(LocksTags, MalformedAndOrphanTagsAreFlagged) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(broken= 3\n"
                             "const int kA = 0;\n"
                             "// opprentice-locks: level(orphan)=7\n"
                             "const int kB = 0;\n"}});
  EXPECT_EQ(tally(result).at("malformed-tag"), 2u);
}

TEST(LocksTags, ConflictingLevelsForOneClassAreFlagged) {
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(shared)=5\n"
                             "util::Mutex g_one;\n"
                             "// opprentice-locks: level(shared)=9\n"
                             "util::Mutex g_two;\n"}});
  EXPECT_EQ(tally(result).at("malformed-tag"), 1u);
}

TEST(LocksTags, MinLocksGateFiresWhenTagsDisappear) {
  LocksOptions opts;
  opts.min_locks = 3;
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(m)=1\n"
                             "util::Mutex g_m;\n"}},
                           opts);
  EXPECT_EQ(tally(result).at("min-locks"), 1u);
  EXPECT_EQ(result.lock_count, 1u);
}

TEST(LocksGraph, DotDumpListsNodesAndEdges) {
  LocksOptions opts;
  opts.dump_graph = true;
  const auto result = scan({{"src/a.cpp",
                             "// opprentice-locks: level(low)=1\n"
                             "util::Mutex g_low;\n"
                             "// opprentice-locks: level(high)=2 no-alloc\n"
                             "util::Mutex g_high;\n"
                             "void f() {\n"
                             "  util::MutexLock a(g_low);\n"
                             "  util::MutexLock b(g_high);\n"
                             "}\n"}},
                           opts);
  EXPECT_NE(result.graph.find("digraph opprentice_locks"), std::string::npos);
  EXPECT_NE(result.graph.find("\"low\" [label=\"low\\nlevel 1\"]"),
            std::string::npos);
  EXPECT_NE(result.graph.find("level 2 no-alloc"), std::string::npos);
  EXPECT_NE(result.graph.find("\"low\" -> \"high\""), std::string::npos);
}

TEST(LocksTree, MutexWrapperHeaderIsExcluded) {
  // src/util/mutex.hpp defines the primitives; scanning it would demand
  // tags on the wrapper's own internals.
  const auto result = scan(
      {{"src/util/mutex.hpp", "util::Mutex g_internal_detail;\n"}});
  EXPECT_TRUE(result.report.ok())
      << format_report(result.report, false);
}

}  // namespace
