// Unit tests for the determinism/concurrency contract rules
// (tools/check_rules.*): every rule fires on a planted violation, reasoned
// suppressions are honored, reason-less suppressions are errors, and the
// tree walk only visits C++ sources. Violating code lives in string
// literals here — which is also how the checker itself stays clean when it
// scans its own sources.
#include "tools/check_rules.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using opprentice::tools::check_rules;
using opprentice::tools::check_self_test;
using opprentice::tools::check_source;
using opprentice::tools::check_tree;
using opprentice::tools::CheckViolation;
using opprentice::tools::format_report;
using opprentice::tools::LintReport;
using opprentice::tools::TempTree;

std::vector<CheckViolation> scan(const std::string& content) {
  return check_source("src/probe.cpp", content);
}

TEST(CheckRules, RuleTableHasTwelveStableIds) {
  std::vector<std::string> ids;
  for (const auto& rule : check_rules()) ids.push_back(rule.id);
  const std::vector<std::string> expected = {
      "random-device",       "rand",           "wall-clock-seed",
      "raw-thread",          "raw-mutex",      "raw-socket",
      "unordered-iteration", "unguarded-static", "fp-reduction",
      "unchecked-stod",      "layering",       "unused-suppression"};
  EXPECT_EQ(ids, expected);
}

TEST(CheckRules, FlagsRandomDevice) {
  const auto vs = scan(
      "#include <random>\n"
      "std::uint32_t entropy() {\n"
      "  std::random_device dev;\n"
      "  return dev();\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "random-device");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(CheckRules, FlagsRandAndSrand) {
  const auto vs = scan(
      "void mix() {\n"
      "  std::srand(42);\n"
      "  int x = std::rand();\n"
      "  (void)x;\n"
      "}\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "rand");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_EQ(vs[1].rule, "rand");
  EXPECT_EQ(vs[1].line, 3u);
}

TEST(CheckRules, MemberNamedRandIsNotLibcRand) {
  EXPECT_TRUE(scan("int f(Gen& g) { return g.rand(); }\n").empty());
}

TEST(CheckRules, PatternInsideStringLiteralDoesNotFire) {
  EXPECT_TRUE(
      scan("const char* kDoc = \"never call std::rand() here\";\n").empty());
}

TEST(CheckRules, FlagsTimeSeedingViaCtime) {
  const auto vs = scan(
      "unsigned pick() {\n"
      "  const unsigned seed = static_cast<unsigned>(std::time(nullptr));\n"
      "  return seed;\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "wall-clock-seed");
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(CheckRules, FlagsChronoSeedingOfRng) {
  const auto vs = scan(
      "void reseed_from_clock(util::Rng& rng) {\n"
      "  rng.reseed(std::chrono::steady_clock::now()"
      ".time_since_epoch().count());\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "wall-clock-seed");
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(CheckRules, TimingMeasurementWithoutSeedIsFine) {
  EXPECT_TRUE(
      scan("void bench() {\n"
           "  const auto start = std::chrono::steady_clock::now();\n"
           "  work();\n"
           "  report(std::chrono::steady_clock::now() - start);\n"
           "}\n")
          .empty());
}

TEST(CheckRules, FlagsRawThreadConstruction) {
  const auto vs = scan(
      "#include <thread>\n"
      "void spawn(void (*task)()) {\n"
      "  std::thread runner(task);\n"
      "  runner.join();\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-thread");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(CheckRules, FlagsDetach) {
  const auto vs = scan("void f(Worker& w) { w.detach(); }\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-thread");
}

TEST(CheckRules, ThreadPoolImplementationIsExempt) {
  const auto vs = check_source(
      "src/util/thread_pool.cpp",
      "void Pool::start() { workers_.emplace_back(std::thread(loop)); }\n");
  EXPECT_TRUE(vs.empty());
}

TEST(CheckRules, QualifiedThreadNamesAreFine) {
  EXPECT_TRUE(
      scan("std::thread::id current() { return std::this_thread::get_id(); }\n")
          .empty());
}

TEST(CheckRules, FlagsRawMutexAndLockGuard) {
  const auto vs = scan(
      "#include <mutex>\n"
      "std::mutex g_m;\n"
      "void f() {\n"
      "  std::lock_guard<std::mutex> hold(g_m);\n"
      "}\n");
  ASSERT_EQ(vs.size(), 3u);  // std::mutex decl + lock_guard + its argument
  for (const auto& v : vs) EXPECT_EQ(v.rule, "raw-mutex");
}

TEST(CheckRules, FlagsRawConditionVariable) {
  const auto vs = scan("std::condition_variable g_cv;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-mutex");
}

TEST(CheckRules, MutexWrapperHeaderIsExemptFromRawMutex) {
  EXPECT_TRUE(check_source("src/util/mutex.hpp",
                           "#include <mutex>\n"
                           "class Mutex { std::mutex m_; };\n")
                  .empty());
}

TEST(CheckRules, MemberNamedMutexIsNotTheRawType) {
  EXPECT_TRUE(scan("void f(Shard& s) { lock(s.mutex); }\n").empty());
}

TEST(CheckRules, UtilMutexWrapperUseIsFine) {
  EXPECT_TRUE(
      scan("util::Mutex g_m;\n"
           "void f() { util::MutexLock hold(g_m); }\n")
          .empty());
}

TEST(CheckRules, FlagsRawSocketCalls) {
  const auto vs = scan(
      "#include <sys/socket.h>\n"
      "int listener() { return ::socket(AF_INET, SOCK_STREAM, 0); }\n"
      "void push(int fd) { send(fd, \"x\", 1, 0); }\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "raw-socket");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_EQ(vs[1].rule, "raw-socket");
  EXPECT_EQ(vs[1].line, 3u);
}

TEST(CheckRules, SocketWireLayerIsExemptFromRawSocket) {
  EXPECT_TRUE(check_source("src/net/sockets.cpp",
                           "int listener() {\n"
                           "  return ::socket(AF_INET, SOCK_STREAM, 0);\n"
                           "}\n")
                  .empty());
}

TEST(CheckRules, MemberAndNamespaceQualifiedSendAreFine) {
  EXPECT_TRUE(
      scan("void f(Client& c) { c.send(1); }\n"
           "void g() { transport::send(2); }\n")
          .empty());
}

TEST(CheckRules, FlagsUnorderedRangeFor) {
  const auto vs = scan(
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> g_m;\n"
      "double s() {\n"
      "  double t = 0.0;\n"
      "  for (const auto& kv : g_m) t += kv.second;\n"
      "  return t;\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iteration");
  EXPECT_EQ(vs[0].line, 5u);
}

TEST(CheckRules, FlagsUnorderedBeginIterator) {
  const auto vs = scan(
      "std::unordered_set<int> g_ids;\n"
      "int first() { return *g_ids.begin(); }\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iteration");
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(CheckRules, OrderedMapIterationIsFine) {
  EXPECT_TRUE(
      scan("#include <map>\n"
           "std::map<int, int> g_m;\n"
           "int s() {\n"
           "  int t = 0;\n"
           "  for (const auto& kv : g_m) t += kv.second;\n"
           "  return t;\n"
           "}\n")
          .empty());
}

TEST(CheckRules, FlagsUnguardedFunctionLocalStatic) {
  const auto vs = scan(
      "int next() {\n"
      "  static int n = 0;\n"
      "  return ++n;\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unguarded-static");
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(CheckRules, ConstAndConstexprStaticsAreFine) {
  EXPECT_TRUE(
      scan("int limit() {\n"
           "  static const int kMax = 10;\n"
           "  static constexpr double kEps = 1e-9;\n"
           "  return kMax + static_cast<int>(kEps);\n"
           "}\n")
          .empty());
}

TEST(CheckRules, MagicStaticReferenceIsFine) {
  EXPECT_TRUE(
      scan("Registry& get() {\n"
           "  static Registry& r = Registry::instance();\n"
           "  return r;\n"
           "}\n")
          .empty());
}

TEST(CheckRules, AtomicStaticIsFine) {
  EXPECT_TRUE(
      scan("int count() {\n"
           "  static std::atomic<int> n{0};\n"
           "  return ++n;\n"
           "}\n")
          .empty());
}

TEST(CheckRules, ClassScopeStaticMemberIsNotFunctionLocal) {
  EXPECT_TRUE(scan("struct S {\n  static int shared;\n};\n").empty());
}

TEST(CheckRules, FlagsCapturedReductionInParallelFor) {
  const auto vs = scan(
      "double sum(const std::vector<double>& v) {\n"
      "  double total = 0.0;\n"
      "  util::parallel_for(v.size(), [&](std::size_t i) {\n"
      "    total += v[i];\n"
      "  });\n"
      "  return total;\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "fp-reduction");
  EXPECT_EQ(vs[0].line, 4u);
}

TEST(CheckRules, PerIndexSlotWritesAreFine) {
  EXPECT_TRUE(
      scan("void square(std::vector<double>& out,"
           " const std::vector<double>& v) {\n"
           "  util::parallel_for(v.size(), [&](std::size_t i) {\n"
           "    out[i] += v[i] * v[i];\n"
           "  });\n"
           "}\n")
          .empty());
}

TEST(CheckRules, LambdaLocalAccumulatorIsFine) {
  EXPECT_TRUE(
      scan("void work(std::vector<double>& out,"
           " const std::vector<double>& v) {\n"
           "  util::parallel_for(v.size(), [&](std::size_t i) {\n"
           "    double acc = 0.0;\n"
           "    acc += v[i];\n"
           "    out[i] = acc;\n"
           "  });\n"
           "}\n")
          .empty());
}

TEST(CheckRules, FlagsRawStodOnExternalInput) {
  const auto vs = scan(
      "#include <string>\n"
      "double parse_ratio(const std::string& text) {\n"
      "  return std::stod(text);\n"
      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unchecked-stod");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(CheckRules, FlagsEveryStoVariant) {
  const auto vs = scan(
      "long f(const std::string& s) { return std::stol(s); }\n"
      "unsigned long long g(const std::string& s) { return std::stoull(s); }\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "unchecked-stod");
  EXPECT_EQ(vs[1].rule, "unchecked-stod");
}

TEST(CheckRules, StodInsideTryCatchIsFine) {
  EXPECT_TRUE(
      scan("double parse_ratio(const std::string& text) {\n"
           "  try {\n"
           "    std::size_t pos = 0;\n"
           "    const double v = std::stod(text, &pos);\n"
           "    if (pos != text.size()) throw std::invalid_argument(text);\n"
           "    return v;\n"
           "  } catch (const std::exception&) {\n"
           "    return 0.0;\n"
           "  }\n"
           "}\n")
          .empty());
}

TEST(CheckRules, MemberNamedStodIsNotStdStod) {
  EXPECT_TRUE(
      scan("double f(Parser& p, const std::string& s) { return p.stod(s); }\n")
          .empty());
}

TEST(CheckSuppressions, SameLineReasonedAllowSilences) {
  EXPECT_TRUE(
      scan("int roll() {\n"
           "  return std::rand();  // opprentice-check: allow(rand) parity "
           "with the reference implementation's libc draw\n"
           "}\n")
          .empty());
}

TEST(CheckSuppressions, LineAboveReasonedAllowSilences) {
  EXPECT_TRUE(
      scan("int roll() {\n"
           "  // opprentice-check: allow(rand) parity with the reference "
           "implementation's libc draw\n"
           "  return std::rand();\n"
           "}\n")
          .empty());
}

TEST(CheckSuppressions, BareAllowIsAnErrorAndDoesNotSuppress) {
  const auto vs = scan(
      "int roll() {\n"
      "  return std::rand();  // opprentice-check: allow(rand)\n"
      "}\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "allow-without-reason");
  EXPECT_EQ(vs[1].rule, "rand");
}

TEST(CheckSuppressions, UnknownRuleIdIsAnError) {
  const auto vs = scan(
      "// opprentice-check: allow(no-such-thing) reasoned but wrong id\n"
      "int x = 0;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "allow-unknown-rule");
  EXPECT_EQ(vs[0].line, 1u);
}

TEST(CheckSuppressions, UnusedSuppressionIsFlagged) {
  const auto vs = scan(
      "// opprentice-check: allow(rand) reasoned, but nothing below draws\n"
      "int x = 0;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unused-suppression");
  EXPECT_EQ(vs[0].line, 1u);
}

TEST(CheckSuppressions, UsedSuppressionIsNotFlaggedAsUnused) {
  EXPECT_TRUE(
      scan("int roll() {\n"
           "  // opprentice-check: allow(rand) parity with the reference\n"
           "  return std::rand();\n"
           "}\n")
          .empty());
}

TEST(CheckSuppressions, DirectiveMentionedInProseIsNotADirective) {
  // Nested "//" (documentation quoting the syntax) must not parse.
  EXPECT_TRUE(
      scan("// Suppress with:\n"
           "//   // opprentice-check: allow(rand) some reason\n"
           "int x = 0;\n")
          .empty());
}

TEST(CheckLayering, UtilIncludingMlFires) {
  const auto vs = check_source("src/util/helpers.cpp",
                               "#include \"ml/random_forest.hpp\"\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "layering");
  EXPECT_EQ(vs[0].line, 1u);
}

TEST(CheckLayering, UtilIncludingUtilAndObsIsFine) {
  EXPECT_TRUE(check_source("src/util/helpers.cpp",
                           "#include \"util/stats.hpp\"\n"
                           "#include \"obs/metrics.hpp\"\n"
                           "#include <vector>\n")
                  .empty());
}

TEST(CheckLayering, CoreIncludingUtilIsFine) {
  EXPECT_TRUE(check_source("src/core/cthld.cpp",
                           "#include \"util/stats.hpp\"\n"
                           "#include \"detectors/detector.hpp\"\n")
                  .empty());
}

TEST(CheckLayering, HeaderIncludeCycleBetweenModulesFires) {
  const TempTree tree("check-layering-cycle");
  tree.plant("src/alpha/a.hpp", "#include \"beta/b.hpp\"\nint a();\n");
  tree.plant("src/beta/b.hpp", "#include \"alpha/a.hpp\"\nint b();\n");
  const LintReport report = check_tree({(tree.root() / "src").string()});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].check, "layering");
  EXPECT_NE(report.issues[0].message.find("alpha"), std::string::npos);
  EXPECT_NE(report.issues[0].message.find("beta"), std::string::npos);
}

TEST(CheckLayering, CppOnlyBackEdgeIsNotACycle) {
  // A .cpp in alpha may include beta headers even though beta headers
  // include alpha headers — only header->header edges form cycles (this is
  // the real util <-> obs pattern).
  const TempTree tree("check-layering-cpp-edge");
  tree.plant("src/alpha/a.hpp", "int a();\n");
  tree.plant("src/alpha/a.cpp",
             "#include \"alpha/a.hpp\"\n#include \"beta/b.hpp\"\n"
             "int a() { return 1; }\n");
  tree.plant("src/beta/b.hpp", "#include \"alpha/a.hpp\"\nint b();\n");
  const LintReport report = check_tree({(tree.root() / "src").string()});
  EXPECT_TRUE(report.issues.empty()) << format_report(report, true);
}

TEST(CheckTree, WalksOnlyCppSources) {
  const TempTree tree("check-rules-test");
  tree.plant("src/a.cpp", "int noisy() { return std::rand(); }\n");
  tree.plant("src/b.txt", "int noisy() { return std::rand(); }\n");
  const LintReport report = check_tree({tree.root().string()});
  EXPECT_EQ(report.checks_run, 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].check, "rand");
}

TEST(CheckTree, MissingRootIsReported) {
  const LintReport report = check_tree({"/nonexistent-opprentice-root"});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].check, "missing-root");
}

TEST(CheckSelfTest, EveryPlantedViolationIsCaught) {
  const LintReport report = check_self_test();
  EXPECT_TRUE(report.ok()) << format_report(report, true);
}

}  // namespace
