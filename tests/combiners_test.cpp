// Unit tests for src/combiners: the two static combination baselines.
#include <gtest/gtest.h>

#include "combiners/static_combiners.hpp"
#include "util/rng.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::combiners;

// Severity-like dataset: column 0 spikes with the label, column 1 is an
// inaccurate configuration (pure noise).
ml::Dataset severity_data(std::size_t n, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> cols(2);
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomaly = rng.uniform() < 0.1;
    labels[i] = anomaly;
    cols[0].push_back(anomaly ? rng.uniform(8.0, 12.0)
                              : rng.uniform(0.0, 1.0));
    cols[1].push_back(rng.uniform(0.0, 5.0));
  }
  return ml::Dataset({"good", "noisy"}, std::move(cols), std::move(labels));
}

TEST(NormalizationSchemeTest, ScoresInUnitInterval) {
  const auto data = severity_data(1000);
  NormalizationScheme combiner;
  combiner.fit(data);
  for (double s : combiner.score_all(data)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(NormalizationSchemeTest, AnomalousRowsScoreHigher) {
  const auto data = severity_data(2000);
  NormalizationScheme combiner;
  combiner.fit(data);
  const auto scores = combiner.score_all(data);
  double anomaly_sum = 0.0, normal_sum = 0.0;
  std::size_t na = 0, nn = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.label(i) != 0) {
      anomaly_sum += scores[i];
      ++na;
    } else {
      normal_sum += scores[i];
      ++nn;
    }
  }
  EXPECT_GT(anomaly_sum / static_cast<double>(na),
            normal_sum / static_cast<double>(nn) + 0.2);
}

TEST(NormalizationSchemeTest, ValueAboveTrainingRangeClamps) {
  const auto data = severity_data(500);
  NormalizationScheme combiner;
  combiner.fit(data);
  const std::vector<double> extreme{1e9, 1e9};
  EXPECT_DOUBLE_EQ(combiner.score(extreme), 1.0);
}

TEST(MajorityVoteTest, ScoreIsVoteFraction) {
  const auto data = severity_data(1000);
  MajorityVote combiner;
  combiner.fit(data);
  const std::vector<double> both_high{100.0, 100.0};
  const std::vector<double> one_high{100.0, 0.0};
  const std::vector<double> none_high{0.0, 0.0};
  EXPECT_DOUBLE_EQ(combiner.score(both_high), 1.0);
  EXPECT_DOUBLE_EQ(combiner.score(one_high), 0.5);
  EXPECT_DOUBLE_EQ(combiner.score(none_high), 0.0);
}

TEST(MajorityVoteTest, ThreeSigmaThresholds) {
  // A constant column has sigma 0: anything above the mean votes.
  ml::Dataset data({"flat"}, {{5.0, 5.0, 5.0, 5.0}}, {0, 0, 0, 0});
  MajorityVote combiner;
  combiner.fit(data);
  EXPECT_DOUBLE_EQ(combiner.score(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(combiner.score(std::vector<double>{5.1}), 1.0);
}

TEST(MajorityVoteTest, SigmaMultiplierConfigurable) {
  const auto data = severity_data(1000);
  MajorityVote strict(6.0), lax(1.0);
  strict.fit(data);
  lax.fit(data);
  // A mildly elevated severity triggers the lax combiner only.
  const std::vector<double> mild{3.0, 3.0};
  EXPECT_GE(lax.score(mild), strict.score(mild));
}

TEST(Combiners, InaccurateConfigurationsDragScoresDown) {
  // §5.3.1's core observation: static combination treats all
  // configurations equally, so adding noisy configurations dilutes the
  // anomaly/normal score separation.
  const auto clean = severity_data(2000);
  // Add 8 more pure-noise columns.
  util::Rng rng(7);
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  for (std::size_t f = 0; f < clean.num_features(); ++f) {
    names.push_back(clean.feature_names()[f]);
    cols.emplace_back(clean.column(f).begin(), clean.column(f).end());
  }
  for (std::size_t f = 0; f < 8; ++f) {
    std::vector<double> col(clean.num_rows());
    for (auto& v : col) v = rng.uniform(0.0, 5.0);
    names.push_back("noise" + std::to_string(f));
    cols.push_back(std::move(col));
  }
  const ml::Dataset diluted(std::move(names), std::move(cols),
                            clean.labels());

  auto separation = [](const StaticCombiner& c, const ml::Dataset& d) {
    const auto scores = c.score_all(d);
    double a = 0.0, n = 0.0;
    std::size_t na = 0, nn = 0;
    for (std::size_t i = 0; i < d.num_rows(); ++i) {
      if (d.label(i) != 0) {
        a += scores[i];
        ++na;
      } else {
        n += scores[i];
        ++nn;
      }
    }
    return a / static_cast<double>(na) - n / static_cast<double>(nn);
  };

  NormalizationScheme on_clean, on_diluted;
  on_clean.fit(clean);
  on_diluted.fit(diluted);
  EXPECT_GT(separation(on_clean, clean),
            2.0 * separation(on_diluted, diluted));
}

TEST(Combiners, UnfittedIsNotFitted) {
  NormalizationScheme ns;
  MajorityVote mv;
  EXPECT_FALSE(ns.is_fitted());
  EXPECT_FALSE(mv.is_fitted());
}

}  // namespace
