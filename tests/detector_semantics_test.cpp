// Deep semantic tests for the detector configurations: oracle reference
// implementations and algebraic laws.
//
// Laws tested across whole families:
//  - residual-type detectors (diff, MAs, EWMA, Holt-Winters, SVD,
//    wavelet) are positively homogeneous: sev(c*x) = c * sev(x);
//  - normalized detectors (TSD, TSD-MAD, historical average/MAD) are
//    scale-invariant: sev(c*x) = sev(x) — their severity is a number of
//    sigmas/MADs;
//  - lag/MA detectors are shift-invariant: sev(x + k) = sev(x); the
//    simple threshold deliberately is not.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "detectors/basic_detectors.hpp"
#include "detectors/holt_winters_detector.hpp"
#include "detectors/registry.hpp"
#include "detectors/seasonal_detectors.hpp"
#include "detectors/svd_detector.hpp"
#include "detectors/wavelet_detector.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace opprentice;
using namespace opprentice::detectors;

SeriesContext small_ctx() {
  return {24, 168};
}

std::vector<double> noisy_periodic(std::size_t n, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 200.0 +
            50.0 * std::sin(2 * 3.14159265 *
                            static_cast<double>(i % 24) / 24.0) +
            rng.normal(0.0, 4.0);
  }
  return xs;
}

std::vector<double> run(Detector& d, const std::vector<double>& xs) {
  d.reset();
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(d.feed(x));
  return out;
}

// ---- oracle references ----

TEST(Oracle, SimpleMaMatchesBruteForce) {
  for (std::size_t win : {10u, 30u, 50u}) {
    SimpleMaDetector d(win);
    const auto xs = noisy_periodic(300);
    const auto sev = run(d, xs);
    for (std::size_t i = win; i < xs.size(); ++i) {
      double mean = 0.0;
      for (std::size_t j = i - win; j < i; ++j) mean += xs[j];
      mean /= static_cast<double>(win);
      EXPECT_NEAR(sev[i], std::abs(xs[i] - mean), 1e-9)
          << "win=" << win << " i=" << i;
    }
  }
}

TEST(Oracle, WeightedMaMatchesBruteForce) {
  for (std::size_t win : {10u, 20u}) {
    WeightedMaDetector d(win);
    const auto xs = noisy_periodic(200);
    const auto sev = run(d, xs);
    for (std::size_t i = win; i < xs.size(); ++i) {
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < win; ++j) {
        const double w = static_cast<double>(win - j);  // newest heaviest
        num += w * xs[i - 1 - j];
        den += w;
      }
      EXPECT_NEAR(sev[i], std::abs(xs[i] - num / den), 1e-9)
          << "win=" << win << " i=" << i;
    }
  }
}

TEST(Oracle, MaOfDiffMatchesBruteForce) {
  const std::size_t win = 10;
  MaOfDiffDetector d(win);
  const auto xs = noisy_periodic(150);
  const auto sev = run(d, xs);
  for (std::size_t i = win + 1; i < xs.size(); ++i) {
    double mean = 0.0;
    for (std::size_t j = i - win + 1; j <= i; ++j) {
      mean += std::abs(xs[j] - xs[j - 1]);
    }
    mean /= static_cast<double>(win);
    EXPECT_NEAR(sev[i], mean, 1e-9) << i;
  }
}

TEST(Oracle, EwmaMatchesClosedForm) {
  const double alpha = 0.3;
  EwmaDetector d(alpha);
  const auto xs = noisy_periodic(100);
  const auto sev = run(d, xs);
  double prediction = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_NEAR(sev[i], std::abs(xs[i] - prediction), 1e-9) << i;
    prediction = alpha * xs[i] + (1.0 - alpha) * prediction;
  }
}

TEST(Oracle, DiffMatchesLaggedDifference) {
  const auto ctx = small_ctx();
  const auto xs = noisy_periodic(3 * 168);
  const std::size_t lags[] = {1, ctx.points_per_day, ctx.points_per_week};
  const DiffLag kinds[] = {DiffLag::kLastSlot, DiffLag::kLastDay,
                           DiffLag::kLastWeek};
  for (int k = 0; k < 3; ++k) {
    DiffDetector d(kinds[k], ctx);
    const auto sev = run(d, xs);
    for (std::size_t i = lags[k]; i < xs.size(); ++i) {
      EXPECT_NEAR(sev[i], std::abs(xs[i] - xs[i - lags[k]]), 1e-9)
          << "lag=" << lags[k] << " i=" << i;
    }
  }
}

TEST(Oracle, TsdTemplateIsSlotMean) {
  // With win=3 weeks of history, the TSD residual at week 4 must be
  // the deviation from the mean of the same slot in weeks 1-3, divided
  // by the scale of recent residuals. We check the *ratio* structure:
  // a point pushed exactly to the slot mean has severity ~0.
  const auto ctx = small_ctx();
  TsdDetector d(3, ctx);
  auto xs = noisy_periodic(4 * 168);
  const std::size_t probe = 3 * 168 + 50;
  const double slot_mean =
      (xs[probe - 168] + xs[probe - 2 * 168] + xs[probe - 3 * 168]) / 3.0;
  xs[probe] = slot_mean;  // exactly on the template
  const auto sev = run(d, xs);
  EXPECT_NEAR(sev[probe], 0.0, 1e-9);
}

TEST(Oracle, HoltWintersMatchesReferenceRecursion) {
  const double a = 0.4, b = 0.2, g = 0.6;
  const auto ctx = small_ctx();
  HoltWintersDetector d(a, b, g, ctx);
  const auto xs = noisy_periodic(5 * 24);
  const auto sev = run(d, xs);

  // Reference implementation.
  const std::size_t m = ctx.points_per_day;
  std::vector<double> season(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(m));
  const double day_mean = util::mean(season);
  for (auto& s : season) s -= day_mean;
  double level = day_mean, trend = 0.0;
  for (std::size_t i = m; i < xs.size(); ++i) {
    const std::size_t slot = i % m;
    const double forecast = level + trend + season[slot];
    EXPECT_NEAR(sev[i], std::abs(xs[i] - forecast), 1e-9) << i;
    const double prev_level = level;
    level = a * (xs[i] - season[slot]) + (1 - a) * (prev_level + trend);
    trend = b * (level - prev_level) + (1 - b) * trend;
    season[slot] = g * (xs[i] - level) + (1 - g) * season[slot];
  }
}

// ---- algebraic laws over families ----

std::vector<DetectorPtr> family(const std::string& name) {
  return DetectorRegistry::with_standard_families().instantiate_family(
      name, small_ctx());
}

class ResidualFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(ResidualFamilies, PositivelyHomogeneous) {
  // sev(c * x) == c * sev(x) for residual-type detectors.
  const double c = 3.5;
  for (auto& d : family(GetParam())) {
    const auto xs = noisy_periodic(3 * 168);
    const auto base = run(*d, xs);
    auto scaled = xs;
    for (double& v : scaled) v *= c;
    const auto scaled_sev = run(*d, scaled);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_NEAR(scaled_sev[i], c * base[i],
                  1e-6 * (1.0 + std::abs(base[i])))
          << d->name() << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ResidualFamilies,
                         ::testing::Values("diff", "simple_ma", "weighted_ma",
                                           "ma_of_diff", "ewma",
                                           "holt_winters", "svd", "wavelet"),
                         [](const auto& param_info) { return param_info.param; });

class NormalizedFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(NormalizedFamilies, ScaleInvariant) {
  // sev(c * x) == sev(x): these detectors count sigmas/MADs.
  const double c = 7.0;
  for (auto& d : family(GetParam())) {
    const auto xs = noisy_periodic(4 * 168);
    const auto base = run(*d, xs);
    auto scaled = xs;
    for (double& v : scaled) v *= c;
    const auto scaled_sev = run(*d, scaled);
    // Inside the warm-up region the scale estimate can be degenerate
    // (single-sample sigma floored by an absolute epsilon), so exact
    // invariance only holds past warm-up — which is all that matters,
    // warm-up severities are masked anyway.
    for (std::size_t i = d->warmup_points(); i < xs.size(); ++i) {
      EXPECT_NEAR(scaled_sev[i], base[i], 1e-6 * (1.0 + base[i]))
          << d->name() << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, NormalizedFamilies,
                         ::testing::Values("tsd", "tsd_mad",
                                           "historical_average",
                                           "historical_mad"),
                         [](const auto& param_info) { return param_info.param; });

class ShiftInvariantFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(ShiftInvariantFamilies, ShiftInvariant) {
  // sev(x + k) == sev(x): residuals of lag/window predictors cancel a
  // constant offset.
  const double k = 1234.5;
  for (auto& d : family(GetParam())) {
    const auto xs = noisy_periodic(3 * 168);
    const auto base = run(*d, xs);
    auto shifted = xs;
    for (double& v : shifted) v += k;
    const auto shifted_sev = run(*d, shifted);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_NEAR(shifted_sev[i], base[i], 1e-5 * (1.0 + base[i]))
          << d->name() << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ShiftInvariantFamilies,
                         ::testing::Values("diff", "simple_ma", "weighted_ma",
                                           "ma_of_diff", "ewma"),
                         [](const auto& param_info) { return param_info.param; });

TEST(SimpleThresholdLaw, NotShiftInvariantByDesign) {
  // The static threshold is the one detector whose severity IS the value.
  SimpleThresholdDetector d;
  EXPECT_DOUBLE_EQ(d.feed(100.0), 100.0);
  EXPECT_DOUBLE_EQ(d.feed(100.0 + 50.0), 150.0);
}

// Detector instances must carry no shared mutable state (no lazily-built
// static tables, no common scratch buffers): two full 133-configuration
// extractors running concurrently on *different* series must each
// reproduce their serial severities exactly. Guards the determinism
// contract of the parallel extraction path (DESIGN.md "Parallel
// execution").
TEST(DetectorIsolation, ConcurrentExtractorsMatchSerial) {
  const SeriesContext ctx = small_ctx();
  const auto xs_a = noisy_periodic(2 * 168, /*seed=*/5);
  auto xs_b = noisy_periodic(2 * 168, /*seed=*/77);
  xs_b[200] = std::numeric_limits<double>::quiet_NaN();  // a missing point

  auto extract = [&](const std::vector<double>& xs) {
    auto configs = standard_configurations(ctx);
    std::vector<std::vector<double>> columns(configs.size());
    for (std::size_t f = 0; f < configs.size(); ++f) {
      columns[f] = run(*configs[f], xs);
    }
    return columns;
  };

  // Serial baselines first, then the same extractions on two racing
  // threads (fresh detector instances each).
  const auto serial_a = extract(xs_a);
  const auto serial_b = extract(xs_b);

  std::vector<std::vector<double>> concurrent_a, concurrent_b;
  std::thread ta([&] { concurrent_a = extract(xs_a); });
  std::thread tb([&] { concurrent_b = extract(xs_b); });
  ta.join();
  tb.join();

  ASSERT_EQ(concurrent_a.size(), serial_a.size());
  ASSERT_EQ(concurrent_b.size(), serial_b.size());
  for (std::size_t f = 0; f < serial_a.size(); ++f) {
    EXPECT_EQ(concurrent_a[f], serial_a[f]) << "column " << f;
    EXPECT_EQ(concurrent_b[f], serial_b[f]) << "column " << f;
  }
}

}  // namespace
