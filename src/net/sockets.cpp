#include "net/sockets.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace opprentice::net {
namespace {

// opprentice-locks: allow(annotation-coverage) volatile sig_atomic_t is the one type async-signal-safe to write from a handler; a single flag with no cross-read invariant needs no guard
volatile std::sig_atomic_t g_stop = 0;

extern "C" void stop_signal_handler(int) { g_stop = 1; }

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("uds:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(4);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec + "' has no path");
    }
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::invalid_argument("unix socket path too long: " + ep.path);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "' is not tcp:HOST:PORT");
    }
    ep.host = rest.substr(0, colon);
    if (ep.host == "localhost") ep.host = "127.0.0.1";
    const std::string port_text = rest.substr(colon + 1);
    std::size_t pos = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(port_text, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != port_text.size() || port > 65535) {
      throw std::invalid_argument("bad port in endpoint '" + spec + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw std::invalid_argument("endpoint '" + spec +
                              "' must start with tcp: or uds:");
}

void install_stop_handlers() {
  std::signal(SIGINT, stop_signal_handler);
  std::signal(SIGTERM, stop_signal_handler);
}

bool stop_requested() { return g_stop != 0; }
void request_stop() { g_stop = 1; }
void clear_stop() { g_stop = 0; }

void sleep_ms(std::uint64_t ms) {
  ::poll(nullptr, 0, static_cast<int>(ms));
}

SocketServer::SocketServer(IngestServer& core, const Endpoint& endpoint,
                           std::uint64_t tick_interval_ms)
    : core_(core), tick_interval_ms_(tick_interval_ms) {
  if (endpoint.is_unix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    ::unlink(endpoint.path.c_str());  // stale socket file from a crash
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail("bind(" + endpoint.path + ")");
    }
    unlink_path_ = endpoint.path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (endpoint.host.empty() || endpoint.host == "0.0.0.0") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, endpoint.host.c_str(),
                           &addr.sin_addr) != 1) {
      throw std::invalid_argument("cannot parse IPv4 host '" +
                                  endpoint.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail("bind(tcp " + endpoint.host + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) fail("listen");
  set_nonblocking(listen_fd_);
}

SocketServer::~SocketServer() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

void SocketServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next round
    const std::uint64_t id = next_conn_id_++;
    if (!core_.on_connect(id)) {
      ::close(fd);  // net.accept_fail fired: refuse deterministically
      continue;
    }
    set_nonblocking(fd);
    Conn conn;
    conn.id = id;
    conns_.emplace(fd, std::move(conn));
  }
}

bool SocketServer::read_ready(int fd, Conn& conn) {
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::vector<std::uint8_t> responses;
      const bool keep = core_.on_bytes(
          conn.id,
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)),
          responses);
      conn.outbuf.insert(conn.outbuf.end(), responses.begin(),
                         responses.end());
      flush(fd, conn);
      if (!keep) return false;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

bool SocketServer::flush(int fd, Conn& conn) {
  std::size_t sent = 0;
  while (sent < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + sent,
                             conn.outbuf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.outbuf.clear();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  conn.outbuf.erase(conn.outbuf.begin(),
                    conn.outbuf.begin() + static_cast<std::ptrdiff_t>(sent));
  return true;
}

void SocketServer::close_conn(int fd, bool notify_core) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (notify_core) core_.on_disconnect(it->second.id);
  ::close(fd);
  conns_.erase(it);
}

bool SocketServer::run_once(int timeout_ms) {
  if (stop_requested()) return false;
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back(pollfd{listen_fd_, static_cast<short>(POLLIN), 0});
  for (const auto& [fd, conn] : conns_) {
    short events = static_cast<short>(POLLIN);
    if (!conn.outbuf.empty()) {
      events = static_cast<short>(events | POLLOUT);
    }
    fds.push_back(pollfd{fd, events, 0});
  }
  const int rc =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (stop_requested()) return false;
  if (rc > 0) {
    if ((fds[0].revents & POLLIN) != 0) accept_ready();
    std::vector<int> finished;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      bool keep = true;
      if ((fds[i].revents & POLLOUT) != 0) keep = flush(fd, it->second);
      if (keep && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        keep = read_ready(fd, it->second);
      }
      if (!keep) finished.push_back(fd);
    }
    for (const int fd : finished) close_conn(fd, true);
  }
  // Tick pacing: accumulate wall-time between rounds and fire one
  // logical tick per full interval. Wall time only paces — every
  // deterministic decision keys off the logical tick counter.
  const std::int64_t now = steady_now_ms();
  if (last_poll_ms_ >= 0 && tick_interval_ms_ > 0) {
    tick_carry_ms_ += static_cast<std::uint64_t>(now - last_poll_ms_);
    while (tick_carry_ms_ >= tick_interval_ms_) {
      tick_carry_ms_ -= tick_interval_ms_;
      core_.tick();
    }
  }
  last_poll_ms_ = now;
  return true;
}

void SocketServer::run() {
  const int wait =
      tick_interval_ms_ > 0
          ? static_cast<int>(std::min<std::uint64_t>(tick_interval_ms_, 200))
          : 50;
  while (run_once(wait)) {
  }
  core_.drain();
}

SocketClient::~SocketClient() { close_conn(); }

bool SocketClient::connect_to(const Endpoint& endpoint) {
  close_conn();
  if (endpoint.is_unix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      close_conn();
      return false;
    }
    return true;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host =
      endpoint.host.empty() ? std::string("127.0.0.1") : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_conn();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    close_conn();
    return false;
  }
  return true;
}

bool SocketClient::send_bytes(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        sleep_ms(1);
        continue;
      }
      close_conn();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SocketClient::receive(std::vector<std::uint8_t>& out, int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, static_cast<short>(POLLIN), 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return true;  // quiet timeout: caller decides
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      out.insert(out.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_conn();
    return false;  // EOF or hard error
  }
}

void SocketClient::close_conn() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SocketClient::abort_conn() {
  if (fd_ < 0) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  close_conn();
}

}  // namespace opprentice::net
