#include "net/source_state.hpp"

namespace opprentice::net {

const char* to_string(SourceState state) {
  switch (state) {
    case SourceState::kAwaiting:
      return "awaiting";
    case SourceState::kLive:
      return "live";
    case SourceState::kSuspect:
      return "suspect";
    case SourceState::kLost:
      return "lost";
  }
  return "unknown";
}

const char* to_string(SeqVerdict verdict) {
  switch (verdict) {
    case SeqVerdict::kInOrder:
      return "in_order";
    case SeqVerdict::kGap:
      return "gap";
    case SeqVerdict::kReordered:
      return "reordered";
    case SeqVerdict::kDuplicate:
      return "duplicate";
    case SeqVerdict::kStale:
      return "stale";
  }
  return "unknown";
}

SourceTracker::SourceTracker(LivenessOptions options) : options_(options) {}

void SourceTracker::mark_alive(std::uint64_t now_tick) {
  last_seen_tick_ = now_tick;
  // kLost is sticky: the server already tore the source down, so only an
  // explicit revive() (reconnect handshake) brings it back.
  if (state_ == SourceState::kAwaiting || state_ == SourceState::kSuspect) {
    state_ = SourceState::kLive;
  }
}

SeqVerdict SourceTracker::observe(std::uint32_t seq, std::uint64_t now_tick) {
  mark_alive(now_tick);
  if (!has_seen_) {
    has_seen_ = true;
    last_seq_ = seq;
    window_ = 1;
    ++counters_.frames_accepted;
    return SeqVerdict::kInOrder;
  }
  if (seq > last_seq_) {
    const std::uint32_t delta = seq - last_seq_;
    window_ = delta >= 64 ? 0 : window_ << delta;
    window_ |= 1;
    last_seq_ = seq;
    ++counters_.frames_accepted;
    if (delta == 1) return SeqVerdict::kInOrder;
    counters_.gap_frames += delta - 1;
    return SeqVerdict::kGap;
  }
  const std::uint32_t behind = last_seq_ - seq;
  if (behind >= 64) {
    ++counters_.stale;
    return SeqVerdict::kStale;
  }
  const std::uint64_t bit = std::uint64_t{1} << behind;
  if ((window_ & bit) != 0) {
    ++counters_.duplicates;
    return SeqVerdict::kDuplicate;
  }
  window_ |= bit;
  // The late frame fills a hole the earlier kGap verdict counted as lost.
  if (counters_.gap_frames > 0) --counters_.gap_frames;
  ++counters_.reordered;
  ++counters_.frames_accepted;
  return SeqVerdict::kReordered;
}

void SourceTracker::touch(std::uint64_t now_tick) { mark_alive(now_tick); }

SourceState SourceTracker::tick(std::uint64_t now_tick) {
  if (state_ != SourceState::kLive && state_ != SourceState::kSuspect) {
    return state_;
  }
  const std::uint64_t idle =
      now_tick > last_seen_tick_ ? now_tick - last_seen_tick_ : 0;
  if (idle >= options_.lost_after_ticks) {
    if (state_ != SourceState::kLost) ++counters_.lost_transitions;
    state_ = SourceState::kLost;
  } else if (idle >= options_.suspect_after_ticks) {
    if (state_ == SourceState::kLive) {
      ++counters_.suspect_transitions;
      state_ = SourceState::kSuspect;
    }
  }
  return state_;
}

void SourceTracker::revive(std::uint64_t now_tick) {
  last_seen_tick_ = now_tick;
  if (state_ == SourceState::kLost) ++counters_.revives;
  state_ = SourceState::kLive;
}

}  // namespace opprentice::net
