// Transport-agnostic ingestion server core (DESIGN.md §5k).
//
// IngestServer is the whole daemon minus the sockets: it owns the
// per-connection frame parsers, the per-source liveness/sequencing
// trackers (source_state.hpp), bounded per-source ingest queues with
// RETRY-AFTER backpressure, and the translation of accepted DATA/LABEL
// batches into core::FleetEngine calls. The socket front end
// (sockets.hpp) and the in-memory transport used by the chaos suite both
// drive it through the same three entry points — on_connect / on_bytes /
// on_disconnect — plus a logical tick() that advances liveness deadlines
// and applies queued work.
//
// Determinism contract: given the same byte traces, connect order, and
// tick schedule, every observable output — response bytes, engine state,
// metric counters, flight events — is identical on every rerun at any
// thread count. Time is the caller's tick counter, never a clock;
// iteration is over std::map (sorted ids); fault decisions are pure
// hashes. The two connection-level fault sites live here: net.conn_reset
// fires after a processed frame (on_bytes returns false, the transport
// must close), net.accept_fail fires in on_connect.
//
// Thread safety: entry points may be called concurrently for *distinct*
// connections (the state mutex serializes them); tick()/drain() apply
// engine work outside the lock. Bytes of one connection must arrive in
// order, as any stream transport guarantees.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/fleet_engine.hpp"
#include "net/framing.hpp"
#include "net/source_state.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace opprentice::net {

struct ServerOptions {
  LivenessOptions liveness;
  // Frames queued per source before DATA/LABEL is rejected with RETRY.
  std::size_t queue_capacity = 64;
  // Queued batches applied per source per tick(); 0 = unbounded.
  std::size_t apply_budget = 0;
  // The RETRY frame's back-off hint.
  std::uint32_t retry_after_ticks = 1;
  // Fallback grid interval for DATA frames that declare 0 (infer).
  std::int64_t default_interval_seconds = 0;
  ts::RepairPolicy repair_policy = ts::RepairPolicy::kFillInterpolate;
};

// One source's externally visible state (snapshot(), sorted by id).
struct SourceSnapshot {
  std::string id;
  SourceState state = SourceState::kAwaiting;
  SourceCounters counters;
  std::uint32_t last_seq = 0;
  std::size_t queued_batches = 0;
  bool saw_bye = false;
};

class IngestServer {
 public:
  IngestServer(core::FleetEngine& engine, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // A transport announces a new connection. False = refuse (the
  // net.accept_fail site fired for this conn_id); the transport closes
  // the peer without reading.
  bool on_connect(std::uint64_t conn_id);

  // Feeds received bytes; response frames are appended to `responses`.
  // False = close this connection now (dead parser, protocol violation,
  // or the net.conn_reset site fired). Responses appended before the
  // failure are best-effort, like bytes in flight when a real peer
  // resets.
  bool on_bytes(std::uint64_t conn_id, std::span<const std::uint8_t> bytes,
                std::vector<std::uint8_t>& responses);

  void on_disconnect(std::uint64_t conn_id);

  // One logical tick: advance every source's liveness (flight events on
  // kSuspect/kLost transitions; a source going kLost has its queue
  // flushed to the engine first — deterministic teardown, no data loss),
  // then apply up to apply_budget queued batches per source in sorted
  // source order, refreshing the liveness gauges.
  void tick();

  // Applies everything still queued (SIGTERM drain path).
  void drain();

  std::uint64_t now_tick() const;
  std::size_t connection_count() const;
  // BYE frames accepted so far (serve --exit-after-byes).
  std::uint64_t byes_received() const;

  std::optional<SourceState> source_state(std::string_view source_id) const;
  std::vector<SourceSnapshot> snapshot() const;  // sorted by source id

 private:
  struct QueuedBatch {
    FrameType type = FrameType::kData;  // kData or kLabel
    std::string series_id;
    std::int64_t interval_seconds = 0;
    std::vector<ts::RawPoint> points;  // kData
    std::uint64_t label_begin = 0;     // kLabel
    std::vector<std::uint8_t> labels;  // kLabel
  };

  struct Source {
    std::string id;
    std::uint64_t salt = 0;
    SourceTracker tracker;
    std::deque<QueuedBatch> queue;
    bool saw_bye = false;
    SourceState last_reported = SourceState::kAwaiting;
  };

  struct Connection {
    FrameParser parser;
    Source* source = nullptr;  // bound by HELLO; sources outlive conns
    std::uint64_t frames_processed = 0;
  };

  // True = keep the connection; appends any response frames.
  bool handle_frame(Connection& conn, const Frame& frame,
                    std::vector<std::uint8_t>& responses)
      OPPRENTICE_REQUIRES(mutex_);

  void apply_batches(std::vector<std::pair<std::string, QueuedBatch>> work);
  void refresh_gauges() OPPRENTICE_REQUIRES(mutex_);
  core::SeriesHandle series_handle(const std::string& series_id);

  core::FleetEngine& engine_;
  const ServerOptions options_;

  // opprentice-locks: level(net_server)=5
  mutable util::Mutex mutex_;
  std::uint64_t now_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::uint64_t byes_ OPPRENTICE_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, Connection> connections_
      OPPRENTICE_GUARDED_BY(mutex_);
  // Sources persist across reconnects (resume handshake); sorted map so
  // every sweep is in deterministic id order.
  std::map<std::string, std::unique_ptr<Source>, std::less<>> sources_
      OPPRENTICE_GUARDED_BY(mutex_);

  // Engine handles resolved once per series. Guarded by its own mutex so
  // apply_batches (which runs unlocked w.r.t. mutex_) can use it.
  // opprentice-locks: level(net_series_cache)=7
  util::Mutex series_cache_mutex_;
  std::map<std::string, core::SeriesHandle, std::less<>> series_cache_
      OPPRENTICE_GUARDED_BY(series_cache_mutex_);
};

}  // namespace opprentice::net
