// The only file pair in the tree allowed to own socket file descriptors
// (enforced by opprentice_check's raw-socket rule, mirroring raw-mutex):
// every socket(), accept(), recv(), send(), setsockopt() lives behind
// these wrappers, so fd lifecycle bugs have one home and the rest of
// src/net stays deterministic and transport-free.
//
// SocketServer is a deliberately single-threaded poll() loop: accept,
// read, hand bytes to the transport-agnostic IngestServer, flush its
// response bytes, and fire IngestServer::tick() whenever the liveness
// tick interval elapses. One thread is plenty for an ingestion front
// door whose heavy lifting (repair + scoring) happens in the engine's
// own pool, and it keeps the socket path trivially free of data races.
//
// SocketClient is the matching blocking client for `opprentice_cli
// agent` and the loopback integration tests; abort_conn() closes with
// SO_LINGER 0 (RST) to simulate an agent killed mid-stream.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "net/server.hpp"

namespace opprentice::net {

// "tcp:HOST:PORT" (numeric IPv4 or "localhost") or "uds:PATH".
struct Endpoint {
  bool is_unix = false;
  std::string host;        // tcp
  std::uint16_t port = 0;  // tcp; 0 = ephemeral (tests)
  std::string path;        // uds
};

// Throws std::invalid_argument on malformed specs.
Endpoint parse_endpoint(const std::string& spec);

// Installs SIGTERM/SIGINT handlers that set the process stop flag (the
// graceful-drain trigger); stop_requested() polls it, request_stop()
// sets it programmatically (tests).
void install_stop_handlers();
bool stop_requested();
void request_stop();
void clear_stop();

// Portable sleep without <thread> (poll() with no fds).
void sleep_ms(std::uint64_t ms);

class SocketServer {
 public:
  // Binds and listens immediately; throws std::runtime_error on failure.
  // tick_interval_ms paces IngestServer::tick() inside run_once.
  SocketServer(IngestServer& core, const Endpoint& endpoint,
               std::uint64_t tick_interval_ms);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // One poll round (accept/read/respond/tick), waiting at most
  // timeout_ms for activity. Returns false once stop_requested(): the
  // caller should drain and exit.
  bool run_once(int timeout_ms);

  // run_once until stop_requested(), then IngestServer::drain().
  void run();

  // The port actually bound (resolves port 0).
  std::uint16_t bound_port() const { return bound_port_; }
  std::size_t open_connections() const { return conns_.size(); }

 private:
  struct Conn {
    std::uint64_t id = 0;
    std::vector<std::uint8_t> outbuf;
  };

  void accept_ready();
  // False = connection finished (peer closed, error, or core refused).
  bool read_ready(int fd, Conn& conn);
  bool flush(int fd, Conn& conn);
  void close_conn(int fd, bool notify_core);

  IngestServer& core_;
  const std::uint64_t tick_interval_ms_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unlink_path_;  // uds socket file to remove on close
  std::uint64_t next_conn_id_ = 1;
  std::map<int, Conn> conns_;  // sorted: deterministic service order
  std::uint64_t tick_carry_ms_ = 0;
  std::int64_t last_poll_ms_ = -1;  // steady-clock ms at last run_once
};

class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connect_to(const Endpoint& endpoint);
  bool connected() const { return fd_ >= 0; }

  // Sends all bytes (blocking). False on error; the socket is closed.
  bool send_bytes(std::span<const std::uint8_t> bytes);

  // Appends whatever arrives within timeout_ms to `out`. Returns false
  // on EOF or error (socket closed), true otherwise — including a quiet
  // timeout that appended nothing.
  bool receive(std::vector<std::uint8_t>& out, int timeout_ms);

  void close_conn();
  // Hard kill: SO_LINGER 0 makes close() send RST — the "agent died
  // mid-stream" path the reconnect integration test exercises.
  void abort_conn();

 private:
  int fd_ = -1;
};

}  // namespace opprentice::net
