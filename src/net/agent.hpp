// Client-side protocol automaton for the ingestion daemon (DESIGN.md
// §5k): the deterministic core of `opprentice_cli agent`.
//
// AgentCore is a lockstep sender: it keeps exactly one frame outstanding
// and advances only on the server's reply, which makes loss recovery
// trivial to reason about and replay — a lost frame or reply is a
// timeout (retransmit, same sequence number), a RETRY is backpressure
// (retransmit after the hinted delay), a disconnect falls back to the
// HELLO/resume handshake with every unacknowledged frame retained. The
// automaton is transport-free and clock-free: callers (the socket
// replayer, the in-memory chaos tests) own timing and retry pacing via
// BackoffPolicy, whose jittered delays are a pure seeded hash so a
// replay with the same seed backs off identically.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/framing.hpp"

namespace opprentice::net {

// delay(attempt) = min(base * 2^attempt, max) scaled by a jitter factor
// in [0.5, 1.0] drawn from hash(seed, attempt) — deterministic, and
// distinct seeds decorrelate a fleet of reconnecting agents.
struct BackoffPolicy {
  std::uint64_t base_ms = 50;
  std::uint64_t max_ms = 5000;
  std::uint64_t seed = 1;

  std::uint64_t delay_ms(std::uint64_t attempt) const;
};

class AgentCore {
 public:
  enum class Phase : std::uint8_t {
    kHello,      // must (re)send HELLO next
    kStreaming,  // sending queued frames in lockstep
    kDone,       // everything (including BYE) acknowledged
    kFailed,     // server sent ERROR: do not retry
  };

  explicit AgentCore(std::string source_id);

  // Queueing (before or during streaming). queue_data splits `points`
  // into DATA frames of at most `batch` points each.
  void queue_data(const std::string& series_id,
                  std::int64_t interval_seconds,
                  std::span<const ts::RawPoint> points, std::size_t batch);
  void queue_labels(const std::string& series_id, std::uint64_t begin,
                    std::vector<std::uint8_t> labels);
  void queue_heartbeat();
  // Appends the final BYE; the session is kDone once it is acknowledged.
  void finish();

  // The frame to transmit now: HELLO in kHello, else the head
  // unacknowledged frame. nullopt while a reply is outstanding or the
  // session is kDone/kFailed. Calling it marks the frame outstanding;
  // retransmissions (after on_timeout) reuse the original sequence
  // number.
  std::optional<Frame> next_frame();

  // Feeds one server frame. WELCOME completes (re)registration and
  // drops frames the server already committed; ACK advances the window;
  // RETRY re-arms the outstanding frame and records the backpressure
  // hint; ERROR moves to kFailed.
  void on_frame(const Frame& frame);

  // No reply arrived in time: re-arm the outstanding frame.
  void on_timeout();

  // Transport dropped: back to the HELLO/resume handshake. Nothing
  // unacknowledged is lost.
  void on_disconnect();

  Phase phase() const { return phase_; }
  bool done() const { return phase_ == Phase::kDone; }
  bool failed() const { return phase_ == Phase::kFailed; }
  bool awaiting_reply() const { return outstanding_; }
  std::uint32_t last_acked() const { return last_acked_; }
  std::size_t pending_frames() const { return pending_.size(); }

  // Ticks to wait before retransmitting, from the last RETRY frame; 0
  // once consumed. Consecutive RETRYs for the same frame escalate
  // retry_attempt() for BackoffPolicy.
  std::uint32_t retry_after_ticks();
  std::uint64_t retry_attempt() const { return retry_attempt_; }

  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t backpressure_retries() const { return backpressure_retries_; }
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  std::uint32_t next_seq() { return ++seq_; }

  const std::string source_id_;
  Phase phase_ = Phase::kHello;
  bool outstanding_ = false;
  std::uint32_t seq_ = 0;         // last assigned sequence number
  std::uint32_t last_acked_ = 0;  // highest server-confirmed sequence
  bool finished_ = false;
  std::deque<Frame> pending_;     // unacknowledged, in sequence order
  std::uint32_t retry_hint_ = 0;
  std::uint64_t retry_attempt_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t backpressure_retries_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace opprentice::net
