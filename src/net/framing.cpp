#include "net/framing.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace opprentice::net {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  return kTable;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

// Cursor over a payload; every read checks bounds and flips `ok` on
// overrun so decoders report malformed payloads instead of reading past
// the frame.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (data.size() - pos < 4) {
      ok = false;
      pos = data.size();
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) |
                            static_cast<std::uint32_t>(data[pos + 1]) << 8 |
                            static_cast<std::uint32_t>(data[pos + 2]) << 16 |
                            static_cast<std::uint32_t>(data[pos + 3]) << 24;
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  bool bytes(std::size_t n, std::span<const std::uint8_t>* out) {
    if (data.size() - pos < n) {
      ok = false;
      pos = data.size();
      return false;
    }
    *out = data.subspan(pos, n);
    pos += n;
    return true;
  }

  // Length-prefixed string (u32 length + bytes).
  bool string(std::string* out) {
    const std::uint32_t n = u32();
    std::span<const std::uint8_t> raw;
    if (!ok || !bytes(n, &raw)) return false;
    out->assign(reinterpret_cast<const char*>(raw.data()), raw.size());
    return true;
  }

  bool done() const { return ok && pos == data.size(); }
};

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

Frame make(FrameType type, std::uint32_t seq,
           std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.type = type;
  frame.seq = seq;
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kData:
      return "DATA";
    case FrameType::kLabel:
      return "LABEL";
    case FrameType::kHeartbeat:
      return "HEARTBEAT";
    case FrameType::kBye:
      return "BYE";
    case FrameType::kWelcome:
      return "WELCOME";
    case FrameType::kAck:
      return "ACK";
    case FrameType::kRetry:
      return "RETRY";
    case FrameType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

bool is_client_frame(FrameType type) {
  switch (type) {
    case FrameType::kHello:
    case FrameType::kData:
    case FrameType::kLabel:
    case FrameType::kHeartbeat:
    case FrameType::kBye:
      return true;
    default:
      return false;
  }
}

bool is_server_frame(FrameType type) {
  switch (type) {
    case FrameType::kWelcome:
    case FrameType::kAck:
    case FrameType::kRetry:
    case FrameType::kError:
      return true;
    default:
      return false;
  }
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

FrameHeader decode_frame_header(const std::uint8_t* data) {
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(data[0]) |
                  static_cast<std::uint32_t>(data[1]) << 8 |
                  static_cast<std::uint32_t>(data[2]) << 16 |
                  static_cast<std::uint32_t>(data[3]) << 24;
  h.version = data[4];
  h.type = data[5];
  h.seq = static_cast<std::uint32_t>(data[6]) |
          static_cast<std::uint32_t>(data[7]) << 8 |
          static_cast<std::uint32_t>(data[8]) << 16 |
          static_cast<std::uint32_t>(data[9]) << 24;
  return h;
}

void append_frame(std::vector<std::uint8_t>& out, const Frame& frame) {
  const std::size_t start = out.size();
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.seq);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(out).subspan(start + 4));
  put_u32(out, crc);
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + frame.payload.size() + kCrcBytes);
  append_frame(out, frame);
  return out;
}

Frame make_hello(std::uint32_t seq, const HelloPayload& payload) {
  std::vector<std::uint8_t> body;
  put_string(body, payload.source_id);
  put_u32(body, payload.resume_seq);
  return make(FrameType::kHello, seq, std::move(body));
}

Frame make_data(std::uint32_t seq, const DataPayload& payload) {
  std::vector<std::uint8_t> body;
  put_string(body, payload.series_id);
  put_u64(body, static_cast<std::uint64_t>(payload.interval_seconds));
  put_u32(body, static_cast<std::uint32_t>(payload.points.size()));
  for (const ts::RawPoint& p : payload.points) {
    put_u64(body, static_cast<std::uint64_t>(p.timestamp));
    put_u64(body, std::bit_cast<std::uint64_t>(p.value));
  }
  return make(FrameType::kData, seq, std::move(body));
}

Frame make_label(std::uint32_t seq, const LabelPayload& payload) {
  std::vector<std::uint8_t> body;
  put_string(body, payload.series_id);
  put_u64(body, payload.begin);
  put_u32(body, static_cast<std::uint32_t>(payload.labels.size()));
  body.insert(body.end(), payload.labels.begin(), payload.labels.end());
  return make(FrameType::kLabel, seq, std::move(body));
}

Frame make_heartbeat(std::uint32_t seq) {
  return make(FrameType::kHeartbeat, seq, {});
}

Frame make_bye(std::uint32_t seq) {
  return make(FrameType::kBye, seq, {});
}

Frame make_welcome(const WelcomePayload& payload) {
  std::vector<std::uint8_t> body;
  put_u32(body, payload.resume_seq);
  return make(FrameType::kWelcome, 0, std::move(body));
}

Frame make_ack(const AckPayload& payload) {
  std::vector<std::uint8_t> body;
  put_u32(body, payload.seq);
  return make(FrameType::kAck, 0, std::move(body));
}

Frame make_retry(const RetryPayload& payload) {
  std::vector<std::uint8_t> body;
  put_u32(body, payload.seq);
  put_u32(body, payload.retry_after_ticks);
  return make(FrameType::kRetry, 0, std::move(body));
}

Frame make_error(std::string_view message) {
  std::vector<std::uint8_t> body;
  put_string(body, message);
  return make(FrameType::kError, 0, std::move(body));
}

bool decode_hello(const Frame& frame, HelloPayload* out) {
  if (frame.type != FrameType::kHello) return false;
  Reader r{frame.payload};
  HelloPayload p;
  if (!r.string(&p.source_id)) return false;
  p.resume_seq = r.u32();
  if (!r.done()) return false;
  *out = std::move(p);
  return true;
}

bool decode_data(const Frame& frame, DataPayload* out) {
  if (frame.type != FrameType::kData) return false;
  Reader r{frame.payload};
  DataPayload p;
  if (!r.string(&p.series_id)) return false;
  p.interval_seconds = static_cast<std::int64_t>(r.u64());
  const std::uint32_t count = r.u32();
  if (!r.ok) return false;
  // Each point is 16 bytes; reject counts the remaining payload cannot
  // hold before reserving.
  if (r.data.size() - r.pos < static_cast<std::size_t>(count) * 16) {
    return false;
  }
  p.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ts::RawPoint point;
    point.timestamp = static_cast<std::int64_t>(r.u64());
    point.value = std::bit_cast<double>(r.u64());
    p.points.push_back(point);
  }
  if (!r.done()) return false;
  *out = std::move(p);
  return true;
}

bool decode_label(const Frame& frame, LabelPayload* out) {
  if (frame.type != FrameType::kLabel) return false;
  Reader r{frame.payload};
  LabelPayload p;
  if (!r.string(&p.series_id)) return false;
  p.begin = r.u64();
  const std::uint32_t count = r.u32();
  std::span<const std::uint8_t> raw;
  if (!r.ok || !r.bytes(count, &raw)) return false;
  p.labels.assign(raw.begin(), raw.end());
  if (!r.done()) return false;
  *out = std::move(p);
  return true;
}

bool decode_welcome(const Frame& frame, WelcomePayload* out) {
  if (frame.type != FrameType::kWelcome) return false;
  Reader r{frame.payload};
  WelcomePayload p;
  p.resume_seq = r.u32();
  if (!r.done()) return false;
  *out = p;
  return true;
}

bool decode_ack(const Frame& frame, AckPayload* out) {
  if (frame.type != FrameType::kAck) return false;
  Reader r{frame.payload};
  AckPayload p;
  p.seq = r.u32();
  if (!r.done()) return false;
  *out = p;
  return true;
}

bool decode_retry(const Frame& frame, RetryPayload* out) {
  if (frame.type != FrameType::kRetry) return false;
  Reader r{frame.payload};
  RetryPayload p;
  p.seq = r.u32();
  p.retry_after_ticks = r.u32();
  if (!r.done()) return false;
  *out = p;
  return true;
}

bool decode_error(const Frame& frame, ErrorPayload* out) {
  if (frame.type != FrameType::kError) return false;
  Reader r{frame.payload};
  ErrorPayload p;
  if (!r.string(&p.message)) return false;
  if (!r.done()) return false;
  *out = std::move(p);
  return true;
}

FrameParser::FrameParser(std::size_t max_payload)
    : max_payload_(max_payload) {}

void FrameParser::push_bytes(std::span<const std::uint8_t> bytes) {
  if (dead_) return;
  // Compact once the consumed prefix dominates the buffer so a long-lived
  // connection does not grow its buffer without bound.
  if (head_ > 4096 && head_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameParser::next(Frame* out) {
  while (!dead_) {
    const std::size_t avail = buffer_.size() - head_;
    if (avail < kHeaderBytes) return false;
    const FrameHeader h = decode_frame_header(buffer_.data() + head_);
    if (h.payload_len > max_payload_) {
      // The declared length cannot be trusted, so neither can any later
      // length prefix: the stream is unrecoverable.
      dead_ = true;
      return false;
    }
    const std::size_t total = kHeaderBytes + h.payload_len + kCrcBytes;
    if (avail < total) return false;
    const std::uint8_t* base = buffer_.data() + head_;
    const std::uint32_t want =
        static_cast<std::uint32_t>(base[total - 4]) |
        static_cast<std::uint32_t>(base[total - 3]) << 8 |
        static_cast<std::uint32_t>(base[total - 2]) << 16 |
        static_cast<std::uint32_t>(base[total - 1]) << 24;
    const std::uint32_t got = crc32(std::span<const std::uint8_t>(
        base + 4, total - 4 - kCrcBytes));
    head_ += total;
    if (got != want) {
      ++corrupt_frames_;
      continue;  // skip; the length prefix already re-synchronized us
    }
    if (h.version != kProtocolVersion) {
      ++bad_version_frames_;
      continue;
    }
    out->version = h.version;
    out->type = static_cast<FrameType>(h.type);
    out->seq = h.seq;
    out->payload.assign(base + kHeaderBytes,
                        base + kHeaderBytes + h.payload_len);
    ++frames_parsed_;
    return true;
  }
  return false;
}

}  // namespace opprentice::net
