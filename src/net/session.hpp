// Wire-fault shaping for the deterministic session core (DESIGN.md §5k).
//
// The chaos suite needs the six net.* fault sites to perturb real encoded
// frames — not abstractions — so corruption exercises the parser's CRC
// rejection and drops/reorders flow through the per-source sequencer into
// the defect classes repair_series repairs. FrameFaultInjector sits at
// the sender's frame boundary (the agent core and the in-memory
// transport both route through it): each encoded frame is dropped,
// duplicated, held back one slot (reorder), or byte-flipped (corrupt)
// according to the process fault plan, keyed by (source salt, frame
// index) so a given plan perturbs the same frames on every rerun at any
// thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace opprentice::net {

class FrameFaultInjector {
 public:
  // `source_salt` is util::stable_id_hash(source_id): each source gets
  // its own deterministic perturbation pattern, like the fleet engine's
  // per-series ingest fault salts.
  explicit FrameFaultInjector(std::uint64_t source_salt);

  // Applies the frame-level sites to one encoded frame and appends the
  // surviving bytes to `out`. Order per frame: drop (wins outright),
  // else corrupt and/or duplicate and/or reorder (hold the frame back
  // and emit it after the next one). No-op passthrough when fault
  // injection is disabled.
  void apply(std::vector<std::uint8_t> frame, std::vector<std::uint8_t>& out);

  // Emits a held-back (reordered) frame that never saw a successor.
  // Call at end-of-stream so reordering never silently drops.
  void flush(std::vector<std::uint8_t>& out);

  std::uint64_t frames_seen() const { return frame_index_; }

 private:
  const std::uint64_t source_salt_;
  std::uint64_t frame_index_ = 0;
  std::vector<std::uint8_t> held_;  // frame awaiting its reorder partner
  bool holding_ = false;
};

// Flips one payload/header byte of an encoded frame in place, skipping
// the 4-byte length prefix so the parser stays synchronized and rejects
// the frame on CRC instead of desyncing. Which byte flips is a pure
// function of `key`. Frames too short to corrupt are left alone.
void corrupt_frame_bytes(std::span<std::uint8_t> frame, std::uint64_t key);

}  // namespace opprentice::net
