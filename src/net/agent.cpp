#include "net/agent.hpp"

#include <algorithm>
#include <utility>

#include "util/fault_injection.hpp"

namespace opprentice::net {

std::uint64_t BackoffPolicy::delay_ms(std::uint64_t attempt) const {
  std::uint64_t delay = base_ms;
  for (std::uint64_t i = 0; i < attempt && delay < max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, max_ms);
  // Jitter in [0.5, 1.0]: half the fleet never thunders back in phase.
  const std::uint64_t h = util::fault_key(seed, attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double scaled = static_cast<double>(delay) * (0.5 + 0.5 * u);
  return static_cast<std::uint64_t>(scaled);
}

AgentCore::AgentCore(std::string source_id)
    : source_id_(std::move(source_id)) {}

void AgentCore::queue_data(const std::string& series_id,
                           std::int64_t interval_seconds,
                           std::span<const ts::RawPoint> points,
                           std::size_t batch) {
  if (batch == 0) batch = points.size() == 0 ? 1 : points.size();
  for (std::size_t at = 0; at < points.size(); at += batch) {
    DataPayload payload;
    payload.series_id = series_id;
    payload.interval_seconds = interval_seconds;
    const std::size_t n = std::min(batch, points.size() - at);
    payload.points.assign(points.begin() + static_cast<std::ptrdiff_t>(at),
                          points.begin() + static_cast<std::ptrdiff_t>(at + n));
    pending_.push_back(make_data(next_seq(), payload));
  }
}

void AgentCore::queue_labels(const std::string& series_id,
                             std::uint64_t begin,
                             std::vector<std::uint8_t> labels) {
  LabelPayload payload;
  payload.series_id = series_id;
  payload.begin = begin;
  payload.labels = std::move(labels);
  pending_.push_back(make_label(next_seq(), payload));
}

void AgentCore::queue_heartbeat() {
  pending_.push_back(make_heartbeat(next_seq()));
}

void AgentCore::finish() {
  if (finished_) return;
  finished_ = true;
  pending_.push_back(make_bye(next_seq()));
}

std::optional<Frame> AgentCore::next_frame() {
  if (phase_ == Phase::kDone || phase_ == Phase::kFailed) return std::nullopt;
  if (outstanding_) return std::nullopt;
  if (phase_ == Phase::kHello) {
    outstanding_ = true;
    return make_hello(0, HelloPayload{source_id_, last_acked_});
  }
  if (pending_.empty()) {
    if (finished_) phase_ = Phase::kDone;
    return std::nullopt;
  }
  outstanding_ = true;
  return pending_.front();
}

void AgentCore::on_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kWelcome: {
      WelcomePayload welcome;
      if (!decode_welcome(frame, &welcome)) return;
      // Everything the server already committed needs no retransmission.
      last_acked_ = std::max(last_acked_, welcome.resume_seq);
      while (!pending_.empty() && pending_.front().seq <= last_acked_) {
        pending_.pop_front();
      }
      phase_ = Phase::kStreaming;
      outstanding_ = false;
      retry_attempt_ = 0;
      return;
    }
    case FrameType::kAck: {
      AckPayload ack;
      if (!decode_ack(frame, &ack)) return;
      if (!pending_.empty() && pending_.front().seq == ack.seq) {
        last_acked_ = std::max(last_acked_, ack.seq);
        pending_.pop_front();
        outstanding_ = false;
        retry_attempt_ = 0;
        if (pending_.empty() && finished_) phase_ = Phase::kDone;
      }
      return;
    }
    case FrameType::kRetry: {
      RetryPayload retry;
      if (!decode_retry(frame, &retry)) return;
      if (!pending_.empty() && pending_.front().seq == retry.seq) {
        // Backpressure: same frame again after the hinted delay.
        outstanding_ = false;
        retry_hint_ = retry.retry_after_ticks;
        ++retry_attempt_;
        ++backpressure_retries_;
      }
      return;
    }
    case FrameType::kError:
      phase_ = Phase::kFailed;
      outstanding_ = false;
      return;
    default:
      return;  // client-side frame echoed back: ignore
  }
}

void AgentCore::on_timeout() {
  if (!outstanding_) return;
  outstanding_ = false;
  ++retransmits_;
  ++retry_attempt_;
}

void AgentCore::on_disconnect() {
  if (phase_ == Phase::kDone || phase_ == Phase::kFailed) return;
  outstanding_ = false;
  phase_ = Phase::kHello;
  ++reconnects_;
}

std::uint32_t AgentCore::retry_after_ticks() {
  return std::exchange(retry_hint_, 0u);
}

}  // namespace opprentice::net
