// Per-source liveness + sequencing state machine (DESIGN.md §5k).
//
// Every connected agent ("source") gets one SourceTracker, modeled on the
// sACN receiver's per-source detector: sources are born kAwaiting, go
// kLive on their first accepted frame, decay to kSuspect and then kLost
// as heartbeat deadlines lapse, and return to kLive only through an
// explicit revive (a reconnecting agent's HELLO/resume handshake).
//
//            frame                    idle >= suspect_after
//   kAwaiting ----> kLive <--------+ ----> kSuspect
//       |             ^   frame    |           |  idle >= lost_after
//       |             |            +-----------+
//       |          revive()                    v
//       +------------ + <-------------------- kLost   (teardown)
//
// The tracker also sequences frames: a 64-entry sliding bitmap over the
// most recent sequence numbers classifies each arrival as in-order, a
// gap (wire loss -> repair_series sees missing timestamps), a duplicate
// (dropped at the frame layer, exactly-once apply), a reorder (applied;
// repair_series re-sorts), or stale (behind the window; dropped). Time
// is a caller-supplied logical tick, never a clock — the same frame
// trace replays to the same transitions in the chaos suite, and
// `observe` is on the per-frame hot path (OPPRENTICE_HOT: no
// alloc/lock/clock).
#pragma once

#include <cstdint>

#include "util/hotpath.hpp"

namespace opprentice::net {

enum class SourceState : std::uint8_t {
  kAwaiting,  // registered, no frame accepted yet
  kLive,      // frames flowing within the heartbeat deadline
  kSuspect,   // missed at least suspect_after_ticks; still tracked
  kLost,      // missed lost_after_ticks; torn down until revive()
};

const char* to_string(SourceState state);

// How a sequence number relates to what the source already sent.
enum class SeqVerdict : std::uint8_t {
  kInOrder,    // exactly last + 1 (or the first frame): apply
  kGap,        // jumped ahead: apply, count the skipped frames as lost
  kReordered,  // behind but unseen: apply (repair_series re-sorts)
  kDuplicate,  // behind and already seen: drop, but re-ACK
  kStale,      // behind the 64-frame window: drop
};

const char* to_string(SeqVerdict verdict);

struct LivenessOptions {
  // Ticks of silence before kLive decays to kSuspect / kSuspect to kLost.
  std::uint64_t suspect_after_ticks = 5;
  std::uint64_t lost_after_ticks = 10;
};

struct SourceCounters {
  std::uint64_t frames_accepted = 0;  // in-order + gap + reordered
  std::uint64_t gap_frames = 0;       // frames the wire lost
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stale = 0;
  std::uint64_t suspect_transitions = 0;
  std::uint64_t lost_transitions = 0;
  std::uint64_t revives = 0;
};

class SourceTracker {
 public:
  explicit SourceTracker(LivenessOptions options = {});

  // Classifies `seq` against the sliding window and commits it when the
  // verdict says apply. Also refreshes the liveness deadline and promotes
  // kAwaiting/kSuspect to kLive (kLost stays kLost: only revive() returns
  // from the dead). Hot: one branch tree over two u64s, no allocation.
  OPPRENTICE_HOT SeqVerdict observe(std::uint32_t seq, std::uint64_t now_tick);

  // Refreshes the liveness deadline without committing a sequence number
  // — for frames the server rejected under backpressure, so the agent's
  // retransmission is not misclassified as a duplicate.
  void touch(std::uint64_t now_tick);

  // Advances liveness to `now_tick`, decaying kLive -> kSuspect -> kLost
  // as deadlines lapse. Returns the (possibly new) state; the caller
  // emits flight events on change.
  SourceState tick(std::uint64_t now_tick);

  // Re-registration after kLost (reconnect + HELLO). Keeps the sequence
  // window and counters so retransmitted frames still deduplicate and
  // per-series attribution stays exact across the outage.
  void revive(std::uint64_t now_tick);

  SourceState state() const { return state_; }
  const SourceCounters& counters() const { return counters_; }
  // Highest committed sequence number (the WELCOME resume_seq).
  std::uint32_t last_seq() const { return last_seq_; }
  bool has_seen() const { return has_seen_; }
  std::uint64_t last_seen_tick() const { return last_seen_tick_; }

 private:
  void mark_alive(std::uint64_t now_tick);

  LivenessOptions options_;
  SourceState state_ = SourceState::kAwaiting;
  std::uint64_t last_seen_tick_ = 0;
  bool has_seen_ = false;
  std::uint32_t last_seq_ = 0;
  // Bit i set = sequence number (last_seq_ - i) was committed.
  std::uint64_t window_ = 0;
  SourceCounters counters_;
};

}  // namespace opprentice::net
