// Wire protocol of the ingestion daemon (DESIGN.md §5k).
//
// A compact length-prefixed binary framing carries KPI points, operator
// labels, and liveness heartbeats from many monitoring agents to
// opprentice_server. Every frame is CRC-checked and versioned so a
// corrupted or truncated byte stream degrades into counted, skipped
// frames instead of a desynchronized parser:
//
//   offset size  field
//   0      4     payload length N (LE; excludes header and CRC)
//   4      1     protocol version (kProtocolVersion)
//   5      1     frame type (FrameType)
//   6      4     per-source sequence number (LE)
//   10     N     payload (typed encodings below)
//   10+N   4     CRC-32 (IEEE) over bytes [4, 10+N)
//
// Client frames: HELLO (source registration + resume handshake), DATA
// (one batch of (timestamp, value) points for one series), LABEL
// (operator labels for a row range), HEARTBEAT, BYE. Server frames:
// WELCOME (accepts HELLO, names the resume sequence), ACK, RETRY
// (backpressure: the frame was rejected, come back later), ERROR.
//
// Everything here is a pure function of its input bytes — no clocks, no
// sockets, no global state — so the session core built on it replays
// byte-identically in the chaos suite (tests/net_session_test.cpp). The
// fixed-size header decode is on the per-frame hot path and annotated
// OPPRENTICE_HOT (no alloc/lock/clock; opprentice_hotpath lints it).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "timeseries/repair.hpp"
#include "util/hotpath.hpp"

namespace opprentice::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 10;  // length+version+type+seq
inline constexpr std::size_t kCrcBytes = 4;
// Frames declaring a larger payload poison the connection (a broken or
// hostile peer; the stream can no longer be trusted to re-synchronize).
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,
  kData = 0x02,
  kLabel = 0x03,
  kHeartbeat = 0x04,
  kBye = 0x05,
  kWelcome = 0x81,
  kAck = 0x82,
  kRetry = 0x83,
  kError = 0x84,
};

const char* to_string(FrameType type);
bool is_client_frame(FrameType type);
bool is_server_frame(FrameType type);

// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial).
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

struct Frame {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

// Fixed-size header view, decoded without touching the payload.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint32_t seq = 0;
};

// Decodes the 10-byte header at `data` (caller guarantees kHeaderBytes
// readable). Pure and allocation-free: the per-frame fast path.
OPPRENTICE_HOT FrameHeader decode_frame_header(const std::uint8_t* data);

// Serializes header + payload + CRC onto `out`.
void append_frame(std::vector<std::uint8_t>& out, const Frame& frame);
std::vector<std::uint8_t> encode_frame(const Frame& frame);

// ---- typed payloads ------------------------------------------------------

struct HelloPayload {
  std::string source_id;
  // Highest sequence number the agent saw acknowledged; 0 on first
  // contact. The server answers with its own view in WELCOME.
  std::uint32_t resume_seq = 0;
};

struct DataPayload {
  std::string series_id;
  std::int64_t interval_seconds = 0;  // 0 = let repair_series infer
  std::vector<ts::RawPoint> points;
};

struct LabelPayload {
  std::string series_id;
  std::uint64_t begin = 0;  // global row index of labels[0]
  std::vector<std::uint8_t> labels;
};

struct WelcomePayload {
  // Highest sequence number the server accepted for this source; the
  // agent retransmits everything after it.
  std::uint32_t resume_seq = 0;
};

struct AckPayload {
  std::uint32_t seq = 0;  // the acknowledged frame
};

struct RetryPayload {
  std::uint32_t seq = 0;              // the rejected frame
  std::uint32_t retry_after_ticks = 0;  // backpressure hint
};

struct ErrorPayload {
  std::string message;
};

Frame make_hello(std::uint32_t seq, const HelloPayload& payload);
Frame make_data(std::uint32_t seq, const DataPayload& payload);
Frame make_label(std::uint32_t seq, const LabelPayload& payload);
Frame make_heartbeat(std::uint32_t seq);
Frame make_bye(std::uint32_t seq);
Frame make_welcome(const WelcomePayload& payload);
Frame make_ack(const AckPayload& payload);
Frame make_retry(const RetryPayload& payload);
Frame make_error(std::string_view message);

// Payload decoders: false on malformed payloads (short, bad string
// length, truncated point array) — callers count and skip, never throw.
bool decode_hello(const Frame& frame, HelloPayload* out);
bool decode_data(const Frame& frame, DataPayload* out);
bool decode_label(const Frame& frame, LabelPayload* out);
bool decode_welcome(const Frame& frame, WelcomePayload* out);
bool decode_ack(const Frame& frame, AckPayload* out);
bool decode_retry(const Frame& frame, RetryPayload* out);
bool decode_error(const Frame& frame, ErrorPayload* out);

// ---- incremental parser --------------------------------------------------

// Feed bytes as they arrive; pop well-formed frames. Malformed frames
// (CRC mismatch, unknown version) are skipped and counted — the length
// prefix keeps the stream synchronized. A frame declaring more than
// `max_payload` bytes kills the parser (dead() == true): the connection
// owner must close the peer.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kMaxPayloadBytes);

  void push_bytes(std::span<const std::uint8_t> bytes);
  // True when a complete valid frame was extracted into *out.
  bool next(Frame* out);

  bool dead() const { return dead_; }
  std::uint64_t corrupt_frames() const { return corrupt_frames_; }
  std::uint64_t bad_version_frames() const { return bad_version_frames_; }
  std::uint64_t frames_parsed() const { return frames_parsed_; }
  std::size_t buffered_bytes() const { return buffer_.size() - head_; }

 private:
  std::size_t max_payload_;  // non-const: parsers are reset by assignment
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;  // consumed prefix of buffer_
  bool dead_ = false;
  std::uint64_t corrupt_frames_ = 0;
  std::uint64_t bad_version_frames_ = 0;
  std::uint64_t frames_parsed_ = 0;
};

}  // namespace opprentice::net
