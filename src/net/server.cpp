#include "net/server.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/fault_injection.hpp"

namespace opprentice::net {
namespace {

// Instruments looked up once; addresses are stable for process lifetime.
struct NetCounters {
  obs::Counter* frames_rx = &obs::counter("opprentice.net.frames_rx");
  obs::Counter* frames_tx = &obs::counter("opprentice.net.frames_tx");
  obs::Counter* bytes_rx = &obs::counter("opprentice.net.bytes_rx");
  obs::Counter* bytes_tx = &obs::counter("opprentice.net.bytes_tx");
  obs::Counter* frames_corrupt =
      &obs::counter("opprentice.net.frames_corrupt");
  obs::Counter* seq_gaps = &obs::counter("opprentice.net.seq_gaps");
  obs::Counter* seq_duplicates =
      &obs::counter("opprentice.net.seq_duplicates");
  obs::Counter* seq_reordered =
      &obs::counter("opprentice.net.seq_reordered");
  obs::Counter* seq_stale = &obs::counter("opprentice.net.seq_stale");
  obs::Counter* backpressure_rejects =
      &obs::counter("opprentice.net.backpressure_rejects");
  obs::Counter* accepts = &obs::counter("opprentice.net.accepts");
  obs::Counter* accept_failures =
      &obs::counter("opprentice.net.accept_failures");
  obs::Counter* resets = &obs::counter("opprentice.net.resets");
  obs::Counter* batches_applied =
      &obs::counter("opprentice.net.batches_applied");
  obs::Counter* points_applied =
      &obs::counter("opprentice.net.points_applied");
  obs::Gauge* sources_live = &obs::gauge("opprentice.net.sources_live");
  obs::Gauge* sources_suspect =
      &obs::gauge("opprentice.net.sources_suspect");
  obs::Gauge* sources_lost = &obs::gauge("opprentice.net.sources_lost");
};

NetCounters& net_counters() {
  // opprentice-check: allow(unguarded-static) Meyers singleton of registry-owned instrument pointers; the instruments themselves are atomic
  static NetCounters counters;
  return counters;
}

void append_response(std::vector<std::uint8_t>& responses,
                     const Frame& frame) {
  const std::size_t before = responses.size();
  append_frame(responses, frame);
  net_counters().frames_tx->add();
  net_counters().bytes_tx->add(responses.size() - before);
}

}  // namespace

IngestServer::IngestServer(core::FleetEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

IngestServer::~IngestServer() = default;

bool IngestServer::on_connect(std::uint64_t conn_id) {
  if (util::inject_fault(util::faults::kNetAcceptFail, conn_id)) {
    net_counters().accept_failures->add();
    return false;
  }
  net_counters().accepts->add();
  util::MutexLock lock(mutex_);
  connections_.try_emplace(conn_id);
  return true;
}

void IngestServer::on_disconnect(std::uint64_t conn_id) {
  util::MutexLock lock(mutex_);
  connections_.erase(conn_id);
}

bool IngestServer::on_bytes(std::uint64_t conn_id,
                            std::span<const std::uint8_t> bytes,
                            std::vector<std::uint8_t>& responses) {
  net_counters().bytes_rx->add(bytes.size());
  util::MutexLock lock(mutex_);
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return false;
  Connection& conn = it->second;
  conn.parser.push_bytes(bytes);
  Frame frame;
  while (conn.parser.next(&frame)) {
    net_counters().frames_rx->add();
    if (!handle_frame(conn, frame, responses)) return false;
    ++conn.frames_processed;
    // The reset site models the kernel tearing the stream down under us:
    // it fires after a frame was fully processed, keyed by (source,
    // connection, frame) so a plan resets the same exchanges on every
    // rerun — connect order is part of the determinism contract — while
    // a frame retried on a fresh connection gets a fresh decision
    // (keying by sequence number alone would reset every retry of an
    // unlucky frame forever and livelock the session at high rates).
    const std::uint64_t reset_key = util::fault_key(
        util::fault_key(conn.source != nullptr ? conn.source->salt : conn_id,
                        conn_id),
        frame.seq);
    if (util::inject_fault(util::faults::kNetConnReset, reset_key)) {
      net_counters().resets->add();
      return false;
    }
  }
  if (conn.parser.dead()) {
    append_response(responses, make_error("unrecoverable frame stream"));
    return false;
  }
  return true;
}

bool IngestServer::handle_frame(Connection& conn, const Frame& frame,
                                std::vector<std::uint8_t>& responses) {
  NetCounters& counters = net_counters();
  if (!is_client_frame(frame.type)) {
    append_response(responses, make_error("unexpected server-side frame"));
    return false;
  }
  if (frame.type == FrameType::kHello) {
    HelloPayload hello;
    if (!decode_hello(frame, &hello) || hello.source_id.empty()) {
      append_response(responses, make_error("malformed HELLO"));
      return false;
    }
    auto [slot, inserted] = sources_.try_emplace(hello.source_id);
    if (inserted) {
      slot->second = std::make_unique<Source>();
      slot->second->id = hello.source_id;
      slot->second->salt = util::stable_id_hash(hello.source_id);
      slot->second->tracker = SourceTracker(options_.liveness);
    }
    Source& source = *slot->second;
    if (source.tracker.state() == SourceState::kLost) {
      source.tracker.revive(now_);
      obs::flight_record("net", "revive", source.salt,
                         "source=" + source.id);
    } else {
      source.tracker.touch(now_);
    }
    conn.source = &source;
    append_response(responses, make_welcome(WelcomePayload{
                                   source.tracker.last_seq()}));
    return true;
  }
  if (conn.source == nullptr) {
    append_response(responses, make_error("frame before HELLO"));
    return false;
  }
  Source& source = *conn.source;
  const bool wants_queue =
      frame.type == FrameType::kData || frame.type == FrameType::kLabel;
  if (wants_queue && source.queue.size() >= options_.queue_capacity) {
    // Backpressure: never buffer unboundedly. The deadline still
    // refreshes (the agent is alive, just too fast) but the sequence
    // number is NOT committed, so the retransmission is not a duplicate.
    source.tracker.touch(now_);
    counters.backpressure_rejects->add();
    obs::flight_record("net", "backpressure",
                       util::fault_key(source.salt, frame.seq),
                       "source=" + source.id);
    append_response(responses, make_retry(RetryPayload{
                                   frame.seq, options_.retry_after_ticks}));
    return true;
  }
  const SeqVerdict verdict = source.tracker.observe(frame.seq, now_);
  switch (verdict) {
    case SeqVerdict::kDuplicate:
      // Already applied (or queued): drop at the frame layer for
      // exactly-once apply, but re-ACK so a lockstep sender whose ACK
      // was lost can make progress.
      counters.seq_duplicates->add();
      append_response(responses, make_ack(AckPayload{frame.seq}));
      return true;
    case SeqVerdict::kStale:
      counters.seq_stale->add();
      append_response(responses, make_ack(AckPayload{frame.seq}));
      return true;
    case SeqVerdict::kGap:
      counters.seq_gaps->add();
      break;
    case SeqVerdict::kReordered:
      counters.seq_reordered->add();
      break;
    case SeqVerdict::kInOrder:
      break;
  }
  switch (frame.type) {
    case FrameType::kData: {
      DataPayload data;
      if (!decode_data(frame, &data) || data.series_id.empty()) {
        append_response(responses, make_error("malformed DATA"));
        return false;
      }
      QueuedBatch batch;
      batch.type = FrameType::kData;
      batch.series_id = std::move(data.series_id);
      batch.interval_seconds = data.interval_seconds != 0
                                   ? data.interval_seconds
                                   : options_.default_interval_seconds;
      batch.points = std::move(data.points);
      source.queue.push_back(std::move(batch));
      break;
    }
    case FrameType::kLabel: {
      LabelPayload label;
      if (!decode_label(frame, &label) || label.series_id.empty()) {
        append_response(responses, make_error("malformed LABEL"));
        return false;
      }
      QueuedBatch batch;
      batch.type = FrameType::kLabel;
      batch.series_id = std::move(label.series_id);
      batch.label_begin = label.begin;
      batch.labels = std::move(label.labels);
      source.queue.push_back(std::move(batch));
      break;
    }
    case FrameType::kHeartbeat:
      break;  // liveness already refreshed by observe()
    case FrameType::kBye:
      source.saw_bye = true;
      ++byes_;
      break;
    default:
      break;
  }
  append_response(responses, make_ack(AckPayload{frame.seq}));
  return true;
}

core::SeriesHandle IngestServer::series_handle(const std::string& series_id) {
  {
    util::MutexLock lock(series_cache_mutex_);
    const auto it = series_cache_.find(series_id);
    if (it != series_cache_.end()) return it->second;
  }
  // Resolve outside the cache lock: add_series takes registry shard
  // locks; add_series is idempotent so a concurrent double-resolve is
  // harmless.
  core::SeriesHandle handle = engine_.add_series(series_id);
  util::MutexLock lock(series_cache_mutex_);
  series_cache_.emplace(series_id, handle);
  return handle;
}

void IngestServer::apply_batches(
    std::vector<std::pair<std::string, QueuedBatch>> work) {
  NetCounters& counters = net_counters();
  // Coalesce runs of DATA batches for the same series into one
  // ingest_raw call: a wire gap inside the run becomes missing grid
  // slots, a reorder becomes out-of-order points — exactly the defect
  // classes repair_series already repairs and reports.
  std::size_t i = 0;
  while (i < work.size()) {
    QueuedBatch& batch = work[i].second;
    if (batch.type == FrameType::kLabel) {
      engine_.ingest_labels(series_handle(batch.series_id), batch.labels,
                            static_cast<std::size_t>(batch.label_begin));
      counters.batches_applied->add();
      ++i;
      continue;
    }
    std::vector<ts::RawPoint> points = std::move(batch.points);
    const std::string series_id = std::move(batch.series_id);
    const std::int64_t interval = batch.interval_seconds;
    std::size_t coalesced = 1;
    while (i + coalesced < work.size()) {
      QueuedBatch& next = work[i + coalesced].second;
      if (work[i + coalesced].first != work[i].first ||
          next.type != FrameType::kData || next.series_id != series_id ||
          next.interval_seconds != interval) {
        break;
      }
      points.insert(points.end(), next.points.begin(), next.points.end());
      ++coalesced;
    }
    const std::size_t submitted = points.size();
    const core::IngestOutcome outcome =
        engine_.ingest_raw(series_handle(series_id), std::move(points),
                           interval, options_.repair_policy);
    counters.batches_applied->add(coalesced);
    counters.points_applied->add(outcome.points_fed);
    if (!outcome.repairs.clean()) {
      obs::log(obs::LogLevel::kWarn, "net", "apply_dirty",
               {{"series", series_id},
                {"submitted", submitted},
                {"fed", outcome.points_fed},
                {"repairs", outcome.repairs.summary()}});
    }
    i += coalesced;
  }
}

void IngestServer::refresh_gauges() {
  std::size_t live = 0;
  std::size_t suspect = 0;
  std::size_t lost = 0;
  for (const auto& [id, source] : sources_) {
    switch (source->tracker.state()) {
      case SourceState::kLive:
        ++live;
        break;
      case SourceState::kSuspect:
        ++suspect;
        break;
      case SourceState::kLost:
        ++lost;
        break;
      case SourceState::kAwaiting:
        break;
    }
  }
  NetCounters& counters = net_counters();
  counters.sources_live->set(static_cast<double>(live));
  counters.sources_suspect->set(static_cast<double>(suspect));
  counters.sources_lost->set(static_cast<double>(lost));
}

void IngestServer::tick() {
  std::vector<std::pair<std::string, QueuedBatch>> work;
  std::vector<std::string> lost;  // logged after the lock: log sinks do I/O
  {
    util::MutexLock lock(mutex_);
    ++now_;
    for (auto& [id, source] : sources_) {
      const SourceState state = source->tracker.tick(now_);
      if (state != source->last_reported) {
        if (state == SourceState::kSuspect) {
          obs::flight_record("net", "suspect", source->salt,
                             "source=" + id);
        } else if (state == SourceState::kLost) {
          obs::flight_record("net", "lost", source->salt, "source=" + id);
          lost.push_back(id);
          // Deterministic teardown: everything the source queued before
          // going dark is flushed this tick — no buffered data is lost.
          while (!source->queue.empty()) {
            work.emplace_back(id, std::move(source->queue.front()));
            source->queue.pop_front();
          }
        }
        source->last_reported = state;
      }
    }
    for (auto& [id, source] : sources_) {
      std::size_t applied = 0;
      while (!source->queue.empty() &&
             (options_.apply_budget == 0 ||
              applied < options_.apply_budget)) {
        work.emplace_back(id, std::move(source->queue.front()));
        source->queue.pop_front();
        ++applied;
      }
    }
    refresh_gauges();
  }
  for (const std::string& id : lost) {
    obs::log(obs::LogLevel::kWarn, "net", "source_lost", {{"source", id}});
  }
  // Engine calls happen outside the server lock: ingest_raw feeds the
  // per-point pipeline and must never serialize against the frame path.
  apply_batches(std::move(work));
}

void IngestServer::drain() {
  std::vector<std::pair<std::string, QueuedBatch>> work;
  {
    util::MutexLock lock(mutex_);
    for (auto& [id, source] : sources_) {
      while (!source->queue.empty()) {
        work.emplace_back(id, std::move(source->queue.front()));
        source->queue.pop_front();
      }
    }
    refresh_gauges();
  }
  apply_batches(std::move(work));
}

std::uint64_t IngestServer::now_tick() const {
  util::MutexLock lock(mutex_);
  return now_;
}

std::size_t IngestServer::connection_count() const {
  util::MutexLock lock(mutex_);
  return connections_.size();
}

std::uint64_t IngestServer::byes_received() const {
  util::MutexLock lock(mutex_);
  return byes_;
}

std::optional<SourceState> IngestServer::source_state(
    std::string_view source_id) const {
  util::MutexLock lock(mutex_);
  const auto it = sources_.find(source_id);
  if (it == sources_.end()) return std::nullopt;
  return it->second->tracker.state();
}

std::vector<SourceSnapshot> IngestServer::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<SourceSnapshot> out;
  out.reserve(sources_.size());
  for (const auto& [id, source] : sources_) {
    SourceSnapshot snap;
    snap.id = id;
    snap.state = source->tracker.state();
    snap.counters = source->tracker.counters();
    snap.last_seq = source->tracker.last_seq();
    snap.queued_batches = source->queue.size();
    snap.saw_bye = source->saw_bye;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace opprentice::net
