#include "net/session.hpp"

#include <utility>

#include "net/framing.hpp"
#include "util/fault_injection.hpp"

namespace opprentice::net {

FrameFaultInjector::FrameFaultInjector(std::uint64_t source_salt)
    : source_salt_(source_salt) {}

void corrupt_frame_bytes(std::span<std::uint8_t> frame, std::uint64_t key) {
  if (frame.size() <= 4) return;
  const std::size_t corruptible = frame.size() - 4;
  const std::size_t at = 4 + static_cast<std::size_t>(
      util::fault_key(key, 0x10ADu) % corruptible);
  frame[at] ^= 0x5A;
}

void FrameFaultInjector::apply(std::vector<std::uint8_t> frame,
                               std::vector<std::uint8_t>& out) {
  const std::uint64_t key = util::fault_key(source_salt_, frame_index_);
  ++frame_index_;
  if (!util::faults_enabled()) {
    out.insert(out.end(), frame.begin(), frame.end());
    flush(out);
    return;
  }
  if (util::inject_fault(util::faults::kNetFrameDrop, key)) {
    flush(out);
    return;
  }
  if (util::inject_fault(util::faults::kNetFrameCorrupt, key)) {
    corrupt_frame_bytes(frame, key);
  }
  const bool duplicate =
      util::inject_fault(util::faults::kNetFrameDuplicate, key);
  if (util::inject_fault(util::faults::kNetFrameReorder, key) && !holding_) {
    // Hold this frame back; it is emitted after the next frame (or at
    // flush), swapping the pair on the wire.
    held_ = std::move(frame);
    holding_ = true;
    if (duplicate) out.insert(out.end(), held_.begin(), held_.end());
    return;
  }
  out.insert(out.end(), frame.begin(), frame.end());
  if (duplicate) out.insert(out.end(), frame.begin(), frame.end());
  flush(out);
}

void FrameFaultInjector::flush(std::vector<std::uint8_t>& out) {
  if (!holding_) return;
  out.insert(out.end(), held_.begin(), held_.end());
  held_.clear();
  holding_ = false;
}

}  // namespace opprentice::net
