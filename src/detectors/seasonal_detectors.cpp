#include "detectors/seasonal_detectors.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::detectors {
namespace {

// Floor on the normalization scale so a perfectly flat history does not
// blow the severity up to infinity.
constexpr double kScaleEpsilonFraction = 1e-6;

std::string weeks_name(const char* base, std::size_t win_weeks) {
  std::ostringstream out;
  out << base << "(win=" << win_weeks << "w)";
  return out.str();
}

}  // namespace

SeasonalDetectorBase::SeasonalDetectorBase(std::size_t period_points,
                                           std::size_t samples_per_slot,
                                           std::size_t scale_window,
                                           bool robust,
                                           ScaleSource scale_source)
    : period_(period_points),
      samples_per_slot_(samples_per_slot),
      robust_(robust),
      scale_source_(scale_source),
      residuals_(scale_window) {
  slots_.reserve(period_);
  for (std::size_t i = 0; i < period_; ++i) {
    slots_.emplace_back(samples_per_slot_);
  }
}

double SeasonalDetectorBase::feed(double value) {
  const std::size_t slot = index_ % period_;
  ++index_;
  RingBuffer<double>& history = slots_[slot];

  double severity = 0.0;
  if (!util::is_missing(value) && history.size() >= 1) {
    history.copy_ordered(scratch_);
    const double center =
        robust_ ? util::median(scratch_) : util::mean(scratch_);
    if (!util::is_missing(center)) {
      const double residual = value - center;

      double scale = std::numeric_limits<double>::quiet_NaN();
      if (scale_source_ == ScaleSource::kSlotHistory) {
        scale = robust_ ? util::mad(scratch_) : util::stddev(scratch_);
      } else if (residuals_.size() >= 16) {
        residuals_.copy_ordered(scratch_);
        // Scale over |residuals| keeps the estimate one-sided and stable.
        scale = robust_ ? util::mad(scratch_) : util::stddev(scratch_);
      }
      const double floor_scale =
          std::abs(center) * kScaleEpsilonFraction + 1e-9;
      if (!util::is_missing(scale)) {
        severity = std::abs(residual) / std::max(scale, floor_scale);
      }
      if (scale_source_ == ScaleSource::kRecentResiduals) {
        residuals_.push(residual);
      }
    }
  }
  if (!util::is_missing(value)) history.push(value);
  return sanitize_severity(severity);
}

void SeasonalDetectorBase::reset() {
  for (auto& s : slots_) s.clear();
  residuals_.clear();
  index_ = 0;
}

// ---- TSD ----

TsdDetector::TsdDetector(std::size_t win_weeks, const SeriesContext& ctx)
    : SeasonalDetectorBase(ctx.points_per_week, win_weeks, ctx.points_per_day,
                           /*robust=*/false, ScaleSource::kRecentResiduals),
      win_weeks_(win_weeks),
      points_per_week_(ctx.points_per_week) {}

std::string TsdDetector::name() const {
  return weeks_name("tsd", win_weeks_);
}

std::size_t TsdDetector::warmup_points() const {
  return points_per_week_;
}

// ---- TSD MAD ----

TsdMadDetector::TsdMadDetector(std::size_t win_weeks, const SeriesContext& ctx)
    : SeasonalDetectorBase(ctx.points_per_week, win_weeks, ctx.points_per_day,
                           /*robust=*/true, ScaleSource::kRecentResiduals),
      win_weeks_(win_weeks),
      points_per_week_(ctx.points_per_week) {}

std::string TsdMadDetector::name() const {
  return weeks_name("tsd_mad", win_weeks_);
}

std::size_t TsdMadDetector::warmup_points() const {
  return points_per_week_;
}

// ---- Historical average ----

HistoricalAverageDetector::HistoricalAverageDetector(std::size_t win_weeks,
                                                     const SeriesContext& ctx)
    : SeasonalDetectorBase(ctx.points_per_day, 7 * win_weeks,
                           ctx.points_per_day,
                           /*robust=*/false, ScaleSource::kSlotHistory),
      win_weeks_(win_weeks),
      points_per_day_(ctx.points_per_day) {}

std::string HistoricalAverageDetector::name() const {
  return weeks_name("historical_average", win_weeks_);
}

std::size_t HistoricalAverageDetector::warmup_points() const {
  // Need at least a handful of same-slot days for a usable sigma.
  return 3 * points_per_day_;
}

// ---- Historical MAD ----

HistoricalMadDetector::HistoricalMadDetector(std::size_t win_weeks,
                                             const SeriesContext& ctx)
    : SeasonalDetectorBase(ctx.points_per_day, 7 * win_weeks,
                           ctx.points_per_day,
                           /*robust=*/true, ScaleSource::kSlotHistory),
      win_weeks_(win_weeks),
      points_per_day_(ctx.points_per_day) {}

std::string HistoricalMadDetector::name() const {
  return weeks_name("historical_mad", win_weeks_);
}

std::size_t HistoricalMadDetector::warmup_points() const {
  return 3 * points_per_day_;
}

}  // namespace opprentice::detectors
