// SVD detector [Mahimkar et al., CoNEXT'11].
//
// The last row*col points are arranged column-major into a row x col lag
// matrix (each column is a consecutive segment of the series). A rank-1
// SVD re-projection captures the dominant "normal" behaviour shared by the
// segments; the severity of the newest point is the absolute reconstruction
// residual at the bottom-right matrix entry. Table 3 samples
// row in {10..50} and col in {3, 5, 7} — 15 configurations.
#pragma once

#include "detectors/detector.hpp"
#include "detectors/ring_buffer.hpp"

namespace opprentice::detectors {

class SvdDetector final : public Detector {
 public:
  SvdDetector(std::size_t rows, std::size_t cols);

  std::string name() const override;
  std::size_t warmup_points() const override { return rows_ * cols_; }
  double feed(double value) override;
  void reset() override;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  RingBuffer<double> history_;
  double last_value_ = 0.0;
  bool has_last_ = false;
};

}  // namespace opprentice::detectors
