#include "detectors/extra_detectors.hpp"

#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::detectors {

CusumDetector::CusumDetector(double k, std::size_t window)
    : k_(k), window_(window), history_(window) {}

std::string CusumDetector::name() const {
  std::ostringstream out;
  out << "cusum(k=" << k_ << ",win=" << window_ << ')';
  return out.str();
}

double CusumDetector::feed(double value) {
  if (util::is_missing(value)) return 0.0;
  double severity = 0.0;
  if (history_.full()) {
    history_.copy_ordered(scratch_);
    const double mean = util::mean(scratch_);
    const double sd = util::stddev(scratch_);
    const double z = (value - mean) / std::max(sd, 1e-9 * std::abs(mean) + 1e-12);
    s_pos_ = std::max(0.0, s_pos_ + z - k_);
    s_neg_ = std::max(0.0, s_neg_ - z - k_);
    severity = std::max(s_pos_, s_neg_);
  }
  history_.push(value);
  return sanitize_severity(severity);
}

void CusumDetector::reset() {
  history_.clear();
  s_pos_ = 0.0;
  s_neg_ = 0.0;
}

HoltDetector::HoltDetector(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {}

std::string HoltDetector::name() const {
  std::ostringstream out;
  out << "holt(a=" << alpha_ << ",b=" << beta_ << ')';
  return out.str();
}

double HoltDetector::feed(double value) {
  if (util::is_missing(value)) return 0.0;
  if (seen_ == 0) {
    level_ = value;
    ++seen_;
    return 0.0;
  }
  if (seen_ == 1) {
    trend_ = value - level_;
    level_ = value;
    ++seen_;
    return 0.0;
  }
  const double forecast = level_ + trend_;
  const double severity = std::abs(value - forecast);
  const double prev_level = level_;
  level_ = alpha_ * value + (1.0 - alpha_) * (prev_level + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  return sanitize_severity(severity);
}

void HoltDetector::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  seen_ = 0;
}

void register_extension_families(DetectorRegistry& registry) {
  registry.register_family("cusum", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (double k : {0.5, 1.0, 2.0}) {
      out.push_back(std::make_unique<CusumDetector>(k, 50));
    }
    return out;
  });
  registry.register_family("holt", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (double a : {0.3, 0.7}) {
      for (double b : {0.3, 0.7}) {
        out.push_back(std::make_unique<HoltDetector>(a, b));
      }
    }
    return out;
  });
}

}  // namespace opprentice::detectors
