#include "detectors/arima_detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace opprentice::detectors {
namespace {

// Sample autocovariances c_0..c_max_lag.
std::vector<double> autocovariances(const std::vector<double>& xs,
                                    int max_lag) {
  const double m = util::mean(xs);
  const auto n = static_cast<double>(xs.size());
  std::vector<double> c(static_cast<std::size_t>(max_lag) + 1, 0.0);
  for (int lag = 0; lag <= max_lag; ++lag) {
    double sum = 0.0;
    for (std::size_t t = static_cast<std::size_t>(lag); t < xs.size(); ++t) {
      sum += (xs[t] - m) * (xs[t - static_cast<std::size_t>(lag)] - m);
    }
    c[static_cast<std::size_t>(lag)] = sum / n;
  }
  return c;
}

}  // namespace

ArParameters fit_ar_by_aic(const std::vector<double>& xs, int max_order) {
  ArParameters best;
  if (xs.size() < static_cast<std::size_t>(4 * (max_order + 1))) return best;

  const std::vector<double> c = autocovariances(xs, max_order);
  if (c[0] <= 0.0) return best;
  const double n = static_cast<double>(xs.size());

  // Levinson-Durbin recursion; evaluate AIC at each order.
  std::vector<double> phi(static_cast<std::size_t>(max_order) + 1, 0.0);
  std::vector<double> prev(phi);
  double err = c[0];
  double best_aic = std::numeric_limits<double>::infinity();

  for (int k = 1; k <= max_order; ++k) {
    double acc = c[static_cast<std::size_t>(k)];
    for (int j = 1; j < k; ++j) {
      acc -= phi[static_cast<std::size_t>(j)] *
             c[static_cast<std::size_t>(k - j)];
    }
    const double reflection = err > 0.0 ? acc / err : 0.0;
    prev = phi;
    phi[static_cast<std::size_t>(k)] = reflection;
    for (int j = 1; j < k; ++j) {
      phi[static_cast<std::size_t>(j)] =
          prev[static_cast<std::size_t>(j)] -
          reflection * prev[static_cast<std::size_t>(k - j)];
    }
    err *= (1.0 - reflection * reflection);
    if (err <= 0.0) break;

    const double aic = n * std::log(err) + 2.0 * static_cast<double>(k);
    if (aic < best_aic) {
      best_aic = aic;
      best.phi.assign(phi.begin() + 1, phi.begin() + 1 + k);
      best.noise_variance = err;
    }
  }
  return best;
}

ArimaDetector::ArimaDetector(const SeriesContext& ctx, int max_order)
    : max_order_(max_order),
      fit_window_(2 * ctx.points_per_week),
      refit_interval_(ctx.points_per_day),
      diffs_(fit_window_) {}

std::string ArimaDetector::name() const {
  return "arima(auto)";
}

std::size_t ArimaDetector::warmup_points() const {
  // Enough differenced points for a stable first fit.
  return std::max<std::size_t>(64, refit_interval_);
}

void ArimaDetector::refit() {
  std::vector<double> window;
  diffs_.copy_ordered(window);
  const ArParameters fitted = fit_ar_by_aic(window, max_order_);
  if (fitted.order() > 0) params_ = fitted;
  since_refit_ = 0;
}

double ArimaDetector::feed(double value) {
  ++seen_;
  if (util::is_missing(value)) return 0.0;
  if (!has_last_) {
    last_value_ = value;
    has_last_ = true;
    return 0.0;
  }

  const double diff = value - last_value_;
  last_value_ = value;

  double severity = 0.0;
  const auto order = static_cast<std::size_t>(params_.order());
  if (order > 0 && diffs_.size() >= order) {
    double predicted_diff = 0.0;
    for (std::size_t i = 0; i < order; ++i) {
      predicted_diff += params_.phi[i] * diffs_.back(i);
    }
    severity = std::abs(diff - predicted_diff);
  }

  diffs_.push(diff);
  ++since_refit_;
  const bool first_fit =
      params_.order() == 0 && diffs_.size() >= warmup_points();
  if (first_fit || since_refit_ >= refit_interval_) {
    // opprentice-hotpath: allow(cold-call) refit is amortized: once per refit_interval_ (a day of points), not per point
    refit();
  }

  return sanitize_severity(severity);
}

void ArimaDetector::reset() {
  diffs_.clear();
  params_ = ArParameters{};
  has_last_ = false;
  last_value_ = 0.0;
  since_refit_ = 0;
  seen_ = 0;
}

}  // namespace opprentice::detectors
