#include "detectors/basic_detectors.hpp"

#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::detectors {
namespace {

std::string with_param(const char* base, const char* param, double v) {
  std::ostringstream out;
  out << base << '(' << param << '=' << v << ')';
  return out.str();
}

std::string with_param(const char* base, const char* param, std::size_t v) {
  std::ostringstream out;
  out << base << '(' << param << '=' << v << ')';
  return out.str();
}

}  // namespace

// ---- SimpleThresholdDetector ----

std::string SimpleThresholdDetector::name() const {
  return "simple_threshold";
}

double SimpleThresholdDetector::feed(double value) {
  if (util::is_missing(value)) return 0.0;
  return sanitize_severity(value);
}

// ---- DiffDetector ----

DiffDetector::DiffDetector(DiffLag lag, const SeriesContext& ctx)
    : lag_(lag),
      lag_points_(lag == DiffLag::kLastSlot ? 1
                  : lag == DiffLag::kLastDay ? ctx.points_per_day
                                             : ctx.points_per_week),
      history_(lag_points_) {}

std::string DiffDetector::name() const {
  switch (lag_) {
    case DiffLag::kLastSlot: return "diff(lag=slot)";
    case DiffLag::kLastDay: return "diff(lag=day)";
    case DiffLag::kLastWeek: return "diff(lag=week)";
  }
  return "diff(?)";
}

double DiffDetector::feed(double value) {
  double severity = 0.0;
  if (!util::is_missing(value) && history_.full()) {
    const double ref = history_.back(lag_points_ - 1);
    if (!util::is_missing(ref)) severity = std::abs(value - ref);
  }
  history_.push(value);
  return sanitize_severity(severity);
}

void DiffDetector::reset() {
  history_.clear();
}

// ---- SimpleMaDetector ----

SimpleMaDetector::SimpleMaDetector(std::size_t window)
    : window_(window), history_(window) {}

std::string SimpleMaDetector::name() const {
  return with_param("simple_ma", "win", window_);
}

double SimpleMaDetector::feed(double value) {
  double severity = 0.0;
  // Sum tracks only present values; count of present values in window is
  // recomputed cheaply because NaNs are stored as 0 contributions.
  if (!util::is_missing(value) && history_.full()) {
    std::size_t present = 0;
    double sum = 0.0;
    for (std::size_t age = 0; age < window_; ++age) {
      const double h = history_.back(age);
      if (!util::is_missing(h)) {
        sum += h;
        ++present;
      }
    }
    if (present > 0) {
      severity = std::abs(value - sum / static_cast<double>(present));
    }
  }
  history_.push(value);
  return sanitize_severity(severity);
}

void SimpleMaDetector::reset() {
  history_.clear();
}

// ---- WeightedMaDetector ----

WeightedMaDetector::WeightedMaDetector(std::size_t window)
    : window_(window), history_(window) {}

std::string WeightedMaDetector::name() const {
  return with_param("weighted_ma", "win", window_);
}

double WeightedMaDetector::feed(double value) {
  double severity = 0.0;
  if (!util::is_missing(value) && history_.full()) {
    double sum = 0.0, wsum = 0.0;
    for (std::size_t age = 0; age < window_; ++age) {
      const double h = history_.back(age);
      if (util::is_missing(h)) continue;
      const double w = static_cast<double>(window_ - age);  // recent = heavy
      sum += w * h;
      wsum += w;
    }
    if (wsum > 0.0) severity = std::abs(value - sum / wsum);
  }
  history_.push(value);
  return sanitize_severity(severity);
}

void WeightedMaDetector::reset() {
  history_.clear();
}

// ---- MaOfDiffDetector ----

MaOfDiffDetector::MaOfDiffDetector(std::size_t window)
    : window_(window), diffs_(window) {}

std::string MaOfDiffDetector::name() const {
  return with_param("ma_of_diff", "win", window_);
}

double MaOfDiffDetector::feed(double value) {
  if (util::is_missing(value)) return 0.0;
  if (has_last_) {
    const double d = std::abs(value - last_value_);
    if (diffs_.full()) diff_sum_ -= diffs_.back(window_ - 1);
    diffs_.push(d);
    diff_sum_ += d;
  }
  last_value_ = value;
  has_last_ = true;
  if (!diffs_.full()) return 0.0;
  return sanitize_severity(diff_sum_ / static_cast<double>(window_));
}

void MaOfDiffDetector::reset() {
  diffs_.clear();
  diff_sum_ = 0.0;
  has_last_ = false;
}

// ---- EwmaDetector ----

EwmaDetector::EwmaDetector(double alpha) : alpha_(alpha) {}

std::string EwmaDetector::name() const {
  return with_param("ewma", "alpha", alpha_);
}

double EwmaDetector::feed(double value) {
  if (util::is_missing(value)) return 0.0;
  if (!initialized_) {
    prediction_ = value;
    initialized_ = true;
    return 0.0;
  }
  const double severity = std::abs(value - prediction_);
  prediction_ = alpha_ * value + (1.0 - alpha_) * prediction_;
  return sanitize_severity(severity);
}

void EwmaDetector::reset() {
  prediction_ = 0.0;
  initialized_ = false;
}

}  // namespace opprentice::detectors
