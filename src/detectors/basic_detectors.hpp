// The simple severity extractors of Table 3:
//   simple threshold, diff, simple MA, weighted MA, MA of diff, EWMA.
#pragma once

#include <cstddef>

#include "detectors/detector.hpp"
#include "detectors/ring_buffer.hpp"
#include "util/hotpath.hpp"

namespace opprentice::detectors {

// Static-threshold detector (Amazon CloudWatch style): the severity is the
// value itself, so any sThld on the severity is a static value threshold.
class SimpleThresholdDetector final : public Detector {
 public:
  SimpleThresholdDetector() = default;
  std::string name() const override;
  std::size_t warmup_points() const override { return 0; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override {}
};

// "Diff": absolute difference against the point one lag ago. The paper
// samples lag in {last-slot, last-day, last-week}.
enum class DiffLag { kLastSlot, kLastDay, kLastWeek };

class DiffDetector final : public Detector {
 public:
  DiffDetector(DiffLag lag, const SeriesContext& ctx);
  std::string name() const override;
  std::size_t warmup_points() const override { return lag_points_; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  DiffLag lag_;
  std::size_t lag_points_ = 0;
  RingBuffer<double> history_;
};

// Simple moving average: severity = |value - mean of previous win points|.
class SimpleMaDetector final : public Detector {
 public:
  explicit SimpleMaDetector(std::size_t window);
  std::string name() const override;
  std::size_t warmup_points() const override { return window_; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  std::size_t window_ = 0;
  RingBuffer<double> history_;
};

// Weighted moving average with linearly increasing weights (most recent
// point weighs most): severity = |value - weighted mean of prev win points|.
class WeightedMaDetector final : public Detector {
 public:
  explicit WeightedMaDetector(std::size_t window);
  std::string name() const override;
  std::size_t warmup_points() const override { return window_; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  std::size_t window_ = 0;
  RingBuffer<double> history_;
};

// "MA of diff": moving average of the absolute last-slot differences;
// designed (by the studied search engine) to surface continuous jitters.
class MaOfDiffDetector final : public Detector {
 public:
  explicit MaOfDiffDetector(std::size_t window);
  std::string name() const override;
  std::size_t warmup_points() const override { return window_ + 1; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  std::size_t window_ = 0;
  RingBuffer<double> diffs_;
  double diff_sum_ = 0.0;
  double last_value_ = 0.0;
  bool has_last_ = false;
};

// EWMA prediction: severity = |value - EWMA of past values|;
// alpha weighs the most recent data.
class EwmaDetector final : public Detector {
 public:
  explicit EwmaDetector(double alpha);
  std::string name() const override;
  std::size_t warmup_points() const override { return 8; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  double alpha_ = 0.0;
  double prediction_ = 0.0;
  bool initialized_ = false;
};

}  // namespace opprentice::detectors
