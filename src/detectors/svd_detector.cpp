#include "detectors/svd_detector.hpp"

#include <cmath>
#include <sstream>

#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/svd.hpp"

namespace opprentice::detectors {

SvdDetector::SvdDetector(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), history_(rows * cols) {}

std::string SvdDetector::name() const {
  std::ostringstream out;
  out << "svd(row=" << rows_ << ",col=" << cols_ << ')';
  return out.str();
}

double SvdDetector::feed(double value) {
  if (util::is_missing(value)) {
    // Hold the last value so the lag matrix stays well defined.
    if (has_last_) history_.push(last_value_);
    return 0.0;
  }
  last_value_ = value;
  has_last_ = true;
  history_.push(value);
  if (!history_.full()) return 0.0;

  // Column-major fill: column c holds segment c of the window (oldest
  // segment first), so the newest point lands at (rows-1, cols-1).
  // The dominant subspace is learned from the *past* segments only —
  // otherwise a large anomaly in the newest segment would dominate the
  // basis and reconstruct itself with a near-zero residual.
  util::Matrix past(rows_, cols_ - 1);
  std::vector<double> newest(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t pos = c * rows_ + r;            // oldest-first index
      const std::size_t age = rows_ * cols_ - 1 - pos;  // ring age
      const double v = history_.back(age);
      if (c + 1 < cols_) {
        past(r, c) = v;
      } else {
        newest[r] = v;
      }
    }
  }
  const util::SvdResult d = util::svd(past);
  // Project the newest segment onto the dominant left singular vector and
  // take the reconstruction residual at the newest point.
  double coeff = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) coeff += d.u(r, 0) * newest[r];
  const double residual =
      newest[rows_ - 1] - coeff * d.u(rows_ - 1, 0);
  return sanitize_severity(std::abs(residual));
}

void SvdDetector::reset() {
  history_.clear();
  has_last_ = false;
  last_value_ = 0.0;
}

}  // namespace opprentice::detectors
