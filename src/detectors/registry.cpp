#include "detectors/registry.hpp"

#include <stdexcept>

#include "detectors/arima_detector.hpp"
#include "detectors/basic_detectors.hpp"
#include "detectors/holt_winters_detector.hpp"
#include "detectors/seasonal_detectors.hpp"
#include "detectors/svd_detector.hpp"
#include "detectors/wavelet_detector.hpp"

namespace opprentice::detectors {
namespace {

constexpr std::size_t kMaWindows[] = {10, 20, 30, 40, 50};
constexpr double kEwmaAlphas[] = {0.1, 0.3, 0.5, 0.7, 0.9};
constexpr std::size_t kWeekWindows[] = {1, 2, 3, 4, 5};
constexpr double kHwParams[] = {0.2, 0.4, 0.6, 0.8};
constexpr std::size_t kSvdRows[] = {10, 20, 30, 40, 50};
constexpr std::size_t kSvdCols[] = {3, 5, 7};
constexpr std::size_t kWaveletDays[] = {3, 5, 7};
constexpr util::FrequencyBand kWaveletBands[] = {
    util::FrequencyBand::kLow, util::FrequencyBand::kMid,
    util::FrequencyBand::kHigh};

}  // namespace

void DetectorRegistry::register_family(std::string family_name,
                                       DetectorFamilyFactory factory) {
  if (has_family(family_name)) {
    throw std::invalid_argument("DetectorRegistry: duplicate family '" +
                                family_name + "'");
  }
  families_.emplace_back(std::move(family_name), std::move(factory));
}

bool DetectorRegistry::has_family(const std::string& family_name) const {
  for (const auto& [name, factory] : families_) {
    if (name == family_name) return true;
  }
  return false;
}

std::vector<std::string> DetectorRegistry::family_names() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, factory] : families_) names.push_back(name);
  return names;
}

std::vector<DetectorPtr> DetectorRegistry::instantiate_all(
    const SeriesContext& ctx) const {
  std::vector<DetectorPtr> all;
  for (const auto& [name, factory] : families_) {
    auto configs = factory(ctx);
    for (auto& d : configs) all.push_back(std::move(d));
  }
  return all;
}

std::vector<DetectorPtr> DetectorRegistry::instantiate_family(
    const std::string& family_name, const SeriesContext& ctx) const {
  for (const auto& [name, factory] : families_) {
    if (name == family_name) return factory(ctx);
  }
  throw std::out_of_range("DetectorRegistry: unknown family '" + family_name +
                          "'");
}

DetectorRegistry DetectorRegistry::with_standard_families() {
  DetectorRegistry reg;

  reg.register_family("simple_threshold", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<SimpleThresholdDetector>());
    return out;
  });

  reg.register_family("diff", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (DiffLag lag :
         {DiffLag::kLastSlot, DiffLag::kLastDay, DiffLag::kLastWeek}) {
      out.push_back(std::make_unique<DiffDetector>(lag, ctx));
    }
    return out;
  });

  reg.register_family("simple_ma", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kMaWindows) {
      out.push_back(std::make_unique<SimpleMaDetector>(win));
    }
    return out;
  });

  reg.register_family("weighted_ma", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kMaWindows) {
      out.push_back(std::make_unique<WeightedMaDetector>(win));
    }
    return out;
  });

  reg.register_family("ma_of_diff", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kMaWindows) {
      out.push_back(std::make_unique<MaOfDiffDetector>(win));
    }
    return out;
  });

  reg.register_family("ewma", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (double alpha : kEwmaAlphas) {
      out.push_back(std::make_unique<EwmaDetector>(alpha));
    }
    return out;
  });

  reg.register_family("tsd", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kWeekWindows) {
      out.push_back(std::make_unique<TsdDetector>(win, ctx));
    }
    return out;
  });

  reg.register_family("tsd_mad", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kWeekWindows) {
      out.push_back(std::make_unique<TsdMadDetector>(win, ctx));
    }
    return out;
  });

  reg.register_family("historical_average", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kWeekWindows) {
      out.push_back(std::make_unique<HistoricalAverageDetector>(win, ctx));
    }
    return out;
  });

  reg.register_family("historical_mad", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (std::size_t win : kWeekWindows) {
      out.push_back(std::make_unique<HistoricalMadDetector>(win, ctx));
    }
    return out;
  });

  reg.register_family("holt_winters", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (double a : kHwParams) {
      for (double b : kHwParams) {
        for (double g : kHwParams) {
          out.push_back(std::make_unique<HoltWintersDetector>(a, b, g, ctx));
        }
      }
    }
    return out;
  });

  reg.register_family("svd", [](const SeriesContext&) {
    std::vector<DetectorPtr> out;
    for (std::size_t rows : kSvdRows) {
      for (std::size_t cols : kSvdCols) {
        out.push_back(std::make_unique<SvdDetector>(rows, cols));
      }
    }
    return out;
  });

  reg.register_family("wavelet", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    for (std::size_t days : kWaveletDays) {
      for (util::FrequencyBand band : kWaveletBands) {
        out.push_back(std::make_unique<WaveletDetector>(days, band, ctx));
      }
    }
    return out;
  });

  reg.register_family("arima", [](const SeriesContext& ctx) {
    std::vector<DetectorPtr> out;
    out.push_back(std::make_unique<ArimaDetector>(ctx));
    return out;
  });

  return reg;
}

std::vector<DetectorPtr> standard_configurations(const SeriesContext& ctx) {
  return DetectorRegistry::with_standard_families().instantiate_all(ctx);
}

}  // namespace opprentice::detectors
