// Feature extraction: runs every detector configuration over a series and
// assembles the per-point severity matrix the classifier consumes (§4.3.1:
// "a configuration acts as a feature extractor").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detectors/detector.hpp"
#include "detectors/registry.hpp"
#include "obs/cost_attribution.hpp"
#include "obs/metrics.hpp"
#include "timeseries/time_series.hpp"
#include "util/hotpath.hpp"

namespace opprentice::detectors {

// Family of a configuration name: the prefix before the parameter list,
// e.g. "ewma(alpha=0.3)" -> "ewma". Names without parameters are their
// own family.
std::string family_of(std::string_view configuration_name);

// Fault boundary around every detector configuration (DESIGN.md §5f).
// A configuration that throws or returns a non-finite severity degrades
// to `neutral` for that point; after `quarantine_after` *consecutive*
// failures the configuration is quarantined — its column stays neutral
// for the rest of the run and `opprentice.detector.quarantined` is
// incremented — while the remaining live columns keep extracting.
// Failure accounting is per-column state touched only by that column's
// task, so quarantine decisions are bit-identical at any thread count.
struct FaultBoundary {
  std::size_t quarantine_after = 3;
  double neutral = 0.0;
  // XORed into every injection key (and quarantine flight-event key) so
  // multi-tenant deployments give each series its own fault stream: the
  // fleet engine sets this to util::stable_id_hash(series_id). Zero (the
  // default) leaves single-series keys exactly as before.
  std::uint64_t key_salt = 0;
};

// Column-major severity matrix: columns[f][i] is the severity of point i
// under configuration f.
struct FeatureMatrix {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> columns;
  std::size_t num_rows = 0;

  // Points before this index are inside some detector's warm-up window
  // and must be skipped during training and accuracy accounting.
  std::size_t max_warmup = 0;

  // quarantined[f] != 0 when configuration f was quarantined by the
  // fault boundary during extraction.
  std::vector<std::uint8_t> quarantined;

  std::size_t num_features() const { return columns.size(); }
  std::size_t num_quarantined() const;

  // One point's feature vector (row i across all columns).
  std::vector<double> row(std::size_t i) const;
};

// Runs each detector over the full series (detectors are reset first).
// Columns are computed in parallel on the global thread pool (one task
// per configuration) and are bit-identical at any thread count.
FeatureMatrix extract_features(const ts::TimeSeries& series,
                               const std::vector<DetectorPtr>& detectors,
                               const FaultBoundary& boundary = {});

// Convenience: extract with the standard 133 configurations.
FeatureMatrix extract_standard_features(const ts::TimeSeries& series);

// Streaming extraction for online detection: owns the detectors and turns
// one incoming point into one feature vector.
class StreamingExtractor {
 public:
  explicit StreamingExtractor(std::vector<DetectorPtr> detectors,
                              const FaultBoundary& boundary = {});

  std::size_t num_features() const { return detectors_.size(); }
  std::vector<std::string> feature_names() const;
  std::size_t max_warmup() const { return max_warmup_; }

  // quarantined()[f] != 0 when configuration f has been quarantined by
  // the fault boundary; cleared by reset().
  const std::vector<std::uint8_t>& quarantined() const {
    return quarantined_;
  }

  // Number of points consumed so far.
  std::size_t points_seen() const { return points_seen_; }

  // True once every detector is past its warm-up window.
  bool warmed_up() const { return points_seen_ >= max_warmup_; }

  // Feeds one point to every detector; returns the feature vector.
  OPPRENTICE_HOT std::vector<double> feed(double value);

  void reset();

 private:
  // Contiguous run of configurations belonging to one detector family,
  // with the latency histogram ("opprentice.extract.family.<name>.us",
  // observations are µs per point) it reports into when detailed timing
  // is enabled (obs::detailed_timing_enabled()). Every family records
  // exactly one observation per fed point, so the family counts stay
  // consistent with the opprentice.extract.points counter.
  struct FamilyRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    obs::Histogram* histogram = nullptr;
  };

  OPPRENTICE_HOT void feed_into(double value, std::vector<double>& features);

  // Feeds one point to configuration f behind the fault boundary.
  double guarded_feed(std::size_t f, double value);

  std::vector<DetectorPtr> detectors_;
  std::vector<FamilyRange> families_;
  // Per-configuration cost slots (cost_attribution.hpp), looked up once
  // at construction; fed per point when detailed timing is enabled.
  std::vector<obs::CostSlot*> cost_slots_;
  FaultBoundary boundary_;
  // Consecutive-failure count per configuration; quarantine trips when it
  // reaches boundary_.quarantine_after.
  std::vector<std::size_t> consecutive_failures_;
  std::vector<std::uint8_t> quarantined_;
  bool faults_active_ = false;
  obs::Counter* points_counter_ = nullptr;
  obs::Histogram* feed_histogram_ = nullptr;
  std::size_t max_warmup_ = 0;
  std::size_t points_seen_ = 0;
};

}  // namespace opprentice::detectors
