// The unified detector model of §4.3.1:
//
//   data point --detector+parameters--> severity --sThld--> {1, 0}
//
// In Opprentice a detector never applies its own sThld; it only emits the
// non-negative severity, which becomes one ML feature. A detector with one
// concrete parameter assignment is a *configuration* (one feature column).
//
// Detectors are strictly online (§4.3.2): feed() may use only the points
// seen so far. Points inside the warm-up window carry severity 0 and are
// skipped during training/detection.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace opprentice::detectors {

// Calendar shape of the series a detector instance is bound to.
struct SeriesContext {
  std::size_t points_per_day = 1440;
  std::size_t points_per_week = 10080;
};

class Detector {
 public:
  virtual ~Detector() = default;

  // Unique configuration name, e.g. "ewma(alpha=0.3)".
  virtual std::string name() const = 0;

  // Number of leading points whose severity is not meaningful yet.
  virtual std::size_t warmup_points() const = 0;

  // Consumes the next data point and returns its severity (>= 0).
  // A NaN input (missing point) returns severity 0 and must leave the
  // detector able to continue on subsequent points.
  virtual double feed(double value) = 0;

  // Restores the just-constructed state.
  virtual void reset() = 0;
};

using DetectorPtr = std::unique_ptr<Detector>;

// Clamps a raw severity: negative and NaN map to 0 (severities are
// non-negative by the model's definition).
double sanitize_severity(double severity);

}  // namespace opprentice::detectors
