// Holt-Winters (triple exponential smoothing) detector [Brutlag, LISA'00].
//
// Additive seasonal model with a one-day season. The severity of a point is
// the absolute one-step forecast residual |value - (level + trend +
// season[slot])|, as described in §4.3.1 of the paper. Parameters alpha
// (level), beta (trend), gamma (season) are each sampled from
// {0.2, 0.4, 0.6, 0.8}, giving the 64 configurations of Table 3.
#pragma once

#include <vector>

#include "detectors/detector.hpp"
#include "util/hotpath.hpp"

namespace opprentice::detectors {

class HoltWintersDetector final : public Detector {
 public:
  HoltWintersDetector(double alpha, double beta, double gamma,
                      const SeriesContext& ctx);

  std::string name() const override;
  std::size_t warmup_points() const override { return 2 * season_length_; }
  OPPRENTICE_HOT double feed(double value) override;
  void reset() override;

 private:
  double alpha_ = 0.0;
  double beta_ = 0.0;
  double gamma_ = 0.0;
  std::size_t season_length_ = 0;

  // Model state.
  std::vector<double> season_;
  double level_ = 0.0;
  double trend_ = 0.0;
  bool model_ready_ = false;

  // First-season bootstrap.
  std::vector<double> first_day_;
  std::size_t index_ = 0;
};

}  // namespace opprentice::detectors
