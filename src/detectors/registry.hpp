// Detector registry: reproduces Table 3's 133 configurations and lets
// downstream users plug in their own detectors (§4.3.2: "Opprentice is not
// limited to the detectors we used, and can incorporate emerging
// detectors, as long as they meet our detector requirements").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "detectors/detector.hpp"

namespace opprentice::detectors {

// Builds every sampled configuration of one basic detector.
using DetectorFamilyFactory =
    std::function<std::vector<DetectorPtr>(const SeriesContext&)>;

class DetectorRegistry {
 public:
  // Registry preloaded with the paper's 14 detector families.
  static DetectorRegistry with_standard_families();

  // Empty registry (for tests / fully custom deployments).
  DetectorRegistry() = default;

  // Registers a family under `family_name`. Throws std::invalid_argument
  // on duplicates.
  void register_family(std::string family_name, DetectorFamilyFactory factory);

  bool has_family(const std::string& family_name) const;
  std::vector<std::string> family_names() const;
  std::size_t family_count() const { return families_.size(); }

  // Instantiates every configuration of every family, in registration
  // order. The standard registry yields the paper's 133 configurations.
  std::vector<DetectorPtr> instantiate_all(const SeriesContext& ctx) const;

  // Instantiates one family's configurations.
  std::vector<DetectorPtr> instantiate_family(const std::string& family_name,
                                              const SeriesContext& ctx) const;

 private:
  std::vector<std::pair<std::string, DetectorFamilyFactory>> families_;
};

// Shorthand: all 133 standard configurations.
std::vector<DetectorPtr> standard_configurations(const SeriesContext& ctx);

// The number of configurations the standard registry produces (133).
inline constexpr std::size_t kStandardConfigurationCount = 133;

}  // namespace opprentice::detectors
