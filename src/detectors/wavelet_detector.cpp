#include "detectors/wavelet_detector.hpp"

#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::detectors {
namespace {

const char* band_name(util::FrequencyBand band) {
  switch (band) {
    case util::FrequencyBand::kLow: return "low";
    case util::FrequencyBand::kMid: return "mid";
    case util::FrequencyBand::kHigh: return "high";
  }
  return "?";
}

}  // namespace

WaveletDetector::WaveletDetector(std::size_t win_days,
                                 util::FrequencyBand band,
                                 const SeriesContext& ctx)
    : win_days_(win_days),
      band_(band),
      window_points_(util::floor_pow2(win_days * ctx.points_per_day)),
      history_(window_points_) {}

std::string WaveletDetector::name() const {
  std::ostringstream out;
  out << "wavelet(win=" << win_days_ << "d,freq=" << band_name(band_) << ')';
  return out.str();
}

double WaveletDetector::feed(double value) {
  if (util::is_missing(value)) {
    if (has_last_) history_.push(last_value_);
    return 0.0;
  }
  last_value_ = value;
  has_last_ = true;
  history_.push(value);
  if (!history_.full()) return 0.0;

  history_.copy_ordered(scratch_);
  const std::vector<double> band_signal =
      util::band_reconstruction(scratch_, band_);

  double severity;
  if (band_ == util::FrequencyBand::kLow) {
    // Slow components: how far has the baseline drifted from its window
    // median (captures ramps and level shifts).
    severity = std::abs(band_signal.back() - util::median(band_signal));
  } else {
    // Fast components are zero-mean: the magnitude itself is the severity.
    severity = std::abs(band_signal.back());
  }
  return sanitize_severity(severity);
}

void WaveletDetector::reset() {
  history_.clear();
  has_last_ = false;
  last_value_ = 0.0;
}

}  // namespace opprentice::detectors
