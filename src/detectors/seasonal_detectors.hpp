// Seasonality-aware detectors of Table 3:
//
//  - TSD (time series decomposition): subtract the week-periodic template
//    (mean of the same slot-of-week over the past `win` weeks); severity is
//    the residual measured in standard deviations of recent residuals.
//  - TSD MAD: the robust variant — median template, MAD scale (§6 "dirty
//    data": MAD improves robustness to outliers and missing points).
//  - Historical average: Gaussian model per slot-of-day over the past
//    `win` weeks of days; severity = #stddevs from the slot mean.
//  - Historical MAD: robust variant with median / MAD.
#pragma once

#include <cstddef>
#include <vector>

#include "detectors/detector.hpp"
#include "detectors/ring_buffer.hpp"

namespace opprentice::detectors {

// Where the normalization scale of the residual comes from.
enum class ScaleSource {
  kRecentResiduals,  // TSD family: stddev/MAD of recent residuals
  kSlotHistory,      // historical family: stddev/MAD of the slot's history
};

// Common engine: per-slot value history + residual scale tracking.
class SeasonalDetectorBase : public Detector {
 public:
  // period_points: seasonal period (week for TSD, day for historical).
  // samples_per_slot: how many past same-slot values to keep.
  SeasonalDetectorBase(std::size_t period_points, std::size_t samples_per_slot,
                       std::size_t scale_window, bool robust,
                       ScaleSource scale_source);

  double feed(double value) override;
  void reset() override;

 private:
  std::size_t period_ = 0;
  std::size_t samples_per_slot_ = 0;
  bool robust_ = false;  // median/MAD instead of mean/std
  ScaleSource scale_source_;

  std::vector<RingBuffer<double>> slots_;
  RingBuffer<double> residuals_;  // recent residuals, for the scale
  std::size_t index_ = 0;
  mutable std::vector<double> scratch_;
};

class TsdDetector final : public SeasonalDetectorBase {
 public:
  TsdDetector(std::size_t win_weeks, const SeriesContext& ctx);
  std::string name() const override;
  std::size_t warmup_points() const override;

 private:
  std::size_t win_weeks_ = 0;
  std::size_t points_per_week_ = 0;
};

class TsdMadDetector final : public SeasonalDetectorBase {
 public:
  TsdMadDetector(std::size_t win_weeks, const SeriesContext& ctx);
  std::string name() const override;
  std::size_t warmup_points() const override;

 private:
  std::size_t win_weeks_ = 0;
  std::size_t points_per_week_ = 0;
};

class HistoricalAverageDetector final : public SeasonalDetectorBase {
 public:
  HistoricalAverageDetector(std::size_t win_weeks, const SeriesContext& ctx);
  std::string name() const override;
  std::size_t warmup_points() const override;

 private:
  std::size_t win_weeks_ = 0;
  std::size_t points_per_day_ = 0;
};

class HistoricalMadDetector final : public SeasonalDetectorBase {
 public:
  HistoricalMadDetector(std::size_t win_weeks, const SeriesContext& ctx);
  std::string name() const override;
  std::size_t warmup_points() const override;

 private:
  std::size_t win_weeks_ = 0;
  std::size_t points_per_day_ = 0;
};

}  // namespace opprentice::detectors
