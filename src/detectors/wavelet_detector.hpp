// Wavelet detector [Barford et al., IMW'02].
//
// A Haar multi-resolution analysis splits a sliding window of the signal
// into low / mid / high frequency bands. High/mid severities are the
// magnitude of the newest point's band component (sudden spikes and jitters
// live there); the low severity is the newest deviation of the
// low-frequency baseline from its window median (slow ramp-ups and level
// shifts live there). Table 3 samples win in {3, 5, 7} days and
// freq in {low, mid, high} — 9 configurations.
#pragma once

#include <vector>

#include "detectors/detector.hpp"
#include "detectors/ring_buffer.hpp"
#include "util/wavelet.hpp"

namespace opprentice::detectors {

class WaveletDetector final : public Detector {
 public:
  WaveletDetector(std::size_t win_days, util::FrequencyBand band,
                  const SeriesContext& ctx);

  std::string name() const override;
  std::size_t warmup_points() const override { return window_points_; }
  double feed(double value) override;
  void reset() override;

 private:
  std::size_t win_days_ = 0;
  util::FrequencyBand band_;
  std::size_t window_points_ = 0;  // power of two
  RingBuffer<double> history_;
  double last_value_ = 0.0;
  bool has_last_ = false;
  std::vector<double> scratch_;
};

}  // namespace opprentice::detectors
