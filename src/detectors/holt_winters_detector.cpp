#include "detectors/holt_winters_detector.hpp"

#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace opprentice::detectors {

HoltWintersDetector::HoltWintersDetector(double alpha, double beta,
                                         double gamma,
                                         const SeriesContext& ctx)
    : alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      season_length_(ctx.points_per_day) {
  first_day_.reserve(season_length_);
}

std::string HoltWintersDetector::name() const {
  std::ostringstream out;
  out << "holt_winters(a=" << alpha_ << ",b=" << beta_ << ",g=" << gamma_
      << ')';
  return out.str();
}

double HoltWintersDetector::feed(double value) {
  ++index_;
  if (!model_ready_) {
    // Bootstrap: collect one full day, then initialize level to the day
    // mean, trend to zero, and the season to the demeaned day profile.
    if (!util::is_missing(value)) {
      // opprentice-hotpath: allow(alloc) bootstrap only; capacity reserved in the constructor
      first_day_.push_back(value);
    } else if (!first_day_.empty()) {
      // opprentice-hotpath: allow(alloc) bootstrap only; capacity reserved in the constructor
      first_day_.push_back(first_day_.back());  // hold last value
    }
    if (first_day_.size() >= season_length_) {
      level_ = util::mean(first_day_);
      trend_ = 0.0;
      // opprentice-hotpath: allow(alloc) one-time season initialization when the bootstrap day completes
      season_.assign(season_length_, 0.0);
      for (std::size_t i = 0; i < season_length_; ++i) {
        season_[i] = first_day_[i] - level_;
      }
      model_ready_ = true;
    }
    return 0.0;
  }

  const std::size_t slot = (index_ - 1) % season_length_;
  const double forecast = level_ + trend_ + season_[slot];
  if (util::is_missing(value)) {
    // Advance the model along its own forecast so the phase stays aligned.
    const double prev_level = level_;
    level_ = forecast - season_[slot];
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    return 0.0;
  }

  const double severity = std::abs(value - forecast);

  const double prev_level = level_;
  level_ = alpha_ * (value - season_[slot]) +
           (1.0 - alpha_) * (prev_level + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  season_[slot] =
      gamma_ * (value - level_) + (1.0 - gamma_) * season_[slot];

  return sanitize_severity(severity);
}

void HoltWintersDetector::reset() {
  season_.clear();
  level_ = 0.0;
  trend_ = 0.0;
  model_ready_ = false;
  first_day_.clear();
  index_ = 0;
}

}  // namespace opprentice::detectors
