#include "detectors/detector.hpp"

#include <cmath>

namespace opprentice::detectors {

double sanitize_severity(double severity) {
  if (std::isnan(severity) || severity < 0.0) return 0.0;
  if (std::isinf(severity)) return 1e30;
  return severity;
}

}  // namespace opprentice::detectors
